//! Offline stand-in for the [`proptest`](https://proptest-rs.github.io/)
//! crate.
//!
//! The build environment has no registry access, so this workspace ships a
//! dependency-free property-testing harness exposing the slice of the
//! proptest API used here: the [`proptest!`] macro, [`Strategy`] with
//! `prop_map` / `boxed`, range and tuple strategies, [`any`],
//! `collection::{vec, btree_map}`, [`prop_oneof!`], and the
//! `prop_assert*` / [`prop_assume!`] macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking** — a failing case reports its inputs (via the panic
//!   message and case seed) but is not minimized.
//! * **Deterministic** — the RNG seed is derived from the test name, so a
//!   run is reproducible; set `PROPTEST_SEED=<n>` to perturb all tests.
//! * Value distributions are uniform rather than proptest's
//!   bias-toward-edge-cases regions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

// ------------------------------------------------------------------- rng

/// Deterministic splitmix64 RNG used to generate test cases.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Creates an RNG whose stream is a deterministic function of `name`
    /// (typically the test name) and the optional `PROPTEST_SEED` env var.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        if let Ok(extra) = std::env::var("PROPTEST_SEED") {
            if let Ok(n) = extra.trim().parse::<u64>() {
                h = h.wrapping_add(n.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            }
        }
        TestRng(h)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `usize` in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }
}

// ------------------------------------------------------------- strategies

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Filters generated values (regenerates until `f` passes; panics
    /// after too many rejects).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, f, whence }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(std::rc::Rc::new(move |rng| self.generate(rng)))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected too many values: {}", self.whence);
    }
}

/// A type-erased [`Strategy`].
#[derive(Clone)]
pub struct BoxedStrategy<T>(std::rc::Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Uniform choice among boxed alternatives — what [`prop_oneof!`] builds.
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.0.len());
        self.0[idx].generate(rng)
    }
}

/// A strategy that always yields a clone of its value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// Numeric range strategies.

/// Numeric types uniformly sampleable from a range.
pub trait RangeValue: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn draw(rng: &mut TestRng, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_range_value_int {
    ($($t:ty),*) => {$(
        impl RangeValue for $t {
            fn draw(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

impl_range_value_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_value_float {
    ($($t:ty),*) => {$(
        impl RangeValue for $t {
            fn draw(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty strategy range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                lo + unit * (hi - lo)
            }
        }
    )*};
}

impl_range_value_float!(f32, f64);

impl<T: RangeValue> Strategy for Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::draw(rng, self.start, self.end)
    }
}

// Tuple strategies.

macro_rules! impl_strategy_tuple {
    ($(($($t:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($t,)+) = self;
                ($($t.generate(rng),)+)
            }
        }
    )*};
}

impl_strategy_tuple! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

// `any::<T>()`.

/// Types with a canonical full-range strategy, for [`any`].
pub trait Arbitrary: Sized {
    /// The canonical strategy type.
    type Strategy: Strategy<Value = Self>;
    /// Returns the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// A full-range strategy for a primitive type.
#[derive(Debug, Clone, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = Any<$t>;
            fn arbitrary() -> Any<$t> {
                Any(std::marker::PhantomData)
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = Any<bool>;
    fn arbitrary() -> Any<bool> {
        Any(std::marker::PhantomData)
    }
}

macro_rules! impl_arbitrary_float {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                // Finite, sign-symmetric, spanning several magnitudes —
                // real proptest's any::<f64>() also includes non-finite
                // values, which no caller here wants.
                let mantissa = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                let exp = (rng.next_u64() % 61) as i32 - 30;
                let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
                sign * mantissa * (2.0 as $t).powi(exp)
            }
        }
        impl Arbitrary for $t {
            type Strategy = Any<$t>;
            fn arbitrary() -> Any<$t> {
                Any(std::marker::PhantomData)
            }
        }
    )*};
}

impl_arbitrary_float!(f32, f64);

/// Returns the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

// Collection strategies.

/// Strategies for standard collections.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeMap;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length lies in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.start + rng.below(self.len.end - self.len.start);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap<K::Value, V::Value>` with size in `len`.
    #[derive(Debug, Clone)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        len: Range<usize>,
    }

    /// Generates maps with keys from `key`, values from `value`, and size
    /// in `len` (best-effort when the key space is small).
    pub fn btree_map<K, V>(key: K, value: V, len: Range<usize>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        assert!(len.start < len.end, "empty length range");
        BTreeMapStrategy { key, value, len }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.len.start + rng.below(self.len.end - self.len.start);
            let mut out = BTreeMap::new();
            // Bounded attempts: duplicate keys may keep the map smaller
            // than `target` when the key space is tiny.
            for _ in 0..target.saturating_mul(4).max(16) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.key.generate(rng), self.value.generate(rng));
            }
            out
        }
    }
}

// ------------------------------------------------------------- test loop

/// Per-test configuration. Only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` successful cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; try another case.
    Reject,
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure from a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

// ---------------------------------------------------------------- macros

/// Fails the current case with a formatted message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {:?} == {:?}: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {:?} != {:?}: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Discards the current case (not counted toward `cases`) unless `cond`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among several strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Defines property tests: each `fn` runs its body for `cases` generated
/// inputs. See the crate docs for the differences from real proptest.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strategy:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                let mut passed: u32 = 0;
                let mut rejected: u32 = 0;
                while passed < config.cases {
                    let ($($pat,)*) = ($($crate::Strategy::generate(&($strategy), &mut rng),)*);
                    let outcome = (|| -> ::core::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    match outcome {
                        ::core::result::Result::Ok(()) => passed += 1,
                        ::core::result::Result::Err($crate::TestCaseError::Reject) => {
                            rejected += 1;
                            if rejected > config.cases.saturating_mul(32).max(1024) {
                                panic!(
                                    "{}: too many prop_assume rejections ({} after {} passes)",
                                    stringify!($name), rejected, passed
                                );
                            }
                        }
                        ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("{} failed on case {}: {}", stringify!($name), passed, msg);
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    fn evens() -> impl Strategy<Value = u32> {
        (0u32..1000).prop_map(|v| v * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 10u64..20, y in -5.0f64..5.0) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-5.0..5.0).contains(&y));
        }

        #[test]
        fn mapped_strategy(v in evens()) {
            prop_assert_eq!(v % 2, 0);
        }

        #[test]
        fn vectors_respect_len(v in prop::collection::vec(0u8..10, 1..50)) {
            prop_assert!(!v.is_empty() && v.len() < 50);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn oneof_and_assume(v in prop_oneof![Just(1u8), Just(2u8), 3u8..5]) {
            prop_assume!(v != 2);
            prop_assert_ne!(v, 2);
            prop_assert!(v == 1 || v == 3 || v == 4);
        }

        #[test]
        fn maps_have_entries(
            m in prop::collection::btree_map(any::<u16>(), any::<u32>(), 1..20),
        ) {
            prop_assert!(m.len() < 20);
        }

        #[test]
        fn tuples_work(
            (a, b) in (0u8..10, 10u8..20),
            mut c in 0u8..1,
        ) {
            c += 1;
            prop_assert!(a < 10 && b >= 10 && c == 1);
        }
    }

    #[test]
    fn determinism() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
