//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no registry access, so this workspace ships a
//! tiny, dependency-free implementation of exactly the slice of the rand
//! 0.9 API the codebase uses: [`rngs::SmallRng`], [`SeedableRng`], and the
//! [`Rng`] extension methods `random` / `random_range` / `random_bool`.
//!
//! The generator is xoshiro256++ seeded through splitmix64 — the same
//! construction real `SmallRng` uses on 64-bit targets — so streams are
//! deterministic for a given seed, fast, and of high statistical quality.
//! It makes no attempt at reproducing upstream's exact streams; callers in
//! this workspace only rely on *determinism per seed*, not on matching
//! upstream values.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of an RNG from seed material.
pub trait SeedableRng: Sized {
    /// Creates an RNG deterministically from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Splitmix64 step — used to expand a `u64` seed into full RNG state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws a value in `[lo, hi)` (`lo == hi` is a caller bug upstream too).
    fn sample_range(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self;
    /// Draws a value in `[lo, hi]`.
    fn sample_range_inclusive(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "random_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
            fn sample_range_inclusive(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "random_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "random_range: empty range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                lo + unit * (hi - lo)
            }
            fn sample_range_inclusive(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "random_range: empty range");
                let unit = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                lo + unit * (hi - lo)
            }
        }
    )*};
}

impl_sample_float!(f32, f64);

/// Range shapes accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        T::sample_range_inclusive(rng, *self.start(), *self.end())
    }
}

/// Types producible by [`Rng::random`] (the `StandardUniform` distribution).
pub trait Standard: Sized {
    /// Draws a value from the standard distribution for the type.
    fn standard(rng: &mut dyn RngCore) -> Self;
}

impl Standard for f64 {
    fn standard(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn standard(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u32 << 24) as f32
    }
}

impl Standard for bool {
    fn standard(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn standard(rng: &mut dyn RngCore) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution for `T`
    /// (`[0, 1)` for floats, full range for integers).
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard(self)
    }

    /// Draws a uniform value from `range`.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete small, fast RNGs.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, non-cryptographic RNG.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(SmallRng::seed_from_u64(7).random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.random_range(-3.0f64..5.0);
            assert!((-3.0..5.0).contains(&v));
            let i = r.random_range(10u32..20);
            assert!((10..20).contains(&i));
            let j = r.random_range(0i64..=3);
            assert!((0..=3).contains(&j));
        }
    }

    #[test]
    fn unit_floats() {
        let mut r = SmallRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = r.random::<f64>();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
