//! Offline stand-in for the [`serde`](https://serde.rs) crate.
//!
//! The build environment has no registry access, so this workspace ships a
//! small self-consistent serialization framework under the `serde` name:
//! [`Serialize`] / [`Deserialize`] traits wired directly to a JSON
//! serializer ([`ser::Serializer`]) and parser ([`de::Deserializer`]),
//! plus `#[derive(Serialize, Deserialize)]` macros from the sibling
//! `serde_derive` proc-macro shim. The sibling `serde_json` crate provides
//! the familiar `to_string` / `from_str` entry points.
//!
//! Deliberate simplifications versus real serde:
//!
//! * JSON is the only data format (that is all this workspace uses).
//! * Derives support non-generic structs (named, tuple, unit) and enums
//!   (unit, newtype, tuple, struct variants) with serde's externally
//!   tagged representation — no `#[serde(...)]` attributes.
//! * Non-finite floats serialize as `null` (as real `serde_json` does)
//!   and deserialize back as `NaN`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// JSON serialization machinery used by derived and manual impls.
pub mod ser {
    /// A JSON string builder with comma bookkeeping.
    #[derive(Debug, Default)]
    pub struct Serializer {
        out: String,
        /// Stack of "has the current container already emitted an element".
        started: Vec<bool>,
    }

    impl Serializer {
        /// Creates an empty serializer.
        pub fn new() -> Self {
            Self::default()
        }

        /// Finishes and returns the JSON text.
        pub fn finish(self) -> String {
            self.out
        }

        fn elem_prefix(&mut self) {
            if let Some(started) = self.started.last_mut() {
                if *started {
                    self.out.push(',');
                }
                *started = true;
            }
        }

        /// Opens a JSON object (`{`).
        pub fn begin_object(&mut self) {
            self.elem_prefix();
            self.out.push('{');
            self.started.push(false);
        }

        /// Closes a JSON object (`}`).
        pub fn end_object(&mut self) {
            self.started.pop();
            self.out.push('}');
        }

        /// Opens a JSON array (`[`).
        pub fn begin_array(&mut self) {
            self.elem_prefix();
            self.out.push('[');
            self.started.push(false);
        }

        /// Closes a JSON array (`]`).
        pub fn end_array(&mut self) {
            self.started.pop();
            self.out.push(']');
        }

        /// Emits an object key (with its trailing `:`).
        pub fn key(&mut self, name: &str) {
            self.elem_prefix();
            write_json_string(&mut self.out, name);
            self.out.push(':');
            // The value that follows must not emit a comma of its own.
            self.started.push(false);
        }

        /// Marks the value for the last [`Self::key`] as written.
        pub fn end_value(&mut self) {
            self.started.pop();
        }

        /// Emits a raw scalar token (already valid JSON).
        pub fn scalar(&mut self, token: &str) {
            self.elem_prefix();
            self.out.push_str(token);
        }

        /// Emits a JSON string scalar with escaping.
        pub fn string(&mut self, s: &str) {
            self.elem_prefix();
            write_json_string(&mut self.out, s);
        }
    }

    /// Escapes `s` as a JSON string literal into `out`.
    pub fn write_json_string(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    /// Formats a float the way `serde_json` does: non-finite becomes
    /// `null`, finite uses the shortest round-trippable decimal.
    pub fn write_f64(out: &mut String, v: f64) {
        if v.is_finite() {
            // Ryū-style shortest repr is what `{}` gives us; ensure a
            // fractional part so the token re-parses as a float.
            let s = format!("{v}");
            out.push_str(&s);
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        } else {
            out.push_str("null");
        }
    }
}

/// JSON parsing machinery used by derived and manual impls.
pub mod de {
    /// A deserialization error with a byte offset and message.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Error {
        /// Byte offset in the input where the error occurred.
        pub offset: usize,
        /// Human-readable description.
        pub message: String,
    }

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "JSON error at byte {}: {}", self.offset, self.message)
        }
    }

    impl std::error::Error for Error {}

    /// A hand-rolled recursive-descent JSON reader over a byte slice.
    #[derive(Debug)]
    pub struct Deserializer<'a> {
        input: &'a [u8],
        pos: usize,
    }

    impl<'a> Deserializer<'a> {
        /// Creates a reader over `input`.
        pub fn new(input: &'a str) -> Self {
            Deserializer { input: input.as_bytes(), pos: 0 }
        }

        /// Errors unless the whole input has been consumed.
        pub fn finish(mut self) -> Result<(), Error> {
            self.skip_ws();
            if self.pos == self.input.len() {
                Ok(())
            } else {
                Err(self.error("trailing characters"))
            }
        }

        /// Builds an error at the current offset.
        pub fn error(&self, message: impl Into<String>) -> Error {
            Error { offset: self.pos, message: message.into() }
        }

        /// Skips whitespace.
        pub fn skip_ws(&mut self) {
            while let Some(&b) = self.input.get(self.pos) {
                if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }

        /// Peeks the next non-whitespace byte without consuming it.
        pub fn peek(&mut self) -> Option<u8> {
            self.skip_ws();
            self.input.get(self.pos).copied()
        }

        /// Consumes the expected punctuation byte.
        pub fn expect(&mut self, byte: u8) -> Result<(), Error> {
            self.skip_ws();
            if self.input.get(self.pos) == Some(&byte) {
                self.pos += 1;
                Ok(())
            } else {
                Err(self.error(format!("expected `{}`", byte as char)))
            }
        }

        /// Consumes `byte` if it is next; reports whether it did.
        pub fn eat(&mut self, byte: u8) -> bool {
            self.skip_ws();
            if self.input.get(self.pos) == Some(&byte) {
                self.pos += 1;
                true
            } else {
                false
            }
        }

        /// Consumes a keyword such as `null`, `true`, `false`.
        pub fn eat_keyword(&mut self, kw: &str) -> bool {
            self.skip_ws();
            if self.input[self.pos..].starts_with(kw.as_bytes()) {
                self.pos += kw.len();
                true
            } else {
                false
            }
        }

        /// Parses a JSON string literal.
        pub fn parse_string(&mut self) -> Result<String, Error> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                let Some(&b) = self.input.get(self.pos) else {
                    return Err(self.error("unterminated string"));
                };
                self.pos += 1;
                match b {
                    b'"' => return Ok(out),
                    b'\\' => {
                        let Some(&e) = self.input.get(self.pos) else {
                            return Err(self.error("unterminated escape"));
                        };
                        self.pos += 1;
                        match e {
                            b'"' => out.push('"'),
                            b'\\' => out.push('\\'),
                            b'/' => out.push('/'),
                            b'n' => out.push('\n'),
                            b'r' => out.push('\r'),
                            b't' => out.push('\t'),
                            b'b' => out.push('\u{8}'),
                            b'f' => out.push('\u{c}'),
                            b'u' => {
                                let hex = self
                                    .input
                                    .get(self.pos..self.pos + 4)
                                    .ok_or_else(|| self.error("bad \\u escape"))?;
                                let code = std::str::from_utf8(hex)
                                    .ok()
                                    .and_then(|h| u32::from_str_radix(h, 16).ok())
                                    .ok_or_else(|| self.error("bad \\u escape"))?;
                                self.pos += 4;
                                out.push(
                                    char::from_u32(code)
                                        .ok_or_else(|| self.error("bad \\u code point"))?,
                                );
                            }
                            _ => return Err(self.error("unknown escape")),
                        }
                    }
                    _ => {
                        // Re-decode UTF-8: back up and take the full char.
                        self.pos -= 1;
                        let rest = std::str::from_utf8(&self.input[self.pos..])
                            .map_err(|_| self.error("invalid UTF-8"))?;
                        let c = rest.chars().next().unwrap();
                        out.push(c);
                        self.pos += c.len_utf8();
                    }
                }
            }
        }

        /// Parses a JSON number as `f64` (also used for integers).
        pub fn parse_f64(&mut self) -> Result<f64, Error> {
            self.skip_ws();
            if self.eat_keyword("null") {
                // serde_json writes non-finite floats as null.
                return Ok(f64::NAN);
            }
            let start = self.pos;
            while let Some(&b) = self.input.get(self.pos) {
                if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                    self.pos += 1;
                } else {
                    break;
                }
            }
            if start == self.pos {
                return Err(self.error("expected number"));
            }
            std::str::from_utf8(&self.input[start..self.pos])
                .ok()
                .and_then(|s| s.parse::<f64>().ok())
                .ok_or_else(|| self.error("malformed number"))
        }

        /// Parses a JSON integer as `i128`.
        pub fn parse_i128(&mut self) -> Result<i128, Error> {
            self.skip_ws();
            let start = self.pos;
            if self.input.get(self.pos) == Some(&b'-') {
                self.pos += 1;
            }
            while let Some(&b) = self.input.get(self.pos) {
                if b.is_ascii_digit() {
                    self.pos += 1;
                } else {
                    break;
                }
            }
            if start == self.pos {
                return Err(self.error("expected integer"));
            }
            std::str::from_utf8(&self.input[start..self.pos])
                .ok()
                .and_then(|s| s.parse::<i128>().ok())
                .ok_or_else(|| self.error("malformed integer"))
        }

        /// Skips any well-formed JSON value (for unknown object keys).
        pub fn skip_value(&mut self) -> Result<(), Error> {
            match self.peek() {
                Some(b'"') => {
                    self.parse_string()?;
                    Ok(())
                }
                Some(b'{') => {
                    self.expect(b'{')?;
                    if !self.eat(b'}') {
                        loop {
                            self.parse_string()?;
                            self.expect(b':')?;
                            self.skip_value()?;
                            if !self.eat(b',') {
                                break;
                            }
                        }
                        self.expect(b'}')?;
                    }
                    Ok(())
                }
                Some(b'[') => {
                    self.expect(b'[')?;
                    if !self.eat(b']') {
                        loop {
                            self.skip_value()?;
                            if !self.eat(b',') {
                                break;
                            }
                        }
                        self.expect(b']')?;
                    }
                    Ok(())
                }
                Some(b't') if self.eat_keyword("true") => Ok(()),
                Some(b'f') if self.eat_keyword("false") => Ok(()),
                Some(b'n') if self.eat_keyword("null") => Ok(()),
                Some(_) => {
                    self.parse_f64()?;
                    Ok(())
                }
                None => Err(self.error("unexpected end of input")),
            }
        }
    }
}

/// A type serializable to JSON by this shim.
pub trait Serialize {
    /// Writes `self` into the serializer.
    fn serialize(&self, s: &mut ser::Serializer);
}

/// A type deserializable from JSON by this shim.
pub trait Deserialize: Sized {
    /// Reads a value from the deserializer.
    fn deserialize(d: &mut de::Deserializer<'_>) -> Result<Self, de::Error>;
}

// ---- scalar impls ----------------------------------------------------

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self, s: &mut ser::Serializer) {
                s.scalar(&self.to_string());
            }
        }
        impl Deserialize for $t {
            fn deserialize(d: &mut de::Deserializer<'_>) -> Result<Self, de::Error> {
                let v = d.parse_i128()?;
                <$t>::try_from(v).map_err(|_| d.error("integer out of range"))
            }
        }
    )*};
}

impl_serde_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize(&self, s: &mut ser::Serializer) {
        let mut tok = String::new();
        ser::write_f64(&mut tok, *self);
        s.scalar(&tok);
    }
}

impl Deserialize for f64 {
    fn deserialize(d: &mut de::Deserializer<'_>) -> Result<Self, de::Error> {
        d.parse_f64()
    }
}

impl Serialize for f32 {
    fn serialize(&self, s: &mut ser::Serializer) {
        f64::from(*self).serialize(s);
    }
}

impl Deserialize for f32 {
    fn deserialize(d: &mut de::Deserializer<'_>) -> Result<Self, de::Error> {
        Ok(d.parse_f64()? as f32)
    }
}

impl Serialize for bool {
    fn serialize(&self, s: &mut ser::Serializer) {
        s.scalar(if *self { "true" } else { "false" });
    }
}

impl Deserialize for bool {
    fn deserialize(d: &mut de::Deserializer<'_>) -> Result<Self, de::Error> {
        if d.eat_keyword("true") {
            Ok(true)
        } else if d.eat_keyword("false") {
            Ok(false)
        } else {
            Err(d.error("expected boolean"))
        }
    }
}

impl Serialize for String {
    fn serialize(&self, s: &mut ser::Serializer) {
        s.string(self);
    }
}

impl Serialize for str {
    fn serialize(&self, s: &mut ser::Serializer) {
        s.string(self);
    }
}

impl Deserialize for String {
    fn deserialize(d: &mut de::Deserializer<'_>) -> Result<Self, de::Error> {
        d.parse_string()
    }
}

impl Serialize for char {
    fn serialize(&self, s: &mut ser::Serializer) {
        s.string(&self.to_string());
    }
}

impl Deserialize for char {
    fn deserialize(d: &mut de::Deserializer<'_>) -> Result<Self, de::Error> {
        let s = d.parse_string()?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(d.error("expected single-char string")),
        }
    }
}

// ---- container impls -------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self, s: &mut ser::Serializer) {
        (**self).serialize(s);
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self, s: &mut ser::Serializer) {
        (**self).serialize(s);
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(d: &mut de::Deserializer<'_>) -> Result<Self, de::Error> {
        T::deserialize(d).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self, s: &mut ser::Serializer) {
        match self {
            None => s.scalar("null"),
            Some(v) => v.serialize(s),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(d: &mut de::Deserializer<'_>) -> Result<Self, de::Error> {
        if d.peek() == Some(b'n') && d.eat_keyword("null") {
            Ok(None)
        } else {
            T::deserialize(d).map(Some)
        }
    }
}

fn serialize_seq<'a, T: Serialize + 'a>(
    items: impl IntoIterator<Item = &'a T>,
    s: &mut ser::Serializer,
) {
    s.begin_array();
    for item in items {
        item.serialize(s);
    }
    s.end_array();
}

fn deserialize_seq<T: Deserialize>(d: &mut de::Deserializer<'_>) -> Result<Vec<T>, de::Error> {
    d.expect(b'[')?;
    let mut out = Vec::new();
    if d.eat(b']') {
        return Ok(out);
    }
    loop {
        out.push(T::deserialize(d)?);
        if !d.eat(b',') {
            break;
        }
    }
    d.expect(b']')?;
    Ok(out)
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self, s: &mut ser::Serializer) {
        serialize_seq(self, s);
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self, s: &mut ser::Serializer) {
        serialize_seq(self, s);
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(d: &mut de::Deserializer<'_>) -> Result<Self, de::Error> {
        deserialize_seq(d)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self, s: &mut ser::Serializer) {
        serialize_seq(self, s);
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn deserialize(d: &mut de::Deserializer<'_>) -> Result<Self, de::Error> {
        let v: Vec<T> = deserialize_seq(d)?;
        let n = v.len();
        v.try_into()
            .map_err(|_| d.error(format!("expected array of length {N}, got {n}")))
    }
}

macro_rules! impl_serde_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self, s: &mut ser::Serializer) {
                s.begin_array();
                $(self.$n.serialize(s);)+
                s.end_array();
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(d: &mut de::Deserializer<'_>) -> Result<Self, de::Error> {
                d.expect(b'[')?;
                let mut first = true;
                let out = ($({
                    if !std::mem::take(&mut first) {
                        d.expect(b',')?;
                    }
                    $t::deserialize(d)?
                },)+);
                d.expect(b']')?;
                Ok(out)
            }
        }
    )*};
}

impl_serde_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

impl<K: Serialize + std::fmt::Display, V: Serialize> Serialize
    for std::collections::BTreeMap<K, V>
{
    fn serialize(&self, s: &mut ser::Serializer) {
        s.begin_object();
        for (k, v) in self {
            s.key(&k.to_string());
            v.serialize(s);
            s.end_value();
        }
        s.end_object();
    }
}

impl<K: Deserialize + Ord + std::str::FromStr, V: Deserialize> Deserialize
    for std::collections::BTreeMap<K, V>
{
    fn deserialize(d: &mut de::Deserializer<'_>) -> Result<Self, de::Error> {
        d.expect(b'{')?;
        let mut out = std::collections::BTreeMap::new();
        if d.eat(b'}') {
            return Ok(out);
        }
        loop {
            let key_text = d.parse_string()?;
            let key = key_text
                .parse::<K>()
                .map_err(|_| d.error("unparseable map key"))?;
            d.expect(b':')?;
            out.insert(key, V::deserialize(d)?);
            if !d.eat(b',') {
                break;
            }
        }
        d.expect(b'}')?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Serialize + Deserialize + PartialEq + std::fmt::Debug>(v: T) {
        let mut s = ser::Serializer::new();
        v.serialize(&mut s);
        let json = s.finish();
        let mut d = de::Deserializer::new(&json);
        let back = T::deserialize(&mut d).unwrap_or_else(|e| panic!("{json}: {e}"));
        d.finish().unwrap();
        assert_eq!(back, v, "json was {json}");
    }

    #[test]
    fn scalars_roundtrip() {
        roundtrip(42u32);
        roundtrip(-17i64);
        roundtrip(3.5f64);
        roundtrip(0.1f64 + 0.2);
        roundtrip(true);
        roundtrip(String::from("hé\"llo\n"));
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip(vec![1u32, 2, 3]);
        roundtrip(Vec::<f64>::new());
        roundtrip(Some(5u8));
        roundtrip(Option::<u8>::None);
        roundtrip([1u32, 2]);
        roundtrip(vec![[0u32, 1], [2, 3]]);
        roundtrip((1u8, 2.5f64, String::from("x")));
        roundtrip(
            [(1u32, 2u32), (3, 4)]
                .into_iter()
                .collect::<std::collections::BTreeMap<_, _>>(),
        );
    }

    #[test]
    fn nonfinite_floats_become_null() {
        let mut s = ser::Serializer::new();
        f64::INFINITY.serialize(&mut s);
        assert_eq!(s.finish(), "null");
        let mut d = de::Deserializer::new("null");
        assert!(f64::deserialize(&mut d).unwrap().is_nan());
    }
}
