//! Offline stand-in for the `polling` crate: portable readiness events
//! for sockets, the substrate of the `hsr-serve` event loop.
//!
//! Exactly the API surface the workspace uses, with the real crate's
//! semantics where they matter:
//!
//! * **Oneshot delivery** — once an event for a source is returned from
//!   [`Poller::wait`], that source's interest is disarmed until the next
//!   [`Poller::modify`]. Event loops re-arm after handling, which makes
//!   lost-wakeup races structurally impossible.
//! * **Cross-thread wakeup** — [`Poller::notify`] forces a concurrent
//!   (or the next) [`Poller::wait`] to return early. Threads that
//!   mutate shared state a waiting loop must observe call `notify`
//!   afterwards; registry changes made between waits are picked up on
//!   the next wait.
//! * **Error readiness** — `POLLERR`/`POLLHUP`/`POLLNVAL` surface as
//!   readable+writable (whichever was armed), so owners discover the
//!   condition from the I/O call's error, exactly as with the real
//!   crate.
//!
//! On Linux this is a direct FFI binding to `poll(2)` — no external
//! crates, snapshotting the registry into a `pollfd` array per wait.
//! That is O(fds) per wake where epoll would be O(ready), but with the
//! shim's target of thousands (not millions) of connections the scan is
//! cheap and the semantics are identical. On other platforms a degraded
//! fallback reports every armed source as ready after a short sleep;
//! combined with nonblocking I/O (spurious readiness just yields
//! `WouldBlock`) it is correct, merely slower.
//!
//! The wakeup channel is a self-connected nonblocking UDP socket rather
//! than a pipe: pure `std`, no extra FFI, and `poll` treats it like any
//! other fd.

#![warn(missing_docs)]

use std::collections::HashMap;
use std::io;
use std::net::UdpSocket;
use std::os::fd::{AsRawFd, RawFd};
use std::sync::Mutex;
use std::time::Duration;

/// Interest in (or occurrence of) readiness on one registered source.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Caller-chosen key identifying the source (echoed in delivered
    /// events; keys need not be unique, though event loops usually keep
    /// them so).
    pub key: usize,
    /// Interest in / occurrence of read readiness.
    pub readable: bool,
    /// Interest in / occurrence of write readiness.
    pub writable: bool,
}

impl Event {
    /// Interest in read readiness only.
    pub fn readable(key: usize) -> Event {
        Event { key, readable: true, writable: false }
    }

    /// Interest in write readiness only.
    pub fn writable(key: usize) -> Event {
        Event { key, readable: false, writable: true }
    }

    /// Interest in both read and write readiness.
    pub fn all(key: usize) -> Event {
        Event { key, readable: true, writable: true }
    }

    /// No interest (parks the source until the next `modify`).
    pub fn none(key: usize) -> Event {
        Event { key, readable: false, writable: false }
    }
}

struct Slot {
    key: usize,
    readable: bool,
    writable: bool,
}

/// Waits for readiness events on a set of registered sources.
pub struct Poller {
    registry: Mutex<HashMap<RawFd, Slot>>,
    /// Self-connected nonblocking UDP socket: `notify` sends a byte to
    /// it, which makes its fd readable and wakes `poll`.
    waker: UdpSocket,
}

impl Poller {
    /// A new poller with an armed wakeup channel and no sources.
    pub fn new() -> io::Result<Poller> {
        let waker = UdpSocket::bind("127.0.0.1:0")?;
        waker.connect(waker.local_addr()?)?;
        waker.set_nonblocking(true)?;
        Ok(Poller { registry: Mutex::new(HashMap::new()), waker })
    }

    /// Registers `source` with an initial `interest`. The caller must
    /// keep `source` alive (and its fd unchanged) until [`delete`]; the
    /// source should be in nonblocking mode, since oneshot delivery plus
    /// spurious wakeups mean readiness is a hint, not a guarantee.
    ///
    /// [`delete`]: Poller::delete
    pub fn add(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
        let mut registry = self.registry.lock().expect("poller registry");
        registry.insert(
            source.as_raw_fd(),
            Slot { key: interest.key, readable: interest.readable, writable: interest.writable },
        );
        Ok(())
    }

    /// Re-arms (or changes) the interest of a registered source —
    /// required after every delivered event (oneshot semantics).
    pub fn modify(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
        let mut registry = self.registry.lock().expect("poller registry");
        match registry.get_mut(&source.as_raw_fd()) {
            Some(slot) => {
                slot.key = interest.key;
                slot.readable = interest.readable;
                slot.writable = interest.writable;
                Ok(())
            }
            None => Err(io::Error::new(io::ErrorKind::NotFound, "source is not registered")),
        }
    }

    /// Unregisters a source. Call before closing the fd.
    pub fn delete(&self, source: &impl AsRawFd) -> io::Result<()> {
        let mut registry = self.registry.lock().expect("poller registry");
        registry.remove(&source.as_raw_fd());
        Ok(())
    }

    /// Wakes a concurrent (or the next) [`Poller::wait`] early. Wakeups
    /// coalesce; one `notify` is enough no matter how many events the
    /// waiter has to process.
    pub fn notify(&self) -> io::Result<()> {
        // A full socket buffer means wakeups are already pending —
        // coalescing, not an error.
        match self.waker.send(&[1]) {
            Ok(_) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Blocks until at least one registered source is ready, `notify`
    /// is called, or `timeout` elapses (`None` blocks indefinitely).
    /// Delivered events are appended to `events` (which is **not**
    /// cleared) and their sources disarmed; returns the number
    /// delivered, which is 0 for a pure timeout or wakeup.
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        let ready = sys_wait(self, timeout)?;
        // Drain coalesced wakeups so the next wait blocks again.
        let mut buf = [0u8; 64];
        while self.waker.recv(&mut buf).is_ok() {}
        // Oneshot: disarm what we deliver. The registry may have
        // changed during the syscall (a racing delete); skip vanished
        // entries rather than resurrecting them.
        let mut registry = self.registry.lock().expect("poller registry");
        let mut delivered = 0;
        for (fd, readable, writable) in ready {
            let Some(slot) = registry.get_mut(&fd) else {
                continue;
            };
            // Deliver only armed directions; error conditions surfaced
            // both directions and are masked the same way.
            let event = Event {
                key: slot.key,
                readable: readable && slot.readable,
                writable: writable && slot.writable,
            };
            if !event.readable && !event.writable {
                continue;
            }
            slot.readable &= !event.readable;
            slot.writable &= !event.writable;
            events.push(event);
            delivered += 1;
        }
        Ok(delivered)
    }
}

/// Readiness as `(fd, readable, writable)` triples, waker excluded.
#[cfg(target_os = "linux")]
fn sys_wait(poller: &Poller, timeout: Option<Duration>) -> io::Result<Vec<(RawFd, bool, bool)>> {
    use std::os::raw::{c_int, c_short, c_ulong};

    #[repr(C)]
    struct PollFd {
        fd: c_int,
        events: c_short,
        revents: c_short,
    }

    const POLLIN: c_short = 0x001;
    const POLLOUT: c_short = 0x004;
    const POLLERR: c_short = 0x008;
    const POLLHUP: c_short = 0x010;
    const POLLNVAL: c_short = 0x020;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    }

    // Snapshot the registry; the syscall runs without the lock so
    // `notify` (and registry edits followed by `notify`) never block on
    // a waiter.
    let mut fds: Vec<PollFd> = {
        let registry = poller.registry.lock().expect("poller registry");
        let mut fds = Vec::with_capacity(registry.len() + 1);
        fds.push(PollFd { fd: poller.waker.as_raw_fd(), events: POLLIN, revents: 0 });
        for (&fd, slot) in registry.iter() {
            let mut events = 0;
            if slot.readable {
                events |= POLLIN;
            }
            if slot.writable {
                events |= POLLOUT;
            }
            if events != 0 {
                fds.push(PollFd { fd, events, revents: 0 });
            }
        }
        fds
    };

    // Sub-millisecond timeouts round *up*: rounding to zero would turn
    // short waits into a busy spin.
    let timeout_ms: c_int = match timeout {
        None => -1,
        Some(t) => c_int::try_from(
            t.as_millis()
                .max(u128::from(t.subsec_nanos() % 1_000_000 != 0)),
        )
        .unwrap_or(c_int::MAX),
    };

    loop {
        // SAFETY: `fds` is a live, correctly sized array of `#[repr(C)]`
        // pollfd-layout structs for the duration of the call; poll(2)
        // only writes `revents` within the array. The fds snapshotted
        // above may have been closed concurrently, which poll reports
        // as POLLNVAL rather than UB.
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms) };
        if rc >= 0 {
            break;
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
        // EINTR: retry. (The remaining timeout is not recomputed; the
        // worst case is a late spurious wake, which oneshot re-arming
        // already tolerates.)
    }

    Ok(fds
        .iter()
        .skip(1) // the waker
        .filter(|p| p.revents != 0)
        .map(|p| {
            let error = p.revents & (POLLERR | POLLHUP | POLLNVAL) != 0;
            (p.fd, p.revents & POLLIN != 0 || error, p.revents & POLLOUT != 0 || error)
        })
        .collect())
}

/// Degraded portable fallback: sleep briefly, then report every armed
/// source as ready in both armed directions. Spurious readiness is
/// harmless against nonblocking I/O (`WouldBlock`), so this is correct
/// — just O(fds) work per tick instead of per actual event.
#[cfg(not(target_os = "linux"))]
fn sys_wait(poller: &Poller, timeout: Option<Duration>) -> io::Result<Vec<(RawFd, bool, bool)>> {
    let nap = timeout
        .unwrap_or(Duration::from_millis(2))
        .min(Duration::from_millis(2));
    std::thread::sleep(nap);
    let registry = poller.registry.lock().expect("poller registry");
    Ok(registry
        .iter()
        .filter(|(_, slot)| slot.readable || slot.writable)
        .map(|(&fd, slot)| (fd, slot.readable, slot.writable))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::{TcpListener, TcpStream};

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let a = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (b, _) = listener.accept().unwrap();
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();
        (a, b)
    }

    #[test]
    fn readable_event_is_oneshot_until_rearmed() {
        let poller = Poller::new().unwrap();
        let (a, mut b) = pair();
        poller.add(&a, Event::readable(7)).unwrap();

        b.write_all(b"x").unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(events, vec![Event { key: 7, readable: true, writable: false }]);

        // Disarmed now: unread data does not re-report until modify.
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        #[cfg(target_os = "linux")]
        assert!(events.is_empty(), "oneshot source reported again: {events:?}");

        let mut buf = [0u8; 8];
        let _ = a.try_clone().unwrap().read(&mut buf);
        poller.modify(&a, Event::readable(7)).unwrap();
        b.write_all(b"y").unwrap();
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(events.len(), 1);
        poller.delete(&a).unwrap();
    }

    #[test]
    fn notify_wakes_a_blocked_wait() {
        let poller = std::sync::Arc::new(Poller::new().unwrap());
        let waker = std::sync::Arc::clone(&poller);
        let waited = std::thread::spawn(move || {
            let mut events = Vec::new();
            let t0 = std::time::Instant::now();
            waker
                .wait(&mut events, Some(Duration::from_secs(30)))
                .unwrap();
            t0.elapsed()
        });
        std::thread::sleep(Duration::from_millis(50));
        poller.notify().unwrap();
        let elapsed = waited.join().unwrap();
        assert!(elapsed < Duration::from_secs(10), "notify did not wake wait ({elapsed:?})");
    }

    #[test]
    fn writable_when_buffer_has_room_and_hup_surfaces() {
        let poller = Poller::new().unwrap();
        let (a, b) = pair();
        poller.add(&a, Event::writable(3)).unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.key == 3 && e.writable));

        // Peer hangup reports readable (EOF) on an armed reader.
        poller.modify(&a, Event::readable(3)).unwrap();
        drop(b);
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.key == 3 && e.readable));
        poller.delete(&a).unwrap();
    }
}
