//! Offline stand-in for the [`criterion`](https://bheisler.github.io/criterion.rs/book/)
//! benchmark harness.
//!
//! The build environment has no registry access, so this shim provides the
//! entry points the workspace's benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Throughput`], [`black_box`],
//! [`criterion_group!`], [`criterion_main!`] — backed by a simple
//! wall-clock timing loop: a warm-up phase, then `sample_size` timed
//! samples whose median per-iteration time (and derived throughput) is
//! printed to stdout. No statistics, plots, or baseline comparison.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter (`name/param`).
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// The timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Median per-iteration time of the last `iter` call.
    last_median: Duration,
}

impl Bencher {
    /// Times `routine`, printing nothing itself; the caller reports.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm-up and calibration: find an iteration count that takes
        // ~2ms so timer quantization is negligible.
        let mut iters_per_sample = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = t0.elapsed();
            if elapsed >= Duration::from_millis(2) || iters_per_sample >= 1 << 20 {
                break;
            }
            iters_per_sample *= 2;
        }
        let mut per_iter: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            per_iter.push(t0.elapsed() / iters_per_sample as u32);
        }
        per_iter.sort_unstable();
        self.last_median = per_iter[per_iter.len() / 2];
    }
}

fn report(name: &str, median: Duration, throughput: Option<Throughput>) {
    let rate = match throughput {
        Some(Throughput::Elements(n)) if median.as_nanos() > 0 => {
            format!("  ({:.3} Melem/s)", n as f64 / median.as_secs_f64() / 1e6)
        }
        Some(Throughput::Bytes(n)) if median.as_nanos() > 0 => {
            format!("  ({:.3} MiB/s)", n as f64 / median.as_secs_f64() / (1 << 20) as f64)
        }
        _ => String::new(),
    };
    println!("bench {name:<50} {median:>12.3?}/iter{rate}");
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size.min(self.criterion.max_samples),
            last_median: Duration::ZERO,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), b.last_median, self.throughput);
        self
    }

    /// Runs a benchmark that borrows a prepared input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
pub struct Criterion {
    max_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // `--quick` style runs can cap sampling via the env.
        let max_samples = std::env::var("CRITERION_SHIM_SAMPLES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(10);
        Criterion { max_samples }
    }
}

impl Criterion {
    /// Sets the default sample count (builder style, for config exprs).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.max_samples = n.max(3);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.max_samples;
        BenchmarkGroup { name: name.into(), criterion: self, throughput: None, sample_size }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { samples: self.max_samples, last_median: Duration::ZERO };
        f(&mut b);
        report(name, b.last_median, None);
        self
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.throughput(Throughput::Elements(100));
        g.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
        c.bench_function("standalone", |b| b.iter(|| black_box(2 + 2)));
    }

    criterion_group!(benches, quick);

    #[test]
    fn harness_runs() {
        benches();
    }
}
