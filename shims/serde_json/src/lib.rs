//! Offline stand-in for `serde_json`: `to_string` / `from_str` over the
//! serde shim's built-in JSON serializer and parser.
//!
//! Output is compact (no whitespace); [`to_string_pretty`] adds
//! two-space indentation. Values round-trip through the shim's own
//! format; non-finite floats serialize as `null` like real serde_json.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde::de::Error;

/// Serializes `value` to a compact JSON string.
///
/// Infallible for the shim's data model but returns `Result` for
/// source compatibility with real `serde_json`.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut s = serde::ser::Serializer::new();
    value.serialize(&mut s);
    Ok(s.finish())
}

/// Serializes `value` with two-space indentation.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(prettify(&to_string(value)?))
}

/// Deserializes a value of type `T` from JSON text.
pub fn from_str<T: serde::Deserialize>(input: &str) -> Result<T, Error> {
    let mut d = serde::de::Deserializer::new(input);
    let value = T::deserialize(&mut d)?;
    d.finish()?;
    Ok(value)
}

/// Re-indents compact JSON. Strings are respected; the input is assumed
/// well-formed (it comes from [`to_string`]).
fn prettify(compact: &str) -> String {
    let mut out = String::with_capacity(compact.len() * 2);
    let mut indent = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    let newline = |out: &mut String, indent: usize| {
        out.push('\n');
        for _ in 0..indent {
            out.push_str("  ");
        }
    };
    for c in compact.chars() {
        if in_string {
            out.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_string = true;
                out.push(c);
            }
            '{' | '[' => {
                out.push(c);
                indent += 1;
                newline(&mut out, indent);
            }
            '}' | ']' => {
                indent = indent.saturating_sub(1);
                newline(&mut out, indent);
                out.push(c);
            }
            ',' => {
                out.push(c);
                newline(&mut out, indent);
            }
            ':' => out.push_str(": "),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn roundtrip_vec() {
        let v = vec![1.5f64, -2.0, 3.25];
        let json = super::to_string(&v).unwrap();
        assert_eq!(json, "[1.5,-2.0,3.25]");
        let back: Vec<f64> = super::from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_is_reparseable() {
        let v = vec![(1u32, "a".to_string()), (2, "b\"{".to_string())];
        let pretty = super::to_string_pretty(&v).unwrap();
        let back: Vec<(u32, String)> = super::from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(super::from_str::<Vec<f64>>("[1.0,").is_err());
        assert!(super::from_str::<Vec<f64>>("[1.0] tail").is_err());
    }
}
