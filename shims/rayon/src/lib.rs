//! Offline stand-in for the [`rayon`](https://crates.io/crates/rayon) crate.
//!
//! The build environment has no registry access, so this workspace ships a
//! small, dependency-free implementation of the rayon API surface the
//! codebase uses:
//!
//! * [`join`] — **genuinely parallel**: the first closure runs on a scoped
//!   OS thread while the second runs inline, throttled by a global budget
//!   of `available_parallelism` live helper threads so recursive
//!   divide-and-conquer (the dominant pattern here) degrades gracefully to
//!   sequential execution once the machine is saturated.
//! * [`ThreadPoolBuilder`] / [`ThreadPool::install`] — scopes a thread
//!   budget, so `with_threads(p, f)` style experiments still sweep `p`.
//! * [`prelude`] — `par_iter` / `into_par_iter` / `par_chunks` /
//!   `par_sort*` adapters that return **sequential** std iterators. All
//!   combinator chains (`map`, `zip`, `filter_map`, `collect`, `sum`, …)
//!   then come from `std::iter::Iterator` with identical semantics and
//!   ordering. Divide-and-conquer parallelism via [`join`] remains the
//!   source of speedup.
//!
//! The send/sync bounds of the real API are kept on [`join`] and
//! [`ThreadPool::install`] so code written against this shim stays honest
//! and swaps cleanly for real rayon when a registry is available.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};

/// Global count of live helper threads spawned by [`join`].
static LIVE_HELPERS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Thread budget installed by [`ThreadPool::install`] (0 = default).
    static INSTALLED_THREADS: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

fn hardware_threads() -> usize {
    // Like real rayon's global pool, honor RAYON_NUM_THREADS (read once):
    // CI uses it to run the suite genuinely single-threaded.
    static THREADS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *THREADS.get_or_init(|| {
        if let Some(n) = std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
        {
            return n;
        }
        std::thread::available_parallelism().map_or(1, |n| n.get())
    })
}

/// Number of threads the current scope would use — the installed pool's
/// size if inside [`ThreadPool::install`], else the hardware parallelism.
pub fn current_num_threads() -> usize {
    let installed = INSTALLED_THREADS.with(|t| t.get());
    if installed > 0 {
        installed
    } else {
        hardware_threads()
    }
}

/// Runs both closures, potentially in parallel, returning both results.
///
/// `a` is offloaded to a scoped thread when the global helper budget
/// allows; otherwise both run sequentially on the current thread. The
/// budget is `current_num_threads() - 1` helpers.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let budget = current_num_threads().saturating_sub(1);
    // Optimistically claim a helper slot; back off if over budget.
    let claimed = LIVE_HELPERS.fetch_add(1, Ordering::Relaxed) < budget;
    if !claimed {
        LIVE_HELPERS.fetch_sub(1, Ordering::Relaxed);
        return (a(), b());
    }
    let installed = INSTALLED_THREADS.with(|t| t.get());
    let out = std::thread::scope(|s| {
        let ha = s.spawn(move || {
            // Propagate the installed budget to the helper thread.
            INSTALLED_THREADS.with(|t| t.set(installed));
            a()
        });
        let rb = b();
        (ha.join().expect("rayon-shim: join closure panicked"), rb)
    });
    LIVE_HELPERS.fetch_sub(1, Ordering::Relaxed);
    out
}

/// Spawn-scope subset: runs the closure with a scope whose `spawn` is
/// immediate (sequential); provided for API compatibility.
pub fn scope<'scope, F, R>(f: F) -> R
where
    F: FnOnce(&Scope<'scope>) -> R,
{
    f(&Scope { _marker: std::marker::PhantomData })
}

/// Sequential stand-in for `rayon::Scope`.
pub struct Scope<'scope> {
    _marker: std::marker::PhantomData<&'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Runs `f` immediately on the current thread.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        f(self);
    }
}

/// Error type returned by [`ThreadPoolBuilder::build`]. Never produced.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`] with a fixed thread budget.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with the default (hardware) thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of threads the pool exposes.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool. Infallible in this shim.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: if self.num_threads == 0 {
                hardware_threads()
            } else {
                self.num_threads
            },
        })
    }
}

/// A thread budget that scopes the parallelism of [`join`] calls made
/// inside [`ThreadPool::install`].
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `f` with this pool's thread budget installed.
    pub fn install<R: Send>(&self, f: impl FnOnce() -> R + Send) -> R {
        let prev = INSTALLED_THREADS.with(|t| t.replace(self.num_threads));
        let out = f();
        INSTALLED_THREADS.with(|t| t.set(prev));
        out
    }

    /// The pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// Parallel-iterator adapters. In this shim they return the corresponding
/// **sequential** std iterators; all downstream combinators are
/// `std::iter::Iterator` methods with identical ordering semantics.
pub mod prelude {
    pub use super::{current_num_threads, join};

    /// `into_par_iter()` for any owned iterable (ranges, `Vec`, …).
    pub trait IntoParallelIterator: IntoIterator + Sized {
        /// Converts into a (sequential) iterator.
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }

    impl<T: IntoIterator + Sized> IntoParallelIterator for T {}

    /// `par_iter()` for anything iterable by shared reference.
    pub trait IntoParallelRefIterator<'data> {
        /// The iterator type produced.
        type Iter: Iterator;
        /// Iterates by shared reference.
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, C: 'data + ?Sized> IntoParallelRefIterator<'data> for C
    where
        &'data C: IntoIterator,
    {
        type Iter = <&'data C as IntoIterator>::IntoIter;
        fn par_iter(&'data self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// `par_iter_mut()` for anything iterable by unique reference.
    pub trait IntoParallelRefMutIterator<'data> {
        /// The iterator type produced.
        type Iter: Iterator;
        /// Iterates by unique reference.
        fn par_iter_mut(&'data mut self) -> Self::Iter;
    }

    impl<'data, C: 'data + ?Sized> IntoParallelRefMutIterator<'data> for C
    where
        &'data mut C: IntoIterator,
    {
        type Iter = <&'data mut C as IntoIterator>::IntoIter;
        fn par_iter_mut(&'data mut self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// Combinators that exist on rayon's `ParallelIterator` but not on
    /// `std::iter::Iterator`, expressed as sequential equivalents.
    pub trait ParallelIterator: Iterator + Sized {
        /// rayon's `flat_map_iter` — sequentially identical to `flat_map`.
        fn flat_map_iter<U, F>(self, f: F) -> std::iter::FlatMap<Self, U, F>
        where
            U: IntoIterator,
            F: FnMut(Self::Item) -> U,
        {
            self.flat_map(f)
        }

        /// rayon's `with_min_len` — a no-op splitting hint here.
        fn with_min_len(self, _min: usize) -> Self {
            self
        }

        /// rayon's `with_max_len` — a no-op splitting hint here.
        fn with_max_len(self, _max: usize) -> Self {
            self
        }
    }

    impl<I: Iterator> ParallelIterator for I {}

    /// Slice chunking / windowing adapters.
    pub trait ParallelSlice<T> {
        /// Sequential stand-in for `rayon`'s `par_chunks`.
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
        /// Sequential stand-in for `rayon`'s `par_windows`.
        fn par_windows(&self, window_size: usize) -> std::slice::Windows<'_, T>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
            self.chunks(chunk_size)
        }
        fn par_windows(&self, window_size: usize) -> std::slice::Windows<'_, T> {
            self.windows(window_size)
        }
    }

    /// Mutable-slice adapters: chunking and sorting.
    pub trait ParallelSliceMut<T> {
        /// Sequential stand-in for `par_chunks_mut`.
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
        /// Stable sort (`par_sort`).
        fn par_sort(&mut self)
        where
            T: Ord;
        /// Unstable sort (`par_sort_unstable`).
        fn par_sort_unstable(&mut self)
        where
            T: Ord;
        /// Stable sort by comparator (`par_sort_by`).
        fn par_sort_by<F: FnMut(&T, &T) -> std::cmp::Ordering>(&mut self, compare: F);
        /// Stable sort by key (`par_sort_by_key`).
        fn par_sort_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, key: F);
        /// Unstable sort by key (`par_sort_unstable_by_key`).
        fn par_sort_unstable_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, key: F);
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(chunk_size)
        }
        fn par_sort(&mut self)
        where
            T: Ord,
        {
            self.sort();
        }
        fn par_sort_unstable(&mut self)
        where
            T: Ord,
        {
            self.sort_unstable();
        }
        fn par_sort_by<F: FnMut(&T, &T) -> std::cmp::Ordering>(&mut self, compare: F) {
            self.sort_by(compare);
        }
        fn par_sort_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, key: F) {
            self.sort_by_key(key);
        }
        fn par_sort_unstable_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, key: F) {
            self.sort_unstable_by_key(key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "x".to_string());
        assert_eq!(a, 2);
        assert_eq!(b, "x");
    }

    #[test]
    fn nested_joins_do_not_deadlock() {
        fn sum(lo: u64, hi: u64) -> u64 {
            if hi - lo < 1000 {
                (lo..hi).sum()
            } else {
                let mid = lo + (hi - lo) / 2;
                let (a, b) = join(|| sum(lo, mid), || sum(mid, hi));
                a + b
            }
        }
        assert_eq!(sum(0, 1_000_000), (0..1_000_000u64).sum());
    }

    #[test]
    fn install_scopes_thread_budget() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.install(current_num_threads), 3);
        assert_eq!(pool.install(|| join(current_num_threads, current_num_threads)), (3, 3));
    }

    #[test]
    fn par_iter_adapters_behave_like_std() {
        let v: Vec<u32> = (0..100).collect();
        let doubled: Vec<u32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..100).map(|x| x * 2).collect::<Vec<_>>());
        let s: u64 = (0..1000u64).into_par_iter().map(|i| i * i).sum();
        assert_eq!(s, (0..1000u64).map(|i| i * i).sum::<u64>());
        let chunks: Vec<usize> = v.par_chunks(7).map(<[u32]>::len).collect();
        assert_eq!(chunks.iter().sum::<usize>(), 100);
        let mut w = [3u8, 1, 2];
        w.par_sort();
        assert_eq!(w, [1, 2, 3]);
    }
}
