//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! sibling `serde` shim **without** `syn`/`quote`: the derive input is
//! walked as a raw [`TokenStream`], distilled into a tiny AST (struct or
//! enum, fields with name/type text), and the impl is emitted by string
//! formatting and re-parsed with [`str::parse`].
//!
//! Supported shapes — exactly what this workspace derives on:
//! non-generic structs (named, tuple, unit) and non-generic enums with
//! unit / newtype / tuple / struct variants, in serde's externally tagged
//! JSON representation. `#[serde(...)]` attributes and generics are
//! rejected with a compile error rather than silently mishandled.

#![forbid(unsafe_code)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Named(Vec<(String, String)>),
    Tuple(Vec<String>),
    Unit,
}

#[derive(Debug)]
enum Input {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<(String, Fields)>,
    },
}

/// Derives `serde::Serialize` (shim version) for a struct or enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_input(input) {
        Ok(model) => gen_serialize(&model).parse().unwrap(),
        Err(msg) => compile_error(&msg),
    }
}

/// Derives `serde::Deserialize` (shim version) for a struct or enum.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_input(input) {
        Ok(model) => gen_deserialize(&model).parse().unwrap(),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({:?});", msg).parse().unwrap()
}

// ---------------------------------------------------------------- parsing

fn parse_input(input: TokenStream) -> Result<Input, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;
    skip_attrs_and_vis(&tokens, &mut i)?;

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => "struct",
        Some(TokenTree::Ident(id)) if id.to_string() == "enum" => "enum",
        other => return Err(format!("serde shim derive: expected struct/enum, got {other:?}")),
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("serde shim derive: expected type name, got {other:?}")),
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("serde shim derive: generic type `{name}` is not supported"));
    }
    if matches!(tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "where") {
        return Err(format!("serde shim derive: where-clauses on `{name}` are not supported"));
    }

    if kind == "struct" {
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                parse_named_fields(g.stream())?
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Fields::Tuple(split_types(g.stream())?)
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
            None => Fields::Unit,
            other => return Err(format!("serde shim derive: unexpected token {other:?}")),
        };
        Ok(Input::Struct { name, fields })
    } else {
        let body = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
            other => return Err(format!("serde shim derive: expected enum body, got {other:?}")),
        };
        Ok(Input::Enum { name, variants: parse_variants(body)? })
    }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) -> Result<(), String> {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // the attribute body group
                match tokens.get(*i) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                        if g.stream().to_string().starts_with("serde") {
                            return Err(
                                "serde shim derive: #[serde(...)] attributes are not supported"
                                    .to_string(),
                            );
                        }
                        *i += 1;
                    }
                    other => {
                        return Err(format!("serde shim derive: bad attribute, got {other:?}"))
                    }
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // pub(crate) etc.
                }
            }
            _ => return Ok(()),
        }
    }
}

/// Splits `stream` on top-level commas (angle-bracket depth aware).
fn top_level_split(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out: Vec<Vec<TokenTree>> = vec![Vec::new()];
    let mut angle_depth = 0i32;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                out.push(Vec::new());
                continue;
            }
            _ => {}
        }
        out.last_mut().unwrap().push(tt);
    }
    if out.last().is_some_and(Vec::is_empty) {
        out.pop();
    }
    out
}

fn tokens_to_string(tokens: &[TokenTree]) -> String {
    tokens.iter().cloned().collect::<TokenStream>().to_string()
}

fn parse_named_fields(stream: TokenStream) -> Result<Fields, String> {
    let mut fields = Vec::new();
    for field_tokens in top_level_split(stream) {
        let mut j = 0usize;
        skip_attrs_and_vis(&field_tokens, &mut j)?;
        let fname = match field_tokens.get(j) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("serde shim derive: expected field name, got {other:?}")),
        };
        j += 1;
        match field_tokens.get(j) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("serde shim derive: expected `:`, got {other:?}")),
        }
        j += 1;
        let ty = tokens_to_string(&field_tokens[j..]);
        if ty.is_empty() {
            return Err(format!("serde shim derive: missing type for field `{fname}`"));
        }
        fields.push((fname, ty));
    }
    Ok(Fields::Named(fields))
}

fn split_types(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    for ty_tokens in top_level_split(stream) {
        let mut j = 0usize;
        skip_attrs_and_vis(&ty_tokens, &mut j)?;
        let ty = tokens_to_string(&ty_tokens[j..]);
        if ty.is_empty() {
            return Err("serde shim derive: empty tuple field".to_string());
        }
        out.push(ty);
    }
    Ok(out)
}

fn parse_variants(stream: TokenStream) -> Result<Vec<(String, Fields)>, String> {
    let mut out = Vec::new();
    for var_tokens in top_level_split(stream) {
        let mut j = 0usize;
        skip_attrs_and_vis(&var_tokens, &mut j)?;
        let vname = match var_tokens.get(j) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => {
                return Err(format!("serde shim derive: expected variant name, got {other:?}"))
            }
        };
        j += 1;
        let fields = match var_tokens.get(j) {
            None => Fields::Unit,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                parse_named_fields(g.stream())?
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Fields::Tuple(split_types(g.stream())?)
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                return Err(
                    "serde shim derive: explicit discriminants are not supported".to_string()
                )
            }
            other => return Err(format!("serde shim derive: unexpected token {other:?}")),
        };
        out.push((vname, fields));
    }
    Ok(out)
}

// ------------------------------------------------------------ serializing

fn ser_named_body(fields: &[(String, String)], accessor: &str) -> String {
    let mut out = String::from("__s.begin_object();\n");
    for (fname, _) in fields {
        out.push_str(&format!(
            "__s.key({fname:?});\n::serde::Serialize::serialize({accessor}{fname}, __s);\n__s.end_value();\n"
        ));
    }
    out.push_str("__s.end_object();\n");
    out
}

fn gen_serialize(model: &Input) -> String {
    let (name, body) = match model {
        Input::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fs) => ser_named_body(fs, "&self."),
                Fields::Tuple(tys) if tys.len() == 1 => {
                    "::serde::Serialize::serialize(&self.0, __s);\n".to_string()
                }
                Fields::Tuple(tys) => {
                    let mut b = String::from("__s.begin_array();\n");
                    for i in 0..tys.len() {
                        b.push_str(&format!("::serde::Serialize::serialize(&self.{i}, __s);\n"));
                    }
                    b.push_str("__s.end_array();\n");
                    b
                }
                Fields::Unit => "__s.scalar(\"null\");\n".to_string(),
            };
            (name, body)
        }
        Input::Enum { name, variants } => {
            let mut arms = String::new();
            for (vname, fields) in variants {
                match fields {
                    Fields::Unit => {
                        arms.push_str(&format!(
                            "{name}::{vname} => {{ __s.string({vname:?}); }}\n"
                        ));
                    }
                    Fields::Tuple(tys) if tys.len() == 1 => {
                        arms.push_str(&format!(
                            "{name}::{vname}(__f0) => {{ __s.begin_object(); __s.key({vname:?}); \
                             ::serde::Serialize::serialize(__f0, __s); __s.end_value(); __s.end_object(); }}\n"
                        ));
                    }
                    Fields::Tuple(tys) => {
                        let binds: Vec<String> =
                            (0..tys.len()).map(|i| format!("__f{i}")).collect();
                        let mut inner = String::from("__s.begin_array();\n");
                        for b in &binds {
                            inner.push_str(&format!("::serde::Serialize::serialize({b}, __s);\n"));
                        }
                        inner.push_str("__s.end_array();\n");
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => {{ __s.begin_object(); __s.key({vname:?});\n{inner}__s.end_value(); __s.end_object(); }}\n",
                            binds.join(", ")
                        ));
                    }
                    Fields::Named(fs) => {
                        let binds: Vec<&str> = fs.iter().map(|(f, _)| f.as_str()).collect();
                        let inner = ser_named_body(fs, "");
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {} }} => {{ __s.begin_object(); __s.key({vname:?});\n{inner}__s.end_value(); __s.end_object(); }}\n",
                            binds.join(", ")
                        ));
                    }
                }
            }
            (name, format!("match self {{\n{arms}}}\n"))
        }
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Serialize for {name} {{\n\
         fn serialize(&self, __s: &mut ::serde::ser::Serializer) {{\n{body}}}\n}}\n"
    )
}

// ---------------------------------------------------------- deserializing

/// Emits statements that parse a `{ ... }` object into `let` bindings
/// `__f_<name>` and then build `ctor { name: ..., }` as expression `__out`.
fn de_named_body(fields: &[(String, String)], ctor: &str) -> String {
    let mut out = String::from("__d.expect(b'{')?;\n");
    for (fname, ty) in fields {
        out.push_str(&format!(
            "let mut __f_{fname}: ::core::option::Option<{ty}> = ::core::option::Option::None;\n"
        ));
    }
    out.push_str("if !__d.eat(b'}') {\nloop {\nlet __key = __d.parse_string()?;\n__d.expect(b':')?;\nmatch __key.as_str() {\n");
    for (fname, ty) in fields {
        out.push_str(&format!(
            "{fname:?} => {{ __f_{fname} = ::core::option::Option::Some(<{ty} as ::serde::Deserialize>::deserialize(__d)?); }}\n"
        ));
    }
    out.push_str(
        "_ => { __d.skip_value()?; }\n}\nif !__d.eat(b',') { break; }\n}\n__d.expect(b'}')?;\n}\n",
    );
    out.push_str(&format!("let __out = {ctor} {{\n"));
    for (fname, _) in fields {
        out.push_str(&format!(
            "{fname}: __f_{fname}.ok_or_else(|| __d.error(\"missing field `{fname}`\"))?,\n"
        ));
    }
    out.push_str("};\n");
    out
}

fn de_tuple_body(tys: &[String], ctor: &str) -> String {
    if tys.len() == 1 {
        return format!(
            "let __out = {ctor}(<{} as ::serde::Deserialize>::deserialize(__d)?);\n",
            tys[0]
        );
    }
    let mut out = String::from("__d.expect(b'[')?;\n");
    for (i, ty) in tys.iter().enumerate() {
        if i > 0 {
            out.push_str("__d.expect(b',')?;\n");
        }
        out.push_str(&format!("let __f{i} = <{ty} as ::serde::Deserialize>::deserialize(__d)?;\n"));
    }
    out.push_str("__d.expect(b']')?;\n");
    out.push_str(&format!(
        "let __out = {ctor}({});\n",
        (0..tys.len())
            .map(|i| format!("__f{i}"))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out
}

fn gen_deserialize(model: &Input) -> String {
    let (name, body) = match model {
        Input::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fs) => {
                    let mut b = de_named_body(fs, name);
                    b.push_str("::core::result::Result::Ok(__out)\n");
                    b
                }
                Fields::Tuple(tys) => {
                    let mut b = de_tuple_body(tys, name);
                    b.push_str("::core::result::Result::Ok(__out)\n");
                    b
                }
                Fields::Unit => format!(
                    "if __d.eat_keyword(\"null\") {{ ::core::result::Result::Ok({name}) }} \
                     else {{ ::core::result::Result::Err(__d.error(\"expected null\")) }}\n"
                ),
            };
            (name, body)
        }
        Input::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for (vname, fields) in variants {
                match fields {
                    Fields::Unit => unit_arms.push_str(&format!(
                        "{vname:?} => ::core::result::Result::Ok({name}::{vname}),\n"
                    )),
                    Fields::Tuple(tys) => data_arms.push_str(&format!(
                        "{vname:?} => {{\n{}__out\n}}\n",
                        de_tuple_body(tys, &format!("{name}::{vname}"))
                    )),
                    Fields::Named(fs) => data_arms.push_str(&format!(
                        "{vname:?} => {{\n{}__out\n}}\n",
                        de_named_body(fs, &format!("{name}::{vname}"))
                    )),
                }
            }
            let body = format!(
                "match __d.peek() {{\n\
                 Some(b'\"') => {{\nlet __v = __d.parse_string()?;\nmatch __v.as_str() {{\n{unit_arms}\
                 _ => ::core::result::Result::Err(__d.error(\"unknown unit variant\")),\n}}\n}}\n\
                 Some(b'{{') => {{\n__d.expect(b'{{')?;\nlet __v = __d.parse_string()?;\n__d.expect(b':')?;\n\
                 let __out = match __v.as_str() {{\n{data_arms}\
                 _ => return ::core::result::Result::Err(__d.error(\"unknown variant\")),\n}};\n\
                 __d.expect(b'}}')?;\n::core::result::Result::Ok(__out)\n}}\n\
                 _ => ::core::result::Result::Err(__d.error(\"expected enum value\")),\n}}\n"
            );
            (name, body)
        }
    };
    // `allow(unreachable_code)`: for enums with no data-carrying variants
    // the generated data-variant match is a bare `return Err(...)`, which
    // makes the trailing Ok unreachable — harmless by construction.
    format!(
        "#[automatically_derived]\nimpl ::serde::Deserialize for {name} {{\n\
         #[allow(unreachable_code)]\n\
         fn deserialize(__d: &mut ::serde::de::Deserializer<'_>) -> ::core::result::Result<Self, ::serde::de::Error> {{\n{body}}}\n}}\n"
    )
}
