//! Integration: all four algorithm configurations must produce the same
//! visible image on every workload family, deterministically, at any
//! thread count.

use terrain_hsr::core::pipeline::{run, Algorithm, HsrConfig, Phase2Mode};
use terrain_hsr::pram::with_threads;
use terrain_hsr::terrain::gen::{self, Workload};

fn workloads() -> Vec<Workload> {
    vec![
        Workload::Fbm { nx: 14, ny: 12, seed: 1 },
        Workload::Fbm { nx: 10, ny: 18, seed: 99 },
        Workload::Hills { nx: 12, ny: 12, hills: 6, seed: 2 },
        Workload::Ridges { nx: 16, ny: 10, ridges: 4, seed: 3 },
        Workload::Amphitheater { nx: 10, ny: 12, seed: 4 },
        Workload::Knob { nx: 12, ny: 12, theta: 0.8, seed: 5 },
        Workload::Comb { m: 6 },
        Workload::DelaunayFbm { n: 90, seed: 6 },
        Workload::Craters { nx: 14, ny: 14, craters: 4, seed: 7 },
        Workload::Canyon { nx: 12, ny: 14, seed: 8 },
        Workload::Terraces { nx: 16, ny: 10, steps: 4, seed: 9 },
    ]
}

#[test]
fn all_algorithms_agree_on_all_families() {
    for w in workloads() {
        let tin = w.build();
        let reference = run(
            &tin,
            &HsrConfig { algorithm: Algorithm::Sequential, ..Default::default() },
        )
        .unwrap();
        for alg in [
            Algorithm::Parallel(Phase2Mode::Persistent),
            Algorithm::Parallel(Phase2Mode::Rebuild),
            Algorithm::Naive,
        ] {
            let got = run(&tin, &HsrConfig { algorithm: alg, ..Default::default() }).unwrap();
            let ag = got.vis.agreement(&reference.vis);
            assert!(ag > 0.9999, "{}: {alg:?} agreement {ag}", w.name());
            assert_eq!(
                got.vis.vertical_visible, reference.vis.vertical_visible,
                "{}: vertical edges differ under {alg:?}",
                w.name()
            );
        }
    }
}

#[test]
fn parallel_is_deterministic_across_runs_and_threads() {
    let tin = gen::fbm(20, 20, 4, 10.0, 77).to_tin().unwrap();
    let reference = run(&tin, &HsrConfig::default()).unwrap();
    let ser_ref = serde_json::to_string(&reference.vis).unwrap();
    for threads in [1, 2, 4] {
        let got = with_threads(threads, || run(&tin, &HsrConfig::default()).unwrap());
        let ser = serde_json::to_string(&got.vis).unwrap();
        assert_eq!(ser, ser_ref, "nondeterminism at {threads} threads");
    }
}

#[test]
fn output_size_matches_across_modes_on_comb() {
    // On the adversary the output counts themselves should match (not just
    // interval measure).
    let tin = gen::quadratic_comb(10);
    let a = run(&tin, &HsrConfig::default()).unwrap();
    let b = run(
        &tin,
        &HsrConfig { algorithm: Algorithm::Sequential, ..Default::default() },
    )
    .unwrap();
    assert_eq!(a.vis.pieces.len(), b.vis.pieces.len());
    assert!(a.k as f64 > 0.8 * b.k as f64 && (a.k as f64) < 1.2 * b.k as f64);
}

#[test]
fn rotated_views_stay_consistent() {
    let base = gen::gaussian_hills(14, 14, 5, 21).to_tin().unwrap();
    for deg in [0.0f64, 17.0, 45.0, 90.0, 133.0] {
        let tin = base.rotated_about_z(deg.to_radians()).unwrap();
        let par = run(&tin, &HsrConfig::default()).unwrap();
        let seq = run(
            &tin,
            &HsrConfig { algorithm: Algorithm::Sequential, ..Default::default() },
        )
        .unwrap();
        let ag = par.vis.agreement(&seq.vis);
        assert!(ag > 0.9999, "angle {deg}: agreement {ag}");
    }
}
