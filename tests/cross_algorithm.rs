//! Integration: all four algorithm configurations must produce the same
//! visible image on every workload family, deterministically, at any
//! thread count.

mod common;

use common::{assert_agreement, run_default, run_with, MIN_EXACT_AGREEMENT};
use terrain_hsr::core::pipeline::{Algorithm, Phase2Mode};
use terrain_hsr::pram::with_threads;
use terrain_hsr::terrain::gen::{self, Workload};

fn workloads() -> Vec<Workload> {
    vec![
        Workload::Fbm { nx: 14, ny: 12, seed: 1 },
        Workload::Fbm { nx: 10, ny: 18, seed: 99 },
        Workload::Hills { nx: 12, ny: 12, hills: 6, seed: 2 },
        Workload::Ridges { nx: 16, ny: 10, ridges: 4, seed: 3 },
        Workload::Amphitheater { nx: 10, ny: 12, seed: 4 },
        Workload::Knob { nx: 12, ny: 12, theta: 0.8, seed: 5 },
        Workload::Comb { m: 6 },
        Workload::DelaunayFbm { n: 90, seed: 6 },
        Workload::Craters { nx: 14, ny: 14, craters: 4, seed: 7 },
        Workload::Canyon { nx: 12, ny: 14, seed: 8 },
        Workload::Terraces { nx: 16, ny: 10, steps: 4, seed: 9 },
    ]
}

#[test]
fn all_algorithms_agree_on_all_families() {
    for w in workloads() {
        let tin = w.build();
        let reference = run_with(&tin, Algorithm::Sequential);
        for alg in [
            Algorithm::Parallel(Phase2Mode::Persistent),
            Algorithm::Parallel(Phase2Mode::Rebuild),
            Algorithm::Naive,
        ] {
            let got = run_with(&tin, alg);
            assert_agreement(
                &format!("{}/{alg:?}", w.name()),
                &got.vis,
                &reference.vis,
                MIN_EXACT_AGREEMENT,
            );
            assert_eq!(
                got.vis.vertical_visible,
                reference.vis.vertical_visible,
                "{}: vertical edges differ under {alg:?}",
                w.name()
            );
        }
    }
}

/// A bit-exact fingerprint of a visibility map (`to_bits` so even
/// sign-of-zero or NaN differences would show up).
type MapFingerprint = (Vec<(u32, [u64; 4])>, Vec<(u32, u32, [u64; 2])>, Vec<u32>);

fn fingerprint(vis: &terrain_hsr::core::VisibilityMap) -> MapFingerprint {
    (
        vis.pieces
            .iter()
            .map(|p| {
                (
                    p.edge,
                    [
                        p.x0.to_bits(),
                        p.x1.to_bits(),
                        p.z0.to_bits(),
                        p.z1.to_bits(),
                    ],
                )
            })
            .collect(),
        vis.crossings
            .iter()
            .map(|c| (c.upper_left, c.upper_right, [c.x.to_bits(), c.z.to_bits()]))
            .collect(),
        vis.vertical_visible.clone(),
    )
}

/// Bit-identical output across runs and thread counts.
#[test]
fn parallel_is_deterministic_across_runs_and_threads() {
    let tin = gen::fbm(20, 20, 4, 10.0, 77).to_tin().unwrap();
    let reference = fingerprint(&run_default(&tin).vis);
    for threads in [1, 2, 4] {
        let got = with_threads(threads, || run_default(&tin));
        assert_eq!(fingerprint(&got.vis), reference, "nondeterminism at {threads} threads");
    }
}

/// And the serialized form is byte-identical too (round-trip stability of
/// the JSON encoding itself).
#[cfg(feature = "serde")]
#[test]
fn serialized_output_is_stable() {
    let tin = gen::fbm(20, 20, 4, 10.0, 77).to_tin().unwrap();
    let a = serde_json::to_string(&run_default(&tin).vis).unwrap();
    let b = serde_json::to_string(&run_default(&tin).vis).unwrap();
    assert_eq!(a, b);
}

#[test]
fn output_size_matches_across_modes_on_comb() {
    // On the adversary the output counts themselves should match (not just
    // interval measure).
    let tin = gen::quadratic_comb(10);
    let a = run_default(&tin);
    let b = run_with(&tin, Algorithm::Sequential);
    assert_eq!(a.vis.pieces.len(), b.vis.pieces.len());
    assert!(a.k as f64 > 0.8 * b.k as f64 && (a.k as f64) < 1.2 * b.k as f64);
}

#[test]
fn rotated_views_stay_consistent() {
    let base = gen::gaussian_hills(14, 14, 5, 21).to_tin().unwrap();
    for deg in [0.0f64, 17.0, 45.0, 90.0, 133.0] {
        let tin = base.rotated_about_z(deg.to_radians()).unwrap();
        let par = run_default(&tin);
        let seq = run_with(&tin, Algorithm::Sequential);
        assert_agreement(&format!("angle {deg}"), &par.vis, &seq.vis, MIN_EXACT_AGREEMENT);
    }
}
