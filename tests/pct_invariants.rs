//! Deep invariants of the Profile Computation Tree — the claims §2.1 of
//! the paper rests on, checked directly against the structures.

mod common;

use common::envelopes_agree;
use terrain_hsr::core::edges::{project_edges, SceneEdge};
use terrain_hsr::core::envelope::{Envelope, Piece};
use terrain_hsr::core::order::depth_order;
use terrain_hsr::core::pct::Pct;
use terrain_hsr::core::seq;
use terrain_hsr::terrain::gen::Workload;

fn ordered_edges(tin: &hsr_terrain::Tin) -> Vec<SceneEdge> {
    let edges = project_edges(tin);
    let order = depth_order(tin).unwrap();
    order.iter().map(|&e| edges[e as usize]).collect()
}

/// Phase 1's root envelope must equal the direct envelope of all edges —
/// and so must every subtree's, which we check by comparing the root
/// envelope of a PCT built on each half (the recursion invariant).
#[test]
fn phase1_envelopes_are_subtree_envelopes() {
    for w in [
        Workload::Fbm { nx: 10, ny: 10, seed: 3 },
        Workload::Craters { nx: 10, ny: 10, craters: 3, seed: 4 },
    ] {
        let tin = w.build();
        let edges = ordered_edges(&tin);
        let pieces: Vec<Piece> = edges.iter().filter_map(|e| e.piece()).collect();
        let direct = Envelope::from_pieces(&pieces);
        let pct = Pct::build(edges.clone());
        let span = direct.span().unwrap();
        envelopes_agree(pct.root_profile(), &direct, span);

        // Recursion invariant at the first split.
        let mid = edges.len() / 2;
        let left_pct = Pct::build(edges[..mid].to_vec());
        let left_pieces: Vec<Piece> = edges[..mid].iter().filter_map(|e| e.piece()).collect();
        let left_direct = Envelope::from_pieces(&left_pieces);
        if let Some(lspan) = left_direct.span() {
            envelopes_agree(left_pct.root_profile(), &left_direct, lspan);
        }
    }
}

/// Every internal crossing discovered in phase 2 must be a vertex of the
/// final image (the charging argument of the paper: intersections on
/// actual profiles are visible in the final image). We verify the
/// *count* consequence: internal crossings never exceed the final image's
/// vertex count by more than the coalescing slack.
#[test]
fn internal_crossings_are_bounded_by_output() {
    for w in [
        Workload::Fbm { nx: 12, ny: 12, seed: 5 },
        Workload::Comb { m: 8 },
        Workload::Knob { nx: 12, ny: 12, theta: 0.6, seed: 6 },
    ] {
        let tin = w.build();
        let pct = Pct::build(ordered_edges(&tin));
        let out = pct.phase2(false);
        let k = out.vis.output_size() as u64;
        assert!(
            out.internal_crossings <= 2 * k + 16,
            "{}: internal {} vs k {}",
            w.name(),
            out.internal_crossings,
            k
        );
    }
}

/// The sequential final profile and the PCT root profile describe the
/// same silhouette.
#[test]
fn silhouette_consistency_between_algorithms() {
    let tin = Workload::Terraces { nx: 14, ny: 12, steps: 4, seed: 7 }.build();
    let edges = ordered_edges(&tin);
    let pct = Pct::build(edges.clone());
    let seq_profile = seq::final_profile(&edges);
    let span = seq_profile.span().unwrap();
    envelopes_agree(pct.root_profile(), &seq_profile, span);
}

/// Visibility is monotone in occluder height: raising a front wall can
/// only shrink (never grow) the visible set behind it.
#[test]
fn visibility_monotone_in_occlusion() {
    use terrain_hsr::core::view::{evaluate, View};
    let mut widths = Vec::new();
    for theta in [0.0, 0.3, 0.6, 0.9] {
        let tin = Workload::Knob { nx: 14, ny: 14, theta, seed: 11 }.build();
        let res = evaluate(&tin, &View::orthographic(0.0)).unwrap();
        widths.push(res.vis.total_visible_width());
    }
    for w in widths.windows(2) {
        assert!(w[1] <= w[0] * 1.02, "visible width grew as the wall rose: {widths:?}");
    }
}
