//! Integration: serialization round-trips and failure injection.

mod common;

use common::run_default;
use terrain_hsr::core::order;
use terrain_hsr::geometry::Point3;
use terrain_hsr::terrain::gen;
use terrain_hsr::terrain::{GridTerrain, Tin, TinError};

#[cfg(feature = "serde")]
#[test]
fn grid_terrain_roundtrips_through_json() {
    let g = gen::fbm(9, 11, 3, 7.0, 31);
    let json = serde_json::to_string(&g).unwrap();
    let back: GridTerrain = serde_json::from_str(&json).unwrap();
    assert_eq!(g.heights, back.heights);
    assert_eq!((g.nx, g.ny), (back.nx, back.ny));
}

#[cfg(feature = "serde")]
#[test]
fn tin_roundtrips_through_json() {
    let tin = gen::quadratic_comb(5);
    let json = serde_json::to_string(&tin).unwrap();
    let back: Tin = serde_json::from_str(&json).unwrap();
    assert_eq!(tin.counts(), back.counts());
    // And the deserialized terrain computes the same image.
    let a = run_default(&tin);
    let b = run_default(&back);
    assert!(a.vis.agreement(&b.vis) > 0.9999);
}

#[cfg(feature = "serde")]
#[test]
fn visibility_map_roundtrips_through_json() {
    let tin = gen::fbm(10, 10, 3, 8.0, 3).to_tin().unwrap();
    let res = run_default(&tin);
    let json = serde_json::to_string(&res.vis).unwrap();
    let back: terrain_hsr::core::VisibilityMap = serde_json::from_str(&json).unwrap();
    assert_eq!(res.vis.pieces.len(), back.pieces.len());
    assert!((res.vis.agreement(&back) - 1.0).abs() < 1e-12);
}

#[cfg(feature = "serde")]
#[test]
fn timings_and_cost_report_roundtrip_through_json() {
    let tin = gen::fbm(9, 9, 3, 7.0, 5).to_tin().unwrap();
    let report = run_default(&tin);

    let json = serde_json::to_string(&report.timings).unwrap();
    let back: terrain_hsr::Timings = serde_json::from_str(&json).unwrap();
    assert_eq!(back, report.timings);

    let json = serde_json::to_string(&report.cost).unwrap();
    let back: terrain_hsr::pram::cost::CostReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back, report.cost);
}

#[cfg(feature = "serde")]
#[test]
fn full_report_roundtrips_through_json() {
    use terrain_hsr::geometry::Point3;
    use terrain_hsr::{SceneBuilder, View};

    let grid = gen::occlusion_knob(10, 10, 0.8, 10.0, 6);
    let scene = SceneBuilder::from_grid(&grid).build().unwrap();
    let (lo, hi) = scene.tin().ground_bounds();
    let observer = Point3::new(hi.x + 100.0, 0.5 * (lo.y + hi.y), 9.0);
    let targets = vec![Point3::new(lo.x + 0.5, 0.5 * (lo.y + hi.y), 50.0)];
    // A viewshed with stats exercises every Report field: verdicts,
    // layers (with nested merge counters), cost, timings.
    let report = scene
        .session()
        .eval(&View::viewshed(observer, targets).stats(true))
        .unwrap();
    assert!(!report.layers.is_empty());
    assert!(!report.verdicts.is_empty());

    let json = serde_json::to_string(&report).unwrap();
    let back: terrain_hsr::Report = serde_json::from_str(&json).unwrap();
    assert_eq!(back.n, report.n);
    assert_eq!(back.k, report.k);
    assert_eq!(back.cost, report.cost);
    assert_eq!(back.timings, report.timings);
    assert_eq!(back.verdicts, report.verdicts);
    assert_eq!(back.layers.len(), report.layers.len());
    assert_eq!(back.resolution, report.resolution);
    assert!((back.vis.agreement(&report.vis) - 1.0).abs() < 1e-12);
    // Bench JSON stability: re-serializing the round-tripped report
    // reproduces the bytes exactly.
    assert_eq!(serde_json::to_string(&back).unwrap(), json);
}

#[test]
fn tin_rejects_invalid_inputs() {
    // NaN coordinate.
    let err = Tin::new(vec![Point3::new(0.0, f64::NAN, 0.0)], vec![]).unwrap_err();
    assert!(matches!(err, TinError::NonFiniteVertex(0)));

    // Function-graph violation.
    let err =
        Tin::new(vec![Point3::new(1.0, 2.0, 0.0), Point3::new(1.0, 2.0, 5.0)], vec![]).unwrap_err();
    assert!(matches!(err, TinError::DuplicateGroundPosition(0, 1)));

    // Bad index and degenerate triangle.
    let verts = vec![
        Point3::new(0.0, 0.0, 0.0),
        Point3::new(1.0, 0.0, 0.0),
        Point3::new(2.0, 0.0, 0.0),
    ];
    assert!(matches!(
        Tin::new(verts.clone(), vec![[0, 1, 9]]).unwrap_err(),
        TinError::BadIndex(0)
    ));
    assert!(matches!(
        Tin::new(verts, vec![[0, 1, 2]]).unwrap_err(),
        TinError::DegenerateTriangle(0)
    ));
}

#[test]
fn cyclic_occlusion_is_detected() {
    // Three long thin triangles arranged in a rock-paper-scissors occlusion
    // cycle. Their projections overlap pairwise (not a function graph over
    // the overlaps — vertex positions are still distinct, so TIN
    // construction accepts it), and the occlusion order has a cycle the
    // pairwise order must reject.
    let verts = vec![
        // Triangle A: long along y at x≈0, slightly tilted.
        Point3::new(0.0, 0.0, 0.0),
        Point3::new(0.4, 8.0, 0.0),
        Point3::new(1.0, 4.0, 1.0),
        // Triangle B: long along y at x≈4, crossing over A's far end.
        Point3::new(4.0, 7.9, 0.0),
        Point3::new(-3.0, 8.2, 0.0),
        Point3::new(0.5, 12.0, 1.0),
        // Triangle C: crossing over B's far end and under A's near end.
        Point3::new(-2.6, 9.0, 0.0),
        Point3::new(-2.2, -1.0, 0.0),
        Point3::new(-6.0, 4.0, 1.0),
    ];
    let tris = vec![[0u32, 1, 2], [3, 4, 5], [6, 7, 8]];
    let tin = Tin::new(verts, tris).expect("vertices are distinct, TIN accepts");
    assert_eq!(
        order::depth_order_pairwise(&tin).unwrap_err(),
        order::CyclicOcclusion,
        "crossing projections must be rejected as unorderable"
    );
}

#[test]
fn empty_and_tiny_scenes() {
    // A single triangle whose back edge towers over the front vertex:
    // all three edges visible.
    let tin = Tin::new(
        vec![
            Point3::new(0.0, 0.0, 5.0),
            Point3::new(1.0, 1.0, 0.0),
            Point3::new(0.0, 2.0, 5.0),
        ],
        vec![[0, 1, 2]],
    )
    .unwrap();
    let res = run_default(&tin);
    assert_eq!(res.n, 3);
    assert_eq!(res.vis.pieces.len() + res.vis.vertical_visible.len(), 3);

    // And one where the face hides its own back edge: only the two front
    // edges survive.
    let tin = Tin::new(
        vec![
            Point3::new(0.0, 0.0, 1.0),
            Point3::new(1.0, 1.0, 5.0),
            Point3::new(0.0, 2.0, 1.0),
        ],
        vec![[0, 1, 2]],
    )
    .unwrap();
    let res = run_default(&tin);
    assert_eq!(res.vis.pieces.len(), 2);
}
