//! Cross-validation of the two ACG realizations (DESIGN.md §4.3): the
//! static hull-tree (`cg::HullTree`, the faithful Chazelle–Guibas
//! structure) and the walking scan (`Envelope::visible_parts`) must report
//! exactly the same crossings for the same segment against the same
//! profile — and the persistent merge must find the same events again.

mod common;

use common::pseudo_pieces;
use terrain_hsr::core::cg::HullTree;
use terrain_hsr::core::envelope::{Envelope, Piece};
use terrain_hsr::core::ptenv::PEnvelope;

#[test]
fn hull_tree_and_walk_agree_on_crossings() {
    for seed in 1u64..8 {
        let env = Envelope::from_pieces(&pseudo_pieces(120, seed));
        let tree = HullTree::build(&env).unwrap();
        let mut state = seed ^ 0xbeef;
        let mut next = move || common::lcg_unit(&mut state);
        for q in 0..50u32 {
            let x0 = next() * 110.0 - 5.0;
            let w = next() * 60.0 + 1.0;
            let s = Piece { x0, x1: x0 + w, z0: next() * 25.0, z1: next() * 25.0, edge: 5000 + q };
            let tree_events = tree.all_crossings(&s);
            let (_, walk_events) = env.visible_parts(&s);
            assert_eq!(
                tree_events.len(),
                walk_events.len(),
                "seed {seed} query {q}: hull tree found {} crossings, walk found {}",
                tree_events.len(),
                walk_events.len()
            );
            for (a, b) in tree_events.iter().zip(&walk_events) {
                assert!((a.x - b.x).abs() < 1e-9, "crossing abscissa mismatch: {} vs {}", a.x, b.x);
                assert_eq!(a.upper_left, b.upper_left);
                assert_eq!(a.upper_right, b.upper_right);
            }
        }
    }
}

#[test]
fn persistent_merge_finds_the_same_events_as_hull_tree() {
    for seed in 11u64..15 {
        let base = Envelope::from_pieces(&pseudo_pieces(100, seed));
        let tree = HullTree::build(&base).unwrap();
        let sigma: Vec<Piece> = pseudo_pieces(10, seed ^ 0x77)
            .into_iter()
            .map(|mut p| {
                p.edge += 9_000;
                p
            })
            .collect();
        let sigma_env = Envelope::from_pieces(&sigma);

        // Hull-tree reference: crossings of each sigma-envelope piece.
        let mut expect = 0usize;
        for p in sigma_env.iter() {
            expect += tree.all_crossings(&p).len();
        }
        // Persistent merge.
        let out = PEnvelope::from_envelope(&base).merge(&sigma_env.to_pieces());
        assert_eq!(
            out.crossings.len(),
            expect,
            "seed {seed}: persistent merge found {} crossings, hull tree {}",
            out.crossings.len(),
            expect
        );
    }
}

#[test]
fn first_crossing_is_leftmost_of_all_crossings() {
    let env = Envelope::from_pieces(&pseudo_pieces(200, 42));
    let tree = HullTree::build(&env).unwrap();
    let mut state = 7u64;
    let mut next = move || common::lcg_unit(&mut state);
    let mut checked = 0;
    for q in 0..100u32 {
        let x0 = next() * 100.0;
        let s = Piece {
            x0,
            x1: x0 + next() * 50.0 + 1.0,
            z0: next() * 25.0,
            z1: next() * 25.0,
            edge: 7000 + q,
        };
        let all = tree.all_crossings(&s);
        let first = tree.first_crossing(&s, f64::NEG_INFINITY);
        match (all.first(), first) {
            (None, None) => {}
            (Some(a), Some(f)) => {
                assert!((a.x - f.x).abs() < 1e-12, "first {} vs leftmost {}", f.x, a.x);
                checked += 1;
            }
            (a, f) => panic!("existence disagreement: all={a:?} first={f:?}"),
        }
    }
    assert!(checked > 20, "too few crossing queries exercised: {checked}");
}
