//! Shared fixtures for the integration-test suite.
//!
//! Every integration test binary pulls this in with `mod common;` — each
//! binary uses a subset of the helpers, hence the file-wide
//! `allow(dead_code)`. New tests should reuse these fixtures instead of
//! re-rolling terrain matrices, RNGs, or tolerance thresholds:
//!
//! * [`conformance_matrix`] — the deterministic terrain-kind × size ×
//!   seed scenario matrix used by the cross-algorithm conformance suite.
//! * [`run_with`] / [`run_default`] — one-call pipeline invocations.
//! * [`assert_agreement`] — visibility-map agreement with the canonical
//!   threshold constants.
//! * [`pseudo_pieces`] / [`lcg_unit`] — seeded deterministic generators
//!   for envelope pieces and unit floats (no external RNG needed).
//! * [`envelopes_agree`] — tolerance-based envelope equality over a span.

// Each test binary uses a subset of the fixtures, and `pub` here is
// test-binary-internal by construction.
#![allow(dead_code, unreachable_pub)]

use terrain_hsr::core::envelope::{Envelope, Piece};
use terrain_hsr::core::pipeline::{Algorithm, Phase2Mode};
use terrain_hsr::core::view::{evaluate, Report, View};
use terrain_hsr::core::VisibilityMap;
use terrain_hsr::terrain::{gen, Tin};

/// Minimum pairwise agreement between the *exact* object-space
/// algorithms (parallel, sequential, naive). These compute the same
/// real-valued visibility map up to floating-point coalescing, so the
/// bar is effectively "identical".
pub const MIN_EXACT_AGREEMENT: f64 = 0.9999;

/// Floor for the exact analytic point-sampling oracle
/// ([`oracle_agreement`]): per-face ray walking with no discretisation.
/// Slightly below 1.0 only because samples land near visibility
/// transitions where interval coalescing differs legitimately.
pub const MIN_ORACLE_AGREEMENT: f64 = 0.995;

/// Statistical floor for the rasterized z-buffer cross-check. The
/// z-buffer quantises to pixels and systematically errs towards
/// "visible" on grazing occluders (the image-space weakness the paper
/// cites), so on small terrains its agreement with the exact maps is
/// noticeably below 1 — observed 0.69–0.90 over the conformance matrix.
/// It still catches gross breakage (inverted or empty maps score ≈0.5
/// or less); exactness is the analytic oracle's job.
pub const MIN_ZBUFFER_AGREEMENT: f64 = 0.65;

/// A named deterministic test terrain.
pub struct Scenario {
    /// Human-readable id: `kind/<params>/seed<k>`.
    pub name: String,
    /// The triangulated terrain.
    pub tin: Tin,
}

/// The conformance matrix: three terrain kinds × three (size, seed)
/// points each — nine deterministic scenarios covering a fractal
/// workload (fBm), a smooth gridded workload (Gaussian hills), and the
/// paper's quadratic-comb worst case.
pub fn conformance_matrix() -> Vec<Scenario> {
    let mut out = Vec::new();
    for (nx, ny, seed) in [(10usize, 10usize, 1u64), (14, 12, 42), (12, 16, 1337)] {
        out.push(Scenario {
            name: format!("fbm/{nx}x{ny}/seed{seed}"),
            tin: gen::fbm(nx, ny, 3, 9.0, seed).to_tin().unwrap(),
        });
    }
    for (nx, ny, hills, seed) in [
        (10usize, 12usize, 4usize, 7u64),
        (14, 10, 6, 21),
        (12, 12, 3, 99),
    ] {
        out.push(Scenario {
            name: format!("grid-hills/{nx}x{ny}/h{hills}/seed{seed}"),
            tin: gen::gaussian_hills(nx, ny, hills, seed).to_tin().unwrap(),
        });
    }
    for m in [4usize, 7, 10] {
        out.push(Scenario { name: format!("comb/m{m}"), tin: gen::quadratic_comb(m) });
    }
    out
}

/// Every algorithm configuration the pipeline supports, with labels.
pub fn all_algorithms() -> [(&'static str, Algorithm); 4] {
    [
        ("parallel-persistent", Algorithm::Parallel(Phase2Mode::Persistent)),
        ("parallel-rebuild", Algorithm::Parallel(Phase2Mode::Rebuild)),
        ("sequential", Algorithm::Sequential),
        ("naive", Algorithm::Naive),
    ]
}

/// Runs the pipeline with the given algorithm and default settings
/// (through the view API — the canonical orthographic view at `x = +∞`).
pub fn run_with(tin: &Tin, algorithm: Algorithm) -> Report {
    evaluate(tin, &View::orthographic(0.0).algorithm(algorithm))
        .expect("conformance terrains are acyclic")
}

/// Runs the pipeline with the default (parallel) configuration.
pub fn run_default(tin: &Tin) -> Report {
    evaluate(tin, &View::orthographic(0.0)).expect("conformance terrains are acyclic")
}

/// Asserts that two visibility maps agree to at least `min`.
pub fn assert_agreement(label: &str, got: &VisibilityMap, want: &VisibilityMap, min: f64) {
    let ag = got.agreement(want);
    assert!(ag >= min, "{label}: visibility agreement {ag} < {min}");
}

/// Advances a splitmix-style LCG and returns a unit float in `[0, 1)`.
/// The same stream the seed benches use, so fixtures are reproducible
/// without any RNG dependency.
pub fn lcg_unit(state: &mut u64) -> f64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    (*state >> 33) as f64 / (1u64 << 31) as f64
}

/// Deterministic envelope pieces with unique edge ids — shared by the
/// ACG cross-validation tests and future envelope tests.
pub fn pseudo_pieces(n: usize, seed: u64) -> Vec<Piece> {
    let mut state = seed;
    (0..n as u32)
        .map(|e| {
            let x0 = lcg_unit(&mut state) * 100.0;
            let w = lcg_unit(&mut state) * 15.0 + 0.5;
            Piece {
                x0,
                x1: x0 + w,
                z0: lcg_unit(&mut state) * 25.0,
                z1: lcg_unit(&mut state) * 25.0,
                edge: e,
            }
        })
        .collect()
}

/// Fraction of edge samples where a visibility map agrees with the exact
/// analytic oracle ([`terrain_hsr::core::oracle::occluded`]): for each
/// non-vertical edge, `samples_per_edge` points are classified by the map
/// and by brute-force ray walking. Two sample classes are skipped as
/// convention-dependent rather than counted either way:
///
/// * samples numerically on a visibility transition of the map
///   (interval coalescing there is representation-dependent), and
/// * *grazing ties*, where the view ray runs exactly along coplanar
///   surface (the adversarial comb's flat base plane is full of these) —
///   detected by perturbing the sample by ±ε in z and seeing the
///   classification flip.
pub fn oracle_agreement(tin: &Tin, vis: &VisibilityMap, samples_per_edge: usize) -> f64 {
    use terrain_hsr::core::oracle::occluded;
    use terrain_hsr::geometry::Point3;

    let intervals = vis.per_edge_intervals();
    let empty = Vec::new();
    let (lo, hi) = tin.ground_bounds();
    let extent = (hi.y - lo.y).max(1e-9);
    let margin = 1e-6 * extent;
    let (zlo, zhi) = tin.height_range();
    let eps_z = 1e-7 * (zhi - zlo).max(1e-9);
    let (mut agree, mut total) = (0usize, 0usize);
    for (e, &[a, b]) in tin.edges().iter().enumerate() {
        let (pa, pb) = (tin.vertices()[a as usize], tin.vertices()[b as usize]);
        if (pb.y - pa.y).abs() < 1e-9 {
            continue; // vertical projection: point visibility, skip
        }
        let iv = intervals.get(&(e as u32)).unwrap_or(&empty);
        for s in 0..samples_per_edge {
            let t = (s as f64 + 0.5) / samples_per_edge as f64;
            let y = pa.y + t * (pb.y - pa.y);
            if iv
                .iter()
                .any(|&(u, v)| (y - u).abs() < margin || (y - v).abs() < margin)
            {
                continue;
            }
            let x = pa.x + t * (pb.x - pa.x);
            let z = pa.z + t * (pb.z - pa.z);
            let visible_above = !occluded(tin, Point3::new(x, y, z + eps_z), 1e-9 * extent);
            let visible_below = !occluded(tin, Point3::new(x, y, z - eps_z), 1e-9 * extent);
            if visible_above != visible_below {
                continue; // grazing tie: visibility is convention-dependent
            }
            let from_map = iv.iter().any(|&(u, v)| u <= y && y <= v);
            total += 1;
            if from_map == visible_above {
                agree += 1;
            }
        }
    }
    agree as f64 / total.max(1) as f64
}

/// Samples both envelopes across `span` and asserts pointwise equality
/// within `1e-9` (and matching gaps).
pub fn envelopes_agree(a: &Envelope, b: &Envelope, span: (f64, f64)) {
    for s in 0..800 {
        let x = span.0 + (span.1 - span.0) * (s as f64 + 0.3) / 800.0;
        match (a.eval(x), b.eval(x)) {
            (None, None) => {}
            (Some(p), Some(q)) => {
                assert!((p - q).abs() < 1e-9, "envelope mismatch at {x}: {p} vs {q}")
            }
            (p, q) => panic!("gap mismatch at {x}: {p:?} vs {q:?}"),
        }
    }
}
