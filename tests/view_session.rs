//! Integration: the viewpoint-centric Scene/View/Session API.
//!
//! The headline acceptance check lives here: a batch of eight
//! rotated/perspective views of one terrain evaluated through a single
//! `Session` must produce results bit-identical to eight independent
//! `Scene` runs — while building the shared terrain state (TIN
//! validation + adjacency) exactly once, asserted through the cost
//! model's `TinBuild` counter.

use terrain_hsr::geometry::Point3;
use terrain_hsr::pram::cost::{Category, CostCollector};
use terrain_hsr::terrain::gen;
use terrain_hsr::{Report, SceneBuilder, Verdict, View};

type Fingerprint = (Vec<(u32, [u64; 4])>, Vec<(u32, u32, [u64; 2])>, Vec<u32>);

fn fingerprint(r: &Report) -> Fingerprint {
    (
        r.vis
            .pieces
            .iter()
            .map(|p| {
                (
                    p.edge,
                    [
                        p.x0.to_bits(),
                        p.x1.to_bits(),
                        p.z0.to_bits(),
                        p.z1.to_bits(),
                    ],
                )
            })
            .collect(),
        r.vis
            .crossings
            .iter()
            .map(|c| (c.upper_left, c.upper_right, [c.x.to_bits(), c.z.to_bits()]))
            .collect(),
        r.vis.vertical_visible.clone(),
    )
}

fn eight_views(grid: &terrain_hsr::terrain::GridTerrain) -> Vec<View> {
    let tin = grid.to_tin().unwrap();
    let (lo, hi) = tin.ground_bounds();
    let mid_y = 0.5 * (lo.y + hi.y);
    let mut views: Vec<View> = (0..6)
        .map(|i| View::orthographic(0.35 * i as f64))
        .collect();
    for dz in [12.0, 25.0] {
        let eye = Point3::new(hi.x + 30.0, mid_y, dz);
        let look = Point3::new(eye.x - 1.0, eye.y, 0.0);
        views.push(View::perspective(eye, look, std::f64::consts::PI, 256));
    }
    views
}

#[test]
fn batch_of_eight_matches_independent_scenes_and_builds_state_once() {
    let grid = gen::ridge_field(16, 14, 4, 10.0, 23);
    let views = eight_views(&grid);
    assert_eq!(views.len(), 8);

    // Eight independent Scene runs: a fresh Scene per view.
    let independent: Vec<Report> = views
        .iter()
        .map(|v| {
            let scene = SceneBuilder::from_grid(&grid).build().unwrap();
            scene.session().eval(v).unwrap()
        })
        .collect();

    // One Scene, one batch — the shared state is built exactly once.
    // The bracketing collector nests over the per-view collectors the
    // batch installs, so it sees any TIN build wherever it happens —
    // including inside a worker-thread evaluation.
    let bracket = CostCollector::new();
    let guard = bracket.install();
    let scene = SceneBuilder::from_grid(&grid).build().unwrap();
    let batch = scene.session().eval_batch(&views);
    drop(guard);
    let builds = bracket.report().work_of(Category::TinBuild);
    assert_eq!(
        builds, 1,
        "a batch over one Session must build the shared terrain state exactly once"
    );

    assert_eq!(batch.len(), independent.len());
    for (i, (solo, got)) in independent.iter().zip(&batch).enumerate() {
        let got = got.as_ref().unwrap();
        assert_eq!(fingerprint(got), fingerprint(solo), "view {i} diverged");
        assert_eq!(got.n, solo.n, "view {i}: n");
        assert_eq!(got.k, solo.k, "view {i}: k");
    }

    // The independent runs, by contrast, paid one build per view.
    let bracket = CostCollector::new();
    let guard = bracket.install();
    for v in &views {
        let scene = SceneBuilder::from_grid(&grid).build().unwrap();
        let _ = scene.session().eval(v).unwrap();
    }
    drop(guard);
    let builds = bracket.report().work_of(Category::TinBuild);
    assert_eq!(builds, 8, "independent scenes rebuild the state per view");
}

#[test]
fn rotated_views_need_no_rebuild() {
    let scene = SceneBuilder::from_grid(&gen::gaussian_hills(12, 12, 4, 5))
        .build()
        .unwrap();
    let session = scene.session();
    let bracket = CostCollector::new();
    let guard = bracket.install();
    for i in 0..4 {
        let r = session.eval(&View::orthographic(0.4 * i as f64)).unwrap();
        assert!(r.k > 0);
        assert_eq!(r.cost.work_of(Category::TinBuild), 0, "view {i} rebuilt terrain state");
    }
    drop(guard);
    let builds = bracket.report().work_of(Category::TinBuild);
    assert_eq!(builds, 0, "rotated projections must reuse the shared adjacency");
}

#[test]
fn viewshed_through_session_matches_direct_classification() {
    let grid = gen::occlusion_knob(12, 12, 0.9, 10.0, 4);
    let scene = SceneBuilder::from_grid(&grid).build().unwrap();
    let tin = scene.tin();
    let (lo, hi) = tin.ground_bounds();
    let observer = Point3::new(hi.x + 200.0, 0.5 * (lo.y + hi.y), 12.0);
    let targets = vec![
        Point3::new(0.5 * (lo.x + hi.x), 0.5 * (lo.y + hi.y), 100.0),
        Point3::new(lo.x + 0.1, 0.5 * (lo.y + hi.y), 0.05),
    ];
    let report = scene
        .session()
        .eval(&View::viewshed(observer, targets.clone()))
        .unwrap();
    assert_eq!(report.verdicts.len(), targets.len());
    assert_eq!(report.verdicts[0], Verdict::Visible, "a point far above everything");
    // The full visibility map of the observer's view rides along.
    assert!(report.k > 0);
}

#[test]
fn batch_propagates_per_view_errors_without_poisoning_the_rest() {
    let scene = SceneBuilder::from_grid(&gen::fbm(8, 8, 3, 6.0, 2))
        .build()
        .unwrap();
    let views = vec![
        View::orthographic(0.0),
        View::orthographic(f64::NAN), // invalid
        View::orthographic(0.2),
    ];
    let results = scene.session().eval_batch(&views);
    assert!(results[0].is_ok());
    assert!(matches!(
        results[1].as_ref().unwrap_err(),
        terrain_hsr::HsrError::InvalidView(_)
    ));
    assert!(results[2].is_ok());
}
