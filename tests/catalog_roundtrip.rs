//! ISSUE 7 facade acceptance: `ServeBuilder::catalog` wires the
//! persistent terrain catalog through the high-level API — upload over
//! the wire, restart on the same directory, query bit-identically.

#![cfg(feature = "serve")]

use terrain_hsr::serve::{Client, ClientError, ErrorKind, ServeBuilder, TerrainFormat};
use terrain_hsr::terrain::{gen, io};
use terrain_hsr::View;

#[test]
fn facade_catalog_survives_restart_and_reports_stats() {
    let dir = std::env::temp_dir().join(format!("thsr-catalog-facade-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let payload = io::grid_to_bytes(&gen::diamond_square(5, 0.6, 9.0, 123));
    let view = View::orthographic(0.35);

    let first = {
        let server = ServeBuilder::new()
            .catalog(&dir)
            .expect("catalog dir")
            .workers(2)
            .bind("127.0.0.1:0")
            .expect("bind");
        let mut client = Client::connect(server.local_addr()).expect("connect");
        let ack = client
            .upload_terrain("peaks", TerrainFormat::GridBin, "facade-test", &payload)
            .expect("upload");
        assert_eq!(ack.bytes, payload.len() as u64);
        let report = client.eval("peaks", &view).expect("eval");
        server.shutdown();
        report
    };

    let server = ServeBuilder::new()
        .catalog(&dir)
        .expect("catalog reopen")
        .workers(2)
        .bind("127.0.0.1:0")
        .expect("rebind");
    let mut client = Client::connect(server.local_addr()).expect("reconnect");

    let info = client.terrain_info("peaks").expect("replayed entry");
    assert_eq!(info.uploader, "facade-test");
    let report = client.eval("peaks", &view).expect("eval after restart");
    let pieces = |r: &terrain_hsr::core::view::Report| {
        r.vis
            .pieces
            .iter()
            .map(|p| (p.edge, p.x0.to_bits(), p.x1.to_bits()))
            .collect::<Vec<_>>()
    };
    assert_eq!(pieces(&report), pieces(&first), "catalog terrain diverged across restart");
    assert_eq!((report.n, report.k), (first.n, first.k));

    // The wire stats snapshot covers all three counter families.
    let stats = client.stats().expect("stats");
    assert!(stats.serve.completed >= 1);
    assert_eq!(stats.prepared.prepares, 1);
    assert_eq!(stats.catalog.expect("catalog configured").entries, 1);

    // Unknown names stay typed errors through the facade re-exports.
    match client.eval("nope", &view) {
        Err(ClientError::Server(e)) => assert_eq!(e.kind, ErrorKind::UnknownTerrain),
        other => panic!("expected UnknownTerrain, got {other:?}"),
    }

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
