//! Property-based integration tests: randomized terrains and segment sets
//! must uphold the core invariants of the system.

mod common;

use common::MIN_EXACT_AGREEMENT;
use proptest::prelude::*;
use terrain_hsr::core::envelope::{Envelope, Piece};
use terrain_hsr::core::pipeline::Algorithm;
use terrain_hsr::core::ptenv::PEnvelope;
use terrain_hsr::core::view::{evaluate, View};
use terrain_hsr::geometry::{orient2d, Point2};
use terrain_hsr::terrain::gen;

/// Random pieces with **unique** edge ids (the `Piece::edge` contract:
/// one id per supporting line).
fn arb_pieces(max: usize) -> impl Strategy<Value = Vec<Piece>> {
    prop::collection::vec((0.0f64..100.0, 0.1f64..30.0, -20.0f64..20.0, -20.0f64..20.0), 1..max)
        .prop_map(|raw| {
            raw.into_iter()
                .enumerate()
                .map(|(i, (x0, w, z0, z1))| Piece { x0, x1: x0 + w, z0, z1, edge: i as u32 })
                .collect()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn envelope_is_pointwise_max(pieces in arb_pieces(80)) {
        let env = Envelope::from_pieces(&pieces);
        env.check_invariants().unwrap();
        for i in 0..100 {
            let x = i as f64 * 1.35;
            let brute = pieces
                .iter()
                .filter(|p| p.x0 <= x && x <= p.x1)
                .map(|p| p.eval(x))
                .fold(f64::NEG_INFINITY, f64::max);
            let got = env.eval(x).unwrap_or(f64::NEG_INFINITY);
            prop_assert!(
                (brute - got).abs() < 1e-6 || (brute.is_infinite() && got.is_infinite()),
                "x={x}: brute={brute} env={got}"
            );
        }
    }

    #[test]
    fn persistent_merge_equals_static_merge(
        a in arb_pieces(50),
        b in arb_pieces(50),
    ) {
        // Distinct id spaces for the two sets.
        let b: Vec<Piece> = b
            .into_iter()
            .map(|mut p| {
                p.edge += 10_000;
                p
            })
            .collect();
        let ea = Envelope::from_pieces(&a);
        let eb = Envelope::from_pieces(&b);
        let expect = Envelope::merge(&ea, &eb);
        let got = PEnvelope::from_envelope(&ea).merge(&eb.to_pieces()).env.to_envelope();
        for i in 0..120 {
            let x = i as f64 * 1.1;
            let (ve, vg) = (expect.eval(x), got.eval(x));
            match (ve, vg) {
                (None, None) => {}
                (Some(p), Some(q)) => prop_assert!((p - q).abs() < 1e-6, "x={x}: {p} vs {q}"),
                _ => prop_assert!(false, "gap mismatch at {x}: {ve:?} vs {vg:?}"),
            }
        }
    }

    #[test]
    fn orientation_is_antisymmetric_and_cyclic(
        ax in -1e3f64..1e3, ay in -1e3f64..1e3,
        bx in -1e3f64..1e3, by in -1e3f64..1e3,
        cx in -1e3f64..1e3, cy in -1e3f64..1e3,
    ) {
        let (a, b, c) = (Point2::new(ax, ay), Point2::new(bx, by), Point2::new(cx, cy));
        let o = orient2d(a, b, c);
        prop_assert_eq!(o, orient2d(b, c, a));
        prop_assert_eq!(o, orient2d(c, a, b));
        prop_assert_eq!(o, orient2d(a, c, b).reversed());
    }

    #[test]
    fn parallel_matches_sequential_on_random_terrains(
        seed in 0u64..5000,
        nx in 6usize..14,
        ny in 6usize..14,
        amp in 2.0f64..20.0,
    ) {
        let tin = gen::fbm(nx, ny, 3, amp, seed).to_tin().unwrap();
        let par = evaluate(&tin, &View::orthographic(0.0)).unwrap();
        let seq = evaluate(&tin, &View::orthographic(0.0).algorithm(Algorithm::Sequential))
            .unwrap();
        let ag = par.vis.agreement(&seq.vis);
        prop_assert!(ag > MIN_EXACT_AGREEMENT, "agreement {ag}");
    }

    #[test]
    fn visible_width_never_exceeds_projected_width(
        seed in 0u64..5000,
        theta in 0.0f64..1.0,
    ) {
        let tin = gen::occlusion_knob(10, 10, theta, 10.0, seed).to_tin().unwrap();
        let res = evaluate(&tin, &View::orthographic(0.0)).unwrap();
        let total: f64 = tin
            .edges()
            .iter()
            .map(|&[a, b]| {
                (tin.vertices()[b as usize].y - tin.vertices()[a as usize].y).abs()
            })
            .sum();
        prop_assert!(res.vis.total_visible_width() <= total * (1.0 + 1e-9));
        // The silhouette (root profile) is always part of the image: k > 0.
        prop_assert!(res.k > 0);
    }
}
