//! Cross-algorithm conformance suite.
//!
//! Validation follows the oracle-style cross-checking used in the HSR
//! literature (image-space/object-space hybrids, cross-comparison across
//! independent implementations): every algorithm configuration the
//! pipeline supports — the parallel Gupta–Sen pipeline in both phase-2
//! modes, the sequential Reif–Sen style baseline, and the naive `O(n²)`
//! arbiter — must produce the same visibility map over a deterministic
//! matrix of terrain kinds × sizes × seeds, and the maps must
//! statistically match an independent image-space z-buffer rendering.

mod common;

use common::{
    all_algorithms, assert_agreement, conformance_matrix, oracle_agreement, run_with,
    MIN_EXACT_AGREEMENT, MIN_ORACLE_AGREEMENT, MIN_ZBUFFER_AGREEMENT,
};
use terrain_hsr::core::pipeline::{Algorithm, Phase2Mode};
use terrain_hsr::core::zbuffer::agreement_with_zbuffer;

/// Every exact algorithm agrees with the sequential baseline on every
/// scenario of the matrix (9 scenarios: 3 terrain kinds × 3 size/seed
/// points).
#[test]
fn exact_algorithms_agree_across_matrix() {
    let matrix = conformance_matrix();
    assert!(matrix.len() >= 9, "conformance matrix shrank: {}", matrix.len());
    for sc in &matrix {
        let reference = run_with(&sc.tin, Algorithm::Sequential);
        for (alg_name, alg) in all_algorithms() {
            if matches!(alg, Algorithm::Sequential) {
                continue;
            }
            let got = run_with(&sc.tin, alg);
            assert_agreement(
                &format!("{}/{alg_name}", sc.name),
                &got.vis,
                &reference.vis,
                MIN_EXACT_AGREEMENT,
            );
            assert_eq!(
                got.vis.vertical_visible, reference.vis.vertical_visible,
                "{}/{alg_name}: vertical-edge visibility differs",
                sc.name
            );
        }
    }
}

/// The parallel pipeline's map matches the exact analytic oracle (per
/// point: brute-force ray walking over every face) on every scenario —
/// the object-space ground truth, independent of every pipeline stage.
#[test]
fn exact_oracle_confirms_parallel_maps() {
    for sc in conformance_matrix() {
        let res = run_with(&sc.tin, Algorithm::Parallel(Phase2Mode::Persistent));
        let ag = oracle_agreement(&sc.tin, &res.vis, 14);
        assert!(
            ag >= MIN_ORACLE_AGREEMENT,
            "{}: exact-oracle agreement {ag} < {MIN_ORACLE_AGREEMENT}",
            sc.name
        );
    }
}

/// The object-space maps statistically match an independent image-space
/// z-buffer rendering on every scenario. The z-buffer quantises to
/// pixels and errs towards "visible" on grazing occluders, so this is a
/// coarse cross-check against gross breakage; exactness is asserted by
/// the analytic-oracle and naive-comparison tests above.
#[test]
fn zbuffer_oracle_statistically_confirms_maps() {
    for sc in conformance_matrix() {
        let res = run_with(&sc.tin, Algorithm::Parallel(Phase2Mode::Persistent));
        let ag = agreement_with_zbuffer(&sc.tin, &res.vis, 384, 12);
        assert!(
            ag >= MIN_ZBUFFER_AGREEMENT,
            "{}: z-buffer agreement {ag} < {MIN_ZBUFFER_AGREEMENT}",
            sc.name
        );
    }
}

/// Output size `k` is consistent across algorithms: interval counts match
/// between the parallel modes and stay within a narrow band of the
/// sequential baseline (different coalescing, same image).
#[test]
fn output_size_consistent_across_algorithms() {
    for sc in conformance_matrix() {
        let seq = run_with(&sc.tin, Algorithm::Sequential);
        let persistent = run_with(&sc.tin, Algorithm::Parallel(Phase2Mode::Persistent));
        assert!(
            (persistent.k as f64) > 0.8 * seq.k as f64
                && (persistent.k as f64) < 1.2 * seq.k as f64,
            "{}: k drifted, parallel {} vs sequential {}",
            sc.name,
            persistent.k,
            seq.k
        );
        assert!(persistent.k > 0, "{}: empty image", sc.name);
    }
}
