//! ISSUE 5 acceptance: server responses are **bit-identical** — the
//! visibility map, the verdicts, and `n`/`k` — to calling
//! `Scene::session()` (or `TiledScene::eval`) directly, under ≥ 8
//! concurrent clients, on both the monolithic and the tiled backend.
//!
//! The wire format makes this possible: the JSON float codec emits the
//! shortest round-trippable decimal, so every finite `f64` in a report
//! survives the TCP hop with its exact bits.

#![cfg(feature = "serve")]

use std::sync::Arc;

use terrain_hsr::core::view::Report;
use terrain_hsr::geometry::Point3;
use terrain_hsr::serve::ServeBuilder;
use terrain_hsr::terrain::gen;
use terrain_hsr::tiled::{TileStore, TilingConfig};
use terrain_hsr::{SceneBuilder, TiledScene, TiledSceneConfig, View};

/// Every bit of a report that evaluation determines (timings are
/// wall-clock and cache counters are load-dependent, so those are out).
fn bits(r: &Report) -> impl PartialEq + std::fmt::Debug {
    (
        r.vis
            .pieces
            .iter()
            .map(|p| (p.edge, p.x0.to_bits(), p.x1.to_bits(), p.z0.to_bits(), p.z1.to_bits()))
            .collect::<Vec<_>>(),
        r.vis
            .crossings
            .iter()
            .map(|c| (c.x.to_bits(), c.z.to_bits(), c.upper_left, c.upper_right))
            .collect::<Vec<_>>(),
        r.vis.vertical_visible.clone(),
        (r.n, r.k, r.vis.n_edges),
        r.verdicts.clone(),
        r.cost.work.clone(),
        r.resolution,
    )
}

fn fractional_targets(grid: &hsr_terrain::GridTerrain) -> Vec<Point3> {
    let mut targets = Vec::new();
    for i in (1..grid.nx - 1).step_by(4) {
        for j in (1..grid.ny - 1).step_by(4) {
            let (x, y) = (i as f64 + 0.37, j as f64 + 0.53);
            targets.push(Point3::new(x, y, grid.sample(x, y) + 1.7));
        }
    }
    targets
}

/// ISSUE 6 acceptance: the event-driven connection layer multiplexes
/// hundreds of idle connections on a fixed-size thread set without
/// perturbing active clients — their reports stay bit-identical to solo
/// evaluation while ≥ 512 idle connections are held open.
#[test]
fn active_clients_stay_bit_identical_under_hundreds_of_idle_connections() {
    let grid = gen::diamond_square(5, 0.6, 9.0, 77); // 33×33
    let scene = SceneBuilder::from_grid(&grid).build().unwrap();
    let (lo, hi) = scene.tin().ground_bounds();
    let mid_y = 0.5 * (lo.y + hi.y);
    let observer = Point3::new(hi.x + 60.0, mid_y, 14.0);
    let targets = fractional_targets(&grid);

    let views = vec![
        View::orthographic(0.0),
        View::orthographic(0.45),
        View::viewshed(observer, targets),
    ];
    let session = scene.session();
    let expected: Vec<Report> = views.iter().map(|v| session.eval(v).unwrap()).collect();

    let server = ServeBuilder::new()
        .scene("mono", &scene)
        .shards(2)
        .workers(2)
        .queue_depth(128)
        .bind("127.0.0.1:0")
        .unwrap();
    let addr = server.local_addr();

    // Hold ≥ 512 connections open. Half stay completely silent; half
    // park the *front half* of a valid request line (no newline) so
    // their shards carry per-connection read state the whole time. None
    // may ever be answered or dropped.
    let parked_line =
        serde_json::to_string(&terrain_hsr::serve::Request::eval(1, "mono", views[0].clone()))
            .unwrap();
    let (parked_front, parked_back) = parked_line.split_at(parked_line.len() / 2);
    let idle: Vec<std::net::TcpStream> = (0..512)
        .map(|i| {
            let stream = std::net::TcpStream::connect(addr).expect("idle connect");
            if i % 2 == 0 {
                use std::io::Write as _;
                (&stream)
                    .write_all(parked_front.as_bytes())
                    .expect("park partial line");
            }
            stream
        })
        .collect();

    let views = Arc::new(views);
    let expected = Arc::new(expected);
    let actives: Vec<_> = (0..8)
        .map(|c| {
            let views = Arc::clone(&views);
            let expected = Arc::clone(&expected);
            std::thread::spawn(move || {
                let mut client = terrain_hsr::serve::Client::connect(addr).expect("connect");
                for round in 0..2 {
                    let i = (c + round) % views.len();
                    let got = client.eval("mono", &views[i]).expect("eval amid idle herd");
                    assert_eq!(
                        bits(&got),
                        bits(&expected[i]),
                        "client {c} round {round}: view {i} diverged under idle load"
                    );
                }
            })
        })
        .collect();
    for active in actives {
        active.join().expect("active client thread");
    }

    let stats = server.stats();
    assert!(stats.connections >= 512 + 8, "all connections accepted: {stats:?}");
    assert_eq!(stats.dropped_slow, 0, "idle is not slow: nobody owed them bytes: {stats:?}");
    assert_eq!(stats.malformed, 0, "a parked partial line is not (yet) malformed: {stats:?}");
    assert_eq!(stats.completed, 8 * 2);

    // The idle connections are still alive: complete one parked line
    // into a valid request and get a real answer on it.
    {
        use std::io::{BufRead as _, BufReader, Write as _};
        let mut parked = idle.into_iter().next().expect("kept the idle herd");
        parked
            .write_all(parked_back.as_bytes())
            .expect("complete the parked line");
        parked.write_all(b"\n").expect("terminate the parked line");
        parked
            .set_read_timeout(Some(std::time::Duration::from_secs(30)))
            .unwrap();
        let mut line = String::new();
        BufReader::new(parked)
            .read_line(&mut line)
            .expect("parked connection answered");
        let response: terrain_hsr::serve::Response = serde_json::from_str(line.trim()).unwrap();
        assert_eq!(response.id, 1);
        let got = response.into_result().expect("parked request evaluates");
        assert_eq!(bits(&got), bits(&expected[0]), "parked request diverged");
    }

    server.shutdown();
}

#[test]
fn racing_clients_get_bit_identical_reports_on_both_backends() {
    let grid = gen::diamond_square(5, 0.6, 9.0, 77); // 33×33
    let scene = SceneBuilder::from_grid(&grid).build().unwrap();
    let (lo, hi) = scene.tin().ground_bounds();
    let mid_y = 0.5 * (lo.y + hi.y);
    let observer = Point3::new(hi.x + 60.0, mid_y, 14.0);
    let eye = Point3::new(hi.x + 25.0, mid_y, 20.0);
    let look = Point3::new(lo.x, mid_y, 0.0);
    let targets = fractional_targets(&grid);

    // The tiled twin of the same terrain, at full resolution so its
    // verdicts are bit-identical to the monolithic classification.
    let dir = std::env::temp_dir().join(format!("thsr-serve-conf-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let tiled_cfg =
        TiledSceneConfig { cache_capacity: 4, fixed_level: Some(0), ..Default::default() };
    let tiled = TiledScene::build(
        &grid,
        TilingConfig { tile_size: 8, levels: 2 },
        TileStore::create(&dir).unwrap(),
        tiled_cfg,
    )
    .unwrap();

    // The per-client work list: (terrain, view) pairs spanning all
    // three projections; expectations computed by direct evaluation
    // before the server sees anything.
    let mono_views = vec![
        View::orthographic(0.0),
        View::orthographic(0.45),
        View::perspective(eye, look, 1.1, 512),
        View::viewshed(observer, targets.clone()),
    ];
    let tiled_view = View::viewshed(observer, targets.clone());
    let session = scene.session();
    let mono_expected: Vec<Report> = mono_views
        .iter()
        .map(|v| session.eval(v).unwrap())
        .collect();
    let tiled_expected = tiled.eval(&tiled_view).unwrap().report;
    // Full-resolution tiled verdicts agree with the monolithic ones.
    assert_eq!(tiled_expected.verdicts, mono_expected[3].verdicts);
    drop(tiled);

    let server = ServeBuilder::new()
        .scene("mono", &scene)
        .tiled_store("tiled", &dir, tiled_cfg)
        .workers(3)
        .queue_depth(128)
        .bind("127.0.0.1:0")
        .unwrap();
    let addr = server.local_addr();

    let mono_views = Arc::new(mono_views);
    let mono_expected = Arc::new(mono_expected);
    let tiled_view = Arc::new(tiled_view);
    let tiled_expected = Arc::new(tiled_expected);

    let clients: Vec<_> = (0..8)
        .map(|c| {
            let mono_views = Arc::clone(&mono_views);
            let mono_expected = Arc::clone(&mono_expected);
            let tiled_view = Arc::clone(&tiled_view);
            let tiled_expected = Arc::clone(&tiled_expected);
            std::thread::spawn(move || {
                let mut client = terrain_hsr::serve::Client::connect(addr).expect("connect");
                // Interleave mono and tiled requests differently per
                // client so the batches the dispatcher forms vary.
                for round in 0..2 {
                    let i = (c + round) % mono_views.len();
                    let got = client.eval("mono", &mono_views[i]).expect("mono eval");
                    assert_eq!(
                        bits(&got),
                        bits(&mono_expected[i]),
                        "client {c} round {round}: mono view {i} diverged over the wire"
                    );
                    if (c + round) % 2 == 0 {
                        let got = client.eval("tiled", &tiled_view).expect("tiled eval");
                        assert_eq!(
                            bits(&got),
                            bits(&tiled_expected),
                            "client {c} round {round}: tiled view diverged over the wire"
                        );
                    }
                }
                // A pipelined burst exercises the coalescing path too.
                let burst = client
                    .eval_pipelined("mono", &mono_views)
                    .expect("pipelined");
                for (i, result) in burst.into_iter().enumerate() {
                    let got = result.expect("pipelined eval");
                    assert_eq!(bits(&got), bits(&mono_expected[i]), "client {c} burst view {i}");
                }
            })
        })
        .collect();
    for client in clients {
        client.join().expect("client thread");
    }

    let stats = server.stats();
    assert_eq!(stats.rejected, 0, "queue depth 128 must absorb this load: {stats:?}");
    assert_eq!(stats.malformed, 0);
    assert!(stats.completed >= 8 * (2 + 4));
    let prepared = server.prepared_stats();
    assert_eq!(prepared.hits + prepared.prepares + prepared.errors, prepared.lookups);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
