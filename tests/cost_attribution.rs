//! Concurrent cost attribution: per-view `CostReport`s must be exact.
//!
//! The regression this file pins down: with the old process-global
//! counter arrays, `evaluate` bracketed `snapshot()`/`since()` around its
//! body, so two views evaluating concurrently inside `evaluate_batch`
//! charged each other's work to themselves — reports depended on
//! scheduling. With scoped collectors, the work counters of a view
//! evaluated in a parallel batch are bit-identical to the counters of the
//! same view evaluated solo. (The batch assertions here fail on the
//! pre-collector code whenever two evaluations actually overlap.)

use terrain_hsr::geometry::Point3;
use terrain_hsr::pram::cost::{Category, CostCollector};
use terrain_hsr::terrain::gen;
use terrain_hsr::{Algorithm, Report, Scene, SceneBuilder, View};

/// A batch of views with wildly different work profiles: cheap and
/// expensive orthographic rotations, the sequential baseline, the `O(n²)`
/// naive strawman, a perspective view, and a viewshed.
fn mixed_views(scene: &Scene) -> Vec<View> {
    let (lo, hi) = scene.tin().ground_bounds();
    let mid_y = 0.5 * (lo.y + hi.y);
    let eye = Point3::new(hi.x + 40.0, mid_y, 18.0);
    let look = Point3::new(eye.x - 1.0, eye.y, 0.0);
    let observer = Point3::new(hi.x + 60.0, mid_y, 10.0);
    vec![
        View::orthographic(0.0),
        View::orthographic(0.9),
        View::orthographic(0.0).algorithm(Algorithm::Sequential),
        View::orthographic(0.0).algorithm(Algorithm::Naive),
        View::perspective(eye, look, std::f64::consts::PI, 128),
        View::viewshed(observer, vec![Point3::new(0.5 * (lo.x + hi.x), mid_y, 50.0)]),
        View::orthographic(0.3).stats(true),
    ]
}

fn scene() -> Scene {
    SceneBuilder::from_grid(&gen::ridge_field(14, 12, 4, 9.0, 31))
        .build()
        .unwrap()
}

#[test]
fn batch_reports_match_solo_reports_counter_for_counter() {
    let scene = scene();
    let views = mixed_views(&scene);
    let session = scene.session();

    let solo: Vec<Report> = views.iter().map(|v| session.eval(v).unwrap()).collect();
    let batch = session.eval_batch(&views);

    for (i, (s, b)) in solo.iter().zip(&batch).enumerate() {
        let b = b.as_ref().unwrap();
        assert_eq!(
            b.cost.work, s.cost.work,
            "view {i}: batch work counters diverged from solo evaluation"
        );
        assert_eq!(
            b.cost.depth, s.cost.depth,
            "view {i}: batch depth counters diverged from solo evaluation"
        );
    }

    // Sanity on the workload spread: the naive view's counters dwarf the
    // cheap orthographic one's, so cross-attribution between concurrent
    // views could not have cancelled out invisibly.
    assert!(
        solo[3].cost.total_work() > 10 * solo[0].cost.total_work(),
        "naive work {} should dwarf parallel work {}",
        solo[3].cost.total_work(),
        solo[0].cost.total_work()
    );
}

#[test]
fn ambient_collector_sees_exactly_the_sum_of_the_batch() {
    let scene = scene();
    let views = mixed_views(&scene);
    let session = scene.session();

    let bracket = CostCollector::new();
    let guard = bracket.install();
    let batch = session.eval_batch(&views);
    drop(guard);

    let mut sum = 0u64;
    for r in &batch {
        sum += r.as_ref().unwrap().cost.total_work();
    }
    assert_eq!(
        bracket.report().total_work(),
        sum,
        "an outer bracket must observe every view's charges, nothing else"
    );
}

#[test]
fn concurrent_solo_evaluations_on_plain_threads_stay_isolated() {
    let scene = scene();
    let views = mixed_views(&scene);
    let session = scene.session();
    let expected: Vec<Vec<u64>> = views
        .iter()
        .map(|v| session.eval(v).unwrap().cost.work)
        .collect();

    // Evaluate every view simultaneously from plain OS threads (no shared
    // rayon scope): each report must still match its solo counters.
    let got: Vec<Vec<u64>> = std::thread::scope(|s| {
        let handles: Vec<_> = views
            .iter()
            .map(|v| {
                let session = session.clone();
                s.spawn(move || session.eval(v).unwrap().cost.work)
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(got, expected);
}

#[test]
fn interval_filter_counters_are_reported_and_batch_stable() {
    // The batched predicate kernel (ISSUE 8) attributes every pair
    // classification to either the interval-filter fast tier
    // (`PredicateFilter`) or the exact/scalar fallback (`PredicateExact`).
    // Both must surface in `Report::cost`, the filter must actually fire
    // on a real terrain, and — like every other counter — the totals must
    // be bit-identical whether the view runs solo or inside a parallel
    // `eval_batch` alongside dissimilar workloads.
    let scene = scene();
    let views = mixed_views(&scene);
    let session = scene.session();

    let solo: Vec<Report> = views.iter().map(|v| session.eval(v).unwrap()).collect();
    assert!(
        solo[0].cost.work_of(Category::PredicateFilter) > 0,
        "interval filter never fired on the parallel orthographic view"
    );
    let filtered: u64 = solo
        .iter()
        .map(|r| r.cost.work_of(Category::PredicateFilter))
        .sum();
    let exact: u64 = solo
        .iter()
        .map(|r| r.cost.work_of(Category::PredicateExact))
        .sum();
    // On TIN terrains adjacent pieces share endpoints, so the exact
    // endpoint tier legitimately fires often; both tiers must show up.
    assert!(filtered > 0 && exact > 0, "{filtered} filtered vs {exact} exact");

    let batch = session.eval_batch(&views);
    for (i, (s, b)) in solo.iter().zip(&batch).enumerate() {
        let b = b.as_ref().unwrap();
        for cat in [Category::PredicateFilter, Category::PredicateExact] {
            assert_eq!(
                b.cost.work_of(cat),
                s.cost.work_of(cat),
                "view {i}: {cat:?} diverged between solo and batched evaluation"
            );
        }
    }
}

#[test]
fn uninstrumented_callers_still_get_per_view_counters() {
    // No collector anywhere in the caller: Report::cost is still filled
    // (each evaluation installs its own), and nothing leaks to a
    // collector created afterwards.
    let scene = scene();
    let r = scene.session().eval(&View::orthographic(0.2)).unwrap();
    assert!(r.cost.total_work() > 0);
    assert!(r.cost.work_of(Category::Order) > 0);
    let c = CostCollector::new();
    assert_eq!(c.report().total_work(), 0);
}

/// The serving layer inherits the guarantee: a request evaluated inside
/// a server-coalesced batch reports cost counters bit-identical to a
/// solo evaluation of the same view — over the wire, across worker
/// threads, whatever the dispatcher grouped it with (ISSUE 5).
#[cfg(feature = "serve")]
#[test]
fn served_coalesced_requests_report_solo_cost_counters() {
    use terrain_hsr::serve::{Client, ServeBuilder};

    let scene = scene();
    let views = mixed_views(&scene);
    let session = scene.session();
    let solo: Vec<Report> = views.iter().map(|v| session.eval(v).unwrap()).collect();

    let server = ServeBuilder::new()
        .scene("t", &scene)
        .workers(2)
        .max_batch(8)
        .batch_window(std::time::Duration::from_millis(100))
        .bind("127.0.0.1:0")
        .unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    // Pipelined: the dispatcher groups compatible requests into batched
    // fan-outs (the naive and sequential views land in groups of their
    // own — different CompatKey).
    let results = client.eval_pipelined("t", &views).unwrap();

    for (i, (s, b)) in solo.iter().zip(&results).enumerate() {
        let b = b.as_ref().unwrap();
        assert_eq!(
            b.cost.work, s.cost.work,
            "view {i}: served work counters diverged from solo evaluation"
        );
        assert_eq!(
            b.cost.depth, s.cost.depth,
            "view {i}: served depth counters diverged from solo evaluation"
        );
    }
    assert!(server.stats().max_batch_observed >= 2, "{:?}", server.stats());
    server.shutdown();
}
