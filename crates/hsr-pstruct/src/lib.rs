//! Persistent (fully functional, path-copying) data structures.
//!
//! The paper's phase 2 keeps *one* visibility structure per PCT layer and
//! lets the many prefix profiles of a layer share their common visible
//! portions "along the lines of a persistent binary tree structure
//! (Driscoll et al.)". This crate supplies that substrate:
//!
//! * [`ptreap::PTreap`] — a persistent treap with deterministic priorities
//!   (canonical shape for a given key set), O(log n) expected
//!   insert/remove/split/join by path copying, and user-defined **subtree
//!   aggregates** used by the pruned envelope merge in `hsr-core`. Every
//!   path-copied node charges `Category::TreapOps` in the `hsr-pram` cost
//!   model (a no-op unless the caller installed a `CostCollector`).
//! * [`arena::ArenaTreap`] — the mutable, arena-backed sibling for
//!   single-version working sets (phase-1 builds, profile sweeps): nodes in
//!   a contiguous `Vec` addressed by `u32` indices, in-place mutation, a
//!   free list, and epoch-based version tagging so snapshots can still pin
//!   old versions via copy-on-write. Slot writes charge
//!   `Category::TreapArena`, keeping the two representations separable in
//!   cost reports.
//! * [`stats`] — version-sharing statistics: how many distinct nodes back a
//!   set of versions vs. the sum of their logical sizes (the quantity
//!   Figure 3 of the paper illustrates).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod ptreap;
pub mod stats;

pub use arena::{ArenaTreap, Snapshot};
pub use ptreap::{det_prio, Aggregate, CountAgg, NoAgg, NodeHandle, PTreap};
pub use stats::SharingStats;
