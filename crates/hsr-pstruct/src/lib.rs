//! Persistent (fully functional, path-copying) data structures.
//!
//! The paper's phase 2 keeps *one* visibility structure per PCT layer and
//! lets the many prefix profiles of a layer share their common visible
//! portions "along the lines of a persistent binary tree structure
//! (Driscoll et al.)". This crate supplies that substrate:
//!
//! * [`ptreap::PTreap`] — a persistent treap with deterministic priorities
//!   (canonical shape for a given key set), O(log n) expected
//!   insert/remove/split/join by path copying, and user-defined **subtree
//!   aggregates** used by the pruned envelope merge in `hsr-core`. Every
//!   path-copied node charges `Category::TreapOps` in the `hsr-pram` cost
//!   model (a no-op unless the caller installed a `CostCollector`).
//! * [`stats`] — version-sharing statistics: how many distinct nodes back a
//!   set of versions vs. the sum of their logical sizes (the quantity
//!   Figure 3 of the paper illustrates).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ptreap;
pub mod stats;

pub use ptreap::{Aggregate, CountAgg, NoAgg, NodeHandle, PTreap};
pub use stats::SharingStats;
