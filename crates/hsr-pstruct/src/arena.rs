//! Arena-backed treap: the mutable, cache-friendly sibling of
//! [`crate::ptreap::PTreap`].
//!
//! Phase-1 envelope builds and the sequential/viewshed profile sweeps use
//! an ordered map as a *single-version* working set — they splice pieces
//! in and out but never hold an old version. Routing them through the
//! persistent treap pays for `Arc` allocation, atomic reference counting,
//! and path-copy cloning on every touched node, none of which buys
//! anything without persistence. [`ArenaTreap`] stores nodes in one
//! contiguous `Vec` addressed by `u32` indices, mutates in place, and
//! recycles removed slots through a free list.
//!
//! Persistence is still available *on demand* via **epoch-based version
//! tagging**: every node records the epoch it was written in, and
//! [`ArenaTreap::snapshot`] bumps the treap's epoch. Mutations after a
//! snapshot copy-on-write any node tagged with an older epoch (the
//! snapshot keeps its slots), while nodes written in the current epoch —
//! unreachable from any snapshot by construction — keep mutating in place
//! and return to the free list when removed. A treap that never snapshots
//! therefore never copies a node and never leaks a slot.
//!
//! Both treap flavours derive node priorities from the same deterministic
//! hash, so a given key set always produces the same canonical shape.
//! Slot writes charge [`Category::TreapArena`] where the persistent treap
//! charges `Category::TreapOps`, letting the cost model attribute work to
//! the representation that did it.

use crate::ptreap::det_prio;
use hsr_pram::cost::{add_work, Category};
use std::cmp::Ordering;
use std::hash::Hash;

/// Sentinel index for "no node".
const NIL: u32 = u32::MAX;

struct ANode<K, V> {
    key: K,
    value: V,
    prio: u64,
    epoch: u32,
    left: u32,
    right: u32,
}

/// A read-only view of the treap as it was when [`ArenaTreap::snapshot`]
/// was called; pass it to [`ArenaTreap::snapshot_iter`].
#[derive(Clone, Copy, Debug)]
pub struct Snapshot {
    root: u32,
    len: usize,
}

impl Snapshot {
    /// Number of entries in the snapshotted version.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the snapshotted version was empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// A mutable ordered map backed by an index-linked treap in a contiguous
/// arena.
///
/// Same canonical shape per key set as [`crate::ptreap::PTreap`] (shared
/// deterministic priorities), but nodes are plain `Vec` slots mutated in
/// place — no `Arc`, no path copying — unless a [`ArenaTreap::snapshot`]
/// pins older epochs (see the module docs).
///
/// ```
/// use hsr_pstruct::ArenaTreap;
///
/// let mut t: ArenaTreap<u32, &str> = ArenaTreap::new();
/// t.insert(2, "b");
/// t.insert(1, "a");
/// let snap = t.snapshot();
/// t.insert(3, "c");
/// t.remove(&1);
/// assert_eq!(t.len(), 2);
/// // The snapshot still sees the old version.
/// assert_eq!(snap.len(), 2);
/// assert_eq!(t.snapshot_iter(&snap).map(|(k, _)| *k).collect::<Vec<_>>(), [1, 2]);
/// assert_eq!(t.floor(&9), Some((&3, &"c")));
/// ```
pub struct ArenaTreap<K, V> {
    nodes: Vec<ANode<K, V>>,
    free: Vec<u32>,
    root: u32,
    epoch: u32,
    len: usize,
}

impl<K, V> Default for ArenaTreap<K, V> {
    fn default() -> Self {
        ArenaTreap { nodes: Vec::new(), free: Vec::new(), root: NIL, epoch: 0, len: 0 }
    }
}

impl<K: Ord + Hash + Clone, V: Clone> ArenaTreap<K, V> {
    /// An empty treap.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty treap with room for `cap` nodes before reallocating.
    pub fn with_capacity(cap: usize) -> Self {
        ArenaTreap { nodes: Vec::with_capacity(cap), ..Self::default() }
    }

    /// Number of live entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when there are no live entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of arena slots currently allocated (live + pinned by
    /// snapshots + free-listed); a cache-footprint diagnostic.
    #[inline]
    pub fn slots(&self) -> usize {
        self.nodes.len()
    }

    /// Drops every entry, snapshot, and slot, keeping the allocation.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.free.clear();
        self.root = NIL;
        self.epoch = 0;
        self.len = 0;
    }

    /// Pins the current version and returns a handle for reading it.
    /// Later mutations copy-on-write instead of touching pinned slots.
    pub fn snapshot(&mut self) -> Snapshot {
        let s = Snapshot { root: self.root, len: self.len };
        self.epoch += 1;
        s
    }

    #[inline]
    fn node(&self, t: u32) -> &ANode<K, V> {
        &self.nodes[t as usize]
    }

    /// Allocates a slot (reusing the free list) and charges the arena
    /// counter — the analogue of the persistent treap's per-`Arc` charge.
    fn alloc(&mut self, n: ANode<K, V>) -> u32 {
        add_work(Category::TreapArena, 1);
        match self.free.pop() {
            Some(id) => {
                self.nodes[id as usize] = n;
                id
            }
            None => {
                let id = self.nodes.len() as u32;
                debug_assert!(id < NIL, "arena treap slot count overflow");
                self.nodes.push(n);
                id
            }
        }
    }

    /// Returns a slot for `t` that is safe to mutate: `t` itself when it
    /// was written in the current epoch, otherwise a copy-on-write clone
    /// (the original stays for snapshots).
    fn make_mut(&mut self, t: u32) -> u32 {
        let n = self.node(t);
        if n.epoch == self.epoch {
            return t;
        }
        let copy = ANode {
            key: n.key.clone(),
            value: n.value.clone(),
            prio: n.prio,
            epoch: self.epoch,
            left: n.left,
            right: n.right,
        };
        self.alloc(copy)
    }

    /// Recycles `t` if no snapshot can reference it.
    #[inline]
    fn release(&mut self, t: u32) {
        if self.nodes[t as usize].epoch == self.epoch {
            self.free.push(t);
        }
    }

    /// Inserts `key → value`, returning the previous value if the key was
    /// present.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let prio = det_prio(&key);
        let (root, old) = self.insert_at(self.root, key, value, prio);
        self.root = root;
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    fn insert_at(&mut self, t: u32, key: K, value: V, prio: u64) -> (u32, Option<V>) {
        if t == NIL {
            let id =
                self.alloc(ANode { key, value, prio, epoch: self.epoch, left: NIL, right: NIL });
            return (id, None);
        }
        match key.cmp(&self.node(t).key) {
            Ordering::Equal => {
                let t = self.make_mut(t);
                let old = std::mem::replace(&mut self.nodes[t as usize].value, value);
                (t, Some(old))
            }
            Ordering::Less => {
                let (l, old) = self.insert_at(self.node(t).left, key, value, prio);
                let t = self.make_mut(t);
                self.nodes[t as usize].left = l;
                if self.node(l).prio > self.node(t).prio {
                    (self.rotate_right(t), old)
                } else {
                    (t, old)
                }
            }
            Ordering::Greater => {
                let (r, old) = self.insert_at(self.node(t).right, key, value, prio);
                let t = self.make_mut(t);
                self.nodes[t as usize].right = r;
                if self.node(r).prio > self.node(t).prio {
                    (self.rotate_left(t), old)
                } else {
                    (t, old)
                }
            }
        }
    }

    /// Right rotation about `t` (its left child becomes the root of the
    /// subtree). Both touched nodes are already current-epoch: the child
    /// was just returned by a mutating call.
    fn rotate_right(&mut self, t: u32) -> u32 {
        let l = self.node(t).left;
        let l = self.make_mut(l);
        self.nodes[t as usize].left = self.nodes[l as usize].right;
        self.nodes[l as usize].right = t;
        l
    }

    /// Left rotation about `t`.
    fn rotate_left(&mut self, t: u32) -> u32 {
        let r = self.node(t).right;
        let r = self.make_mut(r);
        self.nodes[t as usize].right = self.nodes[r as usize].left;
        self.nodes[r as usize].left = t;
        r
    }

    /// Removes `key`, returning its value if present.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let (root, old) = self.remove_at(self.root, key);
        self.root = root;
        if old.is_some() {
            self.len -= 1;
        }
        old
    }

    fn remove_at(&mut self, t: u32, key: &K) -> (u32, Option<V>) {
        if t == NIL {
            return (NIL, None);
        }
        match key.cmp(&self.node(t).key) {
            Ordering::Equal => {
                let value = self.node(t).value.clone();
                let (left, right) = (self.node(t).left, self.node(t).right);
                self.release(t);
                (self.join(left, right), Some(value))
            }
            Ordering::Less => {
                let (l, old) = self.remove_at(self.node(t).left, key);
                if old.is_some() {
                    let t = self.make_mut(t);
                    self.nodes[t as usize].left = l;
                    (t, old)
                } else {
                    (t, None)
                }
            }
            Ordering::Greater => {
                let (r, old) = self.remove_at(self.node(t).right, key);
                if old.is_some() {
                    let t = self.make_mut(t);
                    self.nodes[t as usize].right = r;
                    (t, old)
                } else {
                    (t, None)
                }
            }
        }
    }

    /// Joins two subtrees where every key of `a` precedes every key of
    /// `b`, by priority.
    fn join(&mut self, a: u32, b: u32) -> u32 {
        if a == NIL {
            return b;
        }
        if b == NIL {
            return a;
        }
        if self.node(a).prio >= self.node(b).prio {
            let joined = self.join(self.node(a).right, b);
            let a = self.make_mut(a);
            self.nodes[a as usize].right = joined;
            a
        } else {
            let joined = self.join(a, self.node(b).left);
            let b = self.make_mut(b);
            self.nodes[b as usize].left = joined;
            b
        }
    }

    /// Removes every entry with `lo <= key < hi` (requires `lo <= hi`) in
    /// one split/detach/join instead of a descent per key; returns the
    /// number of entries removed. Split and join preserve the canonical
    /// (key, priority)-determined shape, so the result is
    /// indistinguishable from per-key removal.
    pub fn remove_range(&mut self, lo: &K, hi: &K) -> usize {
        debug_assert!(lo <= hi, "remove_range needs lo <= hi");
        let (below, rest) = self.split(self.root, lo);
        let (mid, above) = self.split(rest, hi);
        let removed = self.release_subtree(mid);
        self.root = self.join(below, above);
        self.len -= removed;
        removed
    }

    /// Splits subtree `t` by key: `(keys < key, keys >= key)`.
    fn split(&mut self, t: u32, key: &K) -> (u32, u32) {
        if t == NIL {
            return (NIL, NIL);
        }
        if self.node(t).key < *key {
            let (l, r) = self.split(self.node(t).right, key);
            let t = self.make_mut(t);
            self.nodes[t as usize].right = l;
            (t, r)
        } else {
            let (l, r) = self.split(self.node(t).left, key);
            let t = self.make_mut(t);
            self.nodes[t as usize].left = r;
            (l, t)
        }
    }

    /// Recycles an entire detached subtree; returns its node count.
    fn release_subtree(&mut self, t: u32) -> usize {
        if t == NIL {
            return 0;
        }
        let (l, r) = (self.node(t).left, self.node(t).right);
        self.release(t);
        1 + self.release_subtree(l) + self.release_subtree(r)
    }

    /// Value stored under `key`.
    pub fn get(&self, key: &K) -> Option<&V> {
        let mut t = self.root;
        while t != NIL {
            let n = self.node(t);
            match key.cmp(&n.key) {
                Ordering::Equal => return Some(&n.value),
                Ordering::Less => t = n.left,
                Ordering::Greater => t = n.right,
            }
        }
        None
    }

    /// Greatest entry with key `<= key` (the `BTreeMap`
    /// `range(..=key).next_back()` idiom without the iterator).
    pub fn floor(&self, key: &K) -> Option<(&K, &V)> {
        self.floor_by(|k| k <= key)
    }

    /// Greatest entry with key `< key`.
    pub fn floor_strict(&self, key: &K) -> Option<(&K, &V)> {
        self.floor_by(|k| k < key)
    }

    /// Greatest entry whose key satisfies the downward-closed predicate.
    fn floor_by(&self, ok: impl Fn(&K) -> bool) -> Option<(&K, &V)> {
        let mut t = self.root;
        let mut best = NIL;
        while t != NIL {
            let n = self.node(t);
            if ok(&n.key) {
                best = t;
                t = n.right;
            } else {
                t = n.left;
            }
        }
        (best != NIL).then(|| {
            let n = self.node(best);
            (&n.key, &n.value)
        })
    }

    /// Calls `f` on every entry with `lo <= key < hi`, in key order.
    pub fn for_range(&self, lo: &K, hi: &K, f: &mut impl FnMut(&K, &V)) {
        self.range_rec(self.root, lo, hi, f);
    }

    fn range_rec(&self, t: u32, lo: &K, hi: &K, f: &mut impl FnMut(&K, &V)) {
        if t == NIL {
            return;
        }
        let n = self.node(t);
        if *lo < n.key {
            self.range_rec(n.left, lo, hi, f);
        }
        if *lo <= n.key && n.key < *hi {
            f(&n.key, &n.value);
        }
        if n.key < *hi {
            self.range_rec(n.right, lo, hi, f);
        }
    }

    /// In-order iterator over the live version.
    pub fn iter(&self) -> Iter<'_, K, V> {
        Iter::new(self, self.root)
    }

    /// In-order iterator over a pinned version.
    pub fn snapshot_iter(&self, s: &Snapshot) -> Iter<'_, K, V> {
        Iter::new(self, s.root)
    }

    /// The values in key order (consumes the treap).
    pub fn into_values(self) -> Vec<V> {
        let mut out = Vec::with_capacity(self.len);
        let mut stack = Vec::new();
        let mut t = self.root;
        while t != NIL || !stack.is_empty() {
            while t != NIL {
                stack.push(t);
                t = self.node(t).left;
            }
            let top = stack.pop().expect("stack non-empty by loop condition");
            let n = self.node(top);
            out.push(n.value.clone());
            t = n.right;
        }
        out
    }
}

/// In-order entry iterator for [`ArenaTreap`].
pub struct Iter<'a, K, V> {
    treap: &'a ArenaTreap<K, V>,
    stack: Vec<u32>,
}

impl<'a, K: Ord + Hash + Clone, V: Clone> Iter<'a, K, V> {
    fn new(treap: &'a ArenaTreap<K, V>, root: u32) -> Self {
        let mut it = Iter { treap, stack: Vec::new() };
        it.push_left(root);
        it
    }

    fn push_left(&mut self, mut t: u32) {
        while t != NIL {
            self.stack.push(t);
            t = self.treap.node(t).left;
        }
    }
}

impl<'a, K: Ord + Hash + Clone, V: Clone> Iterator for Iter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        let t = self.stack.pop()?;
        let n = &self.treap.nodes[t as usize];
        self.push_left(n.right);
        Some((&n.key, &n.value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn keys(t: &ArenaTreap<u64, u64>) -> Vec<u64> {
        t.iter().map(|(k, _)| *k).collect()
    }

    /// Model test: a scripted mix of inserts/removes/floors must agree
    /// with `BTreeMap` at every step.
    #[test]
    fn agrees_with_btreemap_model() {
        let mut t: ArenaTreap<u64, u64> = ArenaTreap::new();
        let mut m: BTreeMap<u64, u64> = BTreeMap::new();
        let mut state = 0x0dd_ba11_u64;
        for step in 0..4000u64 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let k = (state >> 33) % 128;
            match state % 3 {
                0 | 1 => {
                    assert_eq!(t.insert(k, step), m.insert(k, step), "insert {k}");
                }
                _ => {
                    assert_eq!(t.remove(&k), m.remove(&k), "remove {k}");
                }
            }
            assert_eq!(t.len(), m.len());
            let probe = (state >> 17) % 130;
            assert_eq!(t.floor(&probe), m.range(..=probe).next_back(), "floor {probe}");
            assert_eq!(
                t.floor_strict(&probe),
                m.range(..probe).next_back(),
                "floor_strict {probe}"
            );
        }
        assert_eq!(keys(&t), m.keys().copied().collect::<Vec<_>>());
        assert_eq!(
            t.iter().map(|(_, v)| *v).collect::<Vec<_>>(),
            m.values().copied().collect::<Vec<_>>()
        );
    }

    #[test]
    fn range_matches_btreemap_model() {
        let mut t: ArenaTreap<u64, u64> = ArenaTreap::new();
        let mut m: BTreeMap<u64, u64> = BTreeMap::new();
        for k in [5u64, 1, 9, 3, 7, 2, 8, 0, 6, 4] {
            t.insert(k, k * 10);
            m.insert(k, k * 10);
        }
        for lo in 0..11u64 {
            for hi in lo..11u64 {
                let mut got = Vec::new();
                t.for_range(&lo, &hi, &mut |k, v| got.push((*k, *v)));
                let want: Vec<_> = m.range(lo..hi).map(|(k, v)| (*k, *v)).collect();
                assert_eq!(got, want, "range [{lo}, {hi})");
            }
        }
    }

    /// The free list keeps the arena from growing across churn when no
    /// snapshot pins old versions.
    #[test]
    fn slots_stay_bounded_without_snapshots() {
        let mut t: ArenaTreap<u64, u64> = ArenaTreap::new();
        for round in 0..50u64 {
            for k in 0..64u64 {
                t.insert(k, round);
            }
            for k in 0..64u64 {
                if k % 2 == 0 {
                    t.remove(&k);
                }
            }
            for k in 0..64u64 {
                if k % 2 == 0 {
                    t.insert(k, round + 1);
                }
            }
        }
        assert_eq!(t.len(), 64);
        assert!(t.slots() <= 3 * 64, "arena grew unbounded: {} slots for 64 keys", t.slots());
    }

    /// Snapshots keep seeing their version across arbitrary later
    /// mutation; the live treap keeps agreeing with the model.
    #[test]
    fn snapshots_are_immutable_versions() {
        let mut t: ArenaTreap<u64, u64> = ArenaTreap::new();
        for k in 0..32u64 {
            t.insert(k, k);
        }
        let snap1 = t.snapshot();
        for k in 0..32u64 {
            if k % 2 == 0 {
                t.remove(&k);
            } else {
                t.insert(k, k + 100);
            }
        }
        let snap2 = t.snapshot();
        for k in 100..140u64 {
            t.insert(k, k);
        }
        // snap1: keys 0..32, original values.
        let v1: Vec<_> = t.snapshot_iter(&snap1).map(|(k, v)| (*k, *v)).collect();
        assert_eq!(v1, (0..32u64).map(|k| (k, k)).collect::<Vec<_>>());
        // snap2: odd keys only, bumped values.
        let v2: Vec<_> = t.snapshot_iter(&snap2).map(|(k, v)| (*k, *v)).collect();
        assert_eq!(
            v2,
            (0..32u64)
                .filter(|k| k % 2 == 1)
                .map(|k| (k, k + 100))
                .collect::<Vec<_>>()
        );
        assert_eq!(snap1.len(), 32);
        assert_eq!(t.len(), 16 + 40);
    }

    /// Same key set → same shape as the persistent treap (shared
    /// deterministic priorities): in-order traversals agree, and the
    /// canonical shape means equal floors on every probe.
    #[test]
    fn canonical_shape_matches_ptreap_order() {
        use crate::ptreap::PTreap;
        let keys = [17u64, 3, 99, 42, 8, 23, 64, 1, 55];
        let mut a: ArenaTreap<u64, u64> = ArenaTreap::new();
        let mut p: PTreap<u64, u64> = PTreap::new();
        for &k in &keys {
            a.insert(k, k * 2);
            p = p.insert(k, k * 2);
        }
        let av: Vec<_> = a.iter().map(|(k, v)| (*k, *v)).collect();
        let pv: Vec<_> = p.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(av, pv);
        for probe in 0..100u64 {
            assert_eq!(a.floor(&probe), p.floor(&probe), "floor {probe}");
        }
    }

    /// `remove_range` must agree with per-key removal (and the model) on
    /// every window, including empty ones.
    #[test]
    fn remove_range_matches_btreemap_model() {
        for (lo, hi) in [
            (0u64, 0u64),
            (3, 3),
            (0, 5),
            (2, 9),
            (5, 20),
            (0, 20),
            (11, 12),
        ] {
            let mut t: ArenaTreap<u64, u64> = ArenaTreap::new();
            let mut m: BTreeMap<u64, u64> = BTreeMap::new();
            for k in [5u64, 1, 9, 3, 7, 2, 8, 0, 6, 4, 11, 13] {
                t.insert(k, k * 10);
                m.insert(k, k * 10);
            }
            let expect = m.range(lo..hi).count();
            let before = m.len();
            m.retain(|k, _| !(lo..hi).contains(k));
            assert_eq!(t.remove_range(&lo, &hi), expect, "count [{lo}, {hi})");
            assert_eq!(t.len(), before - expect);
            assert_eq!(keys(&t), m.keys().copied().collect::<Vec<_>>(), "[{lo}, {hi})");
            for probe in 0..22u64 {
                assert_eq!(t.floor(&probe), m.range(..=probe).next_back());
            }
            // Churn after the range removal keeps working (slot recycling).
            t.insert(lo, 1);
            m.insert(lo, 1);
            assert_eq!(keys(&t), m.keys().copied().collect::<Vec<_>>());
        }
    }

    #[test]
    fn into_values_is_key_ordered() {
        let mut t: ArenaTreap<u64, &str> = ArenaTreap::new();
        t.insert(2, "b");
        t.insert(0, "a");
        t.insert(7, "c");
        assert_eq!(t.into_values(), ["a", "b", "c"]);
    }
}
