//! A persistent treap with deterministic priorities and subtree aggregates.
//!
//! Every operation is non-destructive: it returns a new version that shares
//! all untouched subtrees with the old one (path copying). Priorities are
//! derived from a deterministic hash of the key, so a given key *set* always
//! produces the same canonical tree shape regardless of insertion order —
//! which makes structure-sharing statistics and golden tests reproducible
//! across runs.
//!
//! Subtree aggregates (the [`Aggregate`] trait) are recomputed only along
//! copied paths; they are what allows `hsr-core`'s envelope merge to prune
//! entire shared subtrees in `O(1)` (e.g. "every piece in this subtree lies
//! above the new segment").

use hsr_pram::cost::{add_work, Category};
use std::cmp::Ordering;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A user-defined subtree summary maintained at every treap node.
pub trait Aggregate<K, V>: Clone + Send + Sync {
    /// Summary of a single `(key, value)` item.
    fn of_item(key: &K, value: &V) -> Self;
    /// Combine the item's own summary with the children's summaries
    /// (in-order: `left`, item, `right`).
    fn combine(item: Self, left: Option<&Self>, right: Option<&Self>) -> Self;
}

/// The trivial aggregate.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoAgg;

impl<K, V> Aggregate<K, V> for NoAgg {
    #[inline]
    fn of_item(_: &K, _: &V) -> Self {
        NoAgg
    }
    #[inline]
    fn combine(_: Self, _: Option<&Self>, _: Option<&Self>) -> Self {
        NoAgg
    }
}

/// Subtree element count (node sizes are also tracked natively; this exists
/// for tests of the aggregate plumbing).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CountAgg(pub usize);

impl<K, V> Aggregate<K, V> for CountAgg {
    #[inline]
    fn of_item(_: &K, _: &V) -> Self {
        CountAgg(1)
    }
    #[inline]
    fn combine(item: Self, left: Option<&Self>, right: Option<&Self>) -> Self {
        CountAgg(item.0 + left.map_or(0, |a| a.0) + right.map_or(0, |a| a.0))
    }
}

struct Node<K, V, A> {
    key: K,
    value: V,
    prio: u64,
    size: usize,
    agg: A,
    left: Link<K, V, A>,
    right: Link<K, V, A>,
}

type Link<K, V, A> = Option<Arc<Node<K, V, A>>>;

/// Deterministic FNV-1a based priority with a splitmix64 finaliser.
///
/// Shared with the arena representation ([`crate::arena::ArenaTreap`]) so
/// both treaps give the *same key set the same canonical shape*. Public so
/// read-only mirrors of treap recursions (e.g. the allocation-free leaf
/// classification in `hsr-core`) can reproduce that canonical shape from a
/// sorted key run without building nodes.
pub fn det_prio<K: Hash>(key: &K) -> u64 {
    struct Fnv1a(u64);
    impl Hasher for Fnv1a {
        #[inline]
        fn write(&mut self, bytes: &[u8]) {
            for &b in bytes {
                self.0 ^= b as u64;
                self.0 = self.0.wrapping_mul(0x100_0000_01b3);
            }
        }
        #[inline]
        fn finish(&self) -> u64 {
            self.0
        }
    }
    let mut h = Fnv1a(0xcbf2_9ce4_8422_2325);
    key.hash(&mut h);
    // splitmix64 finaliser: decorrelates nearby keys.
    let mut z = h.finish().wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A persistent ordered map backed by a treap.
///
/// Cloning a `PTreap` is `O(1)` (an `Arc` clone); all mutating operations
/// return new versions.
///
/// ```
/// use hsr_pstruct::{PTreap, CountAgg};
///
/// let v1: PTreap<u32, &str, CountAgg> = PTreap::new().insert(2, "b").insert(1, "a");
/// let v2 = v1.insert(3, "c");
/// // v1 is untouched — persistence.
/// assert_eq!(v1.len(), 2);
/// assert_eq!(v2.len(), 3);
/// assert_eq!(v2.floor(&9), Some((&3, &"c")));
/// // Subtree aggregates ride along.
/// assert_eq!(v2.agg().unwrap().0, 3);
/// ```
pub struct PTreap<K, V, A = NoAgg> {
    root: Link<K, V, A>,
}

impl<K, V, A> Clone for PTreap<K, V, A> {
    #[inline]
    fn clone(&self) -> Self {
        PTreap { root: self.root.clone() }
    }
}

impl<K, V, A> Default for PTreap<K, V, A> {
    #[inline]
    fn default() -> Self {
        PTreap { root: None }
    }
}

/// An owned handle onto a treap node, exposing the structure for custom
/// recursions (used by the envelope merge in `hsr-core`).
pub struct NodeHandle<K, V, A>(Arc<Node<K, V, A>>);

impl<K, V, A> Clone for NodeHandle<K, V, A> {
    #[inline]
    fn clone(&self) -> Self {
        NodeHandle(Arc::clone(&self.0))
    }
}

impl<K, V, A> NodeHandle<K, V, A> {
    /// The node's key.
    #[inline]
    pub fn key(&self) -> &K {
        &self.0.key
    }
    /// The node's value.
    #[inline]
    pub fn value(&self) -> &V {
        &self.0.value
    }
    /// The node's subtree aggregate.
    #[inline]
    pub fn agg(&self) -> &A {
        &self.0.agg
    }
    /// Size of the subtree rooted here.
    #[inline]
    pub fn size(&self) -> usize {
        self.0.size
    }
    /// Left subtree as a treap (O(1)).
    #[inline]
    pub fn left(&self) -> PTreap<K, V, A> {
        PTreap { root: self.0.left.clone() }
    }
    /// Right subtree as a treap (O(1)).
    #[inline]
    pub fn right(&self) -> PTreap<K, V, A> {
        PTreap { root: self.0.right.clone() }
    }
    /// Stable address of the backing allocation; equal addresses imply the
    /// identical shared subtree. Used by sharing statistics.
    #[inline]
    pub fn ptr_id(&self) -> usize {
        Arc::as_ptr(&self.0) as usize
    }
}

impl<K, V, A> PTreap<K, V, A>
where
    K: Clone + Ord + Hash + Send + Sync,
    V: Clone + Send + Sync,
    A: Aggregate<K, V>,
{
    /// The empty map.
    #[inline]
    pub fn new() -> Self {
        Self::default()
    }

    /// A single-entry map.
    pub fn singleton(key: K, value: V) -> Self {
        PTreap { root: Some(mk_node(key, value, None, None)) }
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.root.as_ref().map_or(0, |n| n.size)
    }

    /// True when empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.root.is_none()
    }

    /// The root node handle, if any.
    #[inline]
    pub fn root(&self) -> Option<NodeHandle<K, V, A>> {
        self.root.as_ref().map(|n| NodeHandle(Arc::clone(n)))
    }

    /// The whole-tree aggregate, if non-empty.
    #[inline]
    pub fn agg(&self) -> Option<&A> {
        self.root.as_ref().map(|n| &n.agg)
    }

    /// Builds a treap from strictly increasing `(key, value)` pairs in
    /// `O(n)` using the right-spine construction.
    pub fn from_sorted(items: Vec<(K, V)>) -> Self {
        struct B<K, V> {
            k: K,
            v: V,
            prio: u64,
            left: Option<usize>,
            right: Option<usize>,
        }
        // Tiny inputs (the per-pair rebuilds in hsr-core's persistent
        // merge) skip the spine machinery: repeated insert produces the
        // same canonical shape with a handful of node allocations.
        if items.len() <= 3 {
            return items
                .into_iter()
                .fold(Self::new(), |t, (k, v)| t.insert(k, v));
        }
        debug_assert!(
            items.windows(2).all(|w| w[0].0 < w[1].0),
            "keys must be strictly increasing"
        );
        let mut nodes: Vec<B<K, V>> = items
            .into_iter()
            .map(|(k, v)| {
                let prio = det_prio(&k);
                B { k, v, prio, left: None, right: None }
            })
            .collect();
        let mut spine: Vec<usize> = Vec::new();
        for i in 0..nodes.len() {
            let mut last_popped = None;
            while let Some(&top) = spine.last() {
                if nodes[top].prio < nodes[i].prio {
                    last_popped = spine.pop();
                } else {
                    break;
                }
            }
            nodes[i].left = last_popped;
            if let Some(&parent) = spine.last() {
                nodes[parent].right = Some(i);
            }
            spine.push(i);
        }
        let root_idx = spine[0];

        // Freeze into Arc nodes bottom-up with an explicit stack (avoids
        // deep recursion on adversarial priority sequences).
        fn freeze<K, V, A>(nodes: &mut [Option<FrozenSlot<K, V>>], idx: usize) -> Arc<Node<K, V, A>>
        where
            K: Clone + Ord + Hash + Send + Sync,
            V: Clone + Send + Sync,
            A: Aggregate<K, V>,
        {
            enum Phase {
                Descend(usize),
                Build(usize),
            }
            let mut stack = vec![Phase::Descend(idx)];
            let mut built: std::collections::HashMap<usize, Arc<Node<K, V, A>>> =
                std::collections::HashMap::new();
            while let Some(phase) = stack.pop() {
                match phase {
                    Phase::Descend(i) => {
                        let slot = nodes[i].as_ref().expect("slot present");
                        let (l, r) = (slot.left, slot.right);
                        stack.push(Phase::Build(i));
                        if let Some(l) = l {
                            stack.push(Phase::Descend(l));
                        }
                        if let Some(r) = r {
                            stack.push(Phase::Descend(r));
                        }
                    }
                    Phase::Build(i) => {
                        let slot = nodes[i].take().expect("slot present");
                        let left = slot.left.map(|l| built.remove(&l).expect("left built"));
                        let right = slot.right.map(|r| built.remove(&r).expect("right built"));
                        built.insert(i, mk_node_prio(slot.k, slot.v, slot.prio, left, right));
                    }
                }
            }
            built.remove(&idx).expect("root built")
        }
        struct FrozenSlot<K, V> {
            k: K,
            v: V,
            prio: u64,
            left: Option<usize>,
            right: Option<usize>,
        }
        let mut slots: Vec<Option<FrozenSlot<K, V>>> = nodes
            .drain(..)
            .map(|b| {
                Some(FrozenSlot { k: b.k, v: b.v, prio: b.prio, left: b.left, right: b.right })
            })
            .collect();
        PTreap { root: Some(freeze::<K, V, A>(&mut slots, root_idx)) }
    }

    /// Looks up a key.
    pub fn get(&self, key: &K) -> Option<&V> {
        let mut cur = &self.root;
        while let Some(n) = cur {
            match key.cmp(&n.key) {
                Ordering::Less => cur = &n.left,
                Ordering::Greater => cur = &n.right,
                Ordering::Equal => return Some(&n.value),
            }
        }
        None
    }

    /// Largest entry with key `<= key`.
    pub fn floor(&self, key: &K) -> Option<(&K, &V)> {
        let mut cur = &self.root;
        let mut best = None;
        while let Some(n) = cur {
            if n.key <= *key {
                best = Some(n);
                cur = &n.right;
            } else {
                cur = &n.left;
            }
        }
        best.map(|n| (&n.key, &n.value))
    }

    /// Smallest entry with key `>= key`.
    pub fn ceiling(&self, key: &K) -> Option<(&K, &V)> {
        let mut cur = &self.root;
        let mut best = None;
        while let Some(n) = cur {
            if n.key >= *key {
                best = Some(n);
                cur = &n.left;
            } else {
                cur = &n.right;
            }
        }
        best.map(|n| (&n.key, &n.value))
    }

    /// First (smallest-key) entry.
    pub fn first(&self) -> Option<(&K, &V)> {
        let mut cur = self.root.as_ref()?;
        while let Some(l) = cur.left.as_ref() {
            cur = l;
        }
        Some((&cur.key, &cur.value))
    }

    /// Last (largest-key) entry.
    pub fn last(&self) -> Option<(&K, &V)> {
        let mut cur = self.root.as_ref()?;
        while let Some(r) = cur.right.as_ref() {
            cur = r;
        }
        Some((&cur.key, &cur.value))
    }

    /// Returns a version with `key` mapped to `value` (replacing any
    /// previous mapping).
    ///
    /// Single descent with path copying: the new node takes the first
    /// position where its priority dominates, splitting only the subtree
    /// below that point — far fewer node copies than the classic
    /// split/split/join/join formulation, same canonical shape.
    pub fn insert(&self, key: K, value: V) -> Self {
        let prio = det_prio(&key);
        PTreap { root: ins(&self.root, key, value, prio) }
    }

    /// Returns a version without `key` (single descent, path copying).
    pub fn remove(&self, key: &K) -> Self {
        PTreap { root: rem(&self.root, key) }
    }

    /// Splits into `(keys <= key, keys > key)` when `inclusive`, else
    /// `(keys < key, keys >= key)`.
    pub fn split_at(&self, key: &K, inclusive: bool) -> (Self, Self) {
        let (l, r) = split(&self.root, key, inclusive);
        (PTreap { root: l }, PTreap { root: r })
    }

    /// Joins two treaps; every key of `self` must be smaller than every key
    /// of `other` (checked in debug builds).
    pub fn join_with(&self, other: &Self) -> Self {
        debug_assert!(match (self.last(), other.first()) {
            (Some((a, _)), Some((b, _))) => a < b,
            _ => true,
        });
        PTreap { root: join(&self.root, &other.root) }
    }

    /// In-order iterator over entries.
    pub fn iter(&self) -> Iter<'_, K, V, A> {
        let mut stack = Vec::new();
        let mut cur = self.root.as_deref();
        while let Some(n) = cur {
            stack.push(n);
            cur = n.left.as_deref();
        }
        Iter { stack }
    }

    /// Collects entries into a vector (mostly for tests).
    pub fn to_vec(&self) -> Vec<(K, V)> {
        self.iter().map(|(k, v)| (k.clone(), v.clone())).collect()
    }
}

/// In-order borrowed iterator.
pub struct Iter<'a, K, V, A> {
    stack: Vec<&'a Node<K, V, A>>,
}

impl<'a, K, V, A> Iterator for Iter<'a, K, V, A> {
    type Item = (&'a K, &'a V);
    fn next(&mut self) -> Option<Self::Item> {
        let n = self.stack.pop()?;
        let mut cur = n.right.as_deref();
        while let Some(c) = cur {
            self.stack.push(c);
            cur = c.left.as_deref();
        }
        Some((&n.key, &n.value))
    }
}

fn mk_node<K, V, A>(
    key: K,
    value: V,
    left: Link<K, V, A>,
    right: Link<K, V, A>,
) -> Arc<Node<K, V, A>>
where
    K: Clone + Ord + Hash + Send + Sync,
    V: Clone + Send + Sync,
    A: Aggregate<K, V>,
{
    let prio = det_prio(&key);
    mk_node_prio(key, value, prio, left, right)
}

fn mk_node_prio<K, V, A>(
    key: K,
    value: V,
    prio: u64,
    left: Link<K, V, A>,
    right: Link<K, V, A>,
) -> Arc<Node<K, V, A>>
where
    K: Clone + Ord + Hash + Send + Sync,
    V: Clone + Send + Sync,
    A: Aggregate<K, V>,
{
    let size = 1 + left.as_ref().map_or(0, |n| n.size) + right.as_ref().map_or(0, |n| n.size);
    let agg = A::combine(
        A::of_item(&key, &value),
        left.as_ref().map(|n| &n.agg),
        right.as_ref().map(|n| &n.agg),
    );
    // Every allocation here is a path-copied node — the persistence cost
    // the paper charges to `TreapOps`. No-op unless a collector is active.
    add_work(Category::TreapOps, 1);
    Arc::new(Node { key, value, prio, size, agg, left, right })
}

fn ins<K, V, A>(link: &Link<K, V, A>, key: K, value: V, prio: u64) -> Link<K, V, A>
where
    K: Clone + Ord + Hash + Send + Sync,
    V: Clone + Send + Sync,
    A: Aggregate<K, V>,
{
    let Some(n) = link else {
        return Some(mk_node_prio(key, value, prio, None, None));
    };
    if prio > n.prio {
        // The new node takes this position. The key cannot already exist
        // in this subtree: it would carry this same priority, and the
        // heap property caps every descendant at `n.prio < prio`.
        let (l, r) = split(link, &key, false);
        return Some(mk_node_prio(key, value, prio, l, r));
    }
    match key.cmp(&n.key) {
        Ordering::Equal => Some(mk_node_prio(key, value, prio, n.left.clone(), n.right.clone())),
        Ordering::Less => Some(mk_node_prio(
            n.key.clone(),
            n.value.clone(),
            n.prio,
            ins(&n.left, key, value, prio),
            n.right.clone(),
        )),
        Ordering::Greater => Some(mk_node_prio(
            n.key.clone(),
            n.value.clone(),
            n.prio,
            n.left.clone(),
            ins(&n.right, key, value, prio),
        )),
    }
}

fn rem<K, V, A>(link: &Link<K, V, A>, key: &K) -> Link<K, V, A>
where
    K: Clone + Ord + Hash + Send + Sync,
    V: Clone + Send + Sync,
    A: Aggregate<K, V>,
{
    let n = link.as_ref()?;
    match key.cmp(&n.key) {
        Ordering::Equal => join(&n.left, &n.right),
        Ordering::Less => Some(mk_node_prio(
            n.key.clone(),
            n.value.clone(),
            n.prio,
            rem(&n.left, key),
            n.right.clone(),
        )),
        Ordering::Greater => Some(mk_node_prio(
            n.key.clone(),
            n.value.clone(),
            n.prio,
            n.left.clone(),
            rem(&n.right, key),
        )),
    }
}

fn split<K, V, A>(link: &Link<K, V, A>, key: &K, inclusive: bool) -> (Link<K, V, A>, Link<K, V, A>)
where
    K: Clone + Ord + Hash + Send + Sync,
    V: Clone + Send + Sync,
    A: Aggregate<K, V>,
{
    let Some(n) = link else {
        return (None, None);
    };
    let go_left = match n.key.cmp(key) {
        Ordering::Less => false,
        Ordering::Greater => true,
        Ordering::Equal => !inclusive,
    };
    if go_left {
        // n and its right subtree belong to the right part.
        let (ll, lr) = split(&n.left, key, inclusive);
        let right = mk_node_prio(n.key.clone(), n.value.clone(), n.prio, lr, n.right.clone());
        (ll, Some(right))
    } else {
        let (rl, rr) = split(&n.right, key, inclusive);
        let left = mk_node_prio(n.key.clone(), n.value.clone(), n.prio, n.left.clone(), rl);
        (Some(left), rr)
    }
}

fn join<K, V, A>(l: &Link<K, V, A>, r: &Link<K, V, A>) -> Link<K, V, A>
where
    K: Clone + Ord + Hash + Send + Sync,
    V: Clone + Send + Sync,
    A: Aggregate<K, V>,
{
    match (l, r) {
        (None, _) => r.clone(),
        (_, None) => l.clone(),
        (Some(ln), Some(rn)) => {
            if ln.prio >= rn.prio {
                let new_right = join(&ln.right, r);
                Some(mk_node_prio(
                    ln.key.clone(),
                    ln.value.clone(),
                    ln.prio,
                    ln.left.clone(),
                    new_right,
                ))
            } else {
                let new_left = join(l, &rn.left);
                Some(mk_node_prio(
                    rn.key.clone(),
                    rn.value.clone(),
                    rn.prio,
                    new_left,
                    rn.right.clone(),
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type T = PTreap<u64, u64, CountAgg>;

    #[test]
    fn node_copies_charge_treap_ops() {
        let (_, report) = hsr_pram::cost::CostCollector::measure(|| {
            let t: T = T::from_sorted((0..100).map(|i| (i, i)).collect());
            let _t2 = t.insert(1_000, 1); // path copy: O(log n) more nodes
        });
        let copies = report.work_of(Category::TreapOps);
        assert!(copies >= 101, "expected >= 101 node copies, counted {copies}");
        // Outside any collector, the same operations count nothing (the
        // uninstrumented fast path) — and must not panic.
        let t: T = T::from_sorted((0..10).map(|i| (i, i)).collect());
        let _ = t.insert(99, 0);
    }

    #[test]
    fn insert_get_remove() {
        let t = T::new();
        let t1 = t.insert(5, 50).insert(3, 30).insert(8, 80);
        assert_eq!(t1.len(), 3);
        assert_eq!(t1.get(&3), Some(&30));
        assert_eq!(t1.get(&9), None);
        let t2 = t1.remove(&3);
        assert_eq!(t2.len(), 2);
        assert_eq!(t2.get(&3), None);
        // persistence: t1 unchanged
        assert_eq!(t1.get(&3), Some(&30));
    }

    #[test]
    fn canonical_shape_independent_of_order() {
        let a = T::new().insert(1, 1).insert(2, 2).insert(3, 3);
        let b = T::new().insert(3, 3).insert(1, 1).insert(2, 2);
        // same key set => same root key (shape canonical)
        assert_eq!(a.root().map(|n| *n.key()), b.root().map(|n| *n.key()));
        assert_eq!(a.to_vec(), b.to_vec());
    }

    #[test]
    fn from_sorted_matches_inserts() {
        let items: Vec<(u64, u64)> = (0..100).map(|i| (i * 3, i)).collect();
        let a = T::from_sorted(items.clone());
        let mut b = T::new();
        for (k, v) in &items {
            b = b.insert(*k, *v);
        }
        assert_eq!(a.to_vec(), b.to_vec());
        assert_eq!(a.root().map(|n| *n.key()), b.root().map(|n| *n.key()));
        assert_eq!(a.agg().unwrap().0, 100);
    }

    #[test]
    fn floor_ceiling() {
        let t = T::from_sorted(vec![(10, 0), (20, 1), (30, 2)]);
        assert_eq!(t.floor(&25).map(|(k, _)| *k), Some(20));
        assert_eq!(t.floor(&20).map(|(k, _)| *k), Some(20));
        assert_eq!(t.floor(&5), None);
        assert_eq!(t.ceiling(&25).map(|(k, _)| *k), Some(30));
        assert_eq!(t.ceiling(&35), None);
        assert_eq!(t.first().map(|(k, _)| *k), Some(10));
        assert_eq!(t.last().map(|(k, _)| *k), Some(30));
    }

    #[test]
    fn split_join_roundtrip() {
        let t = T::from_sorted((0..50).map(|i| (i, i)).collect());
        let (l, r) = t.split_at(&25, true);
        assert_eq!(l.len(), 26);
        assert_eq!(r.len(), 24);
        let j = l.join_with(&r);
        assert_eq!(j.to_vec(), t.to_vec());
    }

    #[test]
    fn structural_sharing_after_insert() {
        let t1 = T::from_sorted((0..1000).map(|i| (i, i)).collect());
        let t2 = t1.insert(5000, 1);
        // The new version must share almost all nodes with the old one.
        let stats = crate::stats::SharingStats::of(&[&t1, &t2]);
        assert!(stats.unique_nodes < t1.len() + 50, "unique={}", stats.unique_nodes);
        assert_eq!(stats.total_logical, t1.len() + t2.len());
    }

    #[test]
    fn heap_property_holds() {
        let t = T::from_sorted((0..200).map(|i| (i, i)).collect());
        fn check(n: &NodeHandle<u64, u64, CountAgg>) {
            for c in [n.left().root(), n.right().root()].into_iter().flatten() {
                assert!(det_prio(n.key()) >= det_prio(c.key()));
                check(&c);
            }
        }
        check(&t.root().unwrap());
    }
}
