//! Version-sharing statistics for persistent structures.
//!
//! Figure 3 of the paper shows several profiles' convex chains hanging off
//! one ACG edge, sharing their common parts through persistence. The
//! measurable analogue is: across a set of live versions, how many *distinct*
//! tree nodes exist compared to the sum of the versions' logical sizes? A
//! ratio well below 1 is the memory/work saving persistence buys.

use crate::ptreap::{Aggregate, NodeHandle, PTreap};
use std::collections::HashSet;
use std::hash::Hash;

/// Sharing statistics over a set of persistent-tree versions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SharingStats {
    /// Number of distinct allocated nodes reachable from any version.
    pub unique_nodes: usize,
    /// Sum over versions of their logical entry counts.
    pub total_logical: usize,
}

impl SharingStats {
    /// Walks all versions, deduplicating subtrees by allocation identity.
    pub fn of<K, V, A>(versions: &[&PTreap<K, V, A>]) -> SharingStats
    where
        K: Clone + Ord + Hash + Send + Sync,
        V: Clone + Send + Sync,
        A: Aggregate<K, V>,
    {
        let mut seen: HashSet<usize> = HashSet::new();
        let mut total_logical = 0;
        for v in versions {
            total_logical += v.len();
            let mut stack: Vec<NodeHandle<K, V, A>> = v.root().into_iter().collect();
            while let Some(n) = stack.pop() {
                if !seen.insert(n.ptr_id()) {
                    continue; // shared subtree already counted
                }
                stack.extend(n.left().root());
                stack.extend(n.right().root());
            }
        }
        SharingStats { unique_nodes: seen.len(), total_logical }
    }

    /// `unique_nodes / total_logical`; `1.0` means no sharing at all,
    /// values near `0` mean almost everything is shared.
    pub fn sharing_ratio(&self) -> f64 {
        if self.total_logical == 0 {
            1.0
        } else {
            self.unique_nodes as f64 / self.total_logical as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ptreap::{CountAgg, PTreap};

    #[test]
    fn versions_share() {
        let base: PTreap<u64, u64, CountAgg> =
            PTreap::from_sorted((0..512).map(|i| (i, i)).collect());
        let mut versions = vec![base.clone()];
        let mut cur = base;
        for i in 0..32 {
            cur = cur.insert(10_000 + i, i);
            versions.push(cur.clone());
        }
        let refs: Vec<&PTreap<u64, u64, CountAgg>> = versions.iter().collect();
        let s = SharingStats::of(&refs);
        // 33 versions of ~512 entries each, but only ~512 + 32*O(log) nodes.
        assert!(s.total_logical > 16_000);
        assert!(s.unique_nodes < 1_500, "unique={}", s.unique_nodes);
        assert!(s.sharing_ratio() < 0.1);
    }

    #[test]
    fn empty() {
        let s = SharingStats::of::<u64, u64, CountAgg>(&[]);
        assert_eq!(s.unique_nodes, 0);
        assert_eq!(s.sharing_ratio(), 1.0);
    }
}
