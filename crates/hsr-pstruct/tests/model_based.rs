//! Model-based property tests: the persistent treap must behave exactly
//! like `BTreeMap` under arbitrary operation sequences, and old versions
//! must never change (persistence).

use proptest::prelude::*;
use std::collections::BTreeMap;

use hsr_pstruct::{CountAgg, PTreap, SharingStats};

#[derive(Clone, Debug)]
enum Op {
    Insert(u16, u32),
    Remove(u16),
    SplitJoin(u16),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u16>(), any::<u32>()).prop_map(|(k, v)| Op::Insert(k % 512, v)),
        any::<u16>().prop_map(|k| Op::Remove(k % 512)),
        any::<u16>().prop_map(|k| Op::SplitJoin(k % 512)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn treap_matches_btreemap(ops in prop::collection::vec(arb_op(), 1..200)) {
        let mut model: BTreeMap<u16, u32> = BTreeMap::new();
        let mut t: PTreap<u16, u32, CountAgg> = PTreap::new();
        for op in &ops {
            match *op {
                Op::Insert(k, v) => {
                    model.insert(k, v);
                    t = t.insert(k, v);
                }
                Op::Remove(k) => {
                    model.remove(&k);
                    t = t.remove(&k);
                }
                Op::SplitJoin(k) => {
                    // split + join must be the identity.
                    let (l, r) = t.split_at(&k, true);
                    t = l.join_with(&r);
                }
            }
            prop_assert_eq!(t.len(), model.len());
        }
        // Full content equality.
        let got: Vec<(u16, u32)> = t.to_vec();
        let want: Vec<(u16, u32)> = model.iter().map(|(&k, &v)| (k, v)).collect();
        prop_assert_eq!(got, want);
        // Ordered queries match.
        for probe in [0u16, 100, 255, 300, 511] {
            prop_assert_eq!(t.get(&probe), model.get(&probe));
            prop_assert_eq!(
                t.floor(&probe).map(|(k, _)| *k),
                model.range(..=probe).next_back().map(|(&k, _)| k)
            );
            prop_assert_eq!(
                t.ceiling(&probe).map(|(k, _)| *k),
                model.range(probe..).next().map(|(&k, _)| k)
            );
        }
        // Aggregate plumbing: CountAgg equals the size.
        prop_assert_eq!(t.agg().map(|a| a.0).unwrap_or(0), model.len());
    }

    #[test]
    fn old_versions_are_immutable(
        base in prop::collection::btree_map(any::<u16>(), any::<u32>(), 1..100),
        edits in prop::collection::vec((any::<u16>(), any::<u32>()), 1..50),
    ) {
        let t0: PTreap<u16, u32, CountAgg> =
            PTreap::from_sorted(base.iter().map(|(&k, &v)| (k, v)).collect());
        let snapshot: Vec<(u16, u32)> = t0.to_vec();
        let mut versions = vec![t0.clone()];
        let mut cur = t0.clone();
        for &(k, v) in &edits {
            cur = if v % 3 == 0 { cur.remove(&k) } else { cur.insert(k, v) };
            versions.push(cur.clone());
        }
        // The original version still holds exactly its original content.
        prop_assert_eq!(t0.to_vec(), snapshot);
        // And all versions share structure.
        let refs: Vec<&PTreap<u16, u32, CountAgg>> = versions.iter().collect();
        let stats = SharingStats::of(&refs);
        let worst: usize = versions.iter().map(|v| v.len()).sum();
        prop_assert!(stats.unique_nodes <= worst);
    }

    #[test]
    fn canonical_shape_for_any_insertion_order(
        mut keys in prop::collection::vec(any::<u16>(), 1..60),
    ) {
        keys.sort_unstable();
        keys.dedup();
        let forward: PTreap<u16, u16, CountAgg> =
            keys.iter().fold(PTreap::new(), |t, &k| t.insert(k, k));
        let backward: PTreap<u16, u16, CountAgg> =
            keys.iter().rev().fold(PTreap::new(), |t, &k| t.insert(k, k));
        let bulk: PTreap<u16, u16, CountAgg> =
            PTreap::from_sorted(keys.iter().map(|&k| (k, k)).collect());
        // Deterministic priorities ⇒ identical root for the same key set.
        prop_assert_eq!(forward.root().map(|n| *n.key()), backward.root().map(|n| *n.key()));
        prop_assert_eq!(forward.root().map(|n| *n.key()), bulk.root().map(|n| *n.key()));
        prop_assert_eq!(forward.to_vec(), bulk.to_vec());
    }
}
