//! Persistence invariants of the path-copying treap, beyond the
//! model-based equivalence in `model_based.rs`: *every* intermediate
//! version stays frozen under later edits, non-mutating operations leave
//! the receiver untouched, and edit histories share structure.

use proptest::prelude::*;
use std::collections::BTreeMap;

use hsr_pstruct::{CountAgg, PTreap, SharingStats};

type T = PTreap<u16, u32, CountAgg>;

fn from_model(m: &BTreeMap<u16, u32>) -> T {
    PTreap::from_sorted(m.iter().map(|(&k, &v)| (k, v)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Replaying an edit sequence, every version observed along the way
    /// holds exactly the contents it had when it was created — full
    /// persistence, not just the initial version.
    #[test]
    fn every_version_stays_frozen(
        base in prop::collection::btree_map(any::<u16>(), any::<u32>(), 0..60),
        edits in prop::collection::vec((any::<u16>(), any::<u32>()), 1..60),
    ) {
        let mut model = base.clone();
        let mut cur = from_model(&base);
        let mut history: Vec<(T, Vec<(u16, u32)>)> =
            vec![(cur.clone(), model.iter().map(|(&k, &v)| (k, v)).collect())];
        for &(k, v) in &edits {
            if v % 3 == 0 {
                model.remove(&k);
                cur = cur.remove(&k);
            } else {
                model.insert(k, v);
                cur = cur.insert(k, v);
            }
            history.push((cur.clone(), model.iter().map(|(&k, &v)| (k, v)).collect()));
        }
        for (i, (version, snapshot)) in history.iter().enumerate() {
            prop_assert_eq!(&version.to_vec(), snapshot, "version {} drifted", i);
        }
    }

    /// `split_at` partitions correctly and mutates nothing: the receiver
    /// keeps its contents, and re-joining restores them exactly.
    #[test]
    fn split_is_a_pure_partition(
        base in prop::collection::btree_map(any::<u16>(), any::<u32>(), 1..80),
        key in any::<u16>(),
        inclusive in any::<bool>(),
    ) {
        let t = from_model(&base);
        let before = t.to_vec();
        let (l, r) = t.split_at(&key, inclusive);
        for (k, _) in l.to_vec() {
            prop_assert!(if inclusive { k <= key } else { k < key });
        }
        for (k, _) in r.to_vec() {
            prop_assert!(if inclusive { k > key } else { k >= key });
        }
        prop_assert_eq!(l.len() + r.len(), t.len());
        prop_assert_eq!(t.to_vec(), before, "split mutated the receiver");
        prop_assert_eq!(l.join_with(&r).to_vec(), before, "split/join lost entries");
    }

    /// Inserting a fresh key and removing it restores the *canonical*
    /// treap — same contents and same root — and the intermediate version
    /// survives unchanged.
    #[test]
    fn insert_remove_restores_canonical_shape(
        base in prop::collection::btree_map(any::<u16>(), any::<u32>(), 0..80),
        key in any::<u16>(),
        value in any::<u32>(),
    ) {
        prop_assume!(!base.contains_key(&key));
        let t = from_model(&base);
        let inserted = t.insert(key, value);
        prop_assert_eq!(inserted.len(), t.len() + 1);
        prop_assert_eq!(inserted.get(&key), Some(&value));
        let restored = inserted.remove(&key);
        prop_assert_eq!(restored.to_vec(), t.to_vec());
        // Deterministic priorities: identical key set ⇒ identical root.
        prop_assert_eq!(
            restored.root().map(|n| *n.key()),
            t.root().map(|n| *n.key())
        );
        // The middle version still holds the key.
        prop_assert_eq!(inserted.get(&key), Some(&value));
    }

    /// Path copying shares structure: a single edit creates at most a
    /// root-to-leaf path of new nodes, so the two versions together hold
    /// far fewer unique nodes than two independent copies would.
    #[test]
    fn single_edit_shares_structure(
        base in prop::collection::btree_map(any::<u16>(), any::<u32>(), 32..200),
        key in any::<u16>(),
        value in any::<u32>(),
    ) {
        let t0 = from_model(&base);
        let t1 = t0.insert(key, value);
        let stats = SharingStats::of(&[&t0, &t1]);
        let independent = t0.len() + t1.len();
        // A generous depth allowance: deterministic treap priorities give
        // expected depth Θ(log n); 8·log2(n) + 32 leaves huge slack while
        // still being ≪ n for the sizes generated here.
        let depth_allowance = 8 * (t0.len().max(2) as f64).log2() as usize + 32;
        prop_assert!(
            stats.unique_nodes <= t0.len() + depth_allowance,
            "sharing broke: {} unique nodes for versions of {} + {} entries",
            stats.unique_nodes, t0.len(), t1.len()
        );
        prop_assert!(stats.unique_nodes <= independent);
    }

    /// Ordered queries on an old version are unaffected by later edits.
    #[test]
    fn queries_on_old_versions_unaffected(
        base in prop::collection::btree_map(any::<u16>(), any::<u32>(), 1..80),
        edits in prop::collection::vec((any::<u16>(), any::<u32>()), 1..40),
        probes in prop::collection::vec(any::<u16>(), 1..10),
    ) {
        let t0 = from_model(&base);
        let mut cur = t0.clone();
        for &(k, v) in &edits {
            cur = if v % 2 == 0 { cur.insert(k, v) } else { cur.remove(&k) };
        }
        for &p in &probes {
            prop_assert_eq!(t0.get(&p), base.get(&p));
            prop_assert_eq!(
                t0.floor(&p).map(|(k, _)| *k),
                base.range(..=p).next_back().map(|(&k, _)| k)
            );
            prop_assert_eq!(
                t0.ceiling(&p).map(|(k, _)| *k),
                base.range(p..).next().map(|(&k, _)| k)
            );
        }
        prop_assert_eq!(t0.first().map(|(k, _)| *k), base.keys().next().copied());
        prop_assert_eq!(t0.last().map(|(k, _)| *k), base.keys().next_back().copied());
    }
}
