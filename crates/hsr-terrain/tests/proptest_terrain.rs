//! Property tests for the terrain substrate: Delaunay correctness on
//! random point sets and generator validity across their parameter space.

use proptest::prelude::*;
use std::cmp::Ordering;

use hsr_geometry::{incircle, Point2};
use hsr_terrain::delaunay::Delaunay;
use hsr_terrain::gen;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn delaunay_empty_circumcircle(
        raw in prop::collection::vec((0i32..200, 0i32..200), 4..40),
    ) {
        // Deduplicate (the triangulator rejects exact duplicates).
        let mut seen = std::collections::HashSet::new();
        let pts: Vec<Point2> = raw
            .into_iter()
            .filter(|p| seen.insert(*p))
            .map(|(x, y)| Point2::new(x as f64, y as f64))
            .collect();
        prop_assume!(pts.len() >= 3);
        let Some(dt) = Delaunay::build(&pts) else {
            // All collinear — legitimately no triangulation.
            return Ok(());
        };
        let tris = dt.triangles();
        for t in &tris {
            let (a, b, c) = (pts[t[0]], pts[t[1]], pts[t[2]]);
            for (i, p) in pts.iter().enumerate() {
                if t.contains(&i) {
                    continue;
                }
                prop_assert_ne!(
                    incircle(a, b, c, *p),
                    Ordering::Greater,
                    "point {} strictly inside circumcircle of {:?}",
                    i,
                    t
                );
            }
        }
        // Euler count: for n points with h on the hull, 2n − 2 − h
        // triangles; we only check the upper bound (collinear subsets
        // reduce the count).
        prop_assert!(tris.len() <= 2 * pts.len());
    }

    #[test]
    fn generators_always_produce_valid_tins(
        seed in any::<u64>(),
        nx in 4usize..16,
        ny in 4usize..16,
        theta in 0.0f64..1.0,
    ) {
        // Every generator must yield a TIN that passes validation for any
        // seed/size — construction is `unwrap`ped inside `build`.
        for w in [
            gen::Workload::Fbm { nx, ny, seed },
            gen::Workload::Knob { nx, ny, theta, seed },
            gen::Workload::Amphitheater { nx, ny, seed },
        ] {
            let tin = w.build();
            let (nv, ne, nt) = tin.counts();
            prop_assert_eq!(nv, nx * ny);
            prop_assert_eq!(nt, 2 * (nx - 1) * (ny - 1));
            prop_assert!(ne > nv);
        }
    }

    #[test]
    fn grid_tin_euler_formula(nx in 2usize..24, ny in 2usize..24) {
        let tin = gen::fbm(nx, ny, 3, 5.0, 7).to_tin().unwrap();
        let (v, e, f) = tin.counts();
        // Euler for a planar triangulated disc: v − e + (f + 1) = 2.
        prop_assert_eq!(v as i64 - e as i64 + f as i64 + 1, 2);
    }

    #[test]
    fn obj_roundtrip_any_grid(seed in any::<u64>(), n in 4usize..12) {
        let tin = gen::gaussian_hills(n, n, 3, seed).to_tin().unwrap();
        let back = hsr_terrain::io::from_obj(&hsr_terrain::io::to_obj(&tin)).unwrap();
        prop_assert_eq!(tin.counts(), back.counts());
    }

    #[test]
    fn sample_reproduces_grid_nodes_exactly(
        seed in any::<u64>(),
        nx in 2usize..10,
        ny in 2usize..10,
    ) {
        // At every grid node — corners included — bilinear interpolation
        // must return the stored height exactly (tx = ty = 0 there).
        let g = gen::fbm(nx, ny, 3, 6.0, seed);
        for i in 0..nx {
            for j in 0..ny {
                let x = g.origin.0 + i as f64 * g.dx;
                let y = g.origin.1 + j as f64 * g.dy;
                prop_assert_eq!(g.sample(x, y).to_bits(), g.h(i, j).to_bits());
            }
        }
    }

    #[test]
    fn sample_on_cell_edges_matches_1d_interpolation(
        seed in any::<u64>(),
        nx in 2usize..8,
        ny in 2usize..8,
        t in 0.0f64..1.0,
    ) {
        // Along a grid line the bilinear surface degenerates to linear
        // interpolation between the two adjacent nodes.
        let g = gen::fbm(nx, ny, 3, 6.0, seed);
        let lerp = |a: f64, b: f64| a + (b - a) * t;
        for i in 0..nx - 1 {
            for j in 0..ny {
                let x = g.origin.0 + (i as f64 + t) * g.dx;
                let y = g.origin.1 + j as f64 * g.dy;
                let want = lerp(g.h(i, j), g.h(i + 1, j));
                prop_assert!((g.sample(x, y) - want).abs() <= 1e-12 * (1.0 + want.abs()));
            }
        }
        for i in 0..nx {
            for j in 0..ny - 1 {
                let x = g.origin.0 + i as f64 * g.dx;
                let y = g.origin.1 + (j as f64 + t) * g.dy;
                let want = lerp(g.h(i, j), g.h(i, j + 1));
                prop_assert!((g.sample(x, y) - want).abs() <= 1e-12 * (1.0 + want.abs()));
            }
        }
    }

    #[test]
    fn sample_clamps_outside_the_grid(
        seed in any::<u64>(),
        nx in 2usize..8,
        ny in 2usize..8,
        off in 0.1f64..50.0,
    ) {
        let g = gen::fbm(nx, ny, 3, 6.0, seed);
        let (w, h) = ((nx - 1) as f64 * g.dx, (ny - 1) as f64 * g.dy);
        // Beyond each corner the clamped sample is the corner height.
        prop_assert_eq!(g.sample(-off, -off).to_bits(), g.h(0, 0).to_bits());
        prop_assert_eq!(g.sample(w + off, -off).to_bits(), g.h(nx - 1, 0).to_bits());
        prop_assert_eq!(g.sample(-off, h + off).to_bits(), g.h(0, ny - 1).to_bits());
        prop_assert_eq!(
            g.sample(w + off, h + off).to_bits(),
            g.h(nx - 1, ny - 1).to_bits()
        );
    }

    #[test]
    fn sample_on_degenerate_single_row_grids(
        seed in any::<u64>(),
        n in 2usize..9,
        t in -5.0f64..5.0,
    ) {
        // 1×N / N×1 crops (tile skirt rows) must sample without division
        // by a zero-length axis: constant across the missing axis, linear
        // along the surviving one.
        let base = gen::fbm(9, 9, 3, 6.0, seed);
        let row = base.crop(3, 0, 1, n);
        let col = base.crop(0, 3, n, 1);
        for j in 0..n {
            let y = row.origin.1 + j as f64 * row.dy;
            prop_assert_eq!(row.sample(t, y).to_bits(), row.h(0, j).to_bits());
            let x = col.origin.0 + j as f64 * col.dx;
            prop_assert_eq!(col.sample(x, t).to_bits(), col.h(j, 0).to_bits());
        }
        let mid = row.origin.1 + 0.5 * row.dy;
        let want = 0.5 * (row.h(0, 0) + row.h(0, 1));
        prop_assert!((row.sample(t, mid) - want).abs() <= 1e-12 * (1.0 + want.abs()));
    }

    #[test]
    fn resample_identity_and_extent(
        seed in any::<u64>(),
        nx in 2usize..9,
        ny in 2usize..9,
    ) {
        let g = gen::fbm(nx, ny, 3, 6.0, seed);
        // Same-shape resample reproduces every node (grid-node sampling is
        // exact, so this is the identity up to f64 equality).
        let same = g.resample(nx, ny);
        for i in 0..nx {
            for j in 0..ny {
                prop_assert_eq!(same.h(i, j).to_bits(), g.h(i, j).to_bits());
            }
        }
        // Any resample preserves the world extent and the corner heights
        // (corners are grid nodes of both lattices).
        let r = g.resample(2, 2);
        prop_assert!((r.dx - (nx - 1) as f64 * g.dx).abs() < 1e-12);
        prop_assert!((r.dy - (ny - 1) as f64 * g.dy).abs() < 1e-12);
        prop_assert_eq!(r.h(0, 0).to_bits(), g.h(0, 0).to_bits());
        prop_assert_eq!(r.h(1, 1).to_bits(), g.h(nx - 1, ny - 1).to_bits());
    }
}
