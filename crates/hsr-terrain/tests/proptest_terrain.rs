//! Property tests for the terrain substrate: Delaunay correctness on
//! random point sets and generator validity across their parameter space.

use proptest::prelude::*;
use std::cmp::Ordering;

use hsr_geometry::{incircle, Point2};
use hsr_terrain::delaunay::Delaunay;
use hsr_terrain::gen;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn delaunay_empty_circumcircle(
        raw in prop::collection::vec((0i32..200, 0i32..200), 4..40),
    ) {
        // Deduplicate (the triangulator rejects exact duplicates).
        let mut seen = std::collections::HashSet::new();
        let pts: Vec<Point2> = raw
            .into_iter()
            .filter(|p| seen.insert(*p))
            .map(|(x, y)| Point2::new(x as f64, y as f64))
            .collect();
        prop_assume!(pts.len() >= 3);
        let Some(dt) = Delaunay::build(&pts) else {
            // All collinear — legitimately no triangulation.
            return Ok(());
        };
        let tris = dt.triangles();
        for t in &tris {
            let (a, b, c) = (pts[t[0]], pts[t[1]], pts[t[2]]);
            for (i, p) in pts.iter().enumerate() {
                if t.contains(&i) {
                    continue;
                }
                prop_assert_ne!(
                    incircle(a, b, c, *p),
                    Ordering::Greater,
                    "point {} strictly inside circumcircle of {:?}",
                    i,
                    t
                );
            }
        }
        // Euler count: for n points with h on the hull, 2n − 2 − h
        // triangles; we only check the upper bound (collinear subsets
        // reduce the count).
        prop_assert!(tris.len() <= 2 * pts.len());
    }

    #[test]
    fn generators_always_produce_valid_tins(
        seed in any::<u64>(),
        nx in 4usize..16,
        ny in 4usize..16,
        theta in 0.0f64..1.0,
    ) {
        // Every generator must yield a TIN that passes validation for any
        // seed/size — construction is `unwrap`ped inside `build`.
        for w in [
            gen::Workload::Fbm { nx, ny, seed },
            gen::Workload::Knob { nx, ny, theta, seed },
            gen::Workload::Amphitheater { nx, ny, seed },
        ] {
            let tin = w.build();
            let (nv, ne, nt) = tin.counts();
            prop_assert_eq!(nv, nx * ny);
            prop_assert_eq!(nt, 2 * (nx - 1) * (ny - 1));
            prop_assert!(ne > nv);
        }
    }

    #[test]
    fn grid_tin_euler_formula(nx in 2usize..24, ny in 2usize..24) {
        let tin = gen::fbm(nx, ny, 3, 5.0, 7).to_tin().unwrap();
        let (v, e, f) = tin.counts();
        // Euler for a planar triangulated disc: v − e + (f + 1) = 2.
        prop_assert_eq!(v as i64 - e as i64 + f as i64 + 1, 2);
    }

    #[test]
    fn obj_roundtrip_any_grid(seed in any::<u64>(), n in 4usize..12) {
        let tin = gen::gaussian_hills(n, n, 3, seed).to_tin().unwrap();
        let back = hsr_terrain::io::from_obj(&hsr_terrain::io::to_obj(&tin)).unwrap();
        prop_assert_eq!(tin.counts(), back.counts());
    }
}
