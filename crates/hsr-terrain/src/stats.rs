//! Terrain metrics used to characterise benchmark workloads.
//!
//! Output size in hidden-surface removal depends on the terrain's *shape*,
//! not just its size; these metrics (relief, slope distribution,
//! view-facing fraction) are what EXPERIMENTS.md uses to explain why one
//! family produces a large `k` and another a small one.

use crate::tin::Tin;

/// Summary statistics of a terrain.
#[derive(Clone, Copy, Debug, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct TerrainStats {
    /// Vertices / edges / faces.
    pub vertices: usize,
    /// Edge count (the algorithm's `n`).
    pub edges: usize,
    /// Face count.
    pub faces: usize,
    /// Height range `max z − min z`.
    pub relief: f64,
    /// Mean face gradient magnitude `|∇f|`.
    pub mean_slope: f64,
    /// Maximum face gradient magnitude.
    pub max_slope: f64,
    /// Fraction of faces whose normal has a positive component towards
    /// the viewer (`+x`): the fraction of the surface that *could* be
    /// visible front-on.
    pub view_facing_fraction: f64,
    /// Mean ground-plane area per face.
    pub mean_face_area: f64,
}

/// Computes the statistics in one pass over the faces.
pub fn terrain_stats(tin: &Tin) -> TerrainStats {
    let (nv, ne, nf) = tin.counts();
    let (zlo, zhi) = tin.height_range();
    let mut slope_sum = 0.0;
    let mut slope_max: f64 = 0.0;
    let mut facing = 0usize;
    let mut area_sum = 0.0;
    for t in tin.triangles() {
        let a = tin.vertices()[t[0] as usize];
        let b = tin.vertices()[t[1] as usize];
        let c = tin.vertices()[t[2] as usize];
        // Ground-plane edge vectors and signed area (CCW ⇒ positive).
        let (ux, uy, uz) = (b.x - a.x, b.y - a.y, b.z - a.z);
        let (vx, vy, vz) = (c.x - a.x, c.y - a.y, c.z - a.z);
        let area2 = ux * vy - uy * vx;
        if area2 == 0.0 {
            continue;
        }
        // Plane z = p·x + q·y + r over the face: solve the 2×2 system.
        let p = (uz * vy - vz * uy) / area2;
        let q = (ux * vz - vx * uz) / area2;
        let slope = (p * p + q * q).sqrt();
        slope_sum += slope;
        slope_max = slope_max.max(slope);
        // Surface normal ∝ (−p, −q, 1); faces the viewer when the x
        // component is positive, i.e. p < 0.
        if p < 0.0 {
            facing += 1;
        }
        area_sum += area2.abs() / 2.0;
    }
    TerrainStats {
        vertices: nv,
        edges: ne,
        faces: nf,
        relief: zhi - zlo,
        mean_slope: if nf == 0 { 0.0 } else { slope_sum / nf as f64 },
        max_slope: slope_max,
        view_facing_fraction: if nf == 0 {
            0.0
        } else {
            facing as f64 / nf as f64
        },
        mean_face_area: if nf == 0 { 0.0 } else { area_sum / nf as f64 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn flat_terrain_has_zero_slope() {
        let mut g = crate::grid::GridTerrain::flat(6, 6);
        g.fill(|i, j, _, _| 1e-9 * ((i * 31 + j) as f64)); // epsilon tilt for validity
        let s = terrain_stats(&g.to_tin().unwrap());
        assert!(s.mean_slope < 1e-6);
        assert!(s.relief < 1e-6);
        assert!((s.mean_face_area - 0.5).abs() < 1e-9);
    }

    #[test]
    fn amphitheater_faces_the_viewer() {
        // Rising away from the viewer ⇒ normals tilt towards +x everywhere.
        let tin = gen::amphitheater(10, 10, 10.0, 1).to_tin().unwrap();
        let s = terrain_stats(&tin);
        assert!(s.view_facing_fraction > 0.95, "{}", s.view_facing_fraction);
        assert!(s.relief > 5.0);
    }

    #[test]
    fn ridge_field_is_half_facing() {
        let tin = gen::ridge_field(24, 12, 6, 10.0, 2).to_tin().unwrap();
        let s = terrain_stats(&tin);
        assert!((0.25..=0.75).contains(&s.view_facing_fraction), "{}", s.view_facing_fraction);
        assert!(s.max_slope >= s.mean_slope);
    }
}
