//! Incremental Bowyer–Watson Delaunay triangulation.
//!
//! Used to triangulate scattered ground points into irregular TINs — the
//! stand-in for the paper's Atallah–Cole–Goodrich triangulation step (see
//! DESIGN.md §4.6). Point location walks from the most recent triangle;
//! the cavity is grown by exact [`hsr_geometry::incircle`] tests, so the
//! empty-circumcircle property holds exactly for points in general
//! position.

use hsr_geometry::{incircle, orient2d, Orientation, Point2};
use std::cmp::Ordering;
use std::collections::HashMap;

#[derive(Clone, Copy, Debug)]
struct Tri {
    /// Vertex indices, CCW.
    v: [usize; 3],
    /// Neighbor triangle across the edge opposite each vertex.
    n: [Option<usize>; 3],
    alive: bool,
}

/// A Delaunay triangulation of a point set.
pub struct Delaunay {
    /// Input points plus the three synthetic super-triangle vertices at the
    /// end.
    points: Vec<Point2>,
    tris: Vec<Tri>,
    n_real: usize,
    last_alive: usize,
}

impl Delaunay {
    /// Triangulates `points`. Duplicate points are rejected.
    ///
    /// Returns `None` when fewer than 3 points are given or all points are
    /// collinear (no triangulation exists).
    pub fn build(points: &[Point2]) -> Option<Delaunay> {
        if points.len() < 3 {
            return None;
        }
        // Super-triangle big enough to strictly contain everything.
        let (mut lo, mut hi) = (
            Point2::new(f64::INFINITY, f64::INFINITY),
            Point2::new(f64::NEG_INFINITY, f64::NEG_INFINITY),
        );
        for p in points {
            lo.x = lo.x.min(p.x);
            lo.y = lo.y.min(p.y);
            hi.x = hi.x.max(p.x);
            hi.y = hi.y.max(p.y);
        }
        let d = (hi.x - lo.x).max(hi.y - lo.y).max(1.0) * 64.0;
        let mid = Point2::new((lo.x + hi.x) / 2.0, (lo.y + hi.y) / 2.0);
        let n_real = points.len();
        let mut pts = points.to_vec();
        pts.push(Point2::new(mid.x - 2.0 * d, mid.y - d));
        pts.push(Point2::new(mid.x + 2.0 * d, mid.y - d));
        pts.push(Point2::new(mid.x, mid.y + 2.0 * d));

        let mut dt = Delaunay {
            points: pts,
            tris: vec![Tri { v: [n_real, n_real + 1, n_real + 2], n: [None; 3], alive: true }],
            n_real,
            last_alive: 0,
        };
        for i in 0..n_real {
            if !dt.insert(i) {
                return None; // duplicate point
            }
        }
        Some(dt)
    }

    /// The triangles among real (non-super) vertices, CCW.
    pub fn triangles(&self) -> Vec<[usize; 3]> {
        self.tris
            .iter()
            .filter(|t| t.alive && t.v.iter().all(|&v| v < self.n_real))
            .map(|t| t.v)
            .collect()
    }

    /// Walks from the last created triangle to one whose closed interior
    /// contains `p`.
    fn locate(&self, p: Point2) -> Option<usize> {
        let mut cur = self.last_alive;
        let mut hops = 0usize;
        'walk: loop {
            hops += 1;
            if hops > self.tris.len() * 4 + 16 {
                // Fallback for pathological walks: scan everything.
                return (0..self.tris.len()).find(|&t| self.tris[t].alive && self.contains(t, p));
            }
            let t = &self.tris[cur];
            for e in 0..3 {
                let a = self.points[t.v[(e + 1) % 3]];
                let b = self.points[t.v[(e + 2) % 3]];
                if orient2d(a, b, p) == Orientation::Cw {
                    match t.n[e] {
                        Some(nb) => {
                            cur = nb;
                            continue 'walk;
                        }
                        None => return None, // outside the super-triangle: impossible
                    }
                }
            }
            return Some(cur);
        }
    }

    fn contains(&self, t: usize, p: Point2) -> bool {
        let tv = self.tris[t].v;
        (0..3).all(|e| {
            let a = self.points[tv[(e + 1) % 3]];
            let b = self.points[tv[(e + 2) % 3]];
            orient2d(a, b, p) != Orientation::Cw
        })
    }

    /// Inserts point `i`; returns false when it coincides with an existing
    /// vertex.
    fn insert(&mut self, i: usize) -> bool {
        let p = self.points[i];
        let seed = self.locate(p).expect("point inside super-triangle");
        if self.tris[seed].v.iter().any(|&v| self.points[v] == p) {
            return false;
        }

        // Grow the cavity: all triangles whose circumcircle contains p.
        let mut bad = vec![seed];
        let mut seen = vec![false; self.tris.len()];
        seen[seed] = true;
        let mut stack = vec![seed];
        while let Some(t) = stack.pop() {
            for nb in self.tris[t].n.into_iter().flatten() {
                if seen[nb] || !self.tris[nb].alive {
                    continue;
                }
                seen[nb] = true;
                let v = self.tris[nb].v;
                let inside = incircle(self.points[v[0]], self.points[v[1]], self.points[v[2]], p)
                    == Ordering::Greater;
                if inside {
                    bad.push(nb);
                    stack.push(nb);
                }
            }
        }

        // Boundary edges of the cavity (directed CCW as seen from inside).
        let is_bad = |t: Option<usize>, bad: &[usize]| t.is_some_and(|t| bad.contains(&t));
        let mut boundary: Vec<(usize, usize, Option<usize>)> = Vec::new();
        for &t in &bad {
            let tri = self.tris[t];
            for e in 0..3 {
                if !is_bad(tri.n[e], &bad) {
                    boundary.push((tri.v[(e + 1) % 3], tri.v[(e + 2) % 3], tri.n[e]));
                }
            }
        }
        for &t in &bad {
            self.tris[t].alive = false;
        }

        // Fan of new triangles from p to each boundary edge.
        let mut edge_owner: HashMap<(usize, usize), usize> = HashMap::new();
        let first_new = self.tris.len();
        for &(a, b, outer) in &boundary {
            let id = self.tris.len();
            self.tris
                .push(Tri { v: [i, a, b], n: [outer, None, None], alive: true });
            // Fix the outer neighbor's back-pointer.
            if let Some(o) = outer {
                let ot = &mut self.tris[o];
                for e in 0..3 {
                    let (u, v) = (ot.v[(e + 1) % 3], ot.v[(e + 2) % 3]);
                    if (u, v) == (b, a) {
                        ot.n[e] = Some(id);
                    }
                }
            }
            edge_owner.insert((a, b), id);
        }
        // Link the fan triangles to each other around p.
        for &(a, b, _) in &boundary {
            let id = edge_owner[&(a, b)];
            // Edge opposite vertex 1 (= a) connects (b, p): shared with the
            // fan triangle owning boundary edge starting at b.
            if let Some(&next) = edge_owner.get(&find_next(&boundary, b)) {
                self.tris[id].n[1] = Some(next);
            }
            // Edge opposite vertex 2 (= b) connects (p, a): shared with the
            // fan triangle owning the boundary edge ending at a.
            if let Some(&prev) = edge_owner.get(&find_prev(&boundary, a)) {
                self.tris[id].n[2] = Some(prev);
            }
        }
        self.last_alive = first_new;
        true
    }
}

fn find_next(boundary: &[(usize, usize, Option<usize>)], start: usize) -> (usize, usize) {
    boundary
        .iter()
        .find(|&&(a, _, _)| a == start)
        .map(|&(a, b, _)| (a, b))
        .unwrap_or((usize::MAX, usize::MAX))
}

fn find_prev(boundary: &[(usize, usize, Option<usize>)], end: usize) -> (usize, usize) {
    boundary
        .iter()
        .find(|&&(_, b, _)| b == end)
        .map(|&(a, b, _)| (a, b))
        .unwrap_or((usize::MAX, usize::MAX))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn check_delaunay_property(points: &[Point2], tris: &[[usize; 3]]) {
        for t in tris {
            let (a, b, c) = (points[t[0]], points[t[1]], points[t[2]]);
            for (i, &p) in points.iter().enumerate() {
                if t.contains(&i) {
                    continue;
                }
                assert_ne!(
                    incircle(a, b, c, p),
                    Ordering::Greater,
                    "point {i} inside circumcircle of {t:?}"
                );
            }
        }
    }

    #[test]
    fn square_two_triangles() {
        let pts = vec![
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(1.0, 1.0),
            Point2::new(0.0, 1.0),
        ];
        let dt = Delaunay::build(&pts).unwrap();
        let tris = dt.triangles();
        assert_eq!(tris.len(), 2);
        check_delaunay_property(&pts, &tris);
    }

    #[test]
    fn random_points_satisfy_empty_circle() {
        let mut rng = SmallRng::seed_from_u64(42);
        let pts: Vec<Point2> = (0..120)
            .map(|_| Point2::new(rng.random::<f64>() * 100.0, rng.random::<f64>() * 100.0))
            .collect();
        let dt = Delaunay::build(&pts).unwrap();
        let tris = dt.triangles();
        // Euler: for n points with h hull points, triangles = 2n - 2 - h.
        assert!(tris.len() > pts.len());
        check_delaunay_property(&pts, &tris);
    }

    #[test]
    fn rejects_duplicates_and_degenerate() {
        let dup = vec![
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(0.0, 0.0),
        ];
        assert!(Delaunay::build(&dup).is_none());
        assert!(Delaunay::build(&[Point2::new(0.0, 0.0)]).is_none());
    }

    #[test]
    fn grid_points_handle_cocircularity() {
        // A 5×5 integer grid is maximally cocircular; the triangulation must
        // still be valid (no strictly-inside violations).
        let mut pts = Vec::new();
        for i in 0..5 {
            for j in 0..5 {
                pts.push(Point2::new(i as f64, j as f64));
            }
        }
        let dt = Delaunay::build(&pts).unwrap();
        let tris = dt.triangles();
        assert_eq!(tris.len(), 2 * 4 * 4); // full grid, 2 per cell
        check_delaunay_property(&pts, &tris);
    }
}
