//! Seeded synthetic terrain generators with controllable output size.
//!
//! The paper evaluates nothing empirically, so the reproduction needs
//! workload families that sweep the two quantities its bounds depend on:
//! the input size `n` and the output (visible-image) size `k`.
//!
//! | family | `k` behaviour |
//! |---|---|
//! | [`fbm`], [`diamond_square`], [`gaussian_hills`] | "realistic" mid-range `k` |
//! | [`amphitheater`] | terrain rises away from the viewer ⇒ `k ≈ Θ(n)` (everything visible) |
//! | [`ridge_field`] | tall front ridge ⇒ `k ≪ n` (almost everything hidden) |
//! | [`occlusion_knob`] | continuous interpolation between the two above |
//! | [`quadratic_comb`] | `k = Θ(n²)` visible pieces (the worst-case the paper cites) |
//! | [`random_tin`] | irregular Delaunay TIN with fBm heights |

use crate::delaunay::Delaunay;
use crate::grid::GridTerrain;
use crate::tin::Tin;
use hsr_geometry::{Point2, Point3};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Deterministic per-sample jitter in `[-1, 1]` from integer coordinates;
/// used to pull structured terrains into general position.
fn hash_jitter(seed: u64, i: u64, j: u64) -> f64 {
    let mut z =
        seed ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ j.wrapping_mul(0xc2b2_ae3d_27d4_eb4f);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    (z as f64 / u64::MAX as f64) * 2.0 - 1.0
}

/// Lattice value noise with bilinear interpolation and smoothstep fade.
struct ValueNoise {
    seed: u64,
}

impl ValueNoise {
    fn sample(&self, x: f64, y: f64) -> f64 {
        let (xi, yi) = (x.floor(), y.floor());
        let (fx, fy) = (x - xi, y - yi);
        let fade = |t: f64| t * t * (3.0 - 2.0 * t);
        let (ux, uy) = (fade(fx), fade(fy));
        let (xi, yi) = (xi as i64 as u64, yi as i64 as u64);
        let v00 = hash_jitter(self.seed, xi, yi);
        let v10 = hash_jitter(self.seed, xi.wrapping_add(1), yi);
        let v01 = hash_jitter(self.seed, xi, yi.wrapping_add(1));
        let v11 = hash_jitter(self.seed, xi.wrapping_add(1), yi.wrapping_add(1));
        let a = v00 + (v10 - v00) * ux;
        let b = v01 + (v11 - v01) * ux;
        a + (b - a) * uy
    }

    /// Fractional Brownian motion: `octaves` layers of value noise.
    fn fbm(&self, mut x: f64, mut y: f64, octaves: u32) -> f64 {
        let mut sum = 0.0;
        let mut amp = 1.0;
        let mut norm = 0.0;
        for o in 0..octaves {
            sum += amp * ValueNoise { seed: self.seed.wrapping_add(o as u64) }.sample(x, y);
            norm += amp;
            amp *= 0.5;
            x *= 2.0;
            y *= 2.0;
        }
        sum / norm
    }
}

/// Fractal (fBm value-noise) terrain on an `nx × ny` grid.
pub fn fbm(nx: usize, ny: usize, octaves: u32, amplitude: f64, seed: u64) -> GridTerrain {
    let mut g = GridTerrain::flat(nx, ny);
    let noise = ValueNoise { seed };
    let scale = 8.0 / nx.max(ny) as f64;
    g.fill(|i, j, x, y| {
        amplitude * noise.fbm(x * scale, y * scale, octaves)
            + 1e-7 * hash_jitter(seed ^ 0xfeed, i as u64, j as u64)
    });
    g
}

/// Diamond-square fractal terrain on a `(2^k + 1)²` grid.
pub fn diamond_square(size_pow2: u32, roughness: f64, amplitude: f64, seed: u64) -> GridTerrain {
    let n = (1usize << size_pow2) + 1;
    let mut g = GridTerrain::flat(n, n);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut step = n - 1;
    let mut amp = amplitude;
    // Seed corners.
    for (i, j) in [(0, 0), (0, n - 1), (n - 1, 0), (n - 1, n - 1)] {
        *g.h_mut(i, j) = rng.random_range(-amp..amp);
    }
    while step > 1 {
        let half = step / 2;
        // Diamond step.
        for i in (half..n).step_by(step) {
            for j in (half..n).step_by(step) {
                let avg = (g.h(i - half, j - half)
                    + g.h(i - half, j + half)
                    + g.h(i + half, j - half)
                    + g.h(i + half, j + half))
                    / 4.0;
                *g.h_mut(i, j) = avg + rng.random_range(-amp..amp);
            }
        }
        // Square step.
        for i in (0..n).step_by(half) {
            let j0 = if (i / half).is_multiple_of(2) {
                half
            } else {
                0
            };
            for j in (j0..n).step_by(step) {
                let mut sum = 0.0;
                let mut cnt = 0.0;
                if i >= half {
                    sum += g.h(i - half, j);
                    cnt += 1.0;
                }
                if i + half < n {
                    sum += g.h(i + half, j);
                    cnt += 1.0;
                }
                if j >= half {
                    sum += g.h(i, j - half);
                    cnt += 1.0;
                }
                if j + half < n {
                    sum += g.h(i, j + half);
                    cnt += 1.0;
                }
                *g.h_mut(i, j) = sum / cnt + rng.random_range(-amp..amp);
            }
        }
        step = half;
        amp *= roughness;
    }
    g
}

/// A field of `n_hills` Gaussian hills at random positions/widths/heights.
pub fn gaussian_hills(nx: usize, ny: usize, n_hills: usize, seed: u64) -> GridTerrain {
    let mut rng = SmallRng::seed_from_u64(seed);
    let hills: Vec<(f64, f64, f64, f64)> = (0..n_hills)
        .map(|_| {
            (
                rng.random_range(0.0..nx as f64),
                rng.random_range(0.0..ny as f64),
                rng.random_range(nx.min(ny) as f64 / 24.0..nx.min(ny) as f64 / 6.0),
                rng.random_range(2.0..14.0),
            )
        })
        .collect();
    let mut g = GridTerrain::flat(nx, ny);
    g.fill(|i, j, x, y| {
        let mut z = 0.0;
        for &(cx, cy, w, h) in &hills {
            let d2 = (x - cx).powi(2) + (y - cy).powi(2);
            z += h * (-d2 / (2.0 * w * w)).exp();
        }
        z + 1e-7 * hash_jitter(seed ^ 0x1115, i as u64, j as u64)
    });
    g
}

/// Terrain rising away from the viewer: every edge is visible, `k = Θ(n)`.
pub fn amphitheater(nx: usize, ny: usize, amplitude: f64, seed: u64) -> GridTerrain {
    let mut g = GridTerrain::flat(nx, ny);
    g.fill(|i, j, _x, y| {
        // Viewer at x = +∞ ⇒ smaller i (smaller x) is farther ⇒ higher.
        let rise = amplitude * (nx - 1 - i) as f64 / (nx - 1) as f64;
        let bowl = 0.05 * amplitude * (y * 0.37).sin();
        rise + bowl + 1e-6 * hash_jitter(seed, i as u64, j as u64)
    });
    g
}

/// `n_ridges` ridges perpendicular to the view, front ridge tallest:
/// almost everything behind it is hidden (`k ≪ n`).
pub fn ridge_field(
    nx: usize,
    ny: usize,
    n_ridges: usize,
    amplitude: f64,
    seed: u64,
) -> GridTerrain {
    let mut g = GridTerrain::flat(nx, ny);
    let period = (nx / n_ridges.max(1)).max(2);
    g.fill(|i, j, _x, y| {
        let phase = (i % period) as f64 / period as f64;
        let ridge = (phase * std::f64::consts::PI).sin();
        // Closer ridges (larger i) are taller: the front one occludes.
        let gain = amplitude * (0.2 + 0.8 * i as f64 / (nx - 1) as f64);
        gain * ridge
            + 0.02 * amplitude * (y * 0.13).sin()
            + 1e-6 * hash_jitter(seed, i as u64, j as u64)
    });
    g
}

/// Output-size knob: interpolates between [`amphitheater`] (`theta = 0`,
/// `k ≈ n`) and a single tall front wall (`theta = 1`, `k ≪ n`).
pub fn occlusion_knob(nx: usize, ny: usize, theta: f64, amplitude: f64, seed: u64) -> GridTerrain {
    assert!((0.0..=1.0).contains(&theta), "theta must be in [0, 1]");
    let mut g = GridTerrain::flat(nx, ny);
    let noise = ValueNoise { seed };
    let scale = 8.0 / nx.max(ny) as f64;
    let wall_row = nx - 2;
    g.fill(|i, j, x, y| {
        let rise = (1.0 - theta) * amplitude * (nx - 1 - i) as f64 / (nx - 1) as f64;
        let wall = if i == wall_row {
            theta * 3.0 * amplitude
        } else {
            0.0
        };
        let tex = 0.05 * amplitude * noise.fbm(x * scale, y * scale, 3);
        rise + wall + tex + 1e-6 * hash_jitter(seed, i as u64, j as u64)
    });
    g
}

/// Impact-crater field: overlapping ring craters on a gentle plain —
/// concave shapes with strong self-occlusion at grazing views.
pub fn craters(nx: usize, ny: usize, n_craters: usize, seed: u64) -> GridTerrain {
    let mut rng = SmallRng::seed_from_u64(seed);
    let craters: Vec<(f64, f64, f64, f64)> = (0..n_craters)
        .map(|_| {
            (
                rng.random_range(0.0..nx as f64),
                rng.random_range(0.0..ny as f64),
                rng.random_range(nx.min(ny) as f64 / 16.0..nx.min(ny) as f64 / 5.0),
                rng.random_range(1.5..6.0),
            )
        })
        .collect();
    let mut g = GridTerrain::flat(nx, ny);
    g.fill(|i, j, x, y| {
        let mut z = 0.0;
        for &(cx, cy, r, depth) in &craters {
            let d = ((x - cx).powi(2) + (y - cy).powi(2)).sqrt() / r;
            if d < 1.4 {
                // Rim at d = 1, bowl below the plain inside.
                let rim = (-(d - 1.0).powi(2) * 8.0).exp() * 0.6 * depth;
                let bowl = if d < 1.0 { -depth * (1.0 - d * d) } else { 0.0 };
                z += rim + bowl;
            }
        }
        z + 1e-6 * hash_jitter(seed ^ 0xc2a7, i as u64, j as u64)
    });
    g
}

/// A canyon cut through a plateau along the view direction: steep walls
/// whose visibility flips abruptly with the view azimuth.
pub fn canyon(nx: usize, ny: usize, depth: f64, seed: u64) -> GridTerrain {
    let mut g = GridTerrain::flat(nx, ny);
    let center = ny as f64 / 2.0;
    let half_width = ny as f64 / 6.0;
    g.fill(|i, j, _x, y| {
        let d = ((y - center).abs() / half_width).min(1.5);
        // Plateau at `depth`, canyon floor at 0, smooth walls.
        let wall = (d.min(1.0) * std::f64::consts::FRAC_PI_2).sin();
        depth * wall + 1e-6 * hash_jitter(seed, i as u64, j as u64)
    });
    g
}

/// Agricultural terraces: broad steps rising away from the viewer, each
/// step edge a long visible silhouette — output size concentrated in a
/// few long image features.
pub fn terraces(nx: usize, ny: usize, n_steps: usize, seed: u64) -> GridTerrain {
    let mut g = GridTerrain::flat(nx, ny);
    let step = (nx / n_steps.max(1)).max(1);
    g.fill(|i, j, _x, y| {
        let level = (nx - 1 - i) / step; // higher away from the viewer
        level as f64 * 3.0 + 0.05 * (y * 0.41).sin() + 1e-6 * hash_jitter(seed, i as u64, j as u64)
    });
    g
}

/// The quadratic-visibility adversary: a front comb of `m` teeth and `m`
/// long ridges behind it, rising with distance. Every ridge is visible
/// through every gap, so the visible image has `Θ(m²)` vertices while the
/// terrain has only `Θ(m)` vertices — the worst case the paper cites
/// ("even for terrains … the maximum size of the visible image can be
/// Ω(n²)").
pub fn quadratic_comb(m: usize) -> Tin {
    assert!(m >= 2, "comb needs at least 2 teeth");
    let cols = 2 * m + 1; // fence sample columns
    let width = (cols - 1) as f64;
    let tooth_h = 10.0;
    let mut vertices: Vec<Point3> = Vec::with_capacity(3 * cols + 2 * m);
    let mut triangles: Vec<[u32; 3]> = Vec::new();

    // Fence rows at x = m+1 (base, z=0), x = m+2 (sawtooth), x = m+3 (base).
    let xf = m as f64;
    let row_base_back: Vec<u32> = (0..cols)
        .map(|j| {
            vertices.push(Point3::new(xf + 1.0, j as f64, 0.0));
            (vertices.len() - 1) as u32
        })
        .collect();
    let row_crest: Vec<u32> = (0..cols)
        .map(|j| {
            let z = if j % 2 == 1 { tooth_h } else { 0.0 };
            vertices.push(Point3::new(xf + 2.0, j as f64, z));
            (vertices.len() - 1) as u32
        })
        .collect();
    let row_base_front: Vec<u32> = (0..cols)
        .map(|j| {
            vertices.push(Point3::new(xf + 3.0, j as f64, 0.0));
            (vertices.len() - 1) as u32
        })
        .collect();
    for j in 0..cols - 1 {
        for (r0, r1) in [(&row_base_back, &row_crest), (&row_crest, &row_base_front)] {
            triangles.push([r0[j], r1[j], r1[j + 1]]);
            triangles.push([r0[j], r1[j + 1], r0[j + 1]]);
        }
    }

    // Back ridges: ridge i at x = m - i, height rising with distance but
    // always below the teeth.
    let mut ridge_lr: Vec<(u32, u32)> = Vec::with_capacity(m);
    for i in 0..m {
        let x = (m - i) as f64;
        let h = 1.0 + 4.0 * i as f64 / (m.max(2) - 1) as f64; // in [1, 5]
        vertices.push(Point3::new(x, 0.0, h));
        let l = (vertices.len() - 1) as u32;
        vertices.push(Point3::new(x, width, h));
        let r = (vertices.len() - 1) as u32;
        ridge_lr.push((l, r));
    }
    // Strip between the nearest ridge (x = m) and the fence base row
    // (x = m+1): a fan from the ridge's left endpoint over the base row,
    // closed by a triangle to the ridge's right endpoint.
    let (l0, r0) = ridge_lr[0];
    for j in 0..cols - 1 {
        triangles.push([l0, row_base_back[j], row_base_back[j + 1]]);
    }
    triangles.push([l0, row_base_back[cols - 1], r0]);
    // Strips between consecutive ridges: one rectangle each.
    for w in ridge_lr.windows(2) {
        let ((la, ra), (lb, rb)) = (w[0], w[1]);
        triangles.push([lb, la, ra]);
        triangles.push([lb, ra, rb]);
    }

    Tin::new(vertices, triangles).expect("comb construction is valid")
}

/// An irregular TIN: `n` random ground points, Delaunay-triangulated, with
/// fBm heights.
pub fn random_tin(n: usize, amplitude: f64, seed: u64) -> Tin {
    let mut rng = SmallRng::seed_from_u64(seed);
    let extent = (n as f64).sqrt() * 4.0;
    let mut pts: Vec<Point2> = Vec::with_capacity(n);
    while pts.len() < n {
        let p = Point2::new(rng.random_range(0.0..extent), rng.random_range(0.0..extent));
        // Exact duplicates would violate the function-graph property.
        if !pts.contains(&p) {
            pts.push(p);
        }
    }
    let dt = Delaunay::build(&pts).expect("random points triangulate");
    let noise = ValueNoise { seed: seed ^ 0xabcd };
    let scale = 8.0 / extent;
    let vertices: Vec<Point3> = pts
        .iter()
        .map(|p| Point3::new(p.x, p.y, amplitude * noise.fbm(p.x * scale, p.y * scale, 4)))
        .collect();
    let triangles: Vec<[u32; 3]> = dt
        .triangles()
        .into_iter()
        .map(|t| [t[0] as u32, t[1] as u32, t[2] as u32])
        .collect();
    Tin::new(vertices, triangles).expect("delaunay TIN is valid")
}

/// A named, serializable workload description used by the bench harness.
#[derive(Clone, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Workload {
    /// Fractal terrain (`fbm`).
    Fbm {
        /// Grid size (depth × breadth).
        nx: usize,
        /// Grid size across the view.
        ny: usize,
        /// RNG seed.
        seed: u64,
    },
    /// Gaussian hills.
    Hills {
        /// Grid size (depth).
        nx: usize,
        /// Grid size (breadth).
        ny: usize,
        /// Number of hills.
        hills: usize,
        /// RNG seed.
        seed: u64,
    },
    /// Ridge field (small `k`).
    Ridges {
        /// Grid size (depth).
        nx: usize,
        /// Grid size (breadth).
        ny: usize,
        /// Number of ridges.
        ridges: usize,
        /// RNG seed.
        seed: u64,
    },
    /// Rising terrain (large `k`).
    Amphitheater {
        /// Grid size (depth).
        nx: usize,
        /// Grid size (breadth).
        ny: usize,
        /// RNG seed.
        seed: u64,
    },
    /// Output-size knob `theta ∈ [0, 1]`.
    Knob {
        /// Grid size (depth).
        nx: usize,
        /// Grid size (breadth).
        ny: usize,
        /// Occlusion parameter: 0 = everything visible, 1 = front wall.
        theta: f64,
        /// RNG seed.
        seed: u64,
    },
    /// Quadratic-visibility comb with `m` teeth.
    Comb {
        /// Number of teeth (and of back ridges).
        m: usize,
    },
    /// Irregular Delaunay TIN.
    DelaunayFbm {
        /// Number of scattered points.
        n: usize,
        /// RNG seed.
        seed: u64,
    },
    /// Impact-crater field.
    Craters {
        /// Grid size (depth).
        nx: usize,
        /// Grid size (breadth).
        ny: usize,
        /// Number of craters.
        craters: usize,
        /// RNG seed.
        seed: u64,
    },
    /// Canyon through a plateau.
    Canyon {
        /// Grid size (depth).
        nx: usize,
        /// Grid size (breadth).
        ny: usize,
        /// RNG seed.
        seed: u64,
    },
    /// Terraced steps rising away from the viewer.
    Terraces {
        /// Grid size (depth).
        nx: usize,
        /// Grid size (breadth).
        ny: usize,
        /// Number of steps.
        steps: usize,
        /// RNG seed.
        seed: u64,
    },
}

impl Workload {
    /// Builds the TIN for this workload.
    pub fn build(&self) -> Tin {
        match *self {
            Workload::Fbm { nx, ny, seed } => fbm(nx, ny, 5, 12.0, seed).to_tin().unwrap(),
            Workload::Hills { nx, ny, hills, seed } => {
                gaussian_hills(nx, ny, hills, seed).to_tin().unwrap()
            }
            Workload::Ridges { nx, ny, ridges, seed } => {
                ridge_field(nx, ny, ridges, 15.0, seed).to_tin().unwrap()
            }
            Workload::Amphitheater { nx, ny, seed } => {
                amphitheater(nx, ny, 10.0, seed).to_tin().unwrap()
            }
            Workload::Knob { nx, ny, theta, seed } => {
                occlusion_knob(nx, ny, theta, 10.0, seed).to_tin().unwrap()
            }
            Workload::Comb { m } => quadratic_comb(m),
            Workload::DelaunayFbm { n, seed } => random_tin(n, 10.0, seed),
            Workload::Craters { nx, ny, craters: c, seed } => {
                craters(nx, ny, c, seed).to_tin().unwrap()
            }
            Workload::Canyon { nx, ny, seed } => canyon(nx, ny, 8.0, seed).to_tin().unwrap(),
            Workload::Terraces { nx, ny, steps, seed } => {
                terraces(nx, ny, steps, seed).to_tin().unwrap()
            }
        }
    }

    /// Short name for report tables.
    pub fn name(&self) -> String {
        match self {
            Workload::Fbm { nx, ny, .. } => format!("fbm-{nx}x{ny}"),
            Workload::Hills { nx, ny, hills, .. } => format!("hills{hills}-{nx}x{ny}"),
            Workload::Ridges { nx, ny, ridges, .. } => format!("ridges{ridges}-{nx}x{ny}"),
            Workload::Amphitheater { nx, ny, .. } => format!("amph-{nx}x{ny}"),
            Workload::Knob { nx, ny, theta, .. } => format!("knob{theta:.2}-{nx}x{ny}"),
            Workload::Comb { m } => format!("comb-{m}"),
            Workload::DelaunayFbm { n, .. } => format!("delaunay-{n}"),
            Workload::Craters { nx, ny, craters, .. } => format!("craters{craters}-{nx}x{ny}"),
            Workload::Canyon { nx, ny, .. } => format!("canyon-{nx}x{ny}"),
            Workload::Terraces { nx, ny, steps, .. } => format!("terraces{steps}-{nx}x{ny}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fbm_is_deterministic() {
        let a = fbm(16, 16, 4, 10.0, 7);
        let b = fbm(16, 16, 4, 10.0, 7);
        assert_eq!(a.heights, b.heights);
        let c = fbm(16, 16, 4, 10.0, 8);
        assert_ne!(a.heights, c.heights);
    }

    #[test]
    fn generators_produce_valid_tins() {
        for w in [
            Workload::Fbm { nx: 12, ny: 14, seed: 1 },
            Workload::Hills { nx: 12, ny: 12, hills: 5, seed: 2 },
            Workload::Ridges { nx: 16, ny: 10, ridges: 4, seed: 3 },
            Workload::Amphitheater { nx: 10, ny: 10, seed: 4 },
            Workload::Knob { nx: 12, ny: 12, theta: 0.5, seed: 5 },
            Workload::Comb { m: 4 },
            Workload::DelaunayFbm { n: 60, seed: 6 },
        ] {
            let tin = w.build();
            let (nv, ne, nt) = tin.counts();
            assert!(nv > 4 && ne > 4 && nt > 2, "workload {} too small", w.name());
        }
    }

    #[test]
    fn diamond_square_sizes() {
        let g = diamond_square(4, 0.5, 8.0, 9);
        assert_eq!(g.nx, 17);
        assert_eq!(g.ny, 17);
        assert!(g.to_tin().is_ok());
    }

    #[test]
    fn amphitheater_rises_away() {
        let g = amphitheater(10, 4, 10.0, 0);
        // Row 0 is farthest (smallest x) and must be highest.
        assert!(g.h(0, 2) > g.h(9, 2));
    }

    #[test]
    fn new_generators_are_valid_and_shaped() {
        let c = craters(20, 20, 5, 3);
        assert!(c.to_tin().is_ok());
        // Craters dig below the plain somewhere.
        assert!(c.heights.iter().cloned().fold(f64::INFINITY, f64::min) < -0.5);

        let k = canyon(16, 18, 8.0, 4);
        let tin = k.to_tin().unwrap();
        let (zlo, zhi) = tin.height_range();
        assert!(zhi - zlo > 7.0, "canyon relief {}", zhi - zlo);
        // Floor near the centerline, plateau at the edges.
        assert!(k.h(8, 9) < 1.0);
        assert!(k.h(8, 0) > 7.0);

        let t = terraces(24, 10, 6, 5);
        assert!(t.to_tin().is_ok());
        // Monotone steps away from the viewer.
        assert!(t.h(0, 5) > t.h(23, 5));
    }

    #[test]
    fn comb_structure() {
        let tin = quadratic_comb(8);
        let (nv, _, _) = tin.counts();
        assert_eq!(nv, 3 * 17 + 16);
        let (zlo, zhi) = tin.height_range();
        assert_eq!(zlo, 0.0);
        assert_eq!(zhi, 10.0);
    }

    #[test]
    fn knob_bounds_checked() {
        let g0 = occlusion_knob(10, 10, 0.0, 10.0, 1);
        let g1 = occlusion_knob(10, 10, 1.0, 10.0, 1);
        // theta=1 has a dominant wall row.
        let wall_max = (0..10).map(|j| g1.h(8, j)).fold(f64::MIN, f64::max);
        let rest_max = (0..8)
            .flat_map(|i| (0..10).map(move |j| (i, j)))
            .map(|(i, j)| g1.h(i, j))
            .fold(f64::MIN, f64::max);
        assert!(wall_max > 2.0 * rest_max.max(1.0));
        // theta=0 rises monotonically away.
        assert!(g0.h(0, 5) > g0.h(9, 5));
    }
}
