//! Triangulated irregular networks (TINs).
//!
//! The TIN is the graph `G` of the paper's §2: vertices are `(x, y, z)`
//! triples with `z = f(x, y)`, edges are the segments of the polyhedral
//! surface. Construction validates the terrain property prerequisites
//! (finite coordinates, distinct ground positions, non-degenerate projected
//! triangles) and derives the edge set and edge↔triangle adjacency used by
//! the front-to-back ordering.

use hsr_geometry::{orient2d, Orientation, Point2, Point3};
use hsr_pram::cost::{add_work, Category};
use std::collections::HashMap;

/// Errors raised by [`Tin::new`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TinError {
    /// A vertex coordinate is NaN or infinite.
    NonFiniteVertex(usize),
    /// Two vertices share the same `(x, y)` ground position, violating the
    /// function-graph property.
    DuplicateGroundPosition(usize, usize),
    /// A triangle references a vertex index out of range.
    BadIndex(usize),
    /// A triangle is degenerate (collinear) in ground projection.
    DegenerateTriangle(usize),
    /// An edge is shared by more than two triangles (non-manifold input).
    NonManifoldEdge(u32, u32),
    /// A vertex transform reversed a triangle's ground orientation
    /// (the transform passed to [`Tin::remap_vertices`] must be
    /// orientation-preserving).
    OrientationFlipped(usize),
}

impl std::fmt::Display for TinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TinError::NonFiniteVertex(i) => write!(f, "vertex {i} has a non-finite coordinate"),
            TinError::DuplicateGroundPosition(i, j) => {
                write!(f, "vertices {i} and {j} share a ground (x, y) position")
            }
            TinError::BadIndex(t) => write!(f, "triangle {t} references an invalid vertex"),
            TinError::DegenerateTriangle(t) => {
                write!(f, "triangle {t} is degenerate in ground projection")
            }
            TinError::NonManifoldEdge(a, b) => {
                write!(f, "edge ({a}, {b}) is shared by more than two triangles")
            }
            TinError::OrientationFlipped(t) => {
                write!(f, "vertex transform reversed the ground orientation of triangle {t}")
            }
        }
    }
}

impl std::error::Error for TinError {}

/// A validated triangulated terrain.
#[derive(Clone, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Tin {
    vertices: Vec<Point3>,
    /// Triangles as vertex-index triples, normalised CCW in ground
    /// projection.
    triangles: Vec<[u32; 3]>,
    /// Unique undirected edges, each stored with the smaller index first.
    edges: Vec<[u32; 2]>,
    /// For each triangle, the ids of its three edges
    /// (edge `i` is opposite corner `i`, i.e. connects corners `i+1, i+2`).
    tri_edges: Vec<[u32; 3]>,
    /// For each edge, the (up to two) incident triangles.
    edge_tris: Vec<[Option<u32>; 2]>,
}

impl Tin {
    /// Builds and validates a TIN from vertices and triangles.
    pub fn new(vertices: Vec<Point3>, triangles: Vec<[u32; 3]>) -> Result<Self, TinError> {
        for (i, v) in vertices.iter().enumerate() {
            if !v.is_finite() {
                return Err(TinError::NonFiniteVertex(i));
            }
        }
        // Distinct ground positions: sort indices by (x, y) and scan.
        let mut order: Vec<usize> = (0..vertices.len()).collect();
        order.sort_by(|&a, &b| {
            let (va, vb) = (vertices[a], vertices[b]);
            va.x.total_cmp(&vb.x).then(va.y.total_cmp(&vb.y))
        });
        for w in order.windows(2) {
            let (a, b) = (w[0], w[1]);
            if vertices[a].x == vertices[b].x && vertices[a].y == vertices[b].y {
                return Err(TinError::DuplicateGroundPosition(a.min(b), a.max(b)));
            }
        }

        let ground = |i: u32| -> Point2 { vertices[i as usize].ground() };
        let mut tris = Vec::with_capacity(triangles.len());
        for (t, &[a, b, c]) in triangles.iter().enumerate() {
            let n = vertices.len() as u32;
            if a >= n || b >= n || c >= n || a == b || b == c || a == c {
                return Err(TinError::BadIndex(t));
            }
            match orient2d(ground(a), ground(b), ground(c)) {
                Orientation::Ccw => tris.push([a, b, c]),
                Orientation::Cw => tris.push([a, c, b]),
                Orientation::Collinear => return Err(TinError::DegenerateTriangle(t)),
            }
        }

        // Edge extraction with adjacency.
        let mut edge_ids: HashMap<(u32, u32), u32> = HashMap::with_capacity(tris.len() * 2);
        let mut edges: Vec<[u32; 2]> = Vec::with_capacity(tris.len() * 2);
        let mut edge_tris: Vec<[Option<u32>; 2]> = Vec::with_capacity(tris.len() * 2);
        let mut tri_edges = Vec::with_capacity(tris.len());
        for (t, &[a, b, c]) in tris.iter().enumerate() {
            let mut te = [0u32; 3];
            for (slot, (u, v)) in [(b, c), (c, a), (a, b)].into_iter().enumerate() {
                let key = (u.min(v), u.max(v));
                let id = *edge_ids.entry(key).or_insert_with(|| {
                    edges.push([key.0, key.1]);
                    edge_tris.push([None, None]);
                    (edges.len() - 1) as u32
                });
                let et = &mut edge_tris[id as usize];
                if et[0].is_none() {
                    et[0] = Some(t as u32);
                } else if et[1].is_none() {
                    et[1] = Some(t as u32);
                } else {
                    return Err(TinError::NonManifoldEdge(key.0, key.1));
                }
                te[slot] = id;
            }
            tri_edges.push(te);
        }

        add_work(Category::TinBuild, 1);
        Ok(Tin { vertices, triangles: tris, edges, tri_edges, edge_tris })
    }

    /// Vertex positions.
    #[inline]
    pub fn vertices(&self) -> &[Point3] {
        &self.vertices
    }

    /// Triangles (CCW in ground projection).
    #[inline]
    pub fn triangles(&self) -> &[[u32; 3]] {
        &self.triangles
    }

    /// Unique undirected edges.
    #[inline]
    pub fn edges(&self) -> &[[u32; 2]] {
        &self.edges
    }

    /// Edge ids of a triangle (edge `i` is opposite corner `i`).
    #[inline]
    pub fn tri_edges(&self, t: usize) -> [u32; 3] {
        self.tri_edges[t]
    }

    /// Incident triangles of an edge.
    #[inline]
    pub fn edge_tris(&self, e: usize) -> [Option<u32>; 2] {
        self.edge_tris[e]
    }

    /// Number of vertices / edges / triangles.
    pub fn counts(&self) -> (usize, usize, usize) {
        (self.vertices.len(), self.edges.len(), self.triangles.len())
    }

    /// The two 3-D endpoints of an edge.
    #[inline]
    pub fn edge_points(&self, e: usize) -> (Point3, Point3) {
        let [a, b] = self.edges[e];
        (self.vertices[a as usize], self.vertices[b as usize])
    }

    /// A copy of the terrain with its vertices transformed by `f`, reusing
    /// the existing edge set and edge↔triangle adjacency instead of
    /// rebuilding them.
    ///
    /// This is the cheap path for view changes: a rotation or a projective
    /// pre-transform alters only vertex positions, not the combinatorial
    /// structure, so the `O(n)` hashing/sorting of a full [`Tin::new`]
    /// build (counted under `Category::TinBuild`) is skipped. The result
    /// is still checked per vertex (finiteness) and per triangle (ground
    /// orientation must stay CCW), which catches numeric collapses;
    /// callers must supply a transform that is injective and
    /// orientation-preserving on the ground plane — rotations about `z`
    /// and the perspective pre-transform both are.
    pub fn remap_vertices(&self, f: impl Fn(Point3) -> Point3) -> Result<Tin, TinError> {
        let vertices: Vec<Point3> = self.vertices.iter().map(|&v| f(v)).collect();
        for (i, v) in vertices.iter().enumerate() {
            if !v.is_finite() {
                return Err(TinError::NonFiniteVertex(i));
            }
        }
        let ground = |i: u32| -> Point2 { vertices[i as usize].ground() };
        for (t, &[a, b, c]) in self.triangles.iter().enumerate() {
            match orient2d(ground(a), ground(b), ground(c)) {
                Orientation::Ccw => {}
                Orientation::Collinear => return Err(TinError::DegenerateTriangle(t)),
                Orientation::Cw => return Err(TinError::OrientationFlipped(t)),
            }
        }
        Ok(Tin {
            vertices,
            triangles: self.triangles.clone(),
            edges: self.edges.clone(),
            tri_edges: self.tri_edges.clone(),
            edge_tris: self.edge_tris.clone(),
        })
    }

    /// A copy of the terrain with the ground plane rotated by `angle`
    /// radians about the `z` axis (equivalently: a different view
    /// direction). Heights are preserved; structure is reused via
    /// [`Tin::remap_vertices`] — a rotation can invalidate the terrain
    /// only by numeric accident, which the remap checks catch.
    pub fn rotated_about_z(&self, angle: f64) -> Result<Tin, TinError> {
        let (s, c) = angle.sin_cos();
        self.remap_vertices(|v| Point3::new(c * v.x - s * v.y, s * v.x + c * v.y, v.z))
    }

    /// Bounding box of the ground projection, `((min_x, min_y), (max_x,
    /// max_y))`.
    pub fn ground_bounds(&self) -> (Point2, Point2) {
        let mut lo = Point2::new(f64::INFINITY, f64::INFINITY);
        let mut hi = Point2::new(f64::NEG_INFINITY, f64::NEG_INFINITY);
        for v in &self.vertices {
            lo.x = lo.x.min(v.x);
            lo.y = lo.y.min(v.y);
            hi.x = hi.x.max(v.x);
            hi.y = hi.y.max(v.y);
        }
        (lo, hi)
    }

    /// Height range `(min_z, max_z)`.
    pub fn height_range(&self) -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for v in &self.vertices {
            lo = lo.min(v.z);
            hi = hi.max(v.z);
        }
        (lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(x: f64, y: f64, z: f64) -> Point3 {
        Point3::new(x, y, z)
    }

    #[test]
    fn two_triangle_tin() {
        // Unit square split along a diagonal.
        let tin = Tin::new(
            vec![v(0., 0., 1.), v(1., 0., 2.), v(1., 1., 3.), v(0., 1., 4.)],
            vec![[0, 1, 2], [0, 2, 3]],
        )
        .unwrap();
        let (nv, ne, nt) = tin.counts();
        assert_eq!((nv, ne, nt), (4, 5, 2));
        // The diagonal edge 0-2 is shared by both triangles.
        let diag = tin
            .edges()
            .iter()
            .position(|&[a, b]| (a, b) == (0, 2))
            .unwrap();
        let et = tin.edge_tris(diag);
        assert!(et[0].is_some() && et[1].is_some());
    }

    #[test]
    fn rejects_nonfinite() {
        let err = Tin::new(vec![v(0., 0., f64::NAN)], vec![]).unwrap_err();
        assert_eq!(err, TinError::NonFiniteVertex(0));
    }

    #[test]
    fn rejects_duplicate_ground() {
        let err = Tin::new(vec![v(0., 0., 1.), v(0., 0., 2.)], vec![]).unwrap_err();
        assert_eq!(err, TinError::DuplicateGroundPosition(0, 1));
    }

    #[test]
    fn rejects_degenerate_triangle() {
        let err = Tin::new(vec![v(0., 0., 0.), v(1., 1., 0.), v(2., 2., 0.)], vec![[0, 1, 2]])
            .unwrap_err();
        assert_eq!(err, TinError::DegenerateTriangle(0));
    }

    #[test]
    fn normalises_orientation() {
        let tin = Tin::new(
            vec![v(0., 0., 0.), v(1., 0., 0.), v(0., 1., 0.)],
            vec![[0, 2, 1]], // CW input
        )
        .unwrap();
        let [a, b, c] = tin.triangles()[0];
        assert_eq!(
            orient2d(
                tin.vertices()[a as usize].ground(),
                tin.vertices()[b as usize].ground(),
                tin.vertices()[c as usize].ground()
            ),
            Orientation::Ccw
        );
    }

    #[test]
    fn remap_reuses_structure_and_rejects_flips() {
        let tin = Tin::new(
            vec![v(0., 0., 1.), v(1., 0., 2.), v(1., 1., 3.), v(0., 1., 4.)],
            vec![[0, 1, 2], [0, 2, 3]],
        )
        .unwrap();
        // A pure translation keeps everything; adjacency is carried over.
        let moved = tin
            .remap_vertices(|p| Point3::new(p.x + 5.0, p.y - 2.0, p.z))
            .unwrap();
        assert_eq!(moved.edges(), tin.edges());
        assert_eq!(moved.triangles(), tin.triangles());
        assert_eq!(moved.edge_tris(0), tin.edge_tris(0));
        // Mirroring the ground plane flips orientation and is rejected.
        let err = tin
            .remap_vertices(|p| Point3::new(-p.x, p.y, p.z))
            .unwrap_err();
        assert!(matches!(err, TinError::OrientationFlipped(_)));
        // Collapsing everything onto a line is degenerate.
        let err = tin
            .remap_vertices(|p| Point3::new(p.x, 0.0, p.z))
            .unwrap_err();
        assert!(matches!(err, TinError::DegenerateTriangle(_)));
        // Non-finite transforms are caught per vertex.
        let err = tin
            .remap_vertices(|p| Point3::new(p.x / 0.0, p.y, p.z))
            .unwrap_err();
        assert!(matches!(err, TinError::NonFiniteVertex(_)));
    }

    #[test]
    fn rotation_preserves_structure() {
        let tin = Tin::new(
            vec![v(0., 0., 1.), v(1., 0., 2.), v(1., 1., 3.), v(0., 1., 4.)],
            vec![[0, 1, 2], [0, 2, 3]],
        )
        .unwrap();
        let rot = tin.rotated_about_z(0.3).unwrap();
        assert_eq!(rot.counts(), tin.counts());
        assert_eq!(rot.height_range(), tin.height_range());
    }
}
