//! Regular-grid terrains (heightfields) and their triangulation.

use crate::tin::{Tin, TinError};
use hsr_geometry::Point3;

/// A heightfield sampled on a regular `nx × ny` grid.
///
/// Grid index `(i, j)` maps to world position `(origin_x + i·dx,
/// origin_y + j·dy)`: the `i` axis is the *depth* axis (viewer at
/// `x = +∞` sees row `i = nx-1` in front) and `j` runs across the image.
#[derive(Clone, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GridTerrain {
    /// Samples along the depth axis.
    pub nx: usize,
    /// Samples across the view.
    pub ny: usize,
    /// Grid spacing along `x`.
    pub dx: f64,
    /// Grid spacing along `y`.
    pub dy: f64,
    /// World position of sample `(0, 0)`.
    pub origin: (f64, f64),
    /// Heights in row-major order (`i * ny + j`).
    pub heights: Vec<f64>,
}

impl GridTerrain {
    /// Creates a flat grid of zeros.
    pub fn flat(nx: usize, ny: usize) -> Self {
        assert!(nx >= 2 && ny >= 2, "grid must be at least 2×2");
        GridTerrain { nx, ny, dx: 1.0, dy: 1.0, origin: (0.0, 0.0), heights: vec![0.0; nx * ny] }
    }

    /// Height at grid index `(i, j)`.
    #[inline]
    pub fn h(&self, i: usize, j: usize) -> f64 {
        self.heights[i * self.ny + j]
    }

    /// Mutable height at grid index `(i, j)`.
    #[inline]
    pub fn h_mut(&mut self, i: usize, j: usize) -> &mut f64 {
        &mut self.heights[i * self.ny + j]
    }

    /// Applies `f(i, j, x, y) -> z` to every sample.
    pub fn fill(&mut self, mut f: impl FnMut(usize, usize, f64, f64) -> f64) {
        for i in 0..self.nx {
            for j in 0..self.ny {
                let x = self.origin.0 + i as f64 * self.dx;
                let y = self.origin.1 + j as f64 * self.dy;
                *self.h_mut(i, j) = f(i, j, x, y);
            }
        }
    }

    /// Triangulates into a TIN, splitting each cell along alternating
    /// diagonals (checkerboard) for isotropy.
    pub fn to_tin(&self) -> Result<Tin, TinError> {
        let mut vertices = Vec::with_capacity(self.nx * self.ny);
        for i in 0..self.nx {
            for j in 0..self.ny {
                vertices.push(Point3::new(
                    self.origin.0 + i as f64 * self.dx,
                    self.origin.1 + j as f64 * self.dy,
                    self.h(i, j),
                ));
            }
        }
        let idx = |i: usize, j: usize| (i * self.ny + j) as u32;
        let mut triangles = Vec::with_capacity(2 * (self.nx - 1) * (self.ny - 1));
        for i in 0..self.nx - 1 {
            for j in 0..self.ny - 1 {
                let (a, b, c, d) = (idx(i, j), idx(i + 1, j), idx(i + 1, j + 1), idx(i, j + 1));
                if (i + j) % 2 == 0 {
                    triangles.push([a, b, c]);
                    triangles.push([a, c, d]);
                } else {
                    triangles.push([a, b, d]);
                    triangles.push([b, c, d]);
                }
            }
        }
        Tin::new(vertices, triangles)
    }

    /// Bilinear height interpolation at a world position (clamped to the
    /// grid).
    pub fn sample(&self, x: f64, y: f64) -> f64 {
        let fx = ((x - self.origin.0) / self.dx).clamp(0.0, (self.nx - 1) as f64);
        let fy = ((y - self.origin.1) / self.dy).clamp(0.0, (self.ny - 1) as f64);
        let (i0, j0) = (fx.floor() as usize, fy.floor() as usize);
        let (i1, j1) = ((i0 + 1).min(self.nx - 1), (j0 + 1).min(self.ny - 1));
        let (tx, ty) = (fx - i0 as f64, fy - j0 as f64);
        let a = self.h(i0, j0) + (self.h(i1, j0) - self.h(i0, j0)) * tx;
        let b = self.h(i0, j1) + (self.h(i1, j1) - self.h(i0, j1)) * tx;
        a + (b - a) * ty
    }

    /// Resamples onto a coarser/finer grid of `nx × ny` samples over the
    /// same world extent (bilinear).
    pub fn resample(&self, nx: usize, ny: usize) -> GridTerrain {
        assert!(nx >= 2 && ny >= 2);
        let (w, h) = ((self.nx - 1) as f64 * self.dx, (self.ny - 1) as f64 * self.dy);
        let mut g = GridTerrain {
            nx,
            ny,
            dx: w / (nx - 1) as f64,
            dy: h / (ny - 1) as f64,
            origin: self.origin,
            heights: vec![0.0; nx * ny],
        };
        g.fill(|_, _, x, y| self.sample(x, y));
        g
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.heights.len()
    }

    /// True when the grid holds no samples (cannot occur for constructed
    /// grids; kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.heights.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangulation_counts() {
        let g = GridTerrain::flat(4, 5);
        let tin = g.to_tin().unwrap();
        let (nv, ne, nt) = tin.counts();
        assert_eq!(nv, 20);
        assert_eq!(nt, 2 * 3 * 4);
        // Euler: E = V + F - 1 - 1 for a planar triangulated disc:
        // each of the 12 cells has 2 triangles and the edge count is
        // horizontal + vertical + diagonal edges.
        let expect_edges = 4 * 4 /* vertical (along y) */ + 3 * 5 /* along x */ + 3 * 4;
        assert_eq!(ne, expect_edges);
    }

    #[test]
    fn fill_and_height_access() {
        let mut g = GridTerrain::flat(3, 3);
        g.fill(|i, j, _, _| (i * 10 + j) as f64);
        assert_eq!(g.h(2, 1), 21.0);
        assert_eq!(g.len(), 9);
    }

    #[test]
    fn sample_interpolates() {
        let mut g = GridTerrain::flat(3, 3);
        g.fill(|_, _, x, y| x + 10.0 * y);
        // Bilinear reproduction of a bilinear function is exact.
        assert!((g.sample(0.5, 0.5) - 5.5).abs() < 1e-12);
        assert!((g.sample(1.25, 1.75) - 18.75).abs() < 1e-12);
        // Clamping outside the grid.
        assert_eq!(g.sample(-5.0, -5.0), g.h(0, 0));
    }

    #[test]
    fn resample_preserves_extent_and_shape() {
        let mut g = GridTerrain::flat(9, 9);
        g.fill(|_, _, x, y| x * x + y);
        let r = g.resample(5, 17);
        assert_eq!((r.nx, r.ny), (5, 17));
        // Same world extent.
        assert!((r.dx * 4.0 - 8.0).abs() < 1e-12);
        assert!((r.dy * 16.0 - 8.0).abs() < 1e-12);
        // Values close to the original surface at matching positions.
        assert!((r.sample(4.0, 4.0) - g.sample(4.0, 4.0)).abs() < 1.0);
    }

    #[test]
    fn to_tin_respects_spacing() {
        let mut g = GridTerrain::flat(2, 2);
        g.dx = 2.0;
        g.dy = 3.0;
        g.origin = (10.0, 20.0);
        let tin = g.to_tin().unwrap();
        let (lo, hi) = tin.ground_bounds();
        assert_eq!((lo.x, lo.y), (10.0, 20.0));
        assert_eq!((hi.x, hi.y), (12.0, 23.0));
    }
}
