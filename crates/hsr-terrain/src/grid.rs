//! Regular-grid terrains (heightfields) and their triangulation.

use crate::tin::{Tin, TinError};
use hsr_geometry::Point3;

/// A heightfield sampled on a regular `nx × ny` grid.
///
/// Grid index `(i, j)` maps to world position `(origin_x + i·dx,
/// origin_y + j·dy)`: the `i` axis is the *depth* axis (viewer at
/// `x = +∞` sees row `i = nx-1` in front) and `j` runs across the image.
#[derive(Clone, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GridTerrain {
    /// Samples along the depth axis.
    pub nx: usize,
    /// Samples across the view.
    pub ny: usize,
    /// Grid spacing along `x`.
    pub dx: f64,
    /// Grid spacing along `y`.
    pub dy: f64,
    /// World position of sample `(0, 0)`.
    pub origin: (f64, f64),
    /// Heights in row-major order (`i * ny + j`).
    pub heights: Vec<f64>,
}

impl GridTerrain {
    /// Creates a flat grid of zeros.
    pub fn flat(nx: usize, ny: usize) -> Self {
        assert!(nx >= 2 && ny >= 2, "grid must be at least 2×2");
        GridTerrain { nx, ny, dx: 1.0, dy: 1.0, origin: (0.0, 0.0), heights: vec![0.0; nx * ny] }
    }

    /// Height at grid index `(i, j)`.
    #[inline]
    pub fn h(&self, i: usize, j: usize) -> f64 {
        self.heights[i * self.ny + j]
    }

    /// Mutable height at grid index `(i, j)`.
    #[inline]
    pub fn h_mut(&mut self, i: usize, j: usize) -> &mut f64 {
        &mut self.heights[i * self.ny + j]
    }

    /// Applies `f(i, j, x, y) -> z` to every sample.
    pub fn fill(&mut self, mut f: impl FnMut(usize, usize, f64, f64) -> f64) {
        for i in 0..self.nx {
            for j in 0..self.ny {
                let x = self.origin.0 + i as f64 * self.dx;
                let y = self.origin.1 + j as f64 * self.dy;
                *self.h_mut(i, j) = f(i, j, x, y);
            }
        }
    }

    /// Triangulates into a TIN, splitting each cell along alternating
    /// diagonals (checkerboard) for isotropy.
    pub fn to_tin(&self) -> Result<Tin, TinError> {
        let mut vertices = Vec::with_capacity(self.nx * self.ny);
        for i in 0..self.nx {
            for j in 0..self.ny {
                vertices.push(Point3::new(
                    self.origin.0 + i as f64 * self.dx,
                    self.origin.1 + j as f64 * self.dy,
                    self.h(i, j),
                ));
            }
        }
        let idx = |i: usize, j: usize| (i * self.ny + j) as u32;
        let mut triangles = Vec::with_capacity(2 * (self.nx - 1) * (self.ny - 1));
        for i in 0..self.nx - 1 {
            for j in 0..self.ny - 1 {
                let (a, b, c, d) = (idx(i, j), idx(i + 1, j), idx(i + 1, j + 1), idx(i, j + 1));
                if (i + j) % 2 == 0 {
                    triangles.push([a, b, c]);
                    triangles.push([a, c, d]);
                } else {
                    triangles.push([a, b, d]);
                    triangles.push([b, c, d]);
                }
            }
        }
        Tin::new(vertices, triangles)
    }

    /// Bilinear height interpolation at a world position (clamped to the
    /// grid). Degenerate axes (a single sample along `i` or `j`, as
    /// produced by [`GridTerrain::crop`]) interpolate only along the
    /// remaining axis.
    pub fn sample(&self, x: f64, y: f64) -> f64 {
        let fx = if self.nx == 1 {
            0.0
        } else {
            ((x - self.origin.0) / self.dx).clamp(0.0, (self.nx - 1) as f64)
        };
        let fy = if self.ny == 1 {
            0.0
        } else {
            ((y - self.origin.1) / self.dy).clamp(0.0, (self.ny - 1) as f64)
        };
        let (i0, j0) = (fx.floor() as usize, fy.floor() as usize);
        let (i1, j1) = ((i0 + 1).min(self.nx - 1), (j0 + 1).min(self.ny - 1));
        let (tx, ty) = (fx - i0 as f64, fy - j0 as f64);
        let a = self.h(i0, j0) + (self.h(i1, j0) - self.h(i0, j0)) * tx;
        let b = self.h(i0, j1) + (self.h(i1, j1) - self.h(i0, j1)) * tx;
        a + (b - a) * ty
    }

    /// Resamples onto a coarser/finer grid of `nx × ny` samples over the
    /// same world extent (bilinear).
    pub fn resample(&self, nx: usize, ny: usize) -> GridTerrain {
        assert!(nx >= 2 && ny >= 2);
        let (w, h) = ((self.nx - 1) as f64 * self.dx, (self.ny - 1) as f64 * self.dy);
        let mut g = GridTerrain {
            nx,
            ny,
            dx: w / (nx - 1) as f64,
            dy: h / (ny - 1) as f64,
            origin: self.origin,
            heights: vec![0.0; nx * ny],
        };
        g.fill(|_, _, x, y| self.sample(x, y));
        g
    }

    /// The world-aligned sub-grid of `nx × ny` samples starting at grid
    /// index `(i0, j0)`.
    ///
    /// The crop keeps the parent's spacing and shifts the origin by whole
    /// cells, so sample `(i, j)` of the crop sits at the same world
    /// position (up to one floating-point rounding of the origin shift)
    /// and height as sample `(i0 + i, j0 + j)` of the parent. On integer
    /// lattices (`dx`/`dy`/origin exactly representable products, e.g. the
    /// default unit spacing) the positions are bit-identical — the
    /// property the tiled evaluator's conformance relies on. Degenerate
    /// crops of a single row/column (`nx == 1` or `ny == 1`) are allowed;
    /// they sample but do not triangulate.
    pub fn crop(&self, i0: usize, j0: usize, nx: usize, ny: usize) -> GridTerrain {
        assert!(nx >= 1 && ny >= 1, "crop must keep at least one sample per axis");
        assert!(
            i0 + nx <= self.nx && j0 + ny <= self.ny,
            "crop [{i0}+{nx}, {j0}+{ny}] exceeds grid {}×{}",
            self.nx,
            self.ny
        );
        let mut heights = Vec::with_capacity(nx * ny);
        for i in 0..nx {
            let row = (i0 + i) * self.ny + j0;
            heights.extend_from_slice(&self.heights[row..row + ny]);
        }
        GridTerrain {
            nx,
            ny,
            dx: self.dx,
            dy: self.dy,
            origin: (self.origin.0 + i0 as f64 * self.dx, self.origin.1 + j0 as f64 * self.dy),
            heights,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.heights.len()
    }

    /// True when the grid holds no samples (cannot occur for constructed
    /// grids; kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.heights.is_empty()
    }
}

/// Errors from [`stitch`].
#[derive(Clone, Debug, PartialEq)]
pub enum StitchError {
    /// A part's spacing differs from the first part's.
    SpacingMismatch {
        /// Index of the offending part.
        part: usize,
    },
    /// A part sticks out of the target `nx × ny` grid.
    OutOfBounds {
        /// Index of the offending part.
        part: usize,
    },
    /// Two overlapping parts disagree on a shared sample's height.
    OverlapMismatch {
        /// Grid index of the disagreeing sample.
        at: (usize, usize),
    },
    /// Some target sample is covered by no part.
    Uncovered {
        /// Grid index of the first uncovered sample.
        at: (usize, usize),
    },
    /// No parts were given.
    Empty,
}

impl std::fmt::Display for StitchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StitchError::SpacingMismatch { part } => {
                write!(f, "part {part} has a different grid spacing")
            }
            StitchError::OutOfBounds { part } => {
                write!(f, "part {part} exceeds the target grid")
            }
            StitchError::OverlapMismatch { at } => {
                write!(f, "overlapping parts disagree at sample {at:?}")
            }
            StitchError::Uncovered { at } => write!(f, "sample {at:?} is covered by no part"),
            StitchError::Empty => write!(f, "no parts to stitch"),
        }
    }
}

impl std::error::Error for StitchError {}

/// Reassembles a full `nx × ny` grid from placed sub-grids (the inverse of
/// [`GridTerrain::crop`], e.g. re-joining a tile row written by the tiler).
///
/// Each part is `((i0, j0), grid)`: the part's sample `(i, j)` lands on
/// target sample `(i0 + i, j0 + j)`. Overlapping samples (tile skirts)
/// must agree exactly; every target sample must be covered. Spacing and
/// the world origin are taken from the first part (shifted back by its
/// placement).
pub fn stitch(
    nx: usize,
    ny: usize,
    parts: &[((usize, usize), &GridTerrain)],
) -> Result<GridTerrain, StitchError> {
    let ((i00, j00), first) = *parts.first().ok_or(StitchError::Empty)?;
    let mut heights = vec![f64::NAN; nx * ny];
    let mut covered = vec![false; nx * ny];
    for (pi, &((i0, j0), part)) in parts.iter().enumerate() {
        if part.dx != first.dx || part.dy != first.dy {
            return Err(StitchError::SpacingMismatch { part: pi });
        }
        if i0 + part.nx > nx || j0 + part.ny > ny {
            return Err(StitchError::OutOfBounds { part: pi });
        }
        for i in 0..part.nx {
            for j in 0..part.ny {
                let at = (i0 + i) * ny + (j0 + j);
                let h = part.h(i, j);
                if covered[at] && heights[at].to_bits() != h.to_bits() {
                    return Err(StitchError::OverlapMismatch { at: (i0 + i, j0 + j) });
                }
                heights[at] = h;
                covered[at] = true;
            }
        }
    }
    if let Some(miss) = covered.iter().position(|&c| !c) {
        return Err(StitchError::Uncovered { at: (miss / ny, miss % ny) });
    }
    Ok(GridTerrain {
        nx,
        ny,
        dx: first.dx,
        dy: first.dy,
        origin: (first.origin.0 - i00 as f64 * first.dx, first.origin.1 - j00 as f64 * first.dy),
        heights,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangulation_counts() {
        let g = GridTerrain::flat(4, 5);
        let tin = g.to_tin().unwrap();
        let (nv, ne, nt) = tin.counts();
        assert_eq!(nv, 20);
        assert_eq!(nt, 2 * 3 * 4);
        // Euler: E = V + F - 1 - 1 for a planar triangulated disc:
        // each of the 12 cells has 2 triangles and the edge count is
        // horizontal + vertical + diagonal edges.
        let expect_edges = 4 * 4 /* vertical (along y) */ + 3 * 5 /* along x */ + 3 * 4;
        assert_eq!(ne, expect_edges);
    }

    #[test]
    fn fill_and_height_access() {
        let mut g = GridTerrain::flat(3, 3);
        g.fill(|i, j, _, _| (i * 10 + j) as f64);
        assert_eq!(g.h(2, 1), 21.0);
        assert_eq!(g.len(), 9);
    }

    #[test]
    fn sample_interpolates() {
        let mut g = GridTerrain::flat(3, 3);
        g.fill(|_, _, x, y| x + 10.0 * y);
        // Bilinear reproduction of a bilinear function is exact.
        assert!((g.sample(0.5, 0.5) - 5.5).abs() < 1e-12);
        assert!((g.sample(1.25, 1.75) - 18.75).abs() < 1e-12);
        // Clamping outside the grid.
        assert_eq!(g.sample(-5.0, -5.0), g.h(0, 0));
    }

    #[test]
    fn resample_preserves_extent_and_shape() {
        let mut g = GridTerrain::flat(9, 9);
        g.fill(|_, _, x, y| x * x + y);
        let r = g.resample(5, 17);
        assert_eq!((r.nx, r.ny), (5, 17));
        // Same world extent.
        assert!((r.dx * 4.0 - 8.0).abs() < 1e-12);
        assert!((r.dy * 16.0 - 8.0).abs() < 1e-12);
        // Values close to the original surface at matching positions.
        assert!((r.sample(4.0, 4.0) - g.sample(4.0, 4.0)).abs() < 1.0);
    }

    #[test]
    fn crop_preserves_world_positions_and_heights() {
        let mut g = GridTerrain::flat(7, 9);
        g.fill(|i, j, _, _| (i * 100 + j) as f64);
        let c = g.crop(2, 3, 4, 5);
        assert_eq!((c.nx, c.ny), (4, 5));
        assert_eq!(c.origin, (2.0, 3.0));
        for i in 0..4 {
            for j in 0..5 {
                assert_eq!(c.h(i, j), g.h(i + 2, j + 3));
            }
        }
        // Whole-grid crop is the identity.
        let full = g.crop(0, 0, 7, 9);
        assert_eq!(full.heights, g.heights);
        // Exact sample agreement at matching world positions.
        assert_eq!(c.sample(3.0, 5.0), g.sample(3.0, 5.0));
    }

    #[test]
    fn crop_degenerate_rows_sample() {
        let mut g = GridTerrain::flat(5, 5);
        g.fill(|_, _, x, y| 2.0 * x + y);
        let row = g.crop(2, 0, 1, 5); // one sample along i
        assert_eq!((row.nx, row.ny), (1, 5));
        // Interpolates along the surviving axis, constant along the other.
        assert!((row.sample(2.0, 1.5) - (4.0 + 1.5)).abs() < 1e-12);
        assert!((row.sample(99.0, 1.5) - (4.0 + 1.5)).abs() < 1e-12);
        let col = g.crop(0, 3, 5, 1);
        assert_eq!((col.nx, col.ny), (5, 1));
        assert!((col.sample(1.5, 3.0) - (3.0 + 3.0)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "exceeds grid")]
    fn crop_rejects_out_of_bounds() {
        GridTerrain::flat(4, 4).crop(2, 2, 3, 1);
    }

    #[test]
    fn stitch_inverts_crop_with_skirts() {
        let mut g = GridTerrain::flat(9, 9);
        g.fill(|i, j, _, _| (i * 31 + j) as f64 * 0.5);
        // Four overlapping quadrants with a shared middle row/column.
        let parts_owned = [
            ((0, 0), g.crop(0, 0, 5, 5)),
            ((4, 0), g.crop(4, 0, 5, 5)),
            ((0, 4), g.crop(0, 4, 5, 5)),
            ((4, 4), g.crop(4, 4, 5, 5)),
        ];
        let parts: Vec<((usize, usize), &GridTerrain)> =
            parts_owned.iter().map(|(at, p)| (*at, p)).collect();
        let back = stitch(9, 9, &parts).unwrap();
        assert_eq!(back.heights, g.heights);
        assert_eq!(back.origin, g.origin);
        assert_eq!((back.dx, back.dy), (g.dx, g.dy));
    }

    #[test]
    fn stitch_rejects_gaps_and_disagreement() {
        let g = GridTerrain::flat(6, 6);
        let a = g.crop(0, 0, 3, 6);
        // Rows 3..6 uncovered.
        assert!(matches!(stitch(6, 6, &[((0, 0), &a)]), Err(StitchError::Uncovered { .. })));
        // Overlap that disagrees.
        let mut b = g.crop(2, 0, 4, 6);
        *b.h_mut(0, 0) = 7.0;
        assert!(matches!(
            stitch(6, 6, &[((0, 0), &a), ((2, 0), &b)]),
            Err(StitchError::OverlapMismatch { at: (2, 0) })
        ));
        assert!(matches!(stitch(4, 4, &[]), Err(StitchError::Empty)));
        assert!(matches!(
            stitch(4, 4, &[((2, 0), &a)]),
            Err(StitchError::OutOfBounds { part: 0 })
        ));
    }

    #[test]
    fn to_tin_respects_spacing() {
        let mut g = GridTerrain::flat(2, 2);
        g.dx = 2.0;
        g.dy = 3.0;
        g.origin = (10.0, 20.0);
        let tin = g.to_tin().unwrap();
        let (lo, hi) = tin.ground_bounds();
        assert_eq!((lo.x, lo.y), (10.0, 20.0));
        assert_eq!((hi.x, hi.y), (12.0, 23.0));
    }
}
