//! Terrain I/O: Wavefront-OBJ import/export for TINs and a compact binary
//! codec for grid terrains.
//!
//! The OBJ side is a minimal but standards-conforming subset: `v x y z`
//! vertices and triangular `f` faces (1-based indices, negative indices
//! supported, `f v/vt/vn` forms accepted with the extra attributes
//! ignored). Lets the reproduction exchange terrains with standard mesh
//! tooling.
//!
//! The binary side ([`grid_to_bytes`] / [`grid_from_bytes`]) is the tile
//! format of the out-of-core tile store (`hsr-tile`): a fixed 56-byte
//! header followed by raw little-endian `f64` heights — loadable with one
//! read and no text parsing, and bit-exact (heights round-trip by bit
//! pattern, including negative zeros).

use crate::grid::GridTerrain;
use crate::tin::{Tin, TinError};
use hsr_geometry::Point3;
use std::fmt::Write as _;

/// Magic prefix of the binary grid format (`"HSRG"` + format version 1).
const GRID_MAGIC: [u8; 4] = *b"HSRG";
const GRID_VERSION: u32 = 1;

/// Errors from the binary grid codec.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GridCodecError {
    /// The buffer does not start with the `HSRG` magic.
    BadMagic,
    /// The format version is not one this build reads.
    BadVersion(u32),
    /// The buffer ends before the declared payload.
    Truncated {
        /// Bytes required by the header.
        expected: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// The header declares a shape with zero samples on some axis.
    EmptyAxis,
}

impl std::fmt::Display for GridCodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GridCodecError::BadMagic => write!(f, "not a binary grid (bad magic)"),
            GridCodecError::BadVersion(v) => write!(f, "unsupported grid format version {v}"),
            GridCodecError::Truncated { expected, got } => {
                write!(f, "truncated grid: expected {expected} bytes, got {got}")
            }
            GridCodecError::EmptyAxis => write!(f, "grid header declares a zero-sample axis"),
        }
    }
}

impl std::error::Error for GridCodecError {}

/// Serializes a grid terrain into the compact binary tile format.
pub fn grid_to_bytes(g: &GridTerrain) -> Vec<u8> {
    let mut out = Vec::with_capacity(56 + 8 * g.heights.len());
    out.extend_from_slice(&GRID_MAGIC);
    out.extend_from_slice(&GRID_VERSION.to_le_bytes());
    out.extend_from_slice(&(g.nx as u64).to_le_bytes());
    out.extend_from_slice(&(g.ny as u64).to_le_bytes());
    out.extend_from_slice(&g.dx.to_le_bytes());
    out.extend_from_slice(&g.dy.to_le_bytes());
    out.extend_from_slice(&g.origin.0.to_le_bytes());
    out.extend_from_slice(&g.origin.1.to_le_bytes());
    for h in &g.heights {
        out.extend_from_slice(&h.to_le_bytes());
    }
    out
}

/// Parses the compact binary tile format back into a grid terrain.
pub fn grid_from_bytes(bytes: &[u8]) -> Result<GridTerrain, GridCodecError> {
    let f64_at = |at: usize| {
        let mut b = [0u8; 8];
        b.copy_from_slice(&bytes[at..at + 8]);
        f64::from_le_bytes(b)
    };
    if bytes.len() < 56 {
        return Err(GridCodecError::Truncated { expected: 56, got: bytes.len() });
    }
    if bytes[..4] != GRID_MAGIC {
        return Err(GridCodecError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if version != GRID_VERSION {
        return Err(GridCodecError::BadVersion(version));
    }
    let nx = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes")) as usize;
    let ny = u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes")) as usize;
    if nx == 0 || ny == 0 {
        return Err(GridCodecError::EmptyAxis);
    }
    // Checked arithmetic: a corrupt header with a huge nx·ny must come
    // back as `Truncated`, not wrap around and index out of bounds.
    let expected = nx
        .checked_mul(ny)
        .and_then(|s| s.checked_mul(8))
        .and_then(|b| b.checked_add(56))
        .unwrap_or(usize::MAX);
    if bytes.len() < expected {
        return Err(GridCodecError::Truncated { expected, got: bytes.len() });
    }
    let heights = (0..nx * ny).map(|s| f64_at(56 + 8 * s)).collect();
    Ok(GridTerrain {
        nx,
        ny,
        dx: f64_at(24),
        dy: f64_at(32),
        origin: (f64_at(40), f64_at(48)),
        heights,
    })
}

/// Errors from OBJ parsing.
#[derive(Clone, Debug, PartialEq)]
pub enum ObjError {
    /// A malformed line, with its 1-based line number.
    Parse(usize, String),
    /// A face index out of range.
    BadFaceIndex(usize),
    /// Only triangles are supported; a polygon with another arity appeared.
    NonTriangleFace(usize),
    /// The mesh failed terrain validation.
    Tin(TinError),
}

impl std::fmt::Display for ObjError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ObjError::Parse(line, what) => write!(f, "line {line}: cannot parse {what}"),
            ObjError::BadFaceIndex(line) => write!(f, "line {line}: face index out of range"),
            ObjError::NonTriangleFace(line) => {
                write!(f, "line {line}: only triangular faces are supported")
            }
            ObjError::Tin(e) => write!(f, "terrain validation failed: {e}"),
        }
    }
}

impl std::error::Error for ObjError {}

/// Serialises a TIN as OBJ text.
pub fn to_obj(tin: &Tin) -> String {
    let mut out = String::with_capacity(tin.vertices().len() * 32);
    let _ = writeln!(
        out,
        "# terrain-hsr TIN: {} vertices, {} faces",
        tin.vertices().len(),
        tin.triangles().len()
    );
    for v in tin.vertices() {
        let _ = writeln!(out, "v {} {} {}", v.x, v.y, v.z);
    }
    for t in tin.triangles() {
        let _ = writeln!(out, "f {} {} {}", t[0] + 1, t[1] + 1, t[2] + 1);
    }
    out
}

/// Parses OBJ text into a validated TIN.
pub fn from_obj(text: &str) -> Result<Tin, ObjError> {
    let mut vertices: Vec<Point3> = Vec::new();
    let mut triangles: Vec<[u32; 3]> = Vec::new();
    for (ln, raw) in text.lines().enumerate() {
        let line_no = ln + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut it = line.split_whitespace();
        match it.next() {
            Some("v") => {
                let mut coord = |what: &str| -> Result<f64, ObjError> {
                    it.next()
                        .ok_or_else(|| ObjError::Parse(line_no, what.into()))?
                        .parse()
                        .map_err(|_| ObjError::Parse(line_no, what.into()))
                };
                let (x, y, z) = (coord("x")?, coord("y")?, coord("z")?);
                vertices.push(Point3::new(x, y, z));
            }
            Some("f") => {
                let idx: Vec<&str> = it.collect();
                if idx.len() != 3 {
                    return Err(ObjError::NonTriangleFace(line_no));
                }
                let mut tri = [0u32; 3];
                for (slot, tok) in tri.iter_mut().zip(&idx) {
                    // `f v`, `f v/vt`, `f v//vn`, `f v/vt/vn`.
                    let v = tok.split('/').next().unwrap_or("");
                    let i: i64 = v
                        .parse()
                        .map_err(|_| ObjError::Parse(line_no, format!("face index {tok:?}")))?;
                    let resolved = if i > 0 {
                        i - 1
                    } else if i < 0 {
                        vertices.len() as i64 + i
                    } else {
                        return Err(ObjError::BadFaceIndex(line_no));
                    };
                    if resolved < 0 || resolved >= vertices.len() as i64 {
                        return Err(ObjError::BadFaceIndex(line_no));
                    }
                    *slot = resolved as u32;
                }
                triangles.push(tri);
            }
            // Ignore normals, texcoords, groups, materials, smoothing…
            Some(_) => {}
            None => {}
        }
    }
    Tin::new(vertices, triangles).map_err(ObjError::Tin)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn roundtrip() {
        let tin = gen::gaussian_hills(8, 8, 3, 7).to_tin().unwrap();
        let obj = to_obj(&tin);
        let back = from_obj(&obj).unwrap();
        assert_eq!(tin.counts(), back.counts());
        for (a, b) in tin.vertices().iter().zip(back.vertices()) {
            assert_eq!(a, b, "vertex drift through OBJ");
        }
    }

    #[test]
    fn accepts_slash_forms_and_comments() {
        let obj = "# comment\n\
                   v 0 0 1\n\
                   v 1 0 2   # inline comment\n\
                   v 0 1 3\n\
                   f 1/1/1 2//2 3\n";
        let tin = from_obj(obj).unwrap();
        assert_eq!(tin.counts(), (3, 3, 1));
    }

    #[test]
    fn negative_indices() {
        let obj = "v 0 0 1\nv 1 0 2\nv 0 1 3\nf -3 -2 -1\n";
        let tin = from_obj(obj).unwrap();
        assert_eq!(tin.triangles()[0], [0, 1, 2]);
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(from_obj("v 1 2\n"), Err(ObjError::Parse(1, _))));
        assert!(matches!(
            from_obj("v 0 0 0\nv 1 0 0\nv 0 1 0\nf 1 2 9\n"),
            Err(ObjError::BadFaceIndex(4))
        ));
        assert!(matches!(
            from_obj("v 0 0 0\nv 1 0 0\nv 0 1 0\nv 1 1 0\nf 1 2 3 4\n"),
            Err(ObjError::NonTriangleFace(5))
        ));
    }

    #[test]
    fn rejects_invalid_terrain() {
        // Two vertices at the same ground position.
        let obj = "v 0 0 1\nv 0 0 2\nv 1 0 0\nf 1 2 3\n";
        assert!(matches!(from_obj(obj), Err(ObjError::Tin(_))));
    }

    #[test]
    fn grid_codec_roundtrips_bit_exactly() {
        let mut g = gen::fbm(7, 11, 3, 9.0, 42);
        g.dx = 0.25;
        g.dy = 3.5;
        g.origin = (-4.0, 17.5);
        *g.h_mut(0, 0) = -0.0; // sign of zero must survive
        let bytes = grid_to_bytes(&g);
        assert_eq!(bytes.len(), 56 + 8 * g.len());
        let back = grid_from_bytes(&bytes).unwrap();
        assert_eq!((back.nx, back.ny), (g.nx, g.ny));
        assert_eq!((back.dx, back.dy, back.origin), (g.dx, g.dy, g.origin));
        let bits = |h: &[f64]| h.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&back.heights), bits(&g.heights));
    }

    #[test]
    fn grid_codec_rejects_malformed_buffers() {
        let g = GridTerrain::flat(3, 3);
        let bytes = grid_to_bytes(&g);
        assert!(matches!(grid_from_bytes(&bytes[..20]), Err(GridCodecError::Truncated { .. })));
        assert!(matches!(
            grid_from_bytes(&bytes[..bytes.len() - 1]),
            Err(GridCodecError::Truncated { .. })
        ));
        let mut wrong_magic = bytes.clone();
        wrong_magic[0] = b'X';
        assert!(matches!(grid_from_bytes(&wrong_magic), Err(GridCodecError::BadMagic)));
        let mut wrong_version = bytes.clone();
        wrong_version[4] = 99;
        assert!(matches!(grid_from_bytes(&wrong_version), Err(GridCodecError::BadVersion(99))));
        let mut zero_axis = bytes.clone();
        zero_axis[8..16].fill(0);
        assert!(matches!(grid_from_bytes(&zero_axis), Err(GridCodecError::EmptyAxis)));
        // A header whose nx·ny·8 overflows usize must report Truncated,
        // not wrap and read out of bounds.
        let mut huge = bytes;
        huge[8..16].copy_from_slice(&(1u64 << 61).to_le_bytes());
        assert!(matches!(grid_from_bytes(&huge), Err(GridCodecError::Truncated { .. })));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// Interleaves comments and blank lines into OBJ text, and appends
        /// an inline comment to a deterministic subset of lines — the
        /// tolerance a round-trip must survive.
        fn decorate(obj: &str, gap_every: usize) -> String {
            let mut out = String::from("# leading comment\n\n");
            for (k, line) in obj.lines().enumerate() {
                if k % gap_every == 0 {
                    out.push_str("\n# interleaved comment\n   \n");
                }
                out.push_str(line);
                if k % 3 == 0 {
                    out.push_str("   # inline comment");
                }
                out.push('\n');
            }
            out.push_str("\n# trailing comment");
            out
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            #[test]
            fn obj_roundtrip_preserves_vertices_and_triangles(
                seed in any::<u64>(),
                nx in 3usize..9,
                ny in 3usize..9,
                hills in 1usize..5,
                gap_every in 1usize..7,
            ) {
                let tin = gen::gaussian_hills(nx, ny, hills, seed).to_tin().unwrap();
                let text = decorate(&to_obj(&tin), gap_every);
                let back = from_obj(&text).unwrap();
                prop_assert_eq!(back.triangles(), tin.triangles());
                // Vertices survive up to float formatting; `to_obj` prints
                // with `{}` (shortest exact representation), so the parse
                // is in fact lossless.
                prop_assert_eq!(back.vertices().len(), tin.vertices().len());
                for (a, b) in tin.vertices().iter().zip(back.vertices()) {
                    prop_assert_eq!(a, b);
                }
            }

            #[test]
            fn grid_codec_roundtrip_any_grid(
                seed in any::<u64>(),
                nx in 1usize..9,
                ny in 1usize..9,
            ) {
                // Degenerate 1×N / N×1 crops must round-trip too.
                let base = gen::fbm(9, 9, 3, 7.0, seed);
                let g = base.crop(0, 0, nx, ny);
                let back = grid_from_bytes(&grid_to_bytes(&g)).unwrap();
                prop_assert_eq!((back.nx, back.ny), (g.nx, g.ny));
                let bits = |h: &[f64]| h.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
                prop_assert_eq!(bits(&back.heights), bits(&g.heights));
            }
        }
    }
}
