//! Wavefront-OBJ import/export for TINs.
//!
//! A minimal but standards-conforming subset: `v x y z` vertices and
//! triangular `f` faces (1-based indices, negative indices supported,
//! `f v/vt/vn` forms accepted with the extra attributes ignored). Lets the
//! reproduction exchange terrains with standard mesh tooling.

use crate::tin::{Tin, TinError};
use hsr_geometry::Point3;
use std::fmt::Write as _;

/// Errors from OBJ parsing.
#[derive(Clone, Debug, PartialEq)]
pub enum ObjError {
    /// A malformed line, with its 1-based line number.
    Parse(usize, String),
    /// A face index out of range.
    BadFaceIndex(usize),
    /// Only triangles are supported; a polygon with another arity appeared.
    NonTriangleFace(usize),
    /// The mesh failed terrain validation.
    Tin(TinError),
}

impl std::fmt::Display for ObjError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ObjError::Parse(line, what) => write!(f, "line {line}: cannot parse {what}"),
            ObjError::BadFaceIndex(line) => write!(f, "line {line}: face index out of range"),
            ObjError::NonTriangleFace(line) => {
                write!(f, "line {line}: only triangular faces are supported")
            }
            ObjError::Tin(e) => write!(f, "terrain validation failed: {e}"),
        }
    }
}

impl std::error::Error for ObjError {}

/// Serialises a TIN as OBJ text.
pub fn to_obj(tin: &Tin) -> String {
    let mut out = String::with_capacity(tin.vertices().len() * 32);
    let _ = writeln!(
        out,
        "# terrain-hsr TIN: {} vertices, {} faces",
        tin.vertices().len(),
        tin.triangles().len()
    );
    for v in tin.vertices() {
        let _ = writeln!(out, "v {} {} {}", v.x, v.y, v.z);
    }
    for t in tin.triangles() {
        let _ = writeln!(out, "f {} {} {}", t[0] + 1, t[1] + 1, t[2] + 1);
    }
    out
}

/// Parses OBJ text into a validated TIN.
pub fn from_obj(text: &str) -> Result<Tin, ObjError> {
    let mut vertices: Vec<Point3> = Vec::new();
    let mut triangles: Vec<[u32; 3]> = Vec::new();
    for (ln, raw) in text.lines().enumerate() {
        let line_no = ln + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut it = line.split_whitespace();
        match it.next() {
            Some("v") => {
                let mut coord = |what: &str| -> Result<f64, ObjError> {
                    it.next()
                        .ok_or_else(|| ObjError::Parse(line_no, what.into()))?
                        .parse()
                        .map_err(|_| ObjError::Parse(line_no, what.into()))
                };
                let (x, y, z) = (coord("x")?, coord("y")?, coord("z")?);
                vertices.push(Point3::new(x, y, z));
            }
            Some("f") => {
                let idx: Vec<&str> = it.collect();
                if idx.len() != 3 {
                    return Err(ObjError::NonTriangleFace(line_no));
                }
                let mut tri = [0u32; 3];
                for (slot, tok) in tri.iter_mut().zip(&idx) {
                    // `f v`, `f v/vt`, `f v//vn`, `f v/vt/vn`.
                    let v = tok.split('/').next().unwrap_or("");
                    let i: i64 = v
                        .parse()
                        .map_err(|_| ObjError::Parse(line_no, format!("face index {tok:?}")))?;
                    let resolved = if i > 0 {
                        i - 1
                    } else if i < 0 {
                        vertices.len() as i64 + i
                    } else {
                        return Err(ObjError::BadFaceIndex(line_no));
                    };
                    if resolved < 0 || resolved >= vertices.len() as i64 {
                        return Err(ObjError::BadFaceIndex(line_no));
                    }
                    *slot = resolved as u32;
                }
                triangles.push(tri);
            }
            // Ignore normals, texcoords, groups, materials, smoothing…
            Some(_) => {}
            None => {}
        }
    }
    Tin::new(vertices, triangles).map_err(ObjError::Tin)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn roundtrip() {
        let tin = gen::gaussian_hills(8, 8, 3, 7).to_tin().unwrap();
        let obj = to_obj(&tin);
        let back = from_obj(&obj).unwrap();
        assert_eq!(tin.counts(), back.counts());
        for (a, b) in tin.vertices().iter().zip(back.vertices()) {
            assert_eq!(a, b, "vertex drift through OBJ");
        }
    }

    #[test]
    fn accepts_slash_forms_and_comments() {
        let obj = "# comment\n\
                   v 0 0 1\n\
                   v 1 0 2   # inline comment\n\
                   v 0 1 3\n\
                   f 1/1/1 2//2 3\n";
        let tin = from_obj(obj).unwrap();
        assert_eq!(tin.counts(), (3, 3, 1));
    }

    #[test]
    fn negative_indices() {
        let obj = "v 0 0 1\nv 1 0 2\nv 0 1 3\nf -3 -2 -1\n";
        let tin = from_obj(obj).unwrap();
        assert_eq!(tin.triangles()[0], [0, 1, 2]);
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(from_obj("v 1 2\n"), Err(ObjError::Parse(1, _))));
        assert!(matches!(
            from_obj("v 0 0 0\nv 1 0 0\nv 0 1 0\nf 1 2 9\n"),
            Err(ObjError::BadFaceIndex(4))
        ));
        assert!(matches!(
            from_obj("v 0 0 0\nv 1 0 0\nv 0 1 0\nv 1 1 0\nf 1 2 3 4\n"),
            Err(ObjError::NonTriangleFace(5))
        ));
    }

    #[test]
    fn rejects_invalid_terrain() {
        // Two vertices at the same ground position.
        let obj = "v 0 0 1\nv 0 0 2\nv 1 0 0\nf 1 2 3\n";
        assert!(matches!(from_obj(obj), Err(ObjError::Tin(_))));
    }
}
