//! Terrain substrate: polyhedral terrain (TIN) models, triangulation and
//! synthetic workload generators.
//!
//! A *terrain* is a piecewise-linear surface `z = f(x, y)` — every vertical
//! line meets it exactly once (paper §1.1). The viewer sits at `x = +∞`
//! looking along `-x`; the image plane is `y–z`.
//!
//! * [`tin`] — triangulated irregular networks with validated structure and
//!   edge/triangle adjacency (the graph `G` of the paper's §2).
//! * [`grid`] — regular-grid terrains and their triangulation into TINs.
//! * [`gen`] — seeded synthetic terrain families with controllable output
//!   size `k`: fractal (value-noise fBm, diamond-square), Gaussian hills,
//!   ridge fields, the `occlusion knob` interpolating between
//!   "everything visible" and "almost everything hidden", and the
//!   quadratic-visibility comb adversary.
//! * [`delaunay`] — incremental Bowyer–Watson Delaunay triangulation used
//!   to build irregular TINs from scattered points (the substitute for the
//!   paper's Atallah–Cole–Goodrich triangulation step, see DESIGN.md §4.6).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod delaunay;
pub mod gen;
pub mod grid;
pub mod io;
pub mod stats;
pub mod tin;

pub use grid::GridTerrain;
pub use tin::{Tin, TinError};
