//! The on-disk tile store.
//!
//! A store is a directory: one `meta.hsrp` file describing the pyramid
//! (manual binary codec — readable with or without the `serde` feature)
//! and one `L<level>/t<ti>_<tj>.hsrt` file per tile in the compact binary
//! grid format of [`hsr_terrain::io`]. Tiles load with a single read and
//! no text parsing; heights round-trip bit-exactly, which the tiled
//! conformance guarantee relies on.

use crate::pyramid::{PyramidMeta, TileId};
use hsr_terrain::io::{grid_from_bytes, grid_to_bytes, GridCodecError};
use hsr_terrain::GridTerrain;
use std::io::{Read as _, Write as _};
use std::path::{Path, PathBuf};

/// Magic prefix + version of the pyramid meta file.
const META_MAGIC: [u8; 4] = *b"HSRP";
const META_VERSION: u32 = 1;

/// Errors from the tile store.
#[derive(Debug)]
pub enum TileStoreError {
    /// An underlying filesystem operation failed.
    Io {
        /// The file involved.
        path: PathBuf,
        /// The OS error.
        source: std::io::Error,
    },
    /// A tile file exists but does not decode.
    Codec {
        /// The file involved.
        path: PathBuf,
        /// The decode failure.
        source: GridCodecError,
    },
    /// The store directory has no (valid) pyramid meta file.
    BadMeta {
        /// The meta path that was rejected.
        path: PathBuf,
    },
}

impl std::fmt::Display for TileStoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TileStoreError::Io { path, source } => {
                write!(f, "tile store I/O on {}: {source}", path.display())
            }
            TileStoreError::Codec { path, source } => {
                write!(f, "tile {} does not decode: {source}", path.display())
            }
            TileStoreError::BadMeta { path } => {
                write!(f, "{} is not a valid pyramid meta file", path.display())
            }
        }
    }
}

impl std::error::Error for TileStoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TileStoreError::Io { source, .. } => Some(source),
            TileStoreError::Codec { source, .. } => Some(source),
            TileStoreError::BadMeta { .. } => None,
        }
    }
}

/// A directory of materialized tiles.
#[derive(Debug)]
pub struct TileStore {
    dir: PathBuf,
}

impl TileStore {
    /// Opens (creating if necessary) a store rooted at `dir`.
    pub fn create(dir: impl Into<PathBuf>) -> Result<TileStore, TileStoreError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|source| TileStoreError::Io { path: dir.clone(), source })?;
        Ok(TileStore { dir })
    }

    /// Opens an existing store rooted at `dir` (no directory creation).
    pub fn open(dir: impl Into<PathBuf>) -> Result<TileStore, TileStoreError> {
        let dir = dir.into();
        if !dir.is_dir() {
            return Err(TileStoreError::Io {
                path: dir.clone(),
                source: std::io::Error::new(
                    std::io::ErrorKind::NotFound,
                    "store directory does not exist",
                ),
            });
        }
        Ok(TileStore { dir })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file a tile lives in.
    pub fn tile_path(&self, id: TileId) -> PathBuf {
        self.dir
            .join(format!("L{}", id.level))
            .join(format!("t{}_{}.hsrt", id.ti, id.tj))
    }

    fn meta_path(&self) -> PathBuf {
        self.dir.join("meta.hsrp")
    }

    /// True when the tile has been materialized.
    pub fn has_tile(&self, id: TileId) -> bool {
        self.tile_path(id).is_file()
    }

    /// Materializes one tile.
    pub fn write_tile(&self, id: TileId, grid: &GridTerrain) -> Result<(), TileStoreError> {
        let path = self.tile_path(id);
        let io_err = |source, path: &Path| TileStoreError::Io { path: path.to_path_buf(), source };
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).map_err(|e| io_err(e, parent))?;
        }
        let mut f = std::fs::File::create(&path).map_err(|e| io_err(e, &path))?;
        f.write_all(&grid_to_bytes(grid))
            .map_err(|e| io_err(e, &path))?;
        Ok(())
    }

    /// Reads one tile back.
    pub fn read_tile(&self, id: TileId) -> Result<GridTerrain, TileStoreError> {
        let path = self.tile_path(id);
        let mut bytes = Vec::new();
        std::fs::File::open(&path)
            .and_then(|mut f| f.read_to_end(&mut bytes))
            .map_err(|source| TileStoreError::Io { path: path.clone(), source })?;
        grid_from_bytes(&bytes).map_err(|source| TileStoreError::Codec { path, source })
    }

    /// Persists the pyramid description.
    pub fn write_meta(&self, meta: &PyramidMeta) -> Result<(), TileStoreError> {
        let mut out = Vec::with_capacity(96);
        out.extend_from_slice(&META_MAGIC);
        out.extend_from_slice(&META_VERSION.to_le_bytes());
        for v in [
            meta.nx as u64,
            meta.ny as u64,
            meta.tile_size as u64,
            meta.levels as u64,
            meta.tiles_i as u64,
            meta.tiles_j as u64,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        for v in [meta.dx, meta.dy, meta.origin.0, meta.origin.1] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        let path = self.meta_path();
        std::fs::write(&path, out).map_err(|source| TileStoreError::Io { path, source })
    }

    /// Loads the pyramid description written by [`TileStore::write_meta`].
    pub fn read_meta(&self) -> Result<PyramidMeta, TileStoreError> {
        let path = self.meta_path();
        let bytes = std::fs::read(&path)
            .map_err(|source| TileStoreError::Io { path: path.clone(), source })?;
        let bad = || TileStoreError::BadMeta { path: path.clone() };
        if bytes.len() < 88 || bytes[..4] != META_MAGIC {
            return Err(bad());
        }
        if u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes")) != META_VERSION {
            return Err(bad());
        }
        let u64_at =
            |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes")) as usize;
        let f64_at = |at: usize| f64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes"));
        let meta = PyramidMeta {
            nx: u64_at(8),
            ny: u64_at(16),
            tile_size: u64_at(24),
            levels: u64_at(32) as u32,
            tiles_i: u64_at(40),
            tiles_j: u64_at(48),
            dx: f64_at(56),
            dy: f64_at(64),
            origin: (f64_at(72), f64_at(80)),
        };
        if meta.nx < 2 || meta.ny < 2 || meta.tile_size < 2 || meta.levels < 1 {
            return Err(bad());
        }
        // Internal consistency, not just field ranges: a truncated or
        // bit-flipped file that still passes the magic/version check
        // must surface as `BadMeta` here, never as a panic (or a silent
        // out-of-bounds tile grid) later in the tiled pipeline.
        if meta.levels > 32 {
            return Err(bad());
        }
        if meta.tiles_i != (meta.nx - 1).div_ceil(meta.tile_size)
            || meta.tiles_j != (meta.ny - 1).div_ceil(meta.tile_size)
        {
            return Err(bad());
        }
        let scalars_ok = meta.dx.is_finite()
            && meta.dx > 0.0
            && meta.dy.is_finite()
            && meta.dy > 0.0
            && meta.origin.0.is_finite()
            && meta.origin.1.is_finite();
        if !scalars_ok {
            return Err(bad());
        }
        Ok(meta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pyramid::{TilePyramid, TilingConfig};
    use hsr_terrain::gen;

    pub(crate) fn scratch_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hsr-tile-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn tiles_round_trip_through_the_store() {
        let dir = scratch_dir("roundtrip");
        let store = TileStore::create(&dir).unwrap();
        let g = gen::fbm(9, 9, 3, 6.0, 11);
        let id = TileId { level: 0, ti: 2, tj: 3 };
        assert!(!store.has_tile(id));
        store.write_tile(id, &g).unwrap();
        assert!(store.has_tile(id));
        let back = store.read_tile(id).unwrap();
        assert_eq!(back.heights, g.heights);
        assert_eq!((back.nx, back.ny, back.origin), (g.nx, g.ny, g.origin));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn meta_round_trips_and_rejects_garbage() {
        let dir = scratch_dir("meta");
        let store = TileStore::create(&dir).unwrap();
        let g = gen::fbm(21, 17, 3, 6.0, 3);
        let meta =
            TilePyramid::build(&g, TilingConfig { tile_size: 8, levels: 3 }, &store).unwrap();
        assert_eq!(store.read_meta().unwrap(), meta);
        // Every tile of every level was materialized.
        for (ti, tj) in meta.tile_coords() {
            for level in 0..meta.levels {
                assert!(store.has_tile(TileId { level, ti, tj }), "missing L{level} {ti},{tj}");
            }
        }
        std::fs::write(store.dir().join("meta.hsrp"), b"junkjunkjunk").unwrap();
        assert!(matches!(store.read_meta(), Err(TileStoreError::BadMeta { .. })));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_tiles_and_stores_surface_io_errors() {
        let dir = scratch_dir("missing");
        assert!(matches!(TileStore::open(&dir), Err(TileStoreError::Io { .. })));
        let store = TileStore::create(&dir).unwrap();
        assert!(matches!(
            store.read_tile(TileId { level: 0, ti: 0, tj: 0 }),
            Err(TileStoreError::Io { .. })
        ));
        // A corrupt tile file is a codec error, not an I/O error.
        let id = TileId { level: 1, ti: 0, tj: 0 };
        let path = store.tile_path(id);
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, b"not a tile").unwrap();
        assert!(matches!(store.read_tile(id), Err(TileStoreError::Codec { .. })));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
