//! The tile pyramid: how one big grid terrain is cut into fixed-size
//! tiles with overlap skirts and coarsened into levels of detail.
//!
//! A tile covers `tile_size × tile_size` grid *cells* plus a one-cell
//! skirt on every side that exists, so adjacent tile TINs share their
//! boundary cells: every triangle of the full triangulation appears in at
//! least one tile, and silhouettes that sit exactly on a tile boundary
//! are not lost. Level `l > 0` stores the same tile resampled to
//! `((samples − 1) >> l) + 1` samples per axis (bilinear, via
//! [`GridTerrain::resample`]) — Erickson-style finite-resolution
//! evaluation: a view far from a tile reads a resolution matched to its
//! screen-space footprint instead of the full mesh.

use crate::store::{TileStore, TileStoreError};
use hsr_terrain::GridTerrain;

/// How to cut a grid into a pyramid.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TilingConfig {
    /// Tile edge length in grid *cells* (a tile holds `tile_size + 1`
    /// samples per axis before skirts). Must be ≥ 2.
    pub tile_size: usize,
    /// Number of resolution levels, including the full-resolution level 0.
    /// Must be ≥ 1.
    pub levels: u32,
}

impl Default for TilingConfig {
    fn default() -> Self {
        TilingConfig { tile_size: 256, levels: 4 }
    }
}

/// Addresses one materialized tile: pyramid level + tile row/column.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TileId {
    /// Resolution level (0 = full resolution).
    pub level: u32,
    /// Tile index along the depth (`i`/`x`) axis.
    pub ti: u32,
    /// Tile index along the breadth (`j`/`y`) axis.
    pub tj: u32,
}

/// The persistent description of a built pyramid — everything needed to
/// address tiles without the source grid in memory.
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PyramidMeta {
    /// Source grid samples along the depth axis.
    pub nx: usize,
    /// Source grid samples across the view.
    pub ny: usize,
    /// Source grid spacing along `x`.
    pub dx: f64,
    /// Source grid spacing along `y`.
    pub dy: f64,
    /// World position of source sample `(0, 0)`.
    pub origin: (f64, f64),
    /// Tile edge length in cells.
    pub tile_size: usize,
    /// Number of resolution levels.
    pub levels: u32,
    /// Tile count along the depth axis.
    pub tiles_i: usize,
    /// Tile count across the view.
    pub tiles_j: usize,
}

impl PyramidMeta {
    /// Derives the pyramid shape for a grid under a tiling config.
    pub fn new(grid: &GridTerrain, cfg: TilingConfig) -> PyramidMeta {
        assert!(cfg.tile_size >= 2, "tile_size must be ≥ 2 cells");
        assert!(cfg.levels >= 1, "a pyramid has at least level 0");
        assert!(grid.nx >= 2 && grid.ny >= 2, "grid must be at least 2×2");
        PyramidMeta {
            nx: grid.nx,
            ny: grid.ny,
            dx: grid.dx,
            dy: grid.dy,
            origin: grid.origin,
            tile_size: cfg.tile_size,
            levels: cfg.levels,
            tiles_i: (grid.nx - 1).div_ceil(cfg.tile_size),
            tiles_j: (grid.ny - 1).div_ceil(cfg.tile_size),
        }
    }

    /// Total number of tiles per level.
    pub fn tile_count(&self) -> usize {
        self.tiles_i * self.tiles_j
    }

    /// The source-grid sample range `(i0, j0, ni, nj)` of tile
    /// `(ti, tj)`, including the one-cell skirt on every side that has a
    /// neighbour.
    pub fn sample_range(&self, ti: u32, tj: u32) -> (usize, usize, usize, usize) {
        assert!((ti as usize) < self.tiles_i && (tj as usize) < self.tiles_j);
        let range = |t: usize, n: usize| {
            let c0 = (t * self.tile_size).saturating_sub(1);
            let c1 = ((t + 1) * self.tile_size + 1).min(n - 1);
            (c0, c1 - c0 + 1)
        };
        let (i0, ni) = range(ti as usize, self.nx);
        let (j0, nj) = range(tj as usize, self.ny);
        (i0, j0, ni, nj)
    }

    /// The ground-plane bounding box `((x_lo, y_lo), (x_hi, y_hi))` of
    /// tile `(ti, tj)` — skirt included, so every triangle of the tile's
    /// TIN lies inside it.
    pub fn ground_aabb(&self, ti: u32, tj: u32) -> ((f64, f64), (f64, f64)) {
        let (i0, j0, ni, nj) = self.sample_range(ti, tj);
        let x0 = self.origin.0 + i0 as f64 * self.dx;
        let y0 = self.origin.1 + j0 as f64 * self.dy;
        ((x0, y0), (x0 + (ni - 1) as f64 * self.dx, y0 + (nj - 1) as f64 * self.dy))
    }

    /// Sample shape `(ni, nj)` of tile `(ti, tj)` at `level`: each level
    /// halves the cell count (floor, at least one cell).
    pub fn level_shape(&self, ti: u32, tj: u32, level: u32) -> (usize, usize) {
        let (_, _, ni, nj) = self.sample_range(ti, tj);
        let coarsen = |n: usize| ((n - 1) >> level).max(1) + 1;
        (coarsen(ni), coarsen(nj))
    }

    /// All tile coordinates in row-major (depth-axis first) order.
    pub fn tile_coords(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (0..self.tiles_i as u32)
            .flat_map(move |ti| (0..self.tiles_j as u32).map(move |tj| (ti, tj)))
    }
}

/// Builds tile pyramids into a [`TileStore`].
pub struct TilePyramid;

impl TilePyramid {
    /// Cuts `grid` into tiles, coarsens every level, and materializes the
    /// lot (tiles + meta) into `store`. Returns the pyramid description;
    /// after this the source grid is no longer needed — evaluation streams
    /// tiles back from the store.
    pub fn build(
        grid: &GridTerrain,
        cfg: TilingConfig,
        store: &TileStore,
    ) -> Result<PyramidMeta, TileStoreError> {
        let meta = PyramidMeta::new(grid, cfg);
        for (ti, tj) in meta.tile_coords() {
            let (i0, j0, ni, nj) = meta.sample_range(ti, tj);
            let base = grid.crop(i0, j0, ni, nj);
            store.write_tile(TileId { level: 0, ti, tj }, &base)?;
            for level in 1..cfg.levels {
                let (rni, rnj) = meta.level_shape(ti, tj, level);
                store.write_tile(TileId { level, ti, tj }, &base.resample(rni, rnj))?;
            }
        }
        store.write_meta(&meta)?;
        Ok(meta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_ranges_tile_the_grid_with_skirts() {
        let g = GridTerrain::flat(17, 13);
        let meta = PyramidMeta::new(&g, TilingConfig { tile_size: 8, levels: 2 });
        assert_eq!((meta.tiles_i, meta.tiles_j), (2, 2));
        // Interior tiles overlap their neighbours by the skirt.
        assert_eq!(meta.sample_range(0, 0), (0, 0, 10, 10));
        assert_eq!(meta.sample_range(1, 0), (7, 0, 10, 10));
        assert_eq!(meta.sample_range(1, 1), (7, 7, 10, 6));
        // Every cell is covered by some tile's interior ∪ skirt.
        let mut covered = vec![false; (g.nx - 1) * (g.ny - 1)];
        for (ti, tj) in meta.tile_coords() {
            let (i0, j0, ni, nj) = meta.sample_range(ti, tj);
            for ci in i0..i0 + ni - 1 {
                for cj in j0..j0 + nj - 1 {
                    covered[ci * (g.ny - 1) + cj] = true;
                }
            }
        }
        assert!(covered.into_iter().all(|c| c));
    }

    #[test]
    fn ground_aabbs_cover_the_extent() {
        let mut g = GridTerrain::flat(10, 10);
        g.dx = 2.0;
        g.origin = (5.0, -3.0);
        let meta = PyramidMeta::new(&g, TilingConfig { tile_size: 4, levels: 1 });
        let (lo, _) = meta.ground_aabb(0, 0);
        assert_eq!(lo, (5.0, -3.0));
        let (_, hi) = meta.ground_aabb(meta.tiles_i as u32 - 1, meta.tiles_j as u32 - 1);
        assert_eq!(hi, (5.0 + 18.0, -3.0 + 9.0));
    }

    #[test]
    fn level_shapes_halve_and_bottom_out() {
        let g = GridTerrain::flat(33, 33);
        let meta = PyramidMeta::new(&g, TilingConfig { tile_size: 16, levels: 6 });
        // Interior tile: 16 cells + skirt = 18 cells → 19 samples.
        assert_eq!(meta.level_shape(1, 1, 0), (18, 18));
        assert_eq!(meta.level_shape(1, 1, 1), (9, 9));
        // Deep levels clamp at the 2-sample minimum (one cell).
        assert_eq!(meta.level_shape(1, 1, 5), (2, 2));
    }
}
