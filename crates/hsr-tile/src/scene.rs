//! Out-of-core evaluation: one logical view over a tiled terrain.
//!
//! A [`TiledScene`] is the tile-pyramid counterpart of the facade's
//! monolithic `Scene`: it holds a [`TileStore`] plus a capped
//! [`SceneCache`] and evaluates a [`View`] by
//!
//! 1. **selecting** the covering tiles — every tile for an orthographic
//!    sweep, a view-frustum wedge test for perspective, and a
//!    region-of-interest test for viewsheds (only tiles whose ground box
//!    meets an observer→target sight segment can occlude anything, so the
//!    selection is exact, not heuristic);
//! 2. **picking a level of detail per tile** from its ground distance to
//!    the eye (or a fixed level override);
//! 3. **evaluating** the resident tiles in capacity-bounded chunks
//!    through the same parallel fan-out that powers `Session::eval_batch`
//!    ([`hsr_core::view::evaluate_many`]);
//! 4. **stitching** the per-tile [`Report`]s into one merged report
//!    ([`Report::absorb`]): concatenated visibility maps with disjoint
//!    edge-id ranges, summed cost/timings, and pointwise-merged viewshed
//!    verdicts (hidden dominates).
//!
//! For viewsheds at full resolution the stitched verdicts are *bit
//! identical* to a monolithic evaluation of the same terrain: a target is
//! hidden exactly when some tile's terrain occludes it, and every
//! triangle lives in at least one tile (skirts only duplicate, and the
//! envelope maximum is idempotent). The per-tile visible-segment maps
//! resolve occlusion within each tile only; stitching does not re-run
//! hidden-surface removal across tile boundaries.

use crate::cache::{CacheStats, SceneCache};
use crate::pyramid::{PyramidMeta, TileId, TilePyramid, TilingConfig};
use crate::store::{TileStore, TileStoreError};
use hsr_core::error::HsrError;
use hsr_core::view::{evaluate_many, Projection, Report, View};
use hsr_terrain::tin::TinError;
use hsr_terrain::{GridTerrain, Tin};
use std::sync::Arc;

/// Evaluation-side configuration of a tiled scene.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TiledSceneConfig {
    /// Hard cap on resident tiles (the [`SceneCache`] capacity). Also the
    /// evaluation chunk size: at most this many tiles are materialized at
    /// once.
    pub cache_capacity: usize,
    /// Ground distance (from the eye to a tile's box) under which a tile
    /// is evaluated at full resolution; each doubling beyond it coarsens
    /// by one level. `None` picks four tile edge lengths.
    pub lod_near: Option<f64>,
    /// Evaluate every tile at this fixed level instead of by distance.
    /// Orthographic views (no finite eye) always use
    /// `fixed_level.unwrap_or(0)`.
    pub fixed_level: Option<u32>,
}

impl Default for TiledSceneConfig {
    fn default() -> Self {
        TiledSceneConfig { cache_capacity: 16, lod_near: None, fixed_level: None }
    }
}

/// Errors from tiled evaluation.
#[derive(Debug)]
pub enum TiledError {
    /// The tile store failed (I/O, codec, missing meta).
    Store(TileStoreError),
    /// A materialized tile failed TIN validation.
    Terrain(TinError),
    /// A per-tile evaluation failed.
    Hsr(HsrError),
    /// A view shape the tiled evaluator cannot serve.
    UnsupportedView(String),
}

impl std::fmt::Display for TiledError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TiledError::Store(e) => write!(f, "tile store: {e}"),
            TiledError::Terrain(e) => write!(f, "tile terrain invalid: {e}"),
            TiledError::Hsr(e) => write!(f, "tile evaluation: {e}"),
            TiledError::UnsupportedView(what) => write!(f, "unsupported view: {what}"),
        }
    }
}

impl std::error::Error for TiledError {}

impl From<TileStoreError> for TiledError {
    fn from(e: TileStoreError) -> Self {
        TiledError::Store(e)
    }
}

impl From<HsrError> for TiledError {
    fn from(e: HsrError) -> Self {
        TiledError::Hsr(e)
    }
}

/// What one tile contributed to a stitched evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TileEval {
    /// The tile (level = the LOD it was evaluated at).
    pub id: TileId,
    /// The tile's input size (edges).
    pub n: usize,
    /// The tile's output size.
    pub k: usize,
}

/// The result of one tiled evaluation: the stitched report plus the
/// out-of-core evidence (which tiles ran, at what level, and how the
/// cache behaved).
#[derive(Clone, Debug)]
pub struct TiledReport {
    /// The stitched per-view report (see [`Report::absorb`] for merge
    /// semantics; `report.n` is the summed tile edge count, and piece
    /// edge ids of tile `t` start at the sum of earlier tiles' `n`).
    pub report: Report,
    /// Per-tile contributions in stitch order.
    pub tiles: Vec<TileEval>,
    /// Tiles in the pyramid (per level); `tiles.len()` of them were
    /// selected for this view.
    pub tiles_total: usize,
    /// Cache counters observed right after this evaluation;
    /// `cache.peak_resident` never exceeds the configured capacity.
    pub cache: CacheStats,
}

/// A terrain too large to hold as one scene: a tile pyramid on disk, a
/// capped cache of resident tiles, and `Scene`-like evaluation on top.
pub struct TiledScene {
    meta: PyramidMeta,
    store: TileStore,
    cache: SceneCache,
    cfg: TiledSceneConfig,
    /// Serializes [`TiledScene::eval`] calls: each evaluation may pin up
    /// to `cache_capacity` tiles for its current chunk, so two concurrent
    /// evaluations could pin more than the cap between them (breaking the
    /// cache's checkout contract). Parallelism lives *inside* an
    /// evaluation (the chunk fan-out); concurrent callers queue here.
    eval_lock: std::sync::Mutex<()>,
}

impl TiledScene {
    /// Cuts `grid` into a pyramid materialized in `store` and opens the
    /// result for evaluation. The grid can be dropped afterwards —
    /// evaluation streams tiles from the store.
    pub fn build(
        grid: &GridTerrain,
        tiling: TilingConfig,
        store: TileStore,
        cfg: TiledSceneConfig,
    ) -> Result<TiledScene, TiledError> {
        let meta = TilePyramid::build(grid, tiling, &store)?;
        Ok(TiledScene {
            cache: SceneCache::new(cfg.cache_capacity),
            meta,
            store,
            cfg,
            eval_lock: std::sync::Mutex::new(()),
        })
    }

    /// Opens an already materialized store (reads its pyramid meta).
    pub fn open(store: TileStore, cfg: TiledSceneConfig) -> Result<TiledScene, TiledError> {
        let meta = store.read_meta()?;
        Ok(TiledScene {
            cache: SceneCache::new(cfg.cache_capacity),
            meta,
            store,
            cfg,
            eval_lock: std::sync::Mutex::new(()),
        })
    }

    /// The pyramid description.
    pub fn meta(&self) -> &PyramidMeta {
        &self.meta
    }

    /// The cache counters (residency, hit/load/eviction history).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Evaluates one view against the tiled terrain. See the module docs
    /// for the select → LOD → chunked-evaluate → stitch sequence and the
    /// merge semantics.
    ///
    /// Safe to call from several threads: evaluations are serialized on
    /// an internal lock so the resident-tile bound holds across callers
    /// (each evaluation parallelizes internally over its chunk).
    pub fn eval(&self, view: &View) -> Result<TiledReport, TiledError> {
        let _serialized = self.eval_lock.lock().expect("eval lock");
        let selected = self.select(view)?;
        let chunk = self.cfg.cache_capacity.min(selected.len()).max(1);
        let mut report = Report::empty();
        let mut tiles = Vec::with_capacity(selected.len());
        let mut edge_offset: u32 = 0;
        for group in selected.chunks(chunk) {
            // Materialize the chunk (≤ capacity tiles pinned at once)…
            let mut pinned: Vec<(TileId, Arc<Tin>)> = Vec::with_capacity(group.len());
            for &id in group {
                let tin = self
                    .cache
                    .get_or_load(id, || {
                        self.store
                            .read_tile(id)
                            .map_err(TiledError::Store)
                            .and_then(|g| g.to_tin().map_err(TiledError::Terrain))
                    })
                    .expect("chunk size never exceeds cache capacity")?;
                pinned.push((id, tin));
            }
            // …fan the chunk out in parallel…
            let jobs: Vec<(&Tin, View)> = pinned
                .iter()
                .map(|(_, tin)| (tin.as_ref(), view.clone()))
                .collect();
            let results = evaluate_many(&jobs);
            // …and stitch in deterministic tile order.
            for ((id, _), result) in pinned.iter().zip(results) {
                let part = result?;
                tiles.push(TileEval { id: *id, n: part.n, k: part.k });
                report.absorb(&part, edge_offset);
                edge_offset += part.n as u32;
            }
        }
        Ok(TiledReport {
            report,
            tiles,
            tiles_total: self.meta.tile_count(),
            cache: self.cache.stats(),
        })
    }

    /// The tiles a view needs, each at its level of detail, in row-major
    /// sweep order.
    fn select(&self, view: &View) -> Result<Vec<TileId>, TiledError> {
        let meta = &self.meta;
        let level_for = |eye: Option<(f64, f64)>, ti: u32, tj: u32| -> u32 {
            if let Some(level) = self.cfg.fixed_level {
                return level.min(meta.levels - 1);
            }
            let Some(eye) = eye else { return 0 };
            let (lo, hi) = meta.ground_aabb(ti, tj);
            let d = aabb_distance(eye, lo, hi);
            let near = self.cfg.lod_near.unwrap_or_else(|| {
                4.0 * (meta.tile_size as f64) * meta.dx.abs().max(meta.dy.abs())
            });
            // `near <= 0` (or NaN) disables distance-based coarsening.
            if near.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) || d <= near {
                return 0;
            }
            let level = (d / near).log2().floor() as u32 + 1;
            level.min(meta.levels - 1)
        };
        let mut out = Vec::new();
        match &view.projection {
            // The full back-to-front row sweep: every tile contributes.
            Projection::Orthographic { .. } => {
                for (ti, tj) in meta.tile_coords() {
                    out.push(TileId { level: level_for(None, ti, tj), ti, tj });
                }
            }
            Projection::Perspective { eye, look, fov, .. } => {
                if !eye.is_finite() || !look.is_finite() || !fov.is_finite() {
                    return Err(
                        HsrError::InvalidView("perspective view must be finite".into()).into()
                    );
                }
                let apex = (eye.x, eye.y);
                let dir = (look.x - eye.x, look.y - eye.y);
                if dir.0 == 0.0 && dir.1 == 0.0 {
                    return Err(HsrError::InvalidView(
                        "eye and look must have distinct ground positions".into(),
                    )
                    .into());
                }
                if !(*fov > 0.0 && *fov <= std::f64::consts::PI) {
                    return Err(HsrError::InvalidView(format!(
                        "fov must lie in (0, π], got {fov}"
                    ))
                    .into());
                }
                for (ti, tj) in meta.tile_coords() {
                    let (lo, hi) = meta.ground_aabb(ti, tj);
                    if wedge_intersects_aabb(apex, dir, 0.5 * fov, lo, hi) {
                        out.push(TileId { level: level_for(Some(apex), ti, tj), ti, tj });
                    }
                }
            }
            Projection::Viewshed { observer, targets } => {
                if targets.is_empty() {
                    return Err(TiledError::UnsupportedView(
                        "tiled viewsheds need explicit targets: with an empty target list each \
                         tile would classify its own vertices and the per-tile verdict lists \
                         could not be aligned — materialize the query points instead"
                            .into(),
                    ));
                }
                if !observer.is_finite() {
                    return Err(HsrError::InvalidView("observer must be finite".into()).into());
                }
                let obs = (observer.x, observer.y);
                for (ti, tj) in meta.tile_coords() {
                    let (lo, hi) = meta.ground_aabb(ti, tj);
                    // Only terrain under a sight segment can occlude; the
                    // exactness of the stitched verdicts relies on this
                    // test being conservative (never a false negative).
                    let relevant = targets
                        .iter()
                        .any(|t| segment_intersects_aabb(obs, (t.x, t.y), lo, hi));
                    if relevant {
                        out.push(TileId { level: level_for(Some(obs), ti, tj), ti, tj });
                    }
                }
            }
        }
        Ok(out)
    }
}

/// Ground distance from a point to an axis-aligned box (0 inside).
fn aabb_distance(p: (f64, f64), lo: (f64, f64), hi: (f64, f64)) -> f64 {
    let dx = (lo.0 - p.0).max(0.0).max(p.0 - hi.0);
    let dy = (lo.1 - p.1).max(0.0).max(p.1 - hi.1);
    (dx * dx + dy * dy).sqrt()
}

/// Closed-set segment/AABB intersection via slab clipping.
fn segment_intersects_aabb(a: (f64, f64), b: (f64, f64), lo: (f64, f64), hi: (f64, f64)) -> bool {
    let (mut t0, mut t1) = (0.0f64, 1.0f64);
    for ((p, d), (l, h)) in [
        ((a.0, b.0 - a.0), (lo.0, hi.0)),
        ((a.1, b.1 - a.1), (lo.1, hi.1)),
    ] {
        if d == 0.0 {
            if p < l || p > h {
                return false;
            }
            continue;
        }
        let (mut u0, mut u1) = ((l - p) / d, (h - p) / d);
        if u0 > u1 {
            std::mem::swap(&mut u0, &mut u1);
        }
        t0 = t0.max(u0);
        t1 = t1.min(u1);
        if t0 > t1 {
            return false;
        }
    }
    true
}

/// Does the infinite wedge with the given apex, center direction and
/// half-angle (≤ π/2) meet the box? Exact for closed sets: the wedge and
/// box intersect iff the apex is inside the box, a box corner is inside
/// the wedge, or a wedge boundary ray crosses the box.
fn wedge_intersects_aabb(
    apex: (f64, f64),
    dir: (f64, f64),
    half_angle: f64,
    lo: (f64, f64),
    hi: (f64, f64),
) -> bool {
    if lo.0 <= apex.0 && apex.0 <= hi.0 && lo.1 <= apex.1 && apex.1 <= hi.1 {
        return true;
    }
    let len = (dir.0 * dir.0 + dir.1 * dir.1).sqrt();
    let d = (dir.0 / len, dir.1 / len);
    let cos_half = half_angle.cos();
    let corners = [(lo.0, lo.1), (lo.0, hi.1), (hi.0, lo.1), (hi.0, hi.1)];
    for c in corners {
        let u = (c.0 - apex.0, c.1 - apex.1);
        let norm = (u.0 * u.0 + u.1 * u.1).sqrt();
        if u.0 * d.0 + u.1 * d.1 >= norm * cos_half {
            return true;
        }
    }
    let (sin, cos) = half_angle.sin_cos();
    for s in [sin, -sin] {
        let ray = (d.0 * cos - d.1 * s, d.0 * s + d.1 * cos);
        if ray_intersects_aabb(apex, ray, lo, hi) {
            return true;
        }
    }
    false
}

/// Closed-set ray/AABB intersection (slab method, `t ≥ 0`).
fn ray_intersects_aabb(p: (f64, f64), d: (f64, f64), lo: (f64, f64), hi: (f64, f64)) -> bool {
    let (mut t0, mut t1) = (0.0f64, f64::INFINITY);
    for ((p, d), (l, h)) in [((p.0, d.0), (lo.0, hi.0)), ((p.1, d.1), (lo.1, hi.1))] {
        if d == 0.0 {
            if p < l || p > h {
                return false;
            }
            continue;
        }
        let (mut u0, mut u1) = ((l - p) / d, (h - p) / d);
        if u0 > u1 {
            std::mem::swap(&mut u0, &mut u1);
        }
        t0 = t0.max(u0);
        t1 = t1.min(u1);
        if t0 > t1 {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_aabb_cases() {
        let (lo, hi) = ((0.0, 0.0), (2.0, 2.0));
        assert!(segment_intersects_aabb((-1.0, 1.0), (3.0, 1.0), lo, hi)); // through
        assert!(segment_intersects_aabb((1.0, 1.0), (5.0, 5.0), lo, hi)); // from inside
        assert!(segment_intersects_aabb((-1.0, -1.0), (0.0, 0.0), lo, hi)); // touches corner
        assert!(!segment_intersects_aabb((-1.0, 3.0), (3.0, 3.0), lo, hi)); // above
        assert!(!segment_intersects_aabb((3.0, -1.0), (3.0, 3.0), lo, hi)); // right of
        assert!(!segment_intersects_aabb((-2.0, 0.0), (0.0, -2.0), lo, hi)); // clips corner off
        assert!(segment_intersects_aabb((1.0, 1.0), (1.0, 1.0), lo, hi)); // degenerate inside
        assert!(!segment_intersects_aabb((3.0, 3.0), (3.0, 3.0), lo, hi)); // degenerate outside
    }

    #[test]
    fn wedge_aabb_cases() {
        let (lo, hi) = ((2.0, -1.0), (3.0, 1.0));
        // Looking straight +x from the origin: box dead ahead.
        assert!(wedge_intersects_aabb((0.0, 0.0), (1.0, 0.0), 0.1, lo, hi));
        // Looking away.
        assert!(!wedge_intersects_aabb((0.0, 0.0), (-1.0, 0.0), 0.4, lo, hi));
        // Narrow wedge aimed past the box misses it…
        assert!(!wedge_intersects_aabb((0.0, 10.0), (1.0, 0.0), 0.05, lo, hi));
        // …a wide one from the same place reaches down to it.
        assert!(wedge_intersects_aabb(
            (0.0, 10.0),
            (1.0, 0.0),
            std::f64::consts::FRAC_PI_2,
            lo,
            hi
        ));
        // Apex inside.
        assert!(wedge_intersects_aabb((2.5, 0.0), (1.0, 0.0), 0.05, lo, hi));
        // A thin wedge that pierces a box face: no corner lies inside the
        // wedge and the apex is outside, so only the boundary-ray test
        // can (and must) detect it.
        assert!(wedge_intersects_aabb((2.5, -5.0), (0.0, 1.0), 0.02, lo, hi));
    }

    #[test]
    fn aabb_distance_cases() {
        let (lo, hi) = ((0.0, 0.0), (2.0, 2.0));
        assert_eq!(aabb_distance((1.0, 1.0), lo, hi), 0.0);
        assert_eq!(aabb_distance((4.0, 1.0), lo, hi), 2.0);
        assert!((aabb_distance((-3.0, -4.0), lo, hi) - 5.0).abs() < 1e-12);
    }
}
