//! Out-of-core evaluation: one logical view over a tiled terrain.
//!
//! A [`TiledScene`] is the tile-pyramid counterpart of the facade's
//! monolithic `Scene`: it holds a [`TileStore`] plus a capped
//! [`SceneCache`] and evaluates a [`View`] by
//!
//! 1. **selecting** the covering tiles — every tile for an orthographic
//!    sweep, a view-frustum wedge test for perspective, and a
//!    region-of-interest test for viewsheds (only tiles whose ground box
//!    meets an observer→target sight segment can occlude anything, so the
//!    selection is exact, not heuristic);
//! 2. **picking a level of detail per tile** from its ground distance to
//!    the eye (or a fixed level override);
//! 3. **evaluating** the resident tiles in capacity-bounded chunks
//!    through the same parallel fan-out that powers `Session::eval_batch`
//!    ([`hsr_core::view::evaluate_many`]);
//! 4. **stitching** the per-tile [`Report`]s into one merged report
//!    ([`Report::absorb`]): concatenated visibility maps with disjoint
//!    edge-id ranges, summed cost/timings, and pointwise-merged viewshed
//!    verdicts (hidden dominates).
//!
//! For viewsheds at full resolution the stitched verdicts are *bit
//! identical* to a monolithic evaluation of the same terrain: a target is
//! hidden exactly when some tile's terrain occludes it, and every
//! triangle lives in at least one tile (skirts only duplicate, and the
//! envelope maximum is idempotent). The per-tile visible-segment maps
//! resolve occlusion within each tile only; stitching does not re-run
//! hidden-surface removal across tile boundaries.

use crate::cache::{CacheStats, SceneCache};
use crate::pyramid::{PyramidMeta, TileId, TilePyramid, TilingConfig};
use crate::store::{TileStore, TileStoreError};
use hsr_core::error::HsrError;
use hsr_core::view::{evaluate_many, Projection, Report, View};
use hsr_terrain::tin::TinError;
use hsr_terrain::{GridTerrain, Tin};
use std::sync::Arc;

/// Evaluation-side configuration of a tiled scene.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TiledSceneConfig {
    /// Hard cap on resident tiles (the [`SceneCache`] capacity). Also the
    /// evaluation chunk size: at most this many tiles are materialized at
    /// once.
    pub cache_capacity: usize,
    /// Ground distance (from the eye to a tile's box) under which a tile
    /// is evaluated at full resolution; each doubling beyond it coarsens
    /// by one level. `None` picks four tile edge lengths.
    pub lod_near: Option<f64>,
    /// Evaluate every tile at this fixed level instead of by distance.
    /// Orthographic views (no finite eye) always use
    /// `fixed_level.unwrap_or(0)`.
    pub fixed_level: Option<u32>,
}

impl Default for TiledSceneConfig {
    fn default() -> Self {
        TiledSceneConfig { cache_capacity: 16, lod_near: None, fixed_level: None }
    }
}

/// Errors from tiled evaluation.
#[derive(Debug)]
pub enum TiledError {
    /// The tile store failed (I/O, codec, missing meta).
    Store(TileStoreError),
    /// The store exists but its pyramid meta is invalid — truncated,
    /// bit-flipped, or internally inconsistent. Distinct from
    /// [`TiledError::Store`] so callers can tell "this store is damaged,
    /// rebuild it" apart from transient I/O.
    CorruptStore {
        /// The meta file that was rejected.
        path: std::path::PathBuf,
    },
    /// A materialized tile failed TIN validation.
    Terrain(TinError),
    /// A per-tile evaluation failed.
    Hsr(HsrError),
    /// A view shape the tiled evaluator cannot serve.
    UnsupportedView(String),
    /// Stitching the next part would push an edge id past `u32::MAX`:
    /// the terrain has too many edges at the evaluated resolution for
    /// the 32-bit edge-id space of [`hsr_core::visibility::VisibilityMap`].
    /// Evaluate at a coarser level (or fewer tiles) instead of silently
    /// wrapping offsets and corrupting the stitched map.
    EdgeIdOverflow {
        /// Cumulative edge count of the parts already stitched.
        offset: u32,
        /// Edge count of the part that does not fit.
        part_edges: usize,
    },
}

impl std::fmt::Display for TiledError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TiledError::Store(e) => write!(f, "tile store: {e}"),
            TiledError::CorruptStore { path } => {
                write!(f, "corrupt tile store: {} is not a valid pyramid meta", path.display())
            }
            TiledError::Terrain(e) => write!(f, "tile terrain invalid: {e}"),
            TiledError::Hsr(e) => write!(f, "tile evaluation: {e}"),
            TiledError::UnsupportedView(what) => write!(f, "unsupported view: {what}"),
            TiledError::EdgeIdOverflow { offset, part_edges } => write!(
                f,
                "stitching overflows the 32-bit edge-id space: {offset} edges already \
                 stitched + {part_edges} in the next part exceed u32::MAX"
            ),
        }
    }
}

impl std::error::Error for TiledError {}

impl From<TileStoreError> for TiledError {
    fn from(e: TileStoreError) -> Self {
        TiledError::Store(e)
    }
}

impl From<HsrError> for TiledError {
    fn from(e: HsrError) -> Self {
        TiledError::Hsr(e)
    }
}

/// What one tile contributed to a stitched evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TileEval {
    /// The tile (level = the LOD it was evaluated at).
    pub id: TileId,
    /// The tile's input size (edges).
    pub n: usize,
    /// The tile's output size.
    pub k: usize,
}

/// The result of one tiled evaluation: the stitched report plus the
/// out-of-core evidence (which tiles ran, at what level, and how the
/// cache behaved).
#[derive(Clone, Debug)]
pub struct TiledReport {
    /// The stitched per-view report (see [`Report::absorb`] for merge
    /// semantics; `report.n` is the summed tile edge count, and piece
    /// edge ids of tile `t` start at the sum of earlier tiles' `n`).
    pub report: Report,
    /// Per-tile contributions in stitch order.
    pub tiles: Vec<TileEval>,
    /// Tiles in the pyramid (per level); `tiles.len()` of them were
    /// selected for this view.
    pub tiles_total: usize,
    /// Cache counters observed right after this evaluation;
    /// `cache.peak_resident` never exceeds the configured capacity.
    pub cache: CacheStats,
}

/// A terrain too large to hold as one scene: a tile pyramid on disk, a
/// capped cache of resident tiles, and `Scene`-like evaluation on top.
pub struct TiledScene {
    meta: PyramidMeta,
    store: TileStore,
    cache: SceneCache,
    cfg: TiledSceneConfig,
    /// Serializes [`TiledScene::eval`] calls: each evaluation may pin up
    /// to `cache_capacity` tiles for its current chunk, so two concurrent
    /// evaluations could pin more than the cap between them (breaking the
    /// cache's checkout contract). Parallelism lives *inside* an
    /// evaluation (the chunk fan-out); concurrent callers queue here.
    eval_lock: std::sync::Mutex<()>,
}

impl TiledScene {
    /// Cuts `grid` into a pyramid materialized in `store` and opens the
    /// result for evaluation. The grid can be dropped afterwards —
    /// evaluation streams tiles from the store.
    pub fn build(
        grid: &GridTerrain,
        tiling: TilingConfig,
        store: TileStore,
        cfg: TiledSceneConfig,
    ) -> Result<TiledScene, TiledError> {
        let meta = TilePyramid::build(grid, tiling, &store)?;
        Ok(TiledScene {
            cache: SceneCache::new(cfg.cache_capacity),
            meta,
            store,
            cfg,
            eval_lock: std::sync::Mutex::new(()),
        })
    }

    /// Opens an already materialized store (reads its pyramid meta).
    ///
    /// A store whose meta file is damaged — truncated, bit-flipped, or
    /// internally inconsistent — fails with
    /// [`TiledError::CorruptStore`], never a panic downstream.
    pub fn open(store: TileStore, cfg: TiledSceneConfig) -> Result<TiledScene, TiledError> {
        let meta = store.read_meta().map_err(|e| match e {
            TileStoreError::BadMeta { path } => TiledError::CorruptStore { path },
            other => TiledError::Store(other),
        })?;
        Ok(TiledScene {
            cache: SceneCache::new(cfg.cache_capacity),
            meta,
            store,
            cfg,
            eval_lock: std::sync::Mutex::new(()),
        })
    }

    /// The pyramid description.
    pub fn meta(&self) -> &PyramidMeta {
        &self.meta
    }

    /// The cache counters (residency, hit/load/eviction history).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Mirror this scene's tile-cache activity into `recorder`'s
    /// `tile_*` event counters (see [`SceneCache::attach_recorder`]).
    pub fn attach_recorder(&self, recorder: &hsr_obs::Recorder) {
        self.cache.attach_recorder(recorder);
    }

    /// Evaluates one view against the tiled terrain. See the module docs
    /// for the select → LOD → chunked-evaluate → stitch sequence and the
    /// merge semantics.
    ///
    /// Safe to call from several threads: evaluations are serialized on
    /// an internal lock so the resident-tile bound holds across callers
    /// (each evaluation parallelizes internally over its chunk).
    pub fn eval(&self, view: &View) -> Result<TiledReport, TiledError> {
        self.eval_many(std::slice::from_ref(view))?
            .pop()
            .expect("one view in, one report out")
    }

    /// Evaluates several views against the tiled terrain in one pass —
    /// the coalesced form of [`TiledScene::eval`] that a request batcher
    /// (`hsr-serve`) uses. The union of the views' covering tiles streams
    /// through the cache *once*: a tile selected by many views is
    /// materialized once per residency instead of once per view, and each
    /// capacity-bounded chunk fans every `(tile, view)` job through the
    /// same parallel [`evaluate_many`] fan-out.
    ///
    /// Results come back in view order and each stitched report is
    /// bit-identical to what a solo [`TiledScene::eval`] of that view
    /// returns (each `(tile, view)` evaluation owns a scoped cost
    /// collector and is independent of the batch around it; stitching
    /// follows the view's own selection order). The outer `Err` is an
    /// infrastructure failure (a tile failed to load) that aborts the
    /// whole batch; inner errors are per-view (bad view shape, per-tile
    /// evaluation failure, edge-id overflow).
    pub fn eval_many(
        &self,
        views: &[View],
    ) -> Result<Vec<Result<TiledReport, TiledError>>, TiledError> {
        let _serialized = self.eval_lock.lock().expect("eval lock");
        // Select per view; selection errors settle that view immediately.
        let mut out: Vec<Option<Result<TiledReport, TiledError>>> =
            views.iter().map(|_| None).collect();
        let mut selections: Vec<Vec<TileId>> = views.iter().map(|_| Vec::new()).collect();
        for (i, view) in views.iter().enumerate() {
            match self.select(view) {
                Ok(sel) => selections[i] = sel,
                Err(e) => out[i] = Some(Err(e)),
            }
        }
        // The union of covering tiles, deduplicated, in deterministic
        // (level, ti, tj) order, with the views interested in each tile.
        let mut views_of: std::collections::BTreeMap<TileId, Vec<usize>> =
            std::collections::BTreeMap::new();
        for (i, sel) in selections.iter().enumerate() {
            if out[i].is_none() {
                for &id in sel {
                    views_of.entry(id).or_default().push(i);
                }
            }
        }
        let union: Vec<TileId> = views_of.keys().copied().collect();
        // Per-view stitch state: each view absorbs its parts in its own
        // (sweep-order) selection order — the order a solo eval would
        // have used — advancing a cursor as parts become available.
        struct Stitch {
            report: Report,
            tiles: Vec<TileEval>,
            edge_offset: u32,
            next: usize,
            failed: Option<TiledError>,
        }
        let mut stitches: Vec<Stitch> = selections
            .iter()
            .map(|sel| Stitch {
                report: Report::empty(),
                tiles: Vec::with_capacity(sel.len()),
                edge_offset: 0,
                next: 0,
                failed: None,
            })
            .collect();
        // Stream the union through the cache in capacity-bounded chunks,
        // fanning every (tile, view) pair of a chunk out in parallel and
        // stitching eagerly after each chunk, so a part report is freed
        // as soon as its view's selection order reaches it (for a single
        // view — or any batch evaluated at one level — the union order
        // matches the selection order and nothing outlives its chunk).
        let mut parts: std::collections::HashMap<(TileId, usize), Result<Report, HsrError>> =
            std::collections::HashMap::new();
        let chunk = self.cfg.cache_capacity.min(union.len()).max(1);
        for group in union.chunks(chunk) {
            // Materialize the chunk (≤ capacity tiles pinned at once)…
            let mut pinned: Vec<(TileId, Arc<Tin>)> = Vec::with_capacity(group.len());
            for &id in group {
                let tin = self
                    .cache
                    .get_or_load(id, || {
                        self.store
                            .read_tile(id)
                            .map_err(TiledError::Store)
                            .and_then(|g| g.to_tin().map_err(TiledError::Terrain))
                    })
                    .expect("chunk size never exceeds cache capacity")?;
                pinned.push((id, tin));
            }
            // …fan the chunk's (tile, view) jobs out in parallel
            // (skipping views that already settled or failed)…
            let mut keys: Vec<(TileId, usize)> = Vec::new();
            let mut jobs: Vec<(&Tin, View)> = Vec::new();
            for (id, tin) in &pinned {
                for &vi in &views_of[id] {
                    if out[vi].is_none() && stitches[vi].failed.is_none() {
                        keys.push((*id, vi));
                        jobs.push((tin.as_ref(), views[vi].clone()));
                    }
                }
            }
            let results = evaluate_many(&jobs);
            parts.extend(keys.into_iter().zip(results));
            // …and absorb everything that is now in selection order.
            for (i, sel) in selections.iter().enumerate() {
                if out[i].is_some() {
                    continue;
                }
                let s = &mut stitches[i];
                while s.failed.is_none() && s.next < sel.len() {
                    let Some(part) = parts.remove(&(sel[s.next], i)) else {
                        break;
                    };
                    match part {
                        Ok(part) => {
                            s.tiles
                                .push(TileEval { id: sel[s.next], n: part.n, k: part.k });
                            s.report.absorb(&part, s.edge_offset);
                            match advance_edge_offset(s.edge_offset, part.n) {
                                Ok(next) => s.edge_offset = next,
                                Err(e) => s.failed = Some(e),
                            }
                        }
                        Err(e) => s.failed = Some(TiledError::Hsr(e)),
                    }
                    s.next += 1;
                }
            }
            // Parts of failed views pending in later selection slots
            // will never be consumed; drop them now.
            parts.retain(|&(_, i), _| stitches[i].failed.is_none());
        }
        for (i, (sel, s)) in selections.iter().zip(stitches).enumerate() {
            if out[i].is_some() {
                continue;
            }
            out[i] = Some(match s.failed {
                Some(e) => Err(e),
                None => {
                    debug_assert_eq!(s.next, sel.len(), "every selected part stitched");
                    Ok(TiledReport {
                        report: s.report,
                        tiles: s.tiles,
                        tiles_total: self.meta.tile_count(),
                        cache: self.cache.stats(),
                    })
                }
            });
        }
        Ok(out
            .into_iter()
            .map(|r| r.expect("every view settled"))
            .collect())
    }

    /// The tiles a view needs, each at its level of detail, in row-major
    /// sweep order.
    fn select(&self, view: &View) -> Result<Vec<TileId>, TiledError> {
        let meta = &self.meta;
        let level_for = |eye: Option<(f64, f64)>, ti: u32, tj: u32| -> u32 {
            if let Some(level) = self.cfg.fixed_level {
                return level.min(meta.levels - 1);
            }
            let Some(eye) = eye else { return 0 };
            let (lo, hi) = meta.ground_aabb(ti, tj);
            let near = self.cfg.lod_near.unwrap_or_else(|| {
                4.0 * (meta.tile_size as f64) * meta.dx.abs().max(meta.dy.abs())
            });
            lod_level(aabb_distance(eye, lo, hi), near, meta.levels)
        };
        let mut out = Vec::new();
        match &view.projection {
            // The full back-to-front row sweep: every tile contributes.
            Projection::Orthographic { .. } => {
                for (ti, tj) in meta.tile_coords() {
                    out.push(TileId { level: level_for(None, ti, tj), ti, tj });
                }
            }
            Projection::Perspective { eye, look, fov, .. } => {
                if !eye.is_finite() || !look.is_finite() || !fov.is_finite() {
                    return Err(
                        HsrError::InvalidView("perspective view must be finite".into()).into()
                    );
                }
                let apex = (eye.x, eye.y);
                let dir = (look.x - eye.x, look.y - eye.y);
                if dir.0 == 0.0 && dir.1 == 0.0 {
                    return Err(HsrError::InvalidView(
                        "eye and look must have distinct ground positions".into(),
                    )
                    .into());
                }
                if !(*fov > 0.0 && *fov <= std::f64::consts::PI) {
                    return Err(HsrError::InvalidView(format!(
                        "fov must lie in (0, π], got {fov}"
                    ))
                    .into());
                }
                for (ti, tj) in meta.tile_coords() {
                    let (lo, hi) = meta.ground_aabb(ti, tj);
                    if wedge_intersects_aabb(apex, dir, 0.5 * fov, lo, hi) {
                        out.push(TileId { level: level_for(Some(apex), ti, tj), ti, tj });
                    }
                }
            }
            Projection::Viewshed { observer, targets } => {
                if targets.is_empty() {
                    return Err(TiledError::UnsupportedView(
                        "tiled viewsheds need explicit targets: with an empty target list each \
                         tile would classify its own vertices and the per-tile verdict lists \
                         could not be aligned — materialize the query points instead"
                            .into(),
                    ));
                }
                if !observer.is_finite() {
                    return Err(HsrError::InvalidView("observer must be finite".into()).into());
                }
                let obs = (observer.x, observer.y);
                for (ti, tj) in meta.tile_coords() {
                    let (lo, hi) = meta.ground_aabb(ti, tj);
                    // Only terrain under a sight segment can occlude; the
                    // exactness of the stitched verdicts relies on this
                    // test being conservative (never a false negative).
                    let relevant = targets
                        .iter()
                        .any(|t| segment_intersects_aabb(obs, (t.x, t.y), lo, hi));
                    if relevant {
                        out.push(TileId { level: level_for(Some(obs), ti, tj), ti, tj });
                    }
                }
            }
        }
        Ok(out)
    }
}

/// The distance-based level-of-detail rule: level 0 (full resolution)
/// out to ground distance `near`, one level coarser per doubling beyond
/// it, clamped to the pyramid's deepest level.
///
/// The clamps are explicit rather than trusting the saturating
/// float→int cast: a ratio that float noise rounds to exactly 1 (or a
/// `log2` that lands a hair below 0) still yields level 1, and an
/// astronomically large ratio (tiny `near`, `log2` → huge or `+∞`)
/// clamps to `levels - 1` instead of the `+ 1` wrapping the saturated
/// `u32::MAX`. The function is monotone non-decreasing in `d` and never
/// exceeds `levels - 1` (the property test pins both). `near ≤ 0` or
/// NaN disables distance-based coarsening, as does a NaN distance.
pub fn lod_level(d: f64, near: f64, levels: u32) -> u32 {
    assert!(levels >= 1, "a pyramid has at least level 0");
    let max = levels - 1;
    let exceeds = |a: f64, b: &f64| a.partial_cmp(b) == Some(std::cmp::Ordering::Greater);
    if !exceeds(near, &0.0) || !exceeds(d, &near) {
        return 0;
    }
    let raw = (d / near).log2().floor();
    if !exceeds(raw, &0.0) {
        // d barely beyond near: the ratio rounded to ≤ 1 (or log2 noise
        // dipped below 0) — the first coarsening band, not a saturating
        // cast accident.
        return 1.min(max);
    }
    if raw >= max as f64 {
        return max;
    }
    // 0 < raw < max ≤ u32::MAX, so both the cast and the + 1 are exact.
    (raw as u32 + 1).min(max)
}

/// Advances the stitching edge-id offset past a part with `n` edges.
/// A many-tile full-resolution terrain can push the cumulative edge
/// count past `u32::MAX`; that must surface as
/// [`TiledError::EdgeIdOverflow`], not wrap and corrupt the stitched
/// [`hsr_core::visibility::VisibilityMap`] offsets.
fn advance_edge_offset(offset: u32, n: usize) -> Result<u32, TiledError> {
    u32::try_from(n)
        .ok()
        .and_then(|n| offset.checked_add(n))
        .ok_or(TiledError::EdgeIdOverflow { offset, part_edges: n })
}

/// Ground distance from a point to an axis-aligned box (0 inside).
fn aabb_distance(p: (f64, f64), lo: (f64, f64), hi: (f64, f64)) -> f64 {
    let dx = (lo.0 - p.0).max(0.0).max(p.0 - hi.0);
    let dy = (lo.1 - p.1).max(0.0).max(p.1 - hi.1);
    (dx * dx + dy * dy).sqrt()
}

/// Closed-set segment/AABB intersection via slab clipping.
fn segment_intersects_aabb(a: (f64, f64), b: (f64, f64), lo: (f64, f64), hi: (f64, f64)) -> bool {
    let (mut t0, mut t1) = (0.0f64, 1.0f64);
    for ((p, d), (l, h)) in [
        ((a.0, b.0 - a.0), (lo.0, hi.0)),
        ((a.1, b.1 - a.1), (lo.1, hi.1)),
    ] {
        if d == 0.0 {
            if p < l || p > h {
                return false;
            }
            continue;
        }
        let (mut u0, mut u1) = ((l - p) / d, (h - p) / d);
        if u0 > u1 {
            std::mem::swap(&mut u0, &mut u1);
        }
        t0 = t0.max(u0);
        t1 = t1.min(u1);
        if t0 > t1 {
            return false;
        }
    }
    true
}

/// Does the infinite wedge with the given apex, center direction and
/// half-angle (≤ π/2) meet the box? Exact for closed sets: the wedge and
/// box intersect iff the apex is inside the box, a box corner is inside
/// the wedge, or a wedge boundary ray crosses the box.
fn wedge_intersects_aabb(
    apex: (f64, f64),
    dir: (f64, f64),
    half_angle: f64,
    lo: (f64, f64),
    hi: (f64, f64),
) -> bool {
    if lo.0 <= apex.0 && apex.0 <= hi.0 && lo.1 <= apex.1 && apex.1 <= hi.1 {
        return true;
    }
    let len = (dir.0 * dir.0 + dir.1 * dir.1).sqrt();
    let d = (dir.0 / len, dir.1 / len);
    let cos_half = half_angle.cos();
    let corners = [(lo.0, lo.1), (lo.0, hi.1), (hi.0, lo.1), (hi.0, hi.1)];
    for c in corners {
        let u = (c.0 - apex.0, c.1 - apex.1);
        let norm = (u.0 * u.0 + u.1 * u.1).sqrt();
        if u.0 * d.0 + u.1 * d.1 >= norm * cos_half {
            return true;
        }
    }
    let (sin, cos) = half_angle.sin_cos();
    for s in [sin, -sin] {
        let ray = (d.0 * cos - d.1 * s, d.0 * s + d.1 * cos);
        if ray_intersects_aabb(apex, ray, lo, hi) {
            return true;
        }
    }
    false
}

/// Closed-set ray/AABB intersection (slab method, `t ≥ 0`).
fn ray_intersects_aabb(p: (f64, f64), d: (f64, f64), lo: (f64, f64), hi: (f64, f64)) -> bool {
    let (mut t0, mut t1) = (0.0f64, f64::INFINITY);
    for ((p, d), (l, h)) in [((p.0, d.0), (lo.0, hi.0)), ((p.1, d.1), (lo.1, hi.1))] {
        if d == 0.0 {
            if p < l || p > h {
                return false;
            }
            continue;
        }
        let (mut u0, mut u1) = ((l - p) / d, (h - p) / d);
        if u0 > u1 {
            std::mem::swap(&mut u0, &mut u1);
        }
        t0 = t0.max(u0);
        t1 = t1.min(u1);
        if t0 > t1 {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_aabb_cases() {
        let (lo, hi) = ((0.0, 0.0), (2.0, 2.0));
        assert!(segment_intersects_aabb((-1.0, 1.0), (3.0, 1.0), lo, hi)); // through
        assert!(segment_intersects_aabb((1.0, 1.0), (5.0, 5.0), lo, hi)); // from inside
        assert!(segment_intersects_aabb((-1.0, -1.0), (0.0, 0.0), lo, hi)); // touches corner
        assert!(!segment_intersects_aabb((-1.0, 3.0), (3.0, 3.0), lo, hi)); // above
        assert!(!segment_intersects_aabb((3.0, -1.0), (3.0, 3.0), lo, hi)); // right of
        assert!(!segment_intersects_aabb((-2.0, 0.0), (0.0, -2.0), lo, hi)); // clips corner off
        assert!(segment_intersects_aabb((1.0, 1.0), (1.0, 1.0), lo, hi)); // degenerate inside
        assert!(!segment_intersects_aabb((3.0, 3.0), (3.0, 3.0), lo, hi)); // degenerate outside
    }

    #[test]
    fn wedge_aabb_cases() {
        let (lo, hi) = ((2.0, -1.0), (3.0, 1.0));
        // Looking straight +x from the origin: box dead ahead.
        assert!(wedge_intersects_aabb((0.0, 0.0), (1.0, 0.0), 0.1, lo, hi));
        // Looking away.
        assert!(!wedge_intersects_aabb((0.0, 0.0), (-1.0, 0.0), 0.4, lo, hi));
        // Narrow wedge aimed past the box misses it…
        assert!(!wedge_intersects_aabb((0.0, 10.0), (1.0, 0.0), 0.05, lo, hi));
        // …a wide one from the same place reaches down to it.
        assert!(wedge_intersects_aabb(
            (0.0, 10.0),
            (1.0, 0.0),
            std::f64::consts::FRAC_PI_2,
            lo,
            hi
        ));
        // Apex inside.
        assert!(wedge_intersects_aabb((2.5, 0.0), (1.0, 0.0), 0.05, lo, hi));
        // A thin wedge that pierces a box face: no corner lies inside the
        // wedge and the apex is outside, so only the boundary-ray test
        // can (and must) detect it.
        assert!(wedge_intersects_aabb((2.5, -5.0), (0.0, 1.0), 0.02, lo, hi));
    }

    #[test]
    fn advance_edge_offset_checks_the_boundary() {
        assert_eq!(advance_edge_offset(0, 17).unwrap(), 17);
        // Exactly fills the id space.
        assert_eq!(advance_edge_offset(u32::MAX - 5, 5).unwrap(), u32::MAX);
        // One past it: the regression the unchecked `+=` wrapped through.
        match advance_edge_offset(u32::MAX - 5, 6) {
            Err(TiledError::EdgeIdOverflow { offset, part_edges }) => {
                assert_eq!((offset, part_edges), (u32::MAX - 5, 6));
            }
            other => panic!("expected EdgeIdOverflow, got {other:?}"),
        }
        // A single part too large for u32 at all.
        assert!(matches!(
            advance_edge_offset(0, u32::MAX as usize + 2),
            Err(TiledError::EdgeIdOverflow { .. })
        ));
    }

    #[test]
    fn lod_level_clamps_explicitly() {
        // In the near band and at the boundary: full resolution.
        assert_eq!(lod_level(0.0, 10.0, 4), 0);
        assert_eq!(lod_level(10.0, 10.0, 4), 0);
        // Doubling bands.
        assert_eq!(lod_level(10.0 + 1e-9, 10.0, 4), 1);
        assert_eq!(lod_level(19.9, 10.0, 4), 1);
        assert_eq!(lod_level(20.1, 10.0, 4), 2);
        assert_eq!(lod_level(40.1, 10.0, 4), 3);
        // Clamped to the deepest level.
        assert_eq!(lod_level(1e9, 10.0, 4), 3);
        // A ratio so large `log2` saturates: must clamp, not wrap the
        // `+ 1` past the saturated u32 cast (the pre-fix code did).
        assert_eq!(lod_level(1e300, 1e-300, 4), 3);
        assert_eq!(lod_level(f64::MAX, f64::MIN_POSITIVE, 2), 1);
        // Ratio rounding to exactly 1: explicit first-band clamp.
        let near = 3.000000000000001_f64;
        let d = near * (1.0 + f64::EPSILON);
        assert!(d > near && lod_level(d, near, 8) == 1);
        // Disabled coarsening: non-positive or NaN near, NaN distance.
        assert_eq!(lod_level(100.0, 0.0, 4), 0);
        assert_eq!(lod_level(100.0, -1.0, 4), 0);
        assert_eq!(lod_level(100.0, f64::NAN, 4), 0);
        assert_eq!(lod_level(f64::NAN, 10.0, 4), 0);
        // A one-level pyramid only ever evaluates level 0.
        assert_eq!(lod_level(1e12, 1.0, 1), 0);
    }

    #[test]
    fn aabb_distance_cases() {
        let (lo, hi) = ((0.0, 0.0), (2.0, 2.0));
        assert_eq!(aabb_distance((1.0, 1.0), lo, hi), 0.0);
        assert_eq!(aabb_distance((4.0, 1.0), lo, hi), 2.0);
        assert!((aabb_distance((-3.0, -4.0), lo, hi) - 5.0).abs() < 1e-12);
    }
}
