//! The resident-tile cache: a hard-capped LRU of per-tile scenes.
//!
//! Out-of-core evaluation must bound what is in memory. The cache maps
//! [`TileId`]s to built per-tile [`Tin`]s behind `Arc`s and guarantees an
//! invariant the conformance suite asserts on a multi-million-cell
//! terrain: **the number of resident tiles never exceeds the configured
//! capacity** — not transiently, not during eviction. Entries whose `Arc`
//! is still checked out (an evaluation in flight) are pinned and never
//! evicted; callers therefore must not check out more than `capacity`
//! tiles at once (the tiled evaluator chunks its work accordingly).

use crate::pyramid::TileId;
use hsr_terrain::Tin;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Cache observability counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CacheStats {
    /// Tiles built from the store (cache misses).
    pub loads: u64,
    /// Lookups served from resident tiles.
    pub hits: u64,
    /// Tiles dropped to make room.
    pub evictions: u64,
    /// Tiles resident right now.
    pub resident: usize,
    /// The high-water mark of `resident` — the counter that proves the
    /// capacity bound held over a whole evaluation.
    pub peak_resident: usize,
}

struct Entry {
    tin: Arc<Tin>,
    last_use: u64,
}

struct Inner {
    map: HashMap<TileId, Entry>,
    tick: u64,
    stats: CacheStats,
}

/// A hard-capped LRU cache of built per-tile scenes.
pub struct SceneCache {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl SceneCache {
    /// A cache holding at most `capacity` resident tiles (≥ 1).
    pub fn new(capacity: usize) -> SceneCache {
        assert!(capacity >= 1, "cache capacity must be ≥ 1");
        SceneCache {
            capacity,
            inner: Mutex::new(Inner { map: HashMap::new(), tick: 0, stats: CacheStats::default() }),
        }
    }

    /// The hard residency cap.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().expect("cache lock").stats
    }

    /// Returns the tile's scene, building it with `load` on a miss. The
    /// loader runs under the cache lock, which serializes loads — by
    /// design: concurrent loading would transiently hold more than
    /// `capacity` tiles, which is exactly what the cache exists to
    /// prevent. Returns `None` when the cache is full and every resident
    /// tile is pinned (checked out), i.e. the caller broke the ≤-capacity
    /// checkout contract.
    pub fn get_or_load<E>(
        &self,
        id: TileId,
        load: impl FnOnce() -> Result<Tin, E>,
    ) -> Option<Result<Arc<Tin>, E>> {
        let mut inner = self.inner.lock().expect("cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(e) = inner.map.get_mut(&id) {
            e.last_use = tick;
            let tin = Arc::clone(&e.tin);
            inner.stats.hits += 1;
            return Some(Ok(tin));
        }
        // Make room *before* building, so residency never overshoots.
        while inner.map.len() >= self.capacity {
            let victim = inner
                .map
                .iter()
                .filter(|(_, e)| Arc::strong_count(&e.tin) == 1)
                .min_by_key(|(_, e)| e.last_use)
                .map(|(k, _)| *k);
            match victim {
                Some(k) => {
                    inner.map.remove(&k);
                    inner.stats.evictions += 1;
                    inner.stats.resident = inner.map.len();
                }
                None => return None,
            }
        }
        let tin = match load() {
            Ok(tin) => Arc::new(tin),
            Err(e) => return Some(Err(e)),
        };
        inner
            .map
            .insert(id, Entry { tin: Arc::clone(&tin), last_use: tick });
        inner.stats.loads += 1;
        inner.stats.resident = inner.map.len();
        inner.stats.peak_resident = inner.stats.peak_resident.max(inner.map.len());
        Some(Ok(tin))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsr_terrain::gen;

    fn tile(seed: u64) -> Tin {
        gen::fbm(4, 4, 2, 3.0, seed).to_tin().unwrap()
    }

    fn id(ti: u32) -> TileId {
        TileId { level: 0, ti, tj: 0 }
    }

    #[test]
    fn lru_evicts_oldest_and_caps_residency() {
        let cache = SceneCache::new(2);
        let mut loads = 0u32;
        let get = |cache: &SceneCache, ti: u32, loads: &mut u32| {
            cache
                .get_or_load(id(ti), || -> Result<Tin, ()> {
                    *loads += 1;
                    Ok(tile(ti as u64))
                })
                .expect("not pinned")
                .expect("load ok")
        };
        let a = get(&cache, 0, &mut loads);
        drop(a);
        let b = get(&cache, 1, &mut loads);
        let b2 = get(&cache, 1, &mut loads); // hit
        assert_eq!(loads, 2);
        let _c = get(&cache, 2, &mut loads); // evicts 0 (LRU, unpinned)
        drop(b);
        drop(b2);
        let _a2 = get(&cache, 0, &mut loads); // reload: 0 was evicted
        assert_eq!(loads, 4);
        let s = cache.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.loads, 4);
        assert_eq!(s.evictions, 2);
        assert!(s.peak_resident <= 2, "peak {} over cap", s.peak_resident);
    }

    #[test]
    fn pinned_entries_survive_eviction_pressure() {
        let cache = SceneCache::new(2);
        let a = cache
            .get_or_load(id(0), || -> Result<Tin, ()> { Ok(tile(0)) })
            .unwrap()
            .unwrap();
        let b = cache
            .get_or_load(id(1), || -> Result<Tin, ()> { Ok(tile(1)) })
            .unwrap()
            .unwrap();
        // Both pinned: a third load must refuse rather than overshoot.
        assert!(cache
            .get_or_load(id(2), || -> Result<Tin, ()> { Ok(tile(2)) })
            .is_none());
        drop(a);
        // One slot free again.
        assert!(cache
            .get_or_load(id(2), || -> Result<Tin, ()> { Ok(tile(2)) })
            .is_some());
        drop(b);
        assert_eq!(cache.stats().peak_resident, 2);
    }

    #[test]
    fn loader_errors_propagate_and_cache_nothing() {
        let cache = SceneCache::new(1);
        let r = cache.get_or_load(id(0), || Err("boom"));
        assert_eq!(r.unwrap().unwrap_err(), "boom");
        let s = cache.stats();
        assert_eq!((s.loads, s.resident), (0, 0));
        // Eviction followed by a failed load still leaves `resident`
        // telling the truth.
        cache
            .get_or_load(id(1), || -> Result<Tin, ()> { Ok(tile(1)) })
            .unwrap()
            .unwrap();
        let r = cache.get_or_load(id(2), || Err("boom"));
        assert_eq!(r.unwrap().unwrap_err(), "boom");
        let s = cache.stats();
        assert_eq!((s.evictions, s.resident), (1, 0));
    }
}
