//! The resident-tile cache: a hard-capped LRU of per-tile scenes.
//!
//! Out-of-core evaluation must bound what is in memory. The cache maps
//! [`TileId`]s to built per-tile [`Tin`]s behind `Arc`s and guarantees an
//! invariant the conformance suite asserts on a multi-million-cell
//! terrain: **the number of resident tiles never exceeds the configured
//! capacity** — not transiently, not during eviction. Entries whose `Arc`
//! is still checked out (an evaluation in flight) are pinned and never
//! evicted; callers therefore must not check out more than `capacity`
//! tiles at once (the tiled evaluator chunks its work accordingly).

use crate::pyramid::TileId;
use hsr_obs::lock_unpoisoned;
use hsr_terrain::Tin;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Event counters in an attached [`hsr_obs::Recorder`], resolved once so
/// the per-lookup cost is plain atomic adds. No recorder attached means
/// the `OnceLock` stays empty and lookups pay one load — the same
/// runtime off-switch as the rest of the observability layer.
struct ObsEvents {
    hit: Arc<AtomicU64>,
    load: Arc<AtomicU64>,
    error: Arc<AtomicU64>,
    evict: Arc<AtomicU64>,
}

/// Cache observability counters.
///
/// The counters satisfy `hits + loads + errors == lookups`: every call to
/// [`SceneCache::get_or_load`] is a lookup, and it either hits a resident
/// tile, successfully loads a missing one, or errors (failed loader, or a
/// refusal because every resident tile was pinned).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CacheStats {
    /// Calls to [`SceneCache::get_or_load`].
    pub lookups: u64,
    /// Tiles built from the store (successful cache misses).
    pub loads: u64,
    /// Lookups served from resident tiles.
    pub hits: u64,
    /// Lookups that produced neither a hit nor a resident tile: the
    /// loader failed, or the cache was full of pinned tiles. A failed
    /// load commits nothing — no eviction, no residency change.
    pub errors: u64,
    /// Tiles dropped to make room.
    pub evictions: u64,
    /// Tiles resident right now.
    pub resident: usize,
    /// The high-water mark of `resident` — the counter that proves the
    /// capacity bound held over a whole evaluation.
    pub peak_resident: usize,
}

struct Entry {
    tin: Arc<Tin>,
    last_use: u64,
}

struct Inner {
    map: HashMap<TileId, Entry>,
    tick: u64,
    stats: CacheStats,
}

/// A hard-capped LRU cache of built per-tile scenes.
pub struct SceneCache {
    capacity: usize,
    inner: Mutex<Inner>,
    obs: OnceLock<ObsEvents>,
}

impl SceneCache {
    /// A cache holding at most `capacity` resident tiles (≥ 1).
    pub fn new(capacity: usize) -> SceneCache {
        assert!(capacity >= 1, "cache capacity must be ≥ 1");
        SceneCache {
            capacity,
            inner: Mutex::new(Inner { map: HashMap::new(), tick: 0, stats: CacheStats::default() }),
            obs: OnceLock::new(),
        }
    }

    /// Mirror this cache's hit/load/error/evict activity into the
    /// recorder's `tile_*` event counters (first attachment wins; the
    /// serving layer attaches when a tiled scene is prepared). Counters
    /// reflect activity from the attachment onward.
    pub fn attach_recorder(&self, recorder: &hsr_obs::Recorder) {
        let _ = self.obs.set(ObsEvents {
            hit: recorder.counter("tile_hit"),
            load: recorder.counter("tile_load"),
            error: recorder.counter("tile_error"),
            evict: recorder.counter("tile_evict"),
        });
    }

    /// The hard residency cap.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        lock_unpoisoned(&self.inner).stats
    }

    /// Returns the tile's scene, building it with `load` on a miss. The
    /// loader runs under the cache lock, which serializes loads — by
    /// design: concurrent loading would transiently hold more than
    /// `capacity` tiles, which is exactly what the cache exists to
    /// prevent. Returns `None` when the cache is full and every resident
    /// tile is pinned (checked out), i.e. the caller broke the ≤-capacity
    /// checkout contract.
    ///
    /// A failed `load` commits nothing: the victim staged for eviction is
    /// restored (same recency), `evictions`/`loads`/`resident` are
    /// untouched, and the failure is counted in [`CacheStats::errors`].
    /// While the loader runs, the staged victim is held aside rather than
    /// dropped, so the build of the incoming tile briefly coexists with
    /// it in memory; the *resident* count (what `peak_resident` proves)
    /// never exceeds the capacity.
    pub fn get_or_load<E>(
        &self,
        id: TileId,
        load: impl FnOnce() -> Result<Tin, E>,
    ) -> Option<Result<Arc<Tin>, E>> {
        let mut inner = lock_unpoisoned(&self.inner);
        inner.tick += 1;
        inner.stats.lookups += 1;
        let tick = inner.tick;
        if let Some(e) = inner.map.get_mut(&id) {
            e.last_use = tick;
            let tin = Arc::clone(&e.tin);
            inner.stats.hits += 1;
            if let Some(obs) = self.obs.get() {
                // ordering: Release so an obs scrape that sees the count
                // also sees the cache state it describes.
                obs.hit.fetch_add(1, Ordering::Release);
            }
            return Some(Ok(tin));
        }
        // Stage the eviction *before* building, so `resident` (the map
        // size) never overshoots — but hold the victims aside instead of
        // dropping them: an eviction only commits together with a
        // successful insert. If the loader then fails, the victims go
        // back exactly as they were (same `last_use`) and the error is
        // counted in `errors` — a transient store/decode failure must not
        // permanently shrink residency or skew `loads`/`evictions`.
        let mut staged: Vec<(TileId, Entry)> = Vec::new();
        while inner.map.len() >= self.capacity {
            let victim = inner
                .map
                .iter()
                .filter(|(_, e)| Arc::strong_count(&e.tin) == 1)
                .min_by_key(|(_, e)| e.last_use)
                .map(|(k, _)| *k);
            match victim.and_then(|k| inner.map.remove(&k).map(|entry| (k, entry))) {
                Some((k, entry)) => {
                    staged.push((k, entry));
                }
                None => {
                    // Every resident tile is pinned: restore anything
                    // staged and refuse.
                    inner.map.extend(staged);
                    inner.stats.errors += 1;
                    if let Some(obs) = self.obs.get() {
                        // ordering: Release, as for the hit counter.
                        obs.error.fetch_add(1, Ordering::Release);
                    }
                    return None;
                }
            }
        }
        let tin = match load() {
            Ok(tin) => Arc::new(tin),
            Err(e) => {
                inner.map.extend(staged);
                inner.stats.errors += 1;
                if let Some(obs) = self.obs.get() {
                    // ordering: Release, as for the hit counter.
                    obs.error.fetch_add(1, Ordering::Release);
                }
                return Some(Err(e));
            }
        };
        inner.stats.evictions += staged.len() as u64;
        if let Some(obs) = self.obs.get() {
            // ordering: Release, as for the hit counter.
            obs.load.fetch_add(1, Ordering::Release);
            // ordering: Release, as for the hit counter.
            obs.evict.fetch_add(staged.len() as u64, Ordering::Release);
        }
        drop(staged);
        inner
            .map
            .insert(id, Entry { tin: Arc::clone(&tin), last_use: tick });
        inner.stats.loads += 1;
        inner.stats.resident = inner.map.len();
        inner.stats.peak_resident = inner.stats.peak_resident.max(inner.map.len());
        Some(Ok(tin))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsr_terrain::gen;

    fn tile(seed: u64) -> Tin {
        gen::fbm(4, 4, 2, 3.0, seed).to_tin().unwrap()
    }

    fn id(ti: u32) -> TileId {
        TileId { level: 0, ti, tj: 0 }
    }

    #[test]
    fn lru_evicts_oldest_and_caps_residency() {
        let cache = SceneCache::new(2);
        let mut loads = 0u32;
        let get = |cache: &SceneCache, ti: u32, loads: &mut u32| {
            cache
                .get_or_load(id(ti), || -> Result<Tin, ()> {
                    *loads += 1;
                    Ok(tile(ti as u64))
                })
                .expect("not pinned")
                .expect("load ok")
        };
        let a = get(&cache, 0, &mut loads);
        drop(a);
        let b = get(&cache, 1, &mut loads);
        let b2 = get(&cache, 1, &mut loads); // hit
        assert_eq!(loads, 2);
        let _c = get(&cache, 2, &mut loads); // evicts 0 (LRU, unpinned)
        drop(b);
        drop(b2);
        let _a2 = get(&cache, 0, &mut loads); // reload: 0 was evicted
        assert_eq!(loads, 4);
        let s = cache.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.loads, 4);
        assert_eq!(s.evictions, 2);
        assert!(s.peak_resident <= 2, "peak {} over cap", s.peak_resident);
    }

    #[test]
    fn pinned_entries_survive_eviction_pressure() {
        let cache = SceneCache::new(2);
        let a = cache
            .get_or_load(id(0), || -> Result<Tin, ()> { Ok(tile(0)) })
            .unwrap()
            .unwrap();
        let b = cache
            .get_or_load(id(1), || -> Result<Tin, ()> { Ok(tile(1)) })
            .unwrap()
            .unwrap();
        // Both pinned: a third load must refuse rather than overshoot.
        assert!(cache
            .get_or_load(id(2), || -> Result<Tin, ()> { Ok(tile(2)) })
            .is_none());
        drop(a);
        // One slot free again.
        assert!(cache
            .get_or_load(id(2), || -> Result<Tin, ()> { Ok(tile(2)) })
            .is_some());
        drop(b);
        assert_eq!(cache.stats().peak_resident, 2);
    }

    #[test]
    fn loader_errors_propagate_and_cache_nothing() {
        let cache = SceneCache::new(1);
        let r = cache.get_or_load(id(0), || Err("boom"));
        assert_eq!(r.unwrap().unwrap_err(), "boom");
        let s = cache.stats();
        assert_eq!((s.loads, s.errors, s.resident), (0, 1, 0));
    }

    /// The PR-5 regression: a failed load used to commit its staged
    /// eviction, permanently shrinking residency (the victim was gone,
    /// nothing replaced it) and counting the miss in no counter at all.
    /// Now the eviction only commits alongside a successful insert.
    #[test]
    fn failed_load_rolls_back_the_staged_eviction() {
        let cache = SceneCache::new(1);
        cache
            .get_or_load(id(1), || -> Result<Tin, ()> { Ok(tile(1)) })
            .unwrap()
            .unwrap();
        let before = cache.stats();
        let r = cache.get_or_load(id(2), || Err("transient store error"));
        assert_eq!(r.unwrap().unwrap_err(), "transient store error");
        let after = cache.stats();
        assert_eq!(
            (after.resident, after.evictions, after.loads),
            (before.resident, before.evictions, before.loads),
            "a transient loader error must not shrink residency or skew stats"
        );
        assert_eq!(after.errors, before.errors + 1);
        // The victim is still resident and still serves hits…
        let hit = cache
            .get_or_load(id(1), || -> Result<Tin, ()> { panic!("must be resident") })
            .unwrap()
            .unwrap();
        drop(hit);
        assert_eq!(cache.stats().hits, before.hits + 1);
        // …and a later successful load of the failed tile evicts normally.
        cache
            .get_or_load(id(2), || -> Result<Tin, ()> { Ok(tile(2)) })
            .unwrap()
            .unwrap();
        let s = cache.stats();
        assert_eq!((s.resident, s.evictions, s.loads), (1, 1, 2));
        assert_eq!(s.hits + s.loads + s.errors, s.lookups);
    }

    #[test]
    fn attached_recorder_mirrors_cache_events() {
        let recorder = hsr_obs::Recorder::default();
        let cache = SceneCache::new(1);
        cache.attach_recorder(&recorder);
        cache
            .get_or_load(id(0), || -> Result<Tin, ()> { Ok(tile(0)) })
            .unwrap()
            .unwrap();
        cache
            .get_or_load(id(0), || -> Result<Tin, ()> { panic!("resident") })
            .unwrap()
            .unwrap();
        assert!(cache.get_or_load(id(1), || Err("boom")).unwrap().is_err());
        cache
            .get_or_load(id(1), || -> Result<Tin, ()> { Ok(tile(1)) })
            .unwrap()
            .unwrap();
        let snap = recorder.snapshot();
        let s = cache.stats();
        assert_eq!(snap.event("tile_hit"), s.hits);
        assert_eq!(snap.event("tile_load"), s.loads);
        assert_eq!(snap.event("tile_error"), s.errors);
        assert_eq!(snap.event("tile_evict"), s.evictions);
        assert_eq!(snap.event("tile_evict"), 1);
    }

    #[test]
    fn counters_partition_lookups() {
        let cache = SceneCache::new(2);
        let a = cache
            .get_or_load(id(0), || -> Result<Tin, ()> { Ok(tile(0)) })
            .unwrap()
            .unwrap();
        let b = cache
            .get_or_load(id(1), || -> Result<Tin, ()> { Ok(tile(1)) })
            .unwrap()
            .unwrap();
        // Hit, pinned refusal, loader error, then a real load.
        cache
            .get_or_load(id(0), || -> Result<Tin, ()> { panic!() })
            .unwrap()
            .unwrap();
        assert!(cache
            .get_or_load(id(2), || -> Result<Tin, ()> { Ok(tile(2)) })
            .is_none());
        drop(a);
        assert!(cache.get_or_load(id(3), || Err("boom")).unwrap().is_err());
        cache
            .get_or_load(id(2), || -> Result<Tin, ()> { Ok(tile(2)) })
            .unwrap()
            .unwrap();
        drop(b);
        let s = cache.stats();
        assert_eq!((s.lookups, s.hits, s.loads, s.errors), (6, 1, 3, 2));
        assert_eq!(s.hits + s.loads + s.errors, s.lookups);
    }
}
