//! Tiled, multi-resolution terrain store with cached out-of-core scene
//! evaluation.
//!
//! The monolithic pipeline holds one validated TIN in memory and
//! evaluates views against it. That caps the terrain at what fits in
//! RAM. This crate removes the cap the way the I/O-efficient visibility
//! literature does (Haverkort & Toma's tiling with bounded resident
//! memory; Erickson's finite-resolution evaluation): cut the terrain
//! into fixed-size tiles with one-cell overlap skirts, coarsen each tile
//! into a small level-of-detail pyramid, materialize the lot on disk,
//! and evaluate a view by streaming only the covering tiles — at a
//! resolution matched to their distance from the eye — through a
//! hard-capped LRU cache of resident per-tile scenes.
//!
//! * [`pyramid`] — tile layout: skirts, per-tile sample ranges, LOD
//!   shapes, and [`TilePyramid::build`] to materialize a grid.
//! * [`store`] — the on-disk format: one compact binary file per tile
//!   (see [`hsr_terrain::io::grid_to_bytes`]) plus a pyramid meta file.
//! * [`cache`] — the [`SceneCache`]: at most `capacity` tiles resident,
//!   ever; `peak_resident` proves it.
//! * [`scene`] — [`TiledScene`]: select covering tiles per
//!   [`View`](hsr_core::view::View), pick a level per tile, evaluate
//!   chunks in parallel, stitch one merged
//!   [`Report`](hsr_core::view::Report).
//!
//! ```
//! use hsr_tile::{TiledScene, TiledSceneConfig, TileStore, TilingConfig};
//! use hsr_core::view::View;
//! use hsr_geometry::Point3;
//! use hsr_terrain::gen;
//!
//! let grid = gen::diamond_square(5, 0.6, 9.0, 7); // 33×33 heightfield
//! let dir = std::env::temp_dir().join(format!("hsr-tile-doc-{}", std::process::id()));
//! let scene = TiledScene::build(
//!     &grid,
//!     TilingConfig { tile_size: 8, levels: 2 },
//!     TileStore::create(&dir).unwrap(),
//!     TiledSceneConfig { cache_capacity: 4, ..Default::default() },
//! )
//! .unwrap();
//!
//! // A viewshed: which query points does an observer in front see?
//! let observer = Point3::new(80.0, 16.0, 25.0);
//! let targets = vec![Point3::new(10.3, 12.7, 40.0), Point3::new(3.6, 20.2, 0.5)];
//! let out = scene.eval(&View::viewshed(observer, targets)).unwrap();
//! assert_eq!(out.report.verdicts.len(), 2);
//! assert!(out.cache.peak_resident <= 4);
//! # let _ = std::fs::remove_dir_all(&dir);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod pyramid;
pub mod scene;
pub mod store;

pub use cache::{CacheStats, SceneCache};
pub use pyramid::{PyramidMeta, TileId, TilePyramid, TilingConfig};
pub use scene::{TileEval, TiledError, TiledReport, TiledScene, TiledSceneConfig};
pub use store::{TileStore, TileStoreError};
