//! Property tests for the distance-based LOD selector: the level is
//! monotone non-decreasing in distance and never leaves the pyramid.

use hsr_tile::scene::lod_level;
use proptest::prelude::*;

/// Distances across every regime the selector sees: inside the near
/// band, the doubling bands, and astronomically far.
fn distances() -> impl Strategy<Value = f64> {
    prop_oneof![
        0.0..1e3,
        1e3..1e9,
        Just(0.0),
        Just(f64::MAX),
        (0i32..2000).prop_map(|e| (e as f64 / 10.0).exp2()),
    ]
}

/// Near thresholds including degenerate (zero, negative, tiny, huge).
fn nears() -> impl Strategy<Value = f64> {
    prop_oneof![
        1e-6..1e6f64,
        Just(0.0),
        Just(-3.0),
        Just(f64::MIN_POSITIVE),
        Just(1e300),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn level_stays_inside_the_pyramid(
        d in distances(),
        near in nears(),
        levels in 1u32..9,
    ) {
        let level = lod_level(d, near, levels);
        prop_assert!(level < levels, "level {level} of {levels}");
    }

    #[test]
    fn level_is_monotone_in_distance(
        d1 in distances(),
        d2 in distances(),
        near in nears(),
        levels in 1u32..9,
    ) {
        let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        prop_assert!(
            lod_level(lo, near, levels) <= lod_level(hi, near, levels),
            "lod_level({lo}) > lod_level({hi}) at near {near}, levels {levels}"
        );
    }

    #[test]
    fn near_band_is_full_resolution(
        near in 1e-6..1e6f64,
        frac in 0.0..1.0f64,
        levels in 1u32..9,
    ) {
        prop_assert_eq!(lod_level(near * frac, near, levels), 0);
    }
}
