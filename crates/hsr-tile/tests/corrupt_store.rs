//! Regression tests for damaged on-disk stores (ISSUE 7 satellite):
//! truncated, bit-flipped, or internally inconsistent pyramid meta must
//! surface as typed errors from `TiledScene::open` — never a panic or a
//! silently wrong tile grid downstream.

use hsr_terrain::gen;
use hsr_tile::{
    TilePyramid, TileStore, TileStoreError, TiledError, TiledScene, TiledSceneConfig, TilingConfig,
};
use std::path::PathBuf;

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hsr-tile-corrupt-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Builds a valid pyramid store and returns its directory.
fn built_store(name: &str) -> PathBuf {
    let dir = scratch_dir(name);
    let store = TileStore::create(&dir).unwrap();
    let grid = gen::fbm(33, 29, 3, 7.0, 17);
    TilePyramid::build(&grid, TilingConfig { tile_size: 8, levels: 2 }, &store).unwrap();
    dir
}

fn open_scene(dir: &PathBuf) -> Result<TiledScene, TiledError> {
    TiledScene::open(TileStore::open(dir).unwrap(), TiledSceneConfig::default())
}

#[test]
fn bit_flipped_tile_count_is_corrupt_not_a_panic() {
    let dir = built_store("bitflip");
    assert!(open_scene(&dir).is_ok(), "pristine store opens");
    // Flip a bit in `tiles_i` (u64 at offset 40): magic and version
    // still check out, but the tile grid no longer matches nx/tile_size.
    let meta_path = dir.join("meta.hsrp");
    let mut bytes = std::fs::read(&meta_path).unwrap();
    bytes[40] ^= 0x04;
    std::fs::write(&meta_path, &bytes).unwrap();
    match open_scene(&dir) {
        Err(TiledError::CorruptStore { path }) => assert_eq!(path, meta_path),
        Err(other) => panic!("expected CorruptStore, got {other:?}"),
        Ok(_) => panic!("expected CorruptStore, store opened"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_meta_is_corrupt() {
    let dir = built_store("truncated");
    let meta_path = dir.join("meta.hsrp");
    let bytes = std::fs::read(&meta_path).unwrap();
    for keep in [0, 4, 8, 40, bytes.len() - 1] {
        std::fs::write(&meta_path, &bytes[..keep]).unwrap();
        assert!(
            matches!(open_scene(&dir), Err(TiledError::CorruptStore { .. })),
            "kept {keep} of {} meta bytes",
            bytes.len()
        );
    }
    // Restoring the full meta recovers the store.
    std::fs::write(&meta_path, &bytes).unwrap();
    assert!(open_scene(&dir).is_ok());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn garbage_and_bad_scalars_are_corrupt() {
    let dir = built_store("garbage");
    let meta_path = dir.join("meta.hsrp");
    let pristine = std::fs::read(&meta_path).unwrap();

    // Outright garbage of plausible length.
    std::fs::write(&meta_path, vec![0xabu8; pristine.len()]).unwrap();
    assert!(matches!(open_scene(&dir), Err(TiledError::CorruptStore { .. })));

    // Valid frame, non-finite cell size.
    let mut bytes = pristine.clone();
    bytes[56..64].copy_from_slice(&f64::NAN.to_le_bytes());
    std::fs::write(&meta_path, &bytes).unwrap();
    assert!(matches!(open_scene(&dir), Err(TiledError::CorruptStore { .. })));

    // Valid frame, absurd level count.
    let mut bytes = pristine.clone();
    bytes[32..40].copy_from_slice(&10_000u64.to_le_bytes());
    std::fs::write(&meta_path, &bytes).unwrap();
    assert!(matches!(open_scene(&dir), Err(TiledError::CorruptStore { .. })));

    // `read_meta` itself reports the same rejections as `BadMeta`.
    let store = TileStore::open(&dir).unwrap();
    assert!(matches!(store.read_meta(), Err(TileStoreError::BadMeta { .. })));

    // A missing meta file stays an I/O error (the store is absent, not
    // damaged).
    std::fs::remove_file(&meta_path).unwrap();
    assert!(matches!(open_scene(&dir), Err(TiledError::Store(TileStoreError::Io { .. }))));
    let _ = std::fs::remove_dir_all(&dir);
}
