//! The tiled evaluator's two load-bearing guarantees (ISSUE 4 acceptance):
//!
//! 1. **Conformance** — a viewshed evaluated through `TiledScene` at full
//!    resolution classifies every target *bit-identically* to the
//!    monolithic pipeline on the same terrain.
//! 2. **Bounded residency** — on a ≥ 4M-cell terrain with a small cache
//!    cap, the peak resident tile count never exceeds the cap.

use hsr_core::view::{evaluate, View};
use hsr_geometry::Point3;
use hsr_terrain::gen;
use hsr_tile::{TileStore, TiledScene, TiledSceneConfig, TilingConfig};
use std::path::PathBuf;

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hsr-tile-conf-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Query points on a fractional lattice: strictly between grid ordinates,
/// so no terrain edge endpoint shares an image abscissa with a target and
/// the in-front/behind classification per edge is strict — the regime in
/// which per-tile envelopes compose exactly (see `hsr-tile`'s scene docs).
fn fractional_targets(grid: &hsr_terrain::GridTerrain, step: usize) -> Vec<Point3> {
    let mut targets = Vec::new();
    let offsets = [0.3, 1.2, 6.0];
    for (s, i) in (1..grid.nx - 1).step_by(step).enumerate() {
        for j in (1..grid.ny - 1).step_by(step) {
            let (x, y) = (i as f64 + 0.37, j as f64 + 0.53);
            targets.push(Point3::new(x, y, grid.sample(x, y) + offsets[s % offsets.len()]));
        }
    }
    targets
}

#[test]
fn tiled_viewshed_matches_monolithic_bit_identically() {
    let grid = gen::diamond_square(5, 0.6, 9.0, 42); // 33×33, unit lattice
    let observer = Point3::new(200.0, 16.0, 14.0);
    let targets = fractional_targets(&grid, 3);
    assert!(targets.len() > 50);

    let mono =
        evaluate(&grid.to_tin().unwrap(), &View::viewshed(observer, targets.clone())).unwrap();

    let dir = scratch_dir("bitident");
    let scene = TiledScene::build(
        &grid,
        TilingConfig { tile_size: 8, levels: 2 },
        TileStore::create(&dir).unwrap(),
        TiledSceneConfig { cache_capacity: 4, fixed_level: Some(0), ..Default::default() },
    )
    .unwrap();
    let tiled = scene
        .eval(&View::viewshed(observer, targets.clone()))
        .unwrap();

    assert_eq!(
        tiled.report.verdicts, mono.verdicts,
        "tiled viewshed diverged from the monolithic classification"
    );
    // The comparison is only meaningful if both verdicts actually occur.
    use hsr_core::viewshed::Verdict;
    assert!(mono.verdicts.contains(&Verdict::Visible));
    assert!(mono.verdicts.contains(&Verdict::Hidden));
    // Skirts duplicate boundary cells, so the stitched input is a cover
    // (not a partition) of the monolithic edge set.
    assert!(tiled.report.n > mono.n);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn reopened_store_reproduces_the_same_verdicts() {
    let grid = gen::diamond_square(4, 0.55, 7.0, 9); // 17×17
    let observer = Point3::new(120.0, 8.0, 9.0);
    let targets = fractional_targets(&grid, 4);
    let dir = scratch_dir("reopen");
    let tiling = TilingConfig { tile_size: 8, levels: 2 };
    let cfg = TiledSceneConfig { cache_capacity: 2, fixed_level: Some(0), ..Default::default() };

    let built = TiledScene::build(&grid, tiling, TileStore::create(&dir).unwrap(), cfg).unwrap();
    let a = built
        .eval(&View::viewshed(observer, targets.clone()))
        .unwrap();
    drop(built);

    // A second process would start here: only the directory survives.
    let reopened = TiledScene::open(TileStore::open(&dir).unwrap(), cfg).unwrap();
    assert_eq!(reopened.meta(), &hsr_tile::PyramidMeta::new(&grid, tiling));
    let b = reopened.eval(&View::viewshed(observer, targets)).unwrap();
    assert_eq!(a.report.verdicts, b.report.verdicts);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn orthographic_sweep_stitches_every_tile_with_disjoint_edge_ranges() {
    let grid = gen::diamond_square(5, 0.6, 8.0, 7);
    let dir = scratch_dir("ortho");
    let scene = TiledScene::build(
        &grid,
        TilingConfig { tile_size: 8, levels: 2 },
        TileStore::create(&dir).unwrap(),
        TiledSceneConfig { cache_capacity: 3, ..Default::default() },
    )
    .unwrap();
    let out = scene.eval(&View::orthographic(0.35)).unwrap();
    // Full row sweep: all 16 tiles, at level 0 (no finite eye).
    assert_eq!(out.tiles.len(), 16);
    assert_eq!(out.tiles_total, 16);
    assert!(out.tiles.iter().all(|t| t.id.level == 0));
    assert_eq!(out.report.n, out.tiles.iter().map(|t| t.n).sum::<usize>());
    assert_eq!(out.report.k, out.report.vis.output_size());
    assert!(out.report.k > 0);
    // Stitched piece ids live in each tile's disjoint id range.
    let max_edge = out.report.vis.pieces.iter().map(|p| p.edge).max().unwrap();
    assert!((max_edge as usize) < out.report.n);
    // Cost/timings accumulated across tiles.
    assert!(out.report.cost.total_work() > 0);
    assert!(out.report.timings.total_s > 0.0);
    assert!(out.cache.peak_resident <= 3);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn perspective_frustum_prunes_and_coarsens_with_distance() {
    let grid = gen::diamond_square(6, 0.6, 10.0, 21); // 65×65
    let dir = scratch_dir("frustum");
    let scene = TiledScene::build(
        &grid,
        TilingConfig { tile_size: 8, levels: 3 },
        TileStore::create(&dir).unwrap(),
        TiledSceneConfig { cache_capacity: 6, lod_near: Some(24.0), ..Default::default() },
    )
    .unwrap();
    // An eye just past the front edge, looking back across the terrain
    // with a narrow field of view: the frustum cannot cover all 64 tiles.
    let eye = Point3::new(80.0, 32.0, 30.0);
    let look = Point3::new(0.0, 32.0, 0.0);
    let out = scene.eval(&View::perspective(eye, look, 0.6, 256)).unwrap();
    assert!(out.tiles.len() < out.tiles_total, "frustum selected every tile");
    assert!(!out.tiles.is_empty());
    // Distance-based LOD: tiles near the eye run at level 0, the far row
    // coarser.
    let level_of = |ti: u32| {
        out.tiles
            .iter()
            .filter(|t| t.id.ti == ti)
            .map(|t| t.id.level)
            .max()
            .unwrap()
    };
    assert_eq!(level_of(7), 0, "nearest selected tiles must be full-res");
    assert!(level_of(0) > 0, "far tiles must coarsen");
    assert_eq!(out.report.resolution, Some(256));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn residency_never_exceeds_cache_capacity_on_a_4m_cell_terrain() {
    // 2049 × 2049 = 4.2M cells — the ISSUE's ≥ 4M-cell bar. Evaluated
    // coarse (fixed level 3 of 4) so the proof of bounded residency does
    // not cost minutes of debug-mode pipeline time; the cache bound is
    // level-independent.
    let grid = gen::diamond_square(11, 0.55, 60.0, 1234);
    assert!(grid.len() >= 4_000_000);
    let dir = scratch_dir("residency");
    let cap = 3;
    let scene = TiledScene::build(
        &grid,
        TilingConfig { tile_size: 512, levels: 4 },
        TileStore::create(&dir).unwrap(),
        TiledSceneConfig { cache_capacity: cap, fixed_level: Some(3), ..Default::default() },
    )
    .unwrap();
    drop(grid); // out-of-core from here on

    let observer = Point3::new(2800.0, 1024.0, 450.0);
    let targets: Vec<Point3> = (0..8)
        .map(|s| Point3::new(130.0 + 250.0 * s as f64, 140.0 + 220.0 * s as f64, 35.0))
        .collect();
    let out = scene
        .eval(&View::viewshed(observer, targets.clone()))
        .unwrap();

    assert_eq!(out.report.verdicts.len(), targets.len());
    assert!(
        out.tiles.len() > cap,
        "need more selected tiles ({}) than the cap ({cap}) for the bound to mean anything",
        out.tiles.len()
    );
    assert!(
        out.cache.peak_resident <= cap,
        "peak resident tiles {} exceeded the configured capacity {cap}",
        out.cache.peak_resident
    );
    assert_eq!(out.tiles_total, 16);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_evals_share_a_scene_without_breaking_the_residency_bound() {
    let grid = gen::diamond_square(5, 0.6, 8.0, 17);
    let dir = scratch_dir("concurrent");
    let cap = 2;
    let scene = TiledScene::build(
        &grid,
        TilingConfig { tile_size: 8, levels: 1 },
        TileStore::create(&dir).unwrap(),
        TiledSceneConfig { cache_capacity: cap, ..Default::default() },
    )
    .unwrap();
    // Several threads evaluating the same shared scene: evaluations are
    // serialized internally, so none may panic on pinned-out capacity and
    // the cap holds across all of them.
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let scene = &scene;
                s.spawn(move || scene.eval(&View::orthographic(0.1 * i as f64)).unwrap())
            })
            .collect();
        for h in handles {
            let out = h.join().expect("no eval panicked");
            assert_eq!(out.tiles.len(), 16);
            assert!(out.cache.peak_resident <= cap);
        }
    });
    assert!(scene.cache_stats().peak_resident <= cap);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn empty_target_viewsheds_are_rejected_with_guidance() {
    let grid = gen::diamond_square(4, 0.5, 6.0, 3);
    let dir = scratch_dir("empty-targets");
    let scene = TiledScene::build(
        &grid,
        TilingConfig { tile_size: 8, levels: 1 },
        TileStore::create(&dir).unwrap(),
        TiledSceneConfig::default(),
    )
    .unwrap();
    let err = scene
        .eval(&View::viewshed(Point3::new(100.0, 8.0, 9.0), Vec::new()))
        .unwrap_err();
    assert!(matches!(err, hsr_tile::TiledError::UnsupportedView(_)));
    assert!(err.to_string().contains("explicit targets"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn eval_many_is_bit_identical_to_solo_evals_and_shares_tile_loads() {
    let grid = gen::diamond_square(5, 0.6, 9.0, 17); // 33×33
    let observer = Point3::new(180.0, 16.0, 16.0);
    let targets = fractional_targets(&grid, 4);
    let eye = Point3::new(64.0, 16.0, 24.0);
    let look = Point3::new(0.0, 16.0, 0.0);
    let views = vec![
        View::orthographic(0.0),
        View::viewshed(observer, targets.clone()),
        View::perspective(eye, look, 0.9, 128),
        View::viewshed(observer, targets),
        View::orthographic(0.25),
    ];
    let tiling = TilingConfig { tile_size: 8, levels: 2 };
    let cfg = TiledSceneConfig { cache_capacity: 4, fixed_level: Some(0), ..Default::default() };

    // Solo evaluations on one scene, batched on a fresh scene over the
    // same store (so the cache counters of the two runs are comparable).
    let dir = scratch_dir("evalmany");
    let solo_scene =
        TiledScene::build(&grid, tiling, TileStore::create(&dir).unwrap(), cfg).unwrap();
    let solo: Vec<_> = views.iter().map(|v| solo_scene.eval(v).unwrap()).collect();
    let solo_stats = solo_scene.cache_stats();
    drop(solo_scene);

    let batch_scene = TiledScene::open(TileStore::open(&dir).unwrap(), cfg).unwrap();
    let batch = batch_scene.eval_many(&views).unwrap();
    assert_eq!(batch.len(), views.len());

    for (i, (s, b)) in solo.iter().zip(&batch).enumerate() {
        let b = b.as_ref().unwrap();
        let bits = |r: &hsr_core::view::Report| {
            (
                r.vis
                    .pieces
                    .iter()
                    .map(|p| (p.edge, p.x0.to_bits(), p.x1.to_bits()))
                    .collect::<Vec<_>>(),
                r.vis.crossings.len(),
                r.vis.vertical_visible.clone(),
            )
        };
        assert_eq!(bits(&b.report), bits(&s.report), "view {i}: stitched map diverged");
        assert_eq!((b.report.n, b.report.k), (s.report.n, s.report.k), "view {i}");
        assert_eq!(b.report.verdicts, s.report.verdicts, "view {i}");
        assert_eq!(b.report.cost.work, s.report.cost.work, "view {i}: cost diverged");
        assert_eq!(b.tiles, s.tiles, "view {i}: per-tile evidence diverged");
    }

    // The coalesced pass loads each distinct tile at most once per
    // residency instead of once per view: strictly fewer loads than the
    // solo runs' total, and the counters partition the lookups.
    let batch_stats = batch_scene.cache_stats();
    assert!(
        batch_stats.loads < solo_stats.loads,
        "batched loads {} should undercut solo loads {}",
        batch_stats.loads,
        solo_stats.loads
    );
    assert_eq!(batch_stats.hits + batch_stats.loads + batch_stats.errors, batch_stats.lookups);
    let _ = std::fs::remove_dir_all(&dir);
}
