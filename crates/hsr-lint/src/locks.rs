//! Lock-order lint.
//!
//! Intraprocedural guard tracking plus a global lock-order graph:
//!
//! * Acquisitions are `.lock()` / `.read()` / `.write()` calls with empty
//!   argument lists (so `stream.read(&mut buf)` never matches), and calls
//!   to the workspace's poison-tolerant helper `lock_unpoisoned(&m)`.
//! * A lock's *class* is the trailing identifier of its receiver
//!   (`self.prepare_locks.lock()` → `prepare_locks`), which names the
//!   field rather than the instance — the right granularity for ordering.
//! * `let`-bound guards are held to the end of the enclosing block;
//!   expression temporaries to the end of the statement. Acquiring B
//!   while A is held adds the edge A→B to the global graph.
//! * `LOCK-CYCLE` — the global graph must be acyclic.
//! * `LOCK-ORDER` — acquiring a class while a guard of the *same* class
//!   is held (`shards[a]` then `shards[b]`), or sweeping guards of a
//!   whole collection into scope at once (`shards.iter().map(|m|
//!   m.lock())...collect()`, or the point-free
//!   `.map(lock_unpoisoned).collect()`), needs a `// lock-order:`
//!   comment stating the canonical acquisition order (the all-shard LRU
//!   commit acquires in index order).

use crate::config::Config;
use crate::lexer::Tok;
use crate::source::SourceFile;
use crate::Finding;

/// A directed edge in the global lock-order graph, with the site that
/// witnessed it.
pub struct Edge {
    pub from: String,
    pub to: String,
    pub file: String,
    pub line: u32,
    pub suppressed: bool,
}

struct Held {
    class: String,
    depth: usize,
    let_bound: bool,
}

pub fn scan_file(sf: &SourceFile, cfg: &Config, edges: &mut Vec<Edge>, out: &mut Vec<Finding>) {
    if cfg.is_test_exempt(&sf.rel) {
        return;
    }
    let toks = &sf.tokens;
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_ident("fn") && i + 1 < toks.len() && toks[i + 1].ident().is_some() {
            // Find the body: first `{` before a `;` ends the header.
            let mut j = i + 2;
            let mut body = None;
            while j < toks.len() {
                if toks[j].is_punct('{') {
                    body = Some(j);
                    break;
                }
                if toks[j].is_punct(';') {
                    break;
                }
                j += 1;
            }
            if let Some(open) = body {
                if let Some(close) = sf.matching_close(open, '{', '}') {
                    scan_fn(sf, open, close, edges, out);
                    i = close;
                }
            }
        }
        i += 1;
    }
}

fn scan_fn(
    sf: &SourceFile,
    open: usize,
    close: usize,
    edges: &mut Vec<Edge>,
    out: &mut Vec<Finding>,
) {
    let toks = &sf.tokens;
    let mut depth = 0usize;
    let mut held: Vec<Held> = Vec::new();
    let mut stmt_is_let = false;
    let mut stmt_start = open + 1;
    let mut i = open;
    while i <= close {
        let t = &toks[i];
        match &t.tok {
            Tok::Punct('{') => {
                depth += 1;
                stmt_is_let = false;
                stmt_start = i + 1;
            }
            Tok::Punct('}') => {
                // Let-bound guards of this block die with it; statement
                // temporaries never outlive a block boundary either.
                held.retain(|h| h.let_bound && h.depth < depth);
                depth = depth.saturating_sub(1);
                stmt_is_let = false;
                stmt_start = i + 1;
            }
            Tok::Punct(';') => {
                held.retain(|h| h.let_bound);
                stmt_is_let = false;
                stmt_start = i + 1;
            }
            Tok::Ident(id) if id == "let" => {
                stmt_is_let = true;
            }
            _ => {}
        }
        if let Some(acq) = acquisition_at(sf, i, stmt_start) {
            if !sf.in_test(i) {
                record_acquisition(sf, i, &acq, depth, stmt_is_let, &mut held, edges, out);
            }
            i = acq.resume;
            continue;
        }
        i += 1;
    }
}

struct Acq {
    class: String,
    /// Sweep over a whole collection of locks with guards retained.
    sweep: bool,
    /// Transient per-element guard inside an iterator closure (not held).
    transient: bool,
    /// Token index to resume scanning at (past the call).
    resume: usize,
}

/// Recognize an acquisition whose method/helper identifier sits at `i`.
fn acquisition_at(sf: &SourceFile, i: usize, stmt_start: usize) -> Option<Acq> {
    let toks = &sf.tokens;
    let name = toks[i].ident()?;
    let method = matches!(name, "lock" | "read" | "write") && i > 0 && toks[i - 1].is_punct('.');
    let helper = name == "lock_unpoisoned" && (i == 0 || !toks[i - 1].is_punct('.'));
    if !method && !helper {
        return None;
    }
    // Point-free sweep: `coll.iter().map(lock_unpoisoned).collect()` —
    // the closure-free form clippy's `redundant_closure` prefers. The
    // helper ident is an argument here, not a call, so handle it before
    // requiring a `(` after it.
    if helper && i + 1 < toks.len() && toks[i + 1].is_punct(')') {
        let mut j = i; // start of the (possibly `::`-qualified) path
        while j >= 3
            && toks[j - 1].is_punct(':')
            && toks[j - 2].is_punct(':')
            && toks[j - 3].ident().is_some()
        {
            j -= 3;
        }
        if j >= 3
            && toks[j - 1].is_punct('(')
            && toks[j - 2].is_ident("map")
            && toks[j - 3].is_punct('.')
        {
            if let Some(coll) = iterated_collection(sf, j - 2, stmt_start) {
                // `.collect()` retains every guard at once; anything
                // else consumes them per element.
                let retained = toks.get(i + 2).is_some_and(|t| t.is_punct('.'))
                    && toks.get(i + 3).is_some_and(|t| t.is_ident("collect"));
                return Some(Acq {
                    class: coll,
                    sweep: retained,
                    transient: !retained,
                    resume: i + 2,
                });
            }
        }
        return None;
    }
    if i + 1 >= toks.len() || !toks[i + 1].is_punct('(') {
        return None;
    }
    let close = sf.matching_close(i + 1, '(', ')')?;
    let receiver: Option<String> = if method {
        // `.lock()` family must have an empty argument list.
        if close != i + 2 {
            return None;
        }
        receiver_trailing_ident(sf, i - 1)
    } else {
        // `lock_unpoisoned(&self.inner)`: class from the argument path.
        if close == i + 2 {
            return None;
        }
        let mut last = None;
        for t in &toks[i + 2..close] {
            if let Tok::Ident(id) = &t.tok {
                if id != "self" && id != "mut" {
                    last = Some(id.clone());
                }
            }
        }
        last
    };
    let class = receiver?;
    // Is the receiver (or helper argument) a closure parameter of this
    // statement? Then this is an iterated acquisition over a collection.
    let param = if method {
        single_ident_receiver(sf, i - 1)
    } else {
        Some(class.clone())
    };
    let mut sweep = false;
    let mut transient = false;
    let mut swept_class = class.clone();
    if let Some(p) = param {
        if is_closure_param(sf, i, stmt_start, &p) {
            if let Some(coll) = iterated_collection(sf, i, stmt_start) {
                swept_class = coll;
                // Guards are retained when the closure does nothing with
                // the guard beyond unwrapping it; a continued chain
                // (`.clone()` etc.) means per-element temporaries.
                if chain_retains_guard(sf, close) {
                    sweep = true;
                } else {
                    transient = true;
                }
            }
        }
    }
    Some(Acq { class: swept_class, sweep, transient, resume: close + 1 })
}

#[allow(clippy::too_many_arguments)]
fn record_acquisition(
    sf: &SourceFile,
    i: usize,
    acq: &Acq,
    depth: usize,
    stmt_is_let: bool,
    held: &mut Vec<Held>,
    edges: &mut Vec<Edge>,
    out: &mut Vec<Finding>,
) {
    if acq.transient {
        return;
    }
    let line = sf.tokens[i].line;
    if acq.sweep && !sf.annotation_near(i, "lock-order:") {
        out.push(Finding::new(
            &sf.rel,
            line,
            "LOCK-ORDER",
            format!(
                "all-member guard sweep over `{}` needs a `// lock-order:` comment stating the canonical acquisition order",
                acq.class
            ),
        ));
    }
    for h in held.iter() {
        if h.class == acq.class {
            if !acq.sweep && !sf.annotation_near(i, "lock-order:") {
                out.push(Finding::new(
                    &sf.rel,
                    line,
                    "LOCK-ORDER",
                    format!(
                        "`{}` acquired while another `{}` guard is held; nested same-class locking needs a `// lock-order:` comment",
                        acq.class, acq.class
                    ),
                ));
            }
        } else {
            edges.push(Edge {
                from: h.class.clone(),
                to: acq.class.clone(),
                file: sf.rel.clone(),
                line,
                suppressed: sf.annotation_with_reason(i, "lint: allow(lock-cycle)"),
            });
        }
    }
    held.push(Held { class: acq.class.clone(), depth, let_bound: stmt_is_let });
}

/// The single identifier immediately before the `.` at `dot`, if the
/// receiver is exactly one identifier (`m.lock()` → `m`).
fn single_ident_receiver(sf: &SourceFile, dot: usize) -> Option<String> {
    if dot == 0 {
        return None;
    }
    let id = sf.tokens[dot - 1].ident()?;
    if dot >= 2 && (sf.tokens[dot - 2].is_punct('.') || sf.tokens[dot - 2].is_punct(':')) {
        return None;
    }
    Some(id.to_string())
}

/// Trailing identifier of a receiver chain (`self.shards[k].lock()` →
/// `shards`).
fn receiver_trailing_ident(sf: &SourceFile, dot: usize) -> Option<String> {
    if dot == 0 {
        return None;
    }
    let prev = dot - 1;
    match &sf.tokens[prev].tok {
        Tok::Ident(id) => Some(id.clone()),
        Tok::Punct(']') => sf
            .matching_open(prev, '[', ']')
            .and_then(|open| open.checked_sub(1))
            .and_then(|k| sf.tokens[k].ident().map(str::to_string)),
        Tok::Punct(')') => sf
            .matching_open(prev, '(', ')')
            .and_then(|open| open.checked_sub(1))
            .and_then(|k| sf.tokens[k].ident().map(|s| format!("{s}()"))),
        _ => None,
    }
}

/// Is `name` declared as a closure parameter (`|name|`, `|name, ..|`)
/// between `stmt_start` and the acquisition at `i`?
fn is_closure_param(sf: &SourceFile, i: usize, stmt_start: usize, name: &str) -> bool {
    let toks = &sf.tokens;
    let mut k = stmt_start;
    while k + 1 < i {
        if toks[k].is_punct('|') {
            let mut m = k + 1;
            while m < i && !toks[m].is_punct('|') {
                match &toks[m].tok {
                    Tok::Ident(id) if id == name => return true,
                    Tok::Ident(_) | Tok::Punct(',' | '&') => {}
                    _ => break,
                }
                m += 1;
            }
            k = m + 1;
        } else {
            k += 1;
        }
    }
    false
}

/// The collection being iterated in this statement (`self.shards.iter()`
/// → `shards`), if any.
fn iterated_collection(sf: &SourceFile, i: usize, stmt_start: usize) -> Option<String> {
    let toks = &sf.tokens;
    for k in (stmt_start..i.saturating_sub(2)).rev() {
        let iterish = toks[k]
            .ident()
            .is_some_and(|id| matches!(id, "iter" | "iter_mut" | "values" | "values_mut"));
        if iterish && k > 0 && toks[k - 1].is_punct('.') {
            return receiver_trailing_ident(sf, k - 1);
        }
    }
    None
}

/// After the acquisition call's `)` at `close`, allow `.expect(..)`,
/// `.unwrap()`, `.unwrap_or_else(..)`; guards are retained if the chain
/// ends there (next token closes the enclosing call), transient if the
/// chain continues.
fn chain_retains_guard(sf: &SourceFile, mut close: usize) -> bool {
    let toks = &sf.tokens;
    loop {
        let Some(next) = toks.get(close + 1) else {
            return true;
        };
        if !next.is_punct('.') {
            return next.is_punct(')') || next.is_punct(',');
        }
        let Some(m) = toks.get(close + 2).and_then(|t| t.ident()) else {
            return false;
        };
        if !matches!(m, "expect" | "unwrap" | "unwrap_or_else") {
            return false;
        }
        if !toks.get(close + 3).is_some_and(|t| t.is_punct('(')) {
            return false;
        }
        match sf.matching_close(close + 3, '(', ')') {
            Some(c) => close = c,
            None => return false,
        }
    }
}

/// Global cycle detection over the accumulated edges.
pub fn cycle_findings(edges: &[Edge], out: &mut Vec<Finding>) {
    use std::collections::{BTreeMap, BTreeSet};
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in edges {
        if !e.suppressed {
            adj.entry(&e.from).or_default().insert(&e.to);
        }
    }
    // Iterative DFS with colors; report the first back edge per start.
    let nodes: Vec<&str> = adj.keys().copied().collect();
    let mut color: BTreeMap<&str, u8> = BTreeMap::new(); // 0 white 1 grey 2 black
    for &start in &nodes {
        if color.get(start).copied().unwrap_or(0) != 0 {
            continue;
        }
        let mut stack: Vec<(&str, Vec<&str>)> = vec![(start, Vec::new())];
        while let Some((node, path)) = stack.pop() {
            match color.get(node).copied().unwrap_or(0) {
                0 => {
                    color.insert(node, 1);
                    let mut path2 = path.clone();
                    path2.push(node);
                    // Re-push to blacken after children.
                    stack.push((node, path));
                    for &next in adj.get(node).into_iter().flatten() {
                        if color.get(next).copied().unwrap_or(0) == 1 {
                            // Back edge: cycle next → ... → node → next.
                            let cycle_start = path2.iter().position(|&p| p == next).unwrap_or(0);
                            let mut cycle: Vec<&str> = path2[cycle_start..].to_vec();
                            cycle.push(next);
                            let witness = edges
                                .iter()
                                .find(|e| e.from == node && e.to == next)
                                .expect("back edge came from the edge list");
                            out.push(Finding::new(
                                &witness.file,
                                witness.line,
                                "LOCK-CYCLE",
                                format!("lock-order cycle: {}", cycle.join(" -> ")),
                            ));
                        } else if color.get(next).copied().unwrap_or(0) == 0 {
                            stack.push((next, path2.clone()));
                        }
                    }
                }
                1 => {
                    color.insert(node, 2);
                }
                _ => {}
            }
        }
    }
}
