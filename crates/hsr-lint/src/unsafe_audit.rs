//! Unsafe audit (`UNSAFE-FILE`, `UNSAFE-SAFETY`).
//!
//! Every `unsafe` token in code position must (a) live in a file on the
//! config's allowlist and (b) carry an adjacent `// SAFETY:` comment
//! discharging the obligation. Unlike the other lints this one also
//! covers test code: an unchecked `unsafe` in a test is still UB waiting
//! to happen.

use crate::config::Config;
use crate::source::SourceFile;
use crate::Finding;

pub fn scan_file(sf: &SourceFile, cfg: &Config, out: &mut Vec<Finding>) {
    let allowed = cfg.is_unsafe_allowed(&sf.rel);
    for (i, t) in sf.tokens.iter().enumerate() {
        if !t.is_ident("unsafe") {
            continue;
        }
        if !allowed {
            out.push(Finding::new(
                &sf.rel,
                t.line,
                "UNSAFE-FILE",
                "`unsafe` outside the allowlisted files; extend the allowlist in hsr-lint's config only with review".to_string(),
            ));
        }
        if !sf.annotation_near(i, "SAFETY:") {
            out.push(Finding::new(
                &sf.rel,
                t.line,
                "UNSAFE-SAFETY",
                "`unsafe` without an adjacent `// SAFETY:` comment".to_string(),
            ));
        }
    }
}
