//! Atomics-ordering lint.
//!
//! Three rules, all anchored on calls to the atomic access methods
//! (`load`, `store`, `fetch_*`, `compare_exchange*`, `fetch_update`):
//!
//! * `ATOMIC-EXPLICIT` — the call must spell its ordering(s) as literal
//!   `Ordering::*` paths; an ordering smuggled through a variable defeats
//!   review.
//! * `ATOMIC-JUSTIFY` — each site needs an adjacent `// ordering:`
//!   comment saying *why* that ordering is sufficient, unless the file's
//!   module-level policy (see [`crate::config::Config`]) already covers
//!   the ordering used.
//! * `ATOMIC-PAIR` — cross-site: a `Relaxed` write to a named counter
//!   that some other site reads with `Acquire`/`SeqCst` is flagged at the
//!   write (the PR-9 torn-snapshot bug class: the Acquire read promises a
//!   happens-before edge the write never publishes). Suppress with
//!   `// lint: allow(atomic-pair): <reason>` at the write site when the
//!   pairing is intentional because another write publishes the value.

use crate::config::Config;
use crate::source::SourceFile;
use crate::Finding;

/// Atomic access methods and how many `Ordering` arguments each takes.
const METHODS: &[(&str, usize)] = &[
    ("load", 1),
    ("store", 1),
    ("fetch_add", 1),
    ("fetch_sub", 1),
    ("fetch_and", 1),
    ("fetch_nand", 1),
    ("fetch_or", 1),
    ("fetch_xor", 1),
    ("fetch_max", 1),
    ("fetch_min", 1),
    ("fetch_update", 2),
    ("compare_exchange", 2),
    ("compare_exchange_weak", 2),
];

/// One atomic access, kept for the cross-site pairing pass.
pub struct Site {
    pub file: String,
    pub line: u32,
    /// Trailing identifier of the receiver (`self.stats.lookups` →
    /// `lookups`): the "counter name" pairing groups by.
    pub name: String,
    pub is_write: bool,
    pub orderings: Vec<String>,
    pub pair_allowed: bool,
}

/// Per-crate pairing scope: `crates/hsr-serve/...` → `crates/hsr-serve`.
fn crate_key(rel: &str) -> String {
    let parts: Vec<&str> = rel.split('/').collect();
    if parts.len() >= 2 {
        format!("{}/{}", parts[0], parts[1])
    } else {
        rel.to_string()
    }
}

pub fn scan_file(sf: &SourceFile, cfg: &Config, sites: &mut Vec<Site>, out: &mut Vec<Finding>) {
    if cfg.is_test_exempt(&sf.rel) {
        return;
    }
    let toks = &sf.tokens;
    for i in 0..toks.len() {
        let Some(name) = toks[i].ident() else {
            continue;
        };
        let Some(&(_, want)) = METHODS.iter().find(|(m, _)| *m == name) else {
            continue;
        };
        if i == 0 || !toks[i - 1].is_punct('.') {
            continue;
        }
        if i + 1 >= toks.len() || !toks[i + 1].is_punct('(') {
            continue;
        }
        if sf.in_test(i) {
            continue;
        }
        let Some(close) = sf.matching_close(i + 1, '(', ')') else {
            continue;
        };
        // Collect literal `Ordering::X` names in the argument list.
        let mut orderings = Vec::new();
        let mut k = i + 2;
        while k + 3 <= close {
            if toks[k].is_ident("Ordering")
                && toks[k + 1].is_punct(':')
                && toks[k + 2].is_punct(':')
            {
                if let Some(o) = toks[k + 3].ident() {
                    orderings.push(o.to_string());
                }
                k += 4;
            } else {
                k += 1;
            }
        }
        if orderings.is_empty() {
            // Either a non-atomic method that happens to share a name, or
            // an atomic call routing its ordering through a variable. The
            // workspace has no non-atomic `.load(`/`.store(`/`.fetch_*(`
            // callees, so report it; a false positive here means a method
            // name collision worth renaming anyway.
            out.push(Finding::new(
                &sf.rel,
                toks[i].line,
                "ATOMIC-EXPLICIT",
                format!("`.{name}(...)` names no literal `Ordering::*`; atomic orderings must be spelled at the call site"),
            ));
            continue;
        }
        if orderings.len() < want {
            out.push(Finding::new(
                &sf.rel,
                toks[i].line,
                "ATOMIC-EXPLICIT",
                format!(
                    "`.{name}(...)` spells {} of its {} orderings as literal `Ordering::*`",
                    orderings.len(),
                    want
                ),
            ));
        }
        // Justification: module policy or an adjacent `// ordering:`.
        let policy_covers = cfg
            .policy_orderings(&sf.rel)
            .is_some_and(|allowed| orderings.iter().all(|o| allowed.iter().any(|a| a == o)));
        if !policy_covers && !sf.annotation_near(i, "ordering:") {
            out.push(Finding::new(
                &sf.rel,
                toks[i].line,
                "ATOMIC-JUSTIFY",
                format!(
                    "atomic `.{name}({})` has no adjacent `// ordering:` justification and no module policy covers it",
                    orderings.join(", ")
                ),
            ));
        }
        sites.push(Site {
            file: sf.rel.clone(),
            line: toks[i].line,
            name: receiver_name(sf, i - 1),
            is_write: name != "load",
            orderings,
            pair_allowed: sf.annotation_with_reason(i, "lint: allow(atomic-pair)"),
        });
    }
}

/// Trailing identifier of the receiver chain ending at the `.` at `dot`.
fn receiver_name(sf: &SourceFile, dot: usize) -> String {
    if dot == 0 {
        return String::from("?");
    }
    let prev = dot - 1;
    match &sf.tokens[prev].tok {
        crate::lexer::Tok::Ident(i) => i.clone(),
        crate::lexer::Tok::Punct(']') => sf
            .matching_open(prev, '[', ']')
            .and_then(|open| open.checked_sub(1))
            .and_then(|k| sf.tokens[k].ident().map(str::to_string))
            .unwrap_or_else(|| String::from("?")),
        crate::lexer::Tok::Punct(')') => sf
            .matching_open(prev, '(', ')')
            .and_then(|open| open.checked_sub(1))
            .and_then(|k| sf.tokens[k].ident().map(|s| format!("{s}()")))
            .unwrap_or_else(|| String::from("?")),
        _ => String::from("?"),
    }
}

/// Cross-site pass: flag Relaxed writes to names that any same-crate site
/// reads with Acquire (or stronger).
pub fn pair_findings(sites: &[Site], out: &mut Vec<Finding>) {
    for w in sites {
        if !w.is_write || w.name == "?" || w.pair_allowed {
            continue;
        }
        if !w.orderings.iter().any(|o| o == "Relaxed") {
            continue;
        }
        let wkey = crate_key(&w.file);
        let reader = sites.iter().find(|r| {
            !r.is_write
                && r.name == w.name
                && crate_key(&r.file) == wkey
                && r.orderings.iter().any(|o| o == "Acquire" || o == "SeqCst")
        });
        if let Some(r) = reader {
            out.push(Finding::new(
                &w.file,
                w.line,
                "ATOMIC-PAIR",
                format!(
                    "`{}` is written with Relaxed here but read with Acquire at {}:{}; Release the write or annotate `// lint: allow(atomic-pair): <reason>`",
                    w.name, r.file, r.line
                ),
            ));
        }
    }
}
