//! Lint configuration: which files are on the panic-free request path,
//! where `unsafe` may live, and which modules have a blanket atomics
//! ordering policy instead of per-site justifications.
//!
//! All paths are workspace-relative with forward slashes and matched by
//! suffix, so the same config works regardless of where the checkout
//! lives.

/// Tunable policy for a lint run. [`Config::workspace`] is the policy
/// the CI gate enforces; tests build narrower configs aimed at fixture
/// trees.
pub struct Config {
    /// Files where `unwrap()`/`expect(`/`panic!`/`unreachable!`/`todo!`
    /// are denied outside `#[cfg(test)]` (suffix match).
    pub panic_paths: Vec<String>,
    /// Files allowed to contain `unsafe` at all (suffix match). Every
    /// occurrence still needs an adjacent `// SAFETY:` comment.
    pub unsafe_allow: Vec<String>,
    /// Per-module atomics policy: sites in these files may use the listed
    /// orderings without a per-site `// ordering:` justification. Meant
    /// for modules that are wall-to-wall monotonic counters and say so
    /// once at module level.
    pub atomics_policy: Vec<(String, Vec<String>)>,
    /// Path fragments excluded from the walk entirely.
    pub skip: Vec<String>,
    /// Exempt `/tests/`, `/benches/`, `/examples/` files from the
    /// atomics and lock disciplines (the unsafe audit never exempts
    /// them). On for the workspace policy; off for fixture configs so
    /// seeded-violation files under `tests/fixtures/` still get
    /// scanned.
    pub exempt_test_paths: bool,
}

impl Config {
    /// The policy for this workspace — the one `cargo run -p hsr-lint --
    /// check` and the CI `lint-smoke` job enforce.
    pub fn workspace() -> Self {
        Config {
            panic_paths: vec![
                // The serving request path: a panic here kills a shard,
                // worker, or dispatcher thread under live traffic.
                "crates/hsr-serve/src/server.rs".into(),
                "crates/hsr-serve/src/event_loop.rs".into(),
                "crates/hsr-serve/src/protocol.rs".into(),
                "crates/hsr-serve/src/catalog.rs".into(),
                // Observability record paths run inside every request.
                "crates/hsr-obs/src/span.rs".into(),
                "crates/hsr-obs/src/trace.rs".into(),
                "crates/hsr-obs/src/hist.rs".into(),
                // The scene cache sits on the tiled-eval hot path.
                "crates/hsr-tile/src/cache.rs".into(),
            ],
            unsafe_allow: vec![
                // The poll(2) FFI shim holds the workspace's only
                // `unsafe`; every other crate and shim forbids it.
                "shims/polling/src/lib.rs".into(),
            ],
            atomics_policy: vec![
                // Work/depth measurement counters: monotonic tallies read
                // only after the parallel section joins.
                ("crates/hsr-pram/src/cost.rs".into(), vec!["Relaxed".into()]),
                // Helper-thread budget gauge: admission control only, no
                // data is published through it.
                ("shims/rayon/src/lib.rs".into(), vec!["Relaxed".into()]),
            ],
            skip: vec![
                "/target/".into(),
                "/.git/".into(),
                // The lint engine's seeded-violation fixtures.
                "tests/fixtures/".into(),
            ],
            exempt_test_paths: true,
        }
    }

    /// A minimal config for fixture tests: no designated panic files, no
    /// unsafe allowlist, no policy modules, nothing skipped.
    pub fn bare() -> Self {
        Config {
            panic_paths: Vec::new(),
            unsafe_allow: Vec::new(),
            atomics_policy: Vec::new(),
            skip: Vec::new(),
            exempt_test_paths: false,
        }
    }

    /// True when `rel` holds test or bench code this config exempts
    /// from the atomics and lock disciplines.
    pub fn is_test_exempt(&self, rel: &str) -> bool {
        self.exempt_test_paths && is_test_path(rel)
    }

    pub fn is_panic_path(&self, rel: &str) -> bool {
        self.panic_paths.iter().any(|p| rel.ends_with(p.as_str()))
    }

    pub fn is_unsafe_allowed(&self, rel: &str) -> bool {
        self.unsafe_allow.iter().any(|p| rel.ends_with(p.as_str()))
    }

    /// Orderings the file's module-level policy covers, if any.
    pub fn policy_orderings(&self, rel: &str) -> Option<&[String]> {
        self.atomics_policy
            .iter()
            .find(|(p, _)| rel.ends_with(p.as_str()))
            .map(|(_, o)| o.as_slice())
    }

    pub fn is_skipped(&self, rel: &str) -> bool {
        self.skip.iter().any(|p| rel.contains(p.as_str()))
    }
}

/// True for files that hold test or bench code, where the atomics and
/// lock disciplines do not apply (the unsafe audit still does).
pub fn is_test_path(rel: &str) -> bool {
    rel.contains("/tests/") || rel.contains("/benches/") || rel.contains("/examples/")
}
