//! CLI for the workspace static-analysis pass.
//!
//! ```text
//! cargo run -p hsr-lint -- check [--root <path>]
//! ```
//!
//! Prints findings one per line as `file:line: LINT-ID message` and
//! exits 0 when clean, 1 when any finding fired, 2 on usage or I/O
//! errors. The CI `lint-smoke` job runs exactly this.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root = PathBuf::from(".");
    let mut cmd = None;
    let mut i = 0usize;
    while i < args.len() {
        match args[i].as_str() {
            "check" => cmd = Some("check"),
            "--root" => {
                i += 1;
                match args.get(i) {
                    Some(p) => root = PathBuf::from(p),
                    None => {
                        eprintln!("hsr-lint: --root requires a path");
                        return ExitCode::from(2);
                    }
                }
            }
            other => {
                eprintln!("hsr-lint: unknown argument `{other}`");
                return usage();
            }
        }
        i += 1;
    }
    if cmd != Some("check") {
        return usage();
    }
    // When invoked via `cargo run -p hsr-lint`, the cwd is already the
    // workspace root; from elsewhere, walk up to the workspace manifest.
    if root.as_os_str() == "." && !root.join("Cargo.toml").exists() {
        eprintln!("hsr-lint: no Cargo.toml under `.`; pass --root <workspace>");
        return ExitCode::from(2);
    }
    let cfg = hsr_lint::Config::workspace();
    match hsr_lint::run_check(&root, &cfg) {
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            if findings.is_empty() {
                eprintln!("hsr-lint: clean");
                ExitCode::SUCCESS
            } else {
                eprintln!("hsr-lint: {} finding(s)", findings.len());
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("hsr-lint: {e}");
            ExitCode::from(2)
        }
    }
}

fn usage() -> ExitCode {
    eprintln!("usage: hsr-lint check [--root <path>]");
    ExitCode::from(2)
}
