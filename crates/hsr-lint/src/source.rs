//! Per-file view shared by all analyses: the token stream, comment map,
//! `#[cfg(test)]` regions, and adjacency-based annotation lookup.

use crate::lexer::{lex, Lexed, Token};
use std::collections::{BTreeMap, BTreeSet};

pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub rel: String,
    pub tokens: Vec<Token>,
    pub comments: BTreeMap<u32, String>,
    pub token_lines: BTreeSet<u32>,
    /// Token-index ranges (inclusive) covered by `#[cfg(test)]` items.
    cfg_test: Vec<(usize, usize)>,
}

impl SourceFile {
    pub fn parse(rel: &str, src: &str) -> SourceFile {
        let Lexed { tokens, comments, token_lines } = lex(src);
        let cfg_test = find_cfg_test_ranges(&tokens);
        SourceFile { rel: rel.to_string(), tokens, comments, token_lines, cfg_test }
    }

    /// True if the token at `idx` falls inside a `#[cfg(test)]` item.
    pub fn in_test(&self, idx: usize) -> bool {
        self.cfg_test.iter().any(|&(a, b)| idx >= a && idx <= b)
    }

    /// Look for `pat` in comments adjacent to the statement containing
    /// token `idx`: trailing comments on any line of the statement up to
    /// the site, or a contiguous comment block immediately above the
    /// statement's first line.
    pub fn annotation_near(&self, idx: usize, pat: &str) -> bool {
        let site_line = self.tokens[idx].line;
        let stmt_line = self.stmt_start_line(idx);
        for l in stmt_line..=site_line {
            if let Some(text) = self.comments.get(&l) {
                if text.contains(pat) {
                    return true;
                }
            }
        }
        // Walk the contiguous comment-only block above the statement.
        let mut l = stmt_line;
        while l > 1 {
            l -= 1;
            if self.token_lines.contains(&l) {
                break;
            }
            match self.comments.get(&l) {
                Some(text) => {
                    if text.contains(pat) {
                        return true;
                    }
                }
                None => break, // blank line: annotation must be adjacent
            }
        }
        false
    }

    /// Like [`Self::annotation_near`], but also demands a non-empty free-text
    /// reason after the marker (e.g. `// lint: allow(panic): held briefly`).
    pub fn annotation_with_reason(&self, idx: usize, pat: &str) -> bool {
        let site_line = self.tokens[idx].line;
        let stmt_line = self.stmt_start_line(idx);
        let check = |text: &str| {
            text.split(pat)
                .nth(1)
                .is_some_and(|rest| !rest.trim().trim_start_matches(':').trim().is_empty())
        };
        for l in stmt_line..=site_line {
            if let Some(text) = self.comments.get(&l) {
                if check(text) {
                    return true;
                }
            }
        }
        let mut l = stmt_line;
        while l > 1 {
            l -= 1;
            if self.token_lines.contains(&l) {
                break;
            }
            match self.comments.get(&l) {
                Some(text) => {
                    if check(text) {
                        return true;
                    }
                }
                None => break,
            }
        }
        false
    }

    /// First line of the statement containing token `idx` (walks back to
    /// the nearest `;`, `{`, or `}`).
    fn stmt_start_line(&self, idx: usize) -> u32 {
        let mut j = idx;
        let mut line = self.tokens[idx].line;
        while j > 0 {
            j -= 1;
            match &self.tokens[j].tok {
                crate::lexer::Tok::Punct(';' | '{' | '}') => {
                    return self.tokens.get(j + 1).map_or(line, |t| t.line);
                }
                _ => line = self.tokens[j].line,
            }
        }
        line
    }

    /// Index of the matching close delimiter for the open delimiter at
    /// `open` (`(`/`)` or `{`/`}` or `[`/`]`), if balanced.
    pub fn matching_close(&self, open: usize, oc: char, cc: char) -> Option<usize> {
        let mut depth = 0usize;
        for (k, t) in self.tokens.iter().enumerate().skip(open) {
            if t.is_punct(oc) {
                depth += 1;
            } else if t.is_punct(cc) {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
        }
        None
    }

    /// Index of the matching open delimiter scanning backwards from the
    /// close delimiter at `close`.
    pub fn matching_open(&self, close: usize, oc: char, cc: char) -> Option<usize> {
        let mut depth = 0usize;
        let mut k = close + 1;
        while k > 0 {
            k -= 1;
            let t = &self.tokens[k];
            if t.is_punct(cc) {
                depth += 1;
            } else if t.is_punct(oc) {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
        }
        None
    }
}

/// Find token ranges of items gated behind `#[cfg(test)]`: the attribute
/// pattern `# [ cfg ( test ) ]` followed (past any further attributes)
/// by an item with a braced body.
fn find_cfg_test_ranges(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i + 6 < tokens.len() {
        let hit = tokens[i].is_punct('#')
            && tokens[i + 1].is_punct('[')
            && tokens[i + 2].is_ident("cfg")
            && tokens[i + 3].is_punct('(')
            && tokens[i + 4].is_ident("test")
            && tokens[i + 5].is_punct(')')
            && tokens[i + 6].is_punct(']');
        if !hit {
            i += 1;
            continue;
        }
        let mut j = i + 7;
        // Skip any further attributes between the cfg and the item.
        while j + 1 < tokens.len() && tokens[j].is_punct('#') && tokens[j + 1].is_punct('[') {
            let mut depth = 0usize;
            let mut k = j + 1;
            while k < tokens.len() {
                if tokens[k].is_punct('[') {
                    depth += 1;
                } else if tokens[k].is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                k += 1;
            }
            j = k + 1;
        }
        // Find the item's body: first `{` before any `;` ends the item
        // header (a `;` first means no body, e.g. `mod tests;`).
        let mut body_open = None;
        let mut k = j;
        while k < tokens.len() {
            if tokens[k].is_punct('{') {
                body_open = Some(k);
                break;
            }
            if tokens[k].is_punct(';') {
                break;
            }
            k += 1;
        }
        if let Some(open) = body_open {
            let mut depth = 0usize;
            let mut close = open;
            while close < tokens.len() {
                if tokens[close].is_punct('{') {
                    depth += 1;
                } else if tokens[close].is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                close += 1;
            }
            ranges.push((i, close.min(tokens.len() - 1)));
            i = close;
        }
        i += 1;
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_mod_is_ranged() {
        let sf = SourceFile::parse(
            "x.rs",
            "fn live() {}\n#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); }\n}\n",
        );
        let unwrap_idx = sf.tokens.iter().position(|t| t.is_ident("unwrap")).unwrap();
        assert!(sf.in_test(unwrap_idx));
        let live_idx = sf.tokens.iter().position(|t| t.is_ident("live")).unwrap();
        assert!(!sf.in_test(live_idx));
    }

    #[test]
    fn annotation_found_above_and_trailing() {
        let sf = SourceFile::parse(
            "x.rs",
            "// ordering: counters join before read\nlet a = c.load(Ordering::Relaxed);\nlet b = c.load(Ordering::Relaxed); // ordering: same\nlet d = c.load(Ordering::Relaxed);\n",
        );
        let sites: Vec<usize> = sf
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_ident("load"))
            .map(|(k, _)| k)
            .collect();
        assert!(sf.annotation_near(sites[0], "ordering:"));
        assert!(sf.annotation_near(sites[1], "ordering:"));
        assert!(!sf.annotation_near(sites[2], "ordering:"));
    }

    #[test]
    fn reason_is_required() {
        let sf = SourceFile::parse("x.rs", "// lint: allow(panic):\nx.unwrap();\nx.unwrap(); // lint: allow(panic): test harness only\n");
        let sites: Vec<usize> = sf
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_ident("unwrap"))
            .map(|(k, _)| k)
            .collect();
        assert!(!sf.annotation_with_reason(sites[0], "lint: allow(panic)"));
        assert!(sf.annotation_with_reason(sites[1], "lint: allow(panic)"));
    }
}
