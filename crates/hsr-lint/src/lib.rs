//! hsr-lint: workspace-invariant static analysis.
//!
//! The serving stack rests on hand-rolled concurrency invariants —
//! Release/Acquire counter pipelines, an all-shard-lock LRU commit,
//! non-blocking trace rings, a panic-free request path — that the
//! compiler cannot check and PR review has already missed once (the PR-9
//! torn-snapshot atomics bug). This crate re-checks them on every commit
//! with four analyses over a hand-rolled lexer (no `syn`, no
//! dependencies, consistent with the offline no-registry constraint):
//!
//! | Lint ID           | Invariant                                              |
//! |-------------------|--------------------------------------------------------|
//! | `ATOMIC-EXPLICIT` | atomic calls spell literal `Ordering::*` at the site   |
//! | `ATOMIC-JUSTIFY`  | each site has `// ordering:` or a module policy        |
//! | `ATOMIC-PAIR`     | no Relaxed write read back with Acquire                |
//! | `LOCK-CYCLE`      | the global lock-order graph is acyclic                 |
//! | `LOCK-ORDER`      | same-class / all-shard acquisition states its order    |
//! | `PANIC-PATH`      | no `unwrap`/`expect`/`panic!` on the request path      |
//! | `UNSAFE-FILE`     | `unsafe` only in allowlisted files                     |
//! | `UNSAFE-SAFETY`   | every `unsafe` has a `// SAFETY:` comment              |
//!
//! Run with `cargo run -p hsr-lint -- check`; findings print one per
//! line as `file:line: LINT-ID message` and any finding exits nonzero,
//! which is what the CI `lint-smoke` job gates on.

#![forbid(unsafe_code)]

pub mod atomics;
pub mod config;
pub mod lexer;
pub mod locks;
pub mod panics;
pub mod source;
pub mod unsafe_audit;

pub use config::Config;

use source::SourceFile;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One lint finding, displayed as `file:line: LINT-ID message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub file: String,
    pub line: u32,
    pub lint: &'static str,
    pub message: String,
}

impl Finding {
    pub fn new(file: &str, line: u32, lint: &'static str, message: String) -> Finding {
        Finding { file: file.to_string(), line, lint, message }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {} {}", self.file, self.line, self.lint, self.message)
    }
}

/// Run every analysis over all `.rs` files under `root`. Findings come
/// back sorted by (file, line, lint) for deterministic output.
pub fn run_check(root: &Path, cfg: &Config) -> io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    collect_rs_files(root, root, cfg, &mut files)?;
    files.sort();

    let mut findings = Vec::new();
    let mut atomic_sites = Vec::new();
    let mut lock_edges = Vec::new();
    for rel in &files {
        let src = fs::read_to_string(root.join(rel))?;
        let sf = SourceFile::parse(rel, &src);
        atomics::scan_file(&sf, cfg, &mut atomic_sites, &mut findings);
        locks::scan_file(&sf, cfg, &mut lock_edges, &mut findings);
        panics::scan_file(&sf, cfg, &mut findings);
        unsafe_audit::scan_file(&sf, cfg, &mut findings);
    }
    atomics::pair_findings(&atomic_sites, &mut findings);
    locks::cycle_findings(&lock_edges, &mut findings);

    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.lint).cmp(&(b.file.as_str(), b.line, b.lint)));
    Ok(findings)
}

fn collect_rs_files(
    root: &Path,
    dir: &Path,
    cfg: &Config,
    out: &mut Vec<String>,
) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let rel = rel_path(root, &path);
        // Normalize with a leading slash so `/target/`-style skip
        // fragments match at the top level too.
        let probe = format!("/{rel}");
        if cfg.is_skipped(&probe) {
            continue;
        }
        let ty = entry.file_type()?;
        if ty.is_dir() {
            collect_rs_files(root, &path, cfg, out)?;
        } else if ty.is_file() && path.extension().is_some_and(|e| e == "rs") {
            out.push(rel);
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    let rel: PathBuf = path.strip_prefix(root).unwrap_or(path).to_path_buf();
    let mut s = String::new();
    for comp in rel.components() {
        if !s.is_empty() {
            s.push('/');
        }
        s.push_str(&comp.as_os_str().to_string_lossy());
    }
    s
}
