//! Panic-freedom lint (`PANIC-PATH`).
//!
//! In designated request-path files, any of `unwrap()`, `expect(`,
//! `panic!`, `unreachable!`, `todo!`, `unimplemented!` outside
//! `#[cfg(test)]` is a finding unless the site carries an adjacent
//! `// lint: allow(panic): <reason>` annotation. A panic on these paths
//! does not return an error to one client — it kills a shard, worker, or
//! dispatcher thread and degrades every connection mapped to it.
//!
//! One shape is exempt: `.expect(...)?`. The trailing `?` proves the
//! callee returns `Result` and the error propagates (the serde shim's
//! `Deserializer::expect` token check, for example) — that *is* typed
//! error propagation, not a panic.

use crate::config::Config;
use crate::source::SourceFile;
use crate::Finding;

const PANIC_METHODS: &[&str] = &["unwrap", "expect"];
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
const ALLOW: &str = "lint: allow(panic)";

pub fn scan_file(sf: &SourceFile, cfg: &Config, out: &mut Vec<Finding>) {
    if !cfg.is_panic_path(&sf.rel) {
        return;
    }
    let toks = &sf.tokens;
    for i in 0..toks.len() {
        let Some(name) = toks[i].ident() else {
            continue;
        };
        let method = PANIC_METHODS.contains(&name)
            && i > 0
            && toks[i - 1].is_punct('.')
            && i + 1 < toks.len()
            && toks[i + 1].is_punct('(');
        let mac = PANIC_MACROS.contains(&name) && i + 1 < toks.len() && toks[i + 1].is_punct('!');
        if !method && !mac {
            continue;
        }
        if sf.in_test(i) {
            continue;
        }
        if method {
            // `.expect(...)?` propagates a Result instead of panicking.
            let propagated = sf
                .matching_close(i + 1, '(', ')')
                .and_then(|c| toks.get(c + 1))
                .is_some_and(|t| t.is_punct('?'));
            if propagated {
                continue;
            }
        }
        if sf.annotation_with_reason(i, ALLOW) {
            continue;
        }
        let what = if method {
            format!(".{name}()")
        } else {
            format!("{name}!")
        };
        out.push(Finding::new(
            &sf.rel,
            toks[i].line,
            "PANIC-PATH",
            format!(
                "`{what}` on the request path; return a typed error or annotate `// lint: allow(panic): <reason>`"
            ),
        ));
    }
}
