//! A minimal Rust lexer: just enough structure for line-accurate,
//! comment-aware scanning of the workspace's own source.
//!
//! This is deliberately *not* a parser. In the spirit of the hand-rolled
//! `shims/serde_derive` proc macro, it tokenizes identifiers, punctuation,
//! and literals while tracking line numbers and comment text, and leaves
//! all higher-level structure (statements, functions, `#[cfg(test)]`
//! regions) to cheap token-pattern scans in the analyses. The hard part a
//! lexer must get right — and the part regex-based scanning gets wrong —
//! is knowing what is code and what is not: nested block comments, string
//! and raw-string bodies, char literals vs. lifetimes.

use std::collections::{BTreeMap, BTreeSet};

/// One lexical token. Literal *contents* are never needed by the
/// analyses, so all literal kinds collapse into [`Tok::Lit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (`fn`, `unsafe`, `fetch_add`, ...).
    Ident(String),
    /// Single punctuation character (`::` is two `Punct(':')` tokens).
    Punct(char),
    /// String / raw string / byte string / char / numeric literal.
    Lit,
    /// A lifetime such as `'a` (distinguished from char literals).
    Lifetime,
}

/// A token plus the 1-based source line it starts on.
#[derive(Debug, Clone)]
pub struct Token {
    pub tok: Tok,
    pub line: u32,
}

impl Token {
    pub fn is_punct(&self, c: char) -> bool {
        matches!(self.tok, Tok::Punct(p) if p == c)
    }

    pub fn is_ident(&self, s: &str) -> bool {
        matches!(&self.tok, Tok::Ident(i) if i == s)
    }

    pub fn ident(&self) -> Option<&str> {
        match &self.tok {
            Tok::Ident(i) => Some(i),
            _ => None,
        }
    }
}

/// Lexed output: the token stream plus per-line comment text (used to
/// find `// ordering:` / `// SAFETY:` / `// lint: allow(...)` markers).
pub struct Lexed {
    pub tokens: Vec<Token>,
    /// Comment text by line; a line's entry concatenates every comment
    /// (or block-comment fragment) that appears on it.
    pub comments: BTreeMap<u32, String>,
    /// Lines that carry at least one token (i.e. real code).
    pub token_lines: BTreeSet<u32>,
}

pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let n = chars.len();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut tokens = Vec::new();
    let mut comments: BTreeMap<u32, String> = BTreeMap::new();

    fn record(comments: &mut BTreeMap<u32, String>, line: u32, text: &str) {
        let slot = comments.entry(line).or_default();
        if !slot.is_empty() {
            slot.push(' ');
        }
        slot.push_str(text);
    }

    while i < n {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment (covers `//`, `///`, `//!`).
        if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            let start = i;
            while i < n && chars[i] != '\n' {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            record(&mut comments, line, &text);
            continue;
        }
        // Block comment, possibly nested, possibly multi-line.
        if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            let mut depth = 1usize;
            i += 2;
            let mut seg = String::new();
            while i < n && depth > 0 {
                if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                    depth += 1;
                    seg.push_str("/*");
                    i += 2;
                } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else if chars[i] == '\n' {
                    if !seg.trim().is_empty() {
                        record(&mut comments, line, seg.trim());
                    }
                    seg.clear();
                    line += 1;
                    i += 1;
                } else {
                    seg.push(chars[i]);
                    i += 1;
                }
            }
            if !seg.trim().is_empty() {
                record(&mut comments, line, seg.trim());
            }
            continue;
        }
        // String literal with escapes (`"..."`).
        if c == '"' {
            let start_line = line;
            i = scan_escaped_string(&chars, i + 1, &mut line);
            tokens.push(Token { tok: Tok::Lit, line: start_line });
            continue;
        }
        // `r"..."` / `r#"..."#` raw strings, `r#ident` raw identifiers,
        // `b"..."`, `br#"..."#`, `b'x'` — all start with `r` or `b`.
        if c == 'r' || c == 'b' {
            let is_b = c == 'b';
            let mut j = i + 1;
            let raw = c == 'r' || (is_b && j < n && chars[j] == 'r');
            if is_b && raw {
                j += 1;
            }
            if raw {
                let mut hashes = 0usize;
                let mut k = j;
                while k < n && chars[k] == '#' {
                    hashes += 1;
                    k += 1;
                }
                if k < n && chars[k] == '"' {
                    // Raw (byte) string: scan to `"` followed by `hashes` #s.
                    let start_line = line;
                    i = k + 1;
                    'raw: while i < n {
                        if chars[i] == '\n' {
                            line += 1;
                            i += 1;
                            continue;
                        }
                        if chars[i] == '"' {
                            let mut m = i + 1;
                            let mut seen = 0usize;
                            while m < n && chars[m] == '#' && seen < hashes {
                                seen += 1;
                                m += 1;
                            }
                            if seen == hashes {
                                i = m;
                                break 'raw;
                            }
                        }
                        i += 1;
                    }
                    tokens.push(Token { tok: Tok::Lit, line: start_line });
                    continue;
                }
                if !is_b && hashes == 1 && k < n && is_ident_start(chars[k]) {
                    // Raw identifier `r#type`.
                    let start = k;
                    while k < n && is_ident_continue(chars[k]) {
                        k += 1;
                    }
                    let name: String = chars[start..k].iter().collect();
                    tokens.push(Token { tok: Tok::Ident(name), line });
                    i = k;
                    continue;
                }
                // Not a raw literal after all — plain ident, fall through.
            } else if is_b && j < n && chars[j] == '"' {
                // Byte string: escaped like a normal string.
                let start_line = line;
                i = scan_escaped_string(&chars, j + 1, &mut line);
                tokens.push(Token { tok: Tok::Lit, line: start_line });
                continue;
            } else if is_b && j < n && chars[j] == '\'' {
                // Byte char `b'x'` / `b'\n'`.
                i = j + 1;
                if i < n && chars[i] == '\\' {
                    i += 2;
                }
                while i < n && chars[i] != '\'' {
                    i += 1;
                }
                i += 1;
                tokens.push(Token { tok: Tok::Lit, line });
                continue;
            }
            // Plain identifier starting with r/b: fall through.
        }
        if is_ident_start(c) {
            let start = i;
            while i < n && is_ident_continue(chars[i]) {
                i += 1;
            }
            let name: String = chars[start..i].iter().collect();
            tokens.push(Token { tok: Tok::Ident(name), line });
            continue;
        }
        if c.is_ascii_digit() {
            // Numeric literal, swallowing suffixes; `1..x` must not eat `..`.
            while i < n && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            if i + 1 < n && chars[i] == '.' && chars[i + 1].is_ascii_digit() {
                i += 1;
                while i < n && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
            }
            tokens.push(Token { tok: Tok::Lit, line });
            continue;
        }
        if c == '\'' {
            // Char literal vs lifetime. `'a'` is a char; `'a` (no closing
            // quote right after one ident-ish char) is a lifetime.
            if i + 1 < n && chars[i + 1] == '\\' {
                i += 2;
                if i < n {
                    i += 1; // the escaped char
                }
                while i < n && chars[i] != '\'' {
                    i += 1;
                }
                i += 1;
                tokens.push(Token { tok: Tok::Lit, line });
                continue;
            }
            if i + 2 < n && chars[i + 2] == '\'' {
                i += 3;
                tokens.push(Token { tok: Tok::Lit, line });
                continue;
            }
            // Lifetime: consume `'ident`.
            i += 1;
            while i < n && is_ident_continue(chars[i]) {
                i += 1;
            }
            tokens.push(Token { tok: Tok::Lifetime, line });
            continue;
        }
        tokens.push(Token { tok: Tok::Punct(c), line });
        i += 1;
    }

    let token_lines = tokens.iter().map(|t| t.line).collect();
    Lexed { tokens, comments, token_lines }
}

/// Scan the body of an escaped string starting just past the opening
/// quote; returns the index just past the closing quote.
fn scan_escaped_string(chars: &[char], mut i: usize, line: &mut u32) -> usize {
    let n = chars.len();
    while i < n {
        match chars[i] {
            '\\' => i += 2,
            '"' => {
                i += 1;
                break;
            }
            '\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_are_not_code() {
        let l = lex("let x = 1; // ordering: fine\n/* block */ let y = 2;\n");
        assert!(l.comments.get(&1).unwrap().contains("ordering:"));
        assert!(l.comments.get(&2).unwrap().contains("block"));
        assert!(l.tokens.iter().any(|t| t.is_ident("y")));
    }

    #[test]
    fn raw_strings_hide_their_contents() {
        let l = lex(r###"let s = r#"unsafe { panic!() }"#; let t = 3;"###);
        assert!(!l.tokens.iter().any(|t| t.is_ident("unsafe")));
        assert!(l.tokens.iter().any(|t| t.is_ident("t")));
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* outer /* inner */ still comment */ fn f() {}\n");
        assert!(l.tokens.iter().any(|t| t.is_ident("fn")));
        assert!(!l.tokens.iter().any(|t| t.is_ident("outer")));
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let l = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes = l.tokens.iter().filter(|t| t.tok == Tok::Lifetime).count();
        assert_eq!(lifetimes, 2);
        assert!(l.tokens.iter().any(|t| t.tok == Tok::Lit));
    }

    #[test]
    fn multiline_strings_track_lines() {
        let l = lex("let s = \"line one\nline two\";\nlet z = 9;");
        let z = l.tokens.iter().find(|t| t.is_ident("z")).unwrap();
        assert_eq!(z.line, 3);
    }
}
