//! Fixture-driven engine tests. Every seeded violation under
//! `tests/fixtures/` is marked on its own line with a trailing
//! `//~ LINT-ID [LINT-ID ...]` comment; the engine must report exactly
//! the marked set — each marker fires at its file and line, and the
//! clean twins stay silent. The marker text never contains an
//! annotation pattern (`ordering:`, `lock-order:`, `SAFETY:`), so the
//! markers themselves cannot suppress findings.

use hsr_lint::{run_check, Config, Finding};
use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

fn fixtures_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// The policy the fixture tree is linted under: `panics_*.rs` are
/// designated request-path files, `unsafe_clean.rs` is the allowlist.
fn fixture_config() -> Config {
    let mut cfg = Config::bare();
    cfg.panic_paths = vec!["panics_bad.rs".into(), "panics_clean.rs".into()];
    cfg.unsafe_allow = vec!["unsafe_clean.rs".into()];
    cfg
}

fn fixture_files() -> Vec<(String, String)> {
    let mut files = Vec::new();
    for entry in fs::read_dir(fixtures_root()).unwrap() {
        let path = entry.unwrap().path();
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        if name.ends_with(".rs") {
            files.push((name, fs::read_to_string(&path).unwrap()));
        }
    }
    files.sort();
    files
}

/// `(file, line, lint)` triples harvested from the `//~` markers.
fn expected() -> BTreeSet<(String, u32, String)> {
    let mut want = BTreeSet::new();
    for (name, src) in fixture_files() {
        for (idx, line) in src.lines().enumerate() {
            let Some((_, marks)) = line.split_once("//~") else {
                continue;
            };
            for id in marks.split_whitespace() {
                want.insert((name.clone(), idx as u32 + 1, id.to_string()));
            }
        }
    }
    want
}

fn reported() -> Vec<Finding> {
    run_check(&fixtures_root(), &fixture_config()).unwrap()
}

#[test]
fn every_seeded_violation_fires_and_nothing_else() {
    let want = expected();
    assert!(!want.is_empty(), "fixture tree should contain `//~` markers");
    let got: BTreeSet<(String, u32, String)> = reported()
        .iter()
        .map(|f| (f.file.clone(), f.line, f.lint.to_string()))
        .collect();
    let missing: Vec<_> = want.difference(&got).collect();
    let extra: Vec<_> = got.difference(&want).collect();
    assert!(
        missing.is_empty() && extra.is_empty(),
        "markers without findings: {missing:?}\nfindings without markers: {extra:?}"
    );
}

#[test]
fn bad_fixtures_fail_the_gate_and_clean_twins_pass_it() {
    let findings = reported();
    let fired: BTreeSet<&str> = findings.iter().map(|f| f.file.as_str()).collect();
    for (name, _) in fixture_files() {
        if name.contains("_bad") {
            // A nonempty finding list is exactly what makes the CLI
            // exit nonzero on this fixture.
            assert!(fired.contains(name.as_str()), "`{name}` should produce findings");
        } else {
            assert!(!fired.contains(name.as_str()), "`{name}` should lint clean");
        }
    }
}

#[test]
fn findings_render_greppably() {
    let findings = reported();
    let pair = findings
        .iter()
        .find(|f| f.lint == "ATOMIC-PAIR")
        .expect("the pair fixture should fire");
    let line = pair.to_string();
    // `file:line: LINT-ID message` — the format the CI job greps.
    assert!(
        line.starts_with("atomics_pair_bad.rs:17: ATOMIC-PAIR "),
        "unexpected rendering: {line}"
    );
    assert!(line.contains("read with Acquire at atomics_pair_bad.rs:22"), "{line}");
}
