//! The workspace must pass its own lint gate — the same invariants the
//! CI `lint-smoke` job enforces with `cargo run -p hsr-lint -- check`.
//! Any new unjustified atomic, unordered lock sweep, request-path
//! panic, or stray `unsafe` fails this test before it reaches CI.

use std::path::Path;

#[test]
fn workspace_passes_its_own_lint_gate() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let findings = hsr_lint::run_check(&root, &hsr_lint::Config::workspace()).unwrap();
    assert!(
        findings.is_empty(),
        "the workspace must lint clean; findings:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
