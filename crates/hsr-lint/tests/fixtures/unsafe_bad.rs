//! Seeded unsafe-audit violation: an `unsafe` block in a file that is
//! not on the allowlist and has no `// SAFETY:` comment — both audit
//! rules fire on the same line.

pub fn peek_first(v: &[u8]) -> u8 {
    unsafe { *v.as_ptr() } //~ UNSAFE-FILE UNSAFE-SAFETY
}
