//! Clean twin of `unsafe_bad.rs`: this file is on the fixture config's
//! allowlist and the block discharges its obligation with an adjacent
//! `// SAFETY:` comment.

pub fn first_or_zero(v: &[u8]) -> u8 {
    if v.is_empty() {
        return 0;
    }
    // SAFETY: the emptiness check above guarantees at least one
    // element, so the pointer read is in bounds.
    unsafe { *v.as_ptr() }
}
