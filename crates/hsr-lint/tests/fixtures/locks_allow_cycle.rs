//! Suppression twin: both acquisition orders exist, but the reversed
//! edge carries a `// lint: allow(lock-cycle):` annotation with its
//! reason, so the cycle pass must not report it.

use std::sync::Mutex;

pub struct Swap {
    left: Mutex<u32>,
    right: Mutex<u32>,
}

impl Swap {
    pub fn left_then_right(&self) -> u32 {
        let l = self.left.lock().unwrap();
        let r = self.right.lock().unwrap();
        *l + *r
    }

    pub fn right_then_left(&self) -> u32 {
        let r = self.right.lock().unwrap();
        // lint: allow(lock-cycle): both orders run only under the
        // fixture's global rebalance mutex, so they never interleave.
        let l = self.left.lock().unwrap();
        *l + *r
    }
}
