//! Clean twin of `atomics_bad.rs`: every site spells literal
//! `Ordering::*` arguments and carries an adjacent `// ordering:`
//! justification, so the engine must stay silent here.

use std::sync::atomic::{AtomicUsize, Ordering};

pub struct Claim {
    depth: AtomicUsize,
}

impl Claim {
    pub fn current_depth(&self) -> usize {
        // ordering: Acquire pairs with the Release in `release`.
        self.depth.load(Ordering::Acquire)
    }

    pub fn release(&self) {
        // ordering: Release publishes the work done at this depth.
        self.depth.fetch_sub(1, Ordering::Release);
    }

    pub fn try_claim(&self) -> bool {
        // ordering: AcqRel on success pairs with `release`; Acquire on
        // failure still observes the released state.
        self.depth
            .compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }
}
