//! Clean twin of `panics_bad.rs` (also designated request-path): typed
//! error propagation, an annotated `unreachable!`, the `.expect(...)?`
//! Result-propagation shape, and an `unwrap` confined to `#[cfg(test)]`.

use std::collections::HashMap;
use std::num::ParseIntError;

pub fn resolve(table: &HashMap<String, u32>, name: &str) -> Option<u32> {
    table.get(name).copied()
}

pub fn parse(raw: &str) -> Result<u32, ParseIntError> {
    raw.parse()
}

pub fn dispatch(kind: u8) -> &'static str {
    match kind {
        0 => "eval",
        // lint: allow(panic): the wire layer filters every other kind
        // first; a new call site that forgets is a logic bug worth
        // failing loudly in tests.
        _ => unreachable!("filtered by the wire layer"),
    }
}

pub struct Reader<'a> {
    bytes: &'a [u8],
}

impl Reader<'_> {
    fn expect(&mut self, b: u8) -> Result<(), String> {
        match self.bytes.split_first() {
            Some((first, rest)) if *first == b => {
                self.bytes = rest;
                Ok(())
            }
            _ => Err(format!("expected {b}")),
        }
    }

    pub fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.expect(b'}')?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let v: Result<u32, ()> = Ok(3);
        assert_eq!(v.unwrap(), 3);
    }
}
