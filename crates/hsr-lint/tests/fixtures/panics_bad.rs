//! Seeded panic-path violations (this file is designated a request-path
//! module by the fixture config): every panicking construct the lint
//! denies, one per line.

use std::collections::HashMap;

pub fn resolve(table: &HashMap<String, u32>, name: &str) -> u32 {
    *table.get(name).unwrap() //~ PANIC-PATH
}

pub fn parse(raw: &str) -> u32 {
    raw.parse().expect("caller validated") //~ PANIC-PATH
}

pub fn dispatch(kind: u8) -> &'static str {
    match kind {
        0 => "eval",
        1 => "metrics",
        _ => unreachable!("filtered by the wire layer"), //~ PANIC-PATH
    }
}

pub fn refuse() {
    panic!("refusing"); //~ PANIC-PATH
}

pub fn not_yet() {
    todo!() //~ PANIC-PATH
}
