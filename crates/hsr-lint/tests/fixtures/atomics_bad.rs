//! Seeded atomics violations: an unjustified ordering, an ordering
//! smuggled through a variable, and a `compare_exchange` that spells
//! only one of its two orderings. Each violating line carries a marker
//! comment naming the lint; `tests/engine.rs` asserts the engine
//! reports exactly the marked set.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

pub struct Gauges {
    depth: AtomicUsize,
    high_water: AtomicU64,
}

impl Gauges {
    pub fn current_depth(&self) -> usize {
        self.depth.load(Ordering::Acquire) //~ ATOMIC-JUSTIFY
    }

    pub fn bump(&self, order: Ordering) {
        self.high_water.fetch_add(1, order); //~ ATOMIC-EXPLICIT
    }

    pub fn try_claim(&self) -> bool {
        self.depth
            .compare_exchange(0, 1, Ordering::AcqRel, relaxed()) //~ ATOMIC-EXPLICIT ATOMIC-JUSTIFY
            .is_ok()
    }
}

fn relaxed() -> Ordering {
    Ordering::Relaxed
}
