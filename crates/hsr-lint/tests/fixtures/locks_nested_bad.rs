//! Seeded same-class nesting violation: two `cells` locks held at once
//! with nothing stating which index is acquired first.

use std::sync::Mutex;

pub struct Buckets {
    cells: Vec<Mutex<u64>>,
}

impl Buckets {
    pub fn transfer(&self, a: usize, b: usize, amount: u64) {
        let mut from = self.cells[a].lock().unwrap();
        let mut to = self.cells[b].lock().unwrap(); //~ LOCK-ORDER
        *from -= amount;
        *to += amount;
    }
}
