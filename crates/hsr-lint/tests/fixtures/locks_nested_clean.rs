//! Clean twin of `locks_nested_bad.rs`: the same-class nesting carries
//! a `// lock-order:` comment stating the canonical order.

use std::sync::Mutex;

pub struct Buckets {
    cells: Vec<Mutex<u64>>,
}

impl Buckets {
    pub fn transfer(&self, a: usize, b: usize, amount: u64) {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let mut from = self.cells[lo].lock().unwrap();
        // lock-order: cells by ascending index; `lo < hi` above.
        let mut to = self.cells[hi].lock().unwrap();
        *from -= amount;
        *to += amount;
    }
}
