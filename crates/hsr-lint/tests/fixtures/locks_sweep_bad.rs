//! Seeded sweep violations: collecting every shard guard at once —
//! closure form and the point-free `lock_unpoisoned` form — without a
//! `// lock-order:` comment stating the canonical acquisition order.

use std::sync::{Mutex, MutexGuard};

fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

pub struct Sharded {
    shards: Vec<Mutex<Vec<u64>>>,
}

impl Sharded {
    pub fn total_closure(&self) -> usize {
        let guards: Vec<MutexGuard<'_, Vec<u64>>> =
            self.shards.iter().map(|m| m.lock().unwrap()).collect(); //~ LOCK-ORDER
        guards.iter().map(|g| g.len()).sum()
    }

    pub fn total_point_free(&self) -> usize {
        let guards: Vec<MutexGuard<'_, Vec<u64>>> =
            self.shards.iter().map(lock_unpoisoned).collect(); //~ LOCK-ORDER
        guards.iter().map(|g| g.len()).sum()
    }
}
