//! Clean twin of `locks_cycle_bad.rs`: every function acquires `head`
//! before `tail`, so the global lock-order graph stays acyclic.

use std::sync::Mutex;

pub struct Pipeline {
    head: Mutex<Vec<u64>>,
    tail: Mutex<Vec<u64>>,
}

impl Pipeline {
    pub fn shift(&self) {
        let mut head = self.head.lock().unwrap();
        let mut tail = self.tail.lock().unwrap();
        if let Some(v) = head.pop() {
            tail.push(v);
        }
    }

    pub fn drain(&self) -> Vec<u64> {
        let mut head = self.head.lock().unwrap();
        let mut tail = self.tail.lock().unwrap();
        let mut out = std::mem::take(&mut *head);
        out.append(&mut tail);
        out
    }
}
