//! Seeded lock-order cycle: `post` acquires `accounts` then `journal`,
//! `replay` acquires them in the opposite order — two threads can
//! deadlock holding one each. The cycle is reported at the edge that
//! closes it (the `accounts` acquisition in `replay`).

use std::collections::HashMap;
use std::sync::Mutex;

pub struct Ledger {
    accounts: Mutex<HashMap<u32, i64>>,
    journal: Mutex<Vec<(u32, i64)>>,
}

impl Ledger {
    pub fn post(&self, id: u32, delta: i64) {
        let mut accounts = self.accounts.lock().unwrap();
        let mut journal = self.journal.lock().unwrap();
        journal.push((id, delta));
        *accounts.entry(id).or_default() += delta;
    }

    pub fn replay(&self) {
        let journal = self.journal.lock().unwrap();
        let mut accounts = self.accounts.lock().unwrap(); //~ LOCK-CYCLE
        for (id, delta) in journal.iter() {
            *accounts.entry(*id).or_default() += *delta;
        }
    }
}
