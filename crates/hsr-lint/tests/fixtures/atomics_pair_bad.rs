//! Seeded cross-site pairing violation: `accepted` is bumped with
//! Relaxed but snapshotted with Acquire — the Acquire promises a
//! happens-before edge no write ever publishes (the torn-snapshot bug
//! class). Both sites are `// ordering:`-annotated so the only finding
//! is the pairing itself.

use std::sync::atomic::{AtomicU64, Ordering};

pub struct Tally {
    accepted: AtomicU64,
}

impl Tally {
    pub fn bump(&self) {
        // ordering: Relaxed — standalone tally (seeded violation: the
        // snapshot below reads it with Acquire).
        self.accepted.fetch_add(1, Ordering::Relaxed); //~ ATOMIC-PAIR
    }

    pub fn snapshot(&self) -> u64 {
        // ordering: Acquire — expects a Release write that never comes.
        self.accepted.load(Ordering::Acquire)
    }
}
