//! Clean twin of `locks_sweep_bad.rs`: both sweep forms state their
//! canonical order, and the transient per-element form needs nothing.

use std::sync::{Mutex, MutexGuard};

fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

pub struct Sharded {
    shards: Vec<Mutex<Vec<u64>>>,
}

impl Sharded {
    pub fn total_closure(&self) -> usize {
        // lock-order: every shard, ascending index.
        let guards: Vec<MutexGuard<'_, Vec<u64>>> =
            self.shards.iter().map(|m| m.lock().unwrap()).collect();
        guards.iter().map(|g| g.len()).sum()
    }

    pub fn total_point_free(&self) -> usize {
        // lock-order: every shard, ascending index.
        let guards: Vec<MutexGuard<'_, Vec<u64>>> =
            self.shards.iter().map(lock_unpoisoned).collect();
        guards.iter().map(|g| g.len()).sum()
    }

    pub fn per_shard_lengths(&self) -> Vec<usize> {
        // Transient per-element guards: each is dropped before the next
        // shard is locked, so no sweep and no annotation needed.
        self.shards.iter().map(|m| m.lock().unwrap().len()).collect()
    }
}
