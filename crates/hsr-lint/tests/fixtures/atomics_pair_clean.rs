//! Clean twin of `atomics_pair_bad.rs`: the Relaxed `lookups` bump is
//! published by the `hits` Release that follows it, stated with a
//! `// lint: allow(atomic-pair):` annotation at the write site — the
//! same piggyback-Release shape the serving cache uses.

use std::sync::atomic::{AtomicU64, Ordering};

pub struct Tally {
    lookups: AtomicU64,
    hits: AtomicU64,
}

impl Tally {
    pub fn record_hit(&self) {
        // ordering: Relaxed — the `hits` Release below publishes it.
        // lint: allow(atomic-pair): the snapshot's Acquire pairs with
        // the `hits` Release that follows every lookup.
        self.lookups.fetch_add(1, Ordering::Relaxed);
        // ordering: Release publishes the lookup increment above.
        self.hits.fetch_add(1, Ordering::Release);
    }

    pub fn snapshot(&self) -> (u64, u64) {
        // ordering: Acquire pairs with the Release on `hits`; `lookups`
        // is then no older than the outcomes it covers.
        (self.hits.load(Ordering::Acquire), self.lookups.load(Ordering::Acquire))
    }
}
