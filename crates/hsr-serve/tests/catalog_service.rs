//! ISSUE 7 acceptance: the persistent terrain catalog, end to end over
//! the wire.
//!
//! * Upload → register → query round trip, on both the grid and the
//!   tiled format.
//! * Identical re-upload stores **zero new blob bytes** (proved by the
//!   wire [`Request::Stats`] snapshot, not test-side state).
//! * A server restarted on the same catalog directory — including after
//!   a simulated torn manifest tail — serves every registered terrain
//!   bit-identically.
//! * Overwrite and delete invalidate exactly the affected
//!   prepared-scene entries: the stale-answer regression here fails
//!   against a server without `PreparedCache::invalidate`.

use hsr_catalog::TerrainFormat;
use hsr_core::view::{Report, View};
use hsr_serve::{Client, ClientError, ErrorKind, Server, ServerBuilder};
use hsr_terrain::{gen, io};
use std::path::PathBuf;

/// One visible piece, as raw bits: (edge, x0, x1, z0, z1).
type PieceBits = (u32, u64, u64, u64, u64);

/// Every evaluation-determined bit of a report.
fn bits(r: &Report) -> (Vec<PieceBits>, usize, usize) {
    (
        r.vis
            .pieces
            .iter()
            .map(|p| (p.edge, p.x0.to_bits(), p.x1.to_bits(), p.z0.to_bits(), p.z1.to_bits()))
            .collect(),
        r.n,
        r.k,
    )
}

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hsr-serve-catsvc-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn serve_catalog(dir: &PathBuf) -> Server {
    ServerBuilder::new()
        .catalog_dir(dir)
        .expect("catalog dir")
        .workers(2)
        .bind("127.0.0.1:0")
        .expect("bind")
}

#[test]
fn upload_register_query_roundtrip_on_both_formats() {
    let dir = scratch_dir("roundtrip");
    let server = serve_catalog(&dir);
    let mut client = Client::connect(server.local_addr()).unwrap();

    let grid = gen::diamond_square(5, 0.6, 9.0, 77); // 33×33
    let payload = io::grid_to_bytes(&grid);
    let view = View::orthographic(0.3);
    let expected = {
        let tin = grid.to_tin().unwrap();
        hsr_core::view::evaluate(&tin, &view).unwrap()
    };

    // Grid upload, chunked small enough to need several chunks.
    let ack = client
        .upload_terrain("hills", TerrainFormat::GridBin, "tests", &payload)
        .expect("grid upload");
    assert_eq!(ack.bytes, payload.len() as u64);
    assert!(!ack.deduped, "first upload of this content");
    let got = client.eval("hills", &view).expect("eval uploaded grid");
    assert_eq!(bits(&got), bits(&expected), "uploaded grid diverged from local eval");

    // The same bytes as a tiled pyramid: the server materializes the
    // pyramid on first query and serves out of core.
    let ack2 = client
        .upload_terrain(
            "hills-tiled",
            TerrainFormat::TiledGrid { tile_size: 8, levels: 1 },
            "tests",
            &payload,
        )
        .expect("tiled upload");
    assert!(ack2.deduped, "same payload bytes dedup across formats");
    assert_eq!(ack2.content, ack.content);
    // Stitched tiled reports use per-tile edge ids, so they are not
    // piece-identical to the monolithic eval — but the aggregate counts
    // agree at full resolution, and repeated queries are deterministic.
    let got = client.eval("hills-tiled", &view).expect("eval tiled");
    assert!(got.n > 0 && got.k > 0, "tiled twin evaluates: n={}, k={}", got.n, got.k);
    let again = client.eval("hills-tiled", &view).expect("eval tiled again");
    assert_eq!(bits(&again), bits(&got), "tiled backend must answer deterministically");

    // Register: an alias by content hash, no payload moved.
    let info = client
        .register_terrain("alias", &ack.content, TerrainFormat::GridBin, "ops")
        .expect("register");
    assert_eq!((info.name.as_str(), info.uploader.as_str()), ("alias", "ops"));
    let got = client.eval("alias", &view).expect("eval alias");
    assert_eq!(bits(&got), bits(&expected));

    // Info and list agree.
    let listed = client.list_terrains().expect("list");
    let names: Vec<&str> = listed.iter().map(|i| i.name.as_str()).collect();
    assert_eq!(names, vec!["alias", "hills", "hills-tiled"], "sorted by name");
    assert_eq!(client.terrain_info("alias").expect("info").content, ack.content);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn identical_reupload_writes_zero_new_blob_bytes_per_wire_stats() {
    let dir = scratch_dir("dedup");
    let server = serve_catalog(&dir);
    let mut client = Client::connect(server.local_addr()).unwrap();

    let payload = io::grid_to_bytes(&gen::fbm(24, 24, 3, 7.0, 5));
    client
        .upload_terrain("a", TerrainFormat::GridBin, "tests", &payload)
        .expect("upload");
    let before = client
        .stats()
        .expect("stats")
        .catalog
        .expect("catalog configured");
    assert_eq!(before.blobs_written, 1);
    assert_eq!(before.blob_bytes_written, payload.len() as u64);

    // Same bytes again, twice, under two names.
    let ack = client
        .upload_terrain("a", TerrainFormat::GridBin, "tests", &payload)
        .expect("overwrite upload");
    assert!(ack.deduped);
    client
        .upload_terrain("b", TerrainFormat::GridBin, "tests", &payload)
        .expect("re-upload");

    let after = client
        .stats()
        .expect("stats")
        .catalog
        .expect("catalog configured");
    assert_eq!(after.blobs_written, 1, "no second blob: {after:?}");
    assert_eq!(after.blob_bytes_written, before.blob_bytes_written, "zero new blob bytes");
    assert_eq!(after.dedup_hits, 2);
    assert_eq!(after.entries, 2);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn restart_serves_every_registered_terrain_bit_identically() {
    let dir = scratch_dir("restart");
    let view = View::orthographic(0.4);

    let grid = gen::diamond_square(5, 0.55, 8.0, 31);
    let payload = io::grid_to_bytes(&grid);

    let (first_grid, first_tiled) = {
        let server = serve_catalog(&dir);
        let mut client = Client::connect(server.local_addr()).unwrap();
        client
            .upload_terrain("g", TerrainFormat::GridBin, "tests", &payload)
            .expect("upload");
        client
            .upload_terrain(
                "t",
                TerrainFormat::TiledGrid { tile_size: 8, levels: 1 },
                "tests",
                &payload,
            )
            .expect("tiled upload");
        let g = client.eval("g", &view).expect("eval g");
        let t = client.eval("t", &view).expect("eval t");
        server.shutdown();
        (g, t)
    };

    // A new process on the same directory: the manifest replays.
    {
        let server = serve_catalog(&dir);
        let mut client = Client::connect(server.local_addr()).unwrap();
        assert_eq!(client.list_terrains().expect("list").len(), 2);
        let g = client.eval("g", &view).expect("eval g after restart");
        let t = client.eval("t", &view).expect("eval t after restart");
        assert_eq!(bits(&g), bits(&first_grid), "grid diverged across restart");
        assert_eq!(bits(&t), bits(&first_tiled), "tiled diverged across restart");
        server.shutdown();
    }

    // Torn manifest tail: garbage appended to the log (a crash mid-
    // append) is truncated on open, every committed record survives.
    {
        use std::io::Write as _;
        let mut log = std::fs::OpenOptions::new()
            .append(true)
            .open(dir.join("manifest.log"))
            .expect("manifest exists");
        log.write_all(&[0x7f, 0x00, 0xee]).unwrap();
    }
    let server = serve_catalog(&dir);
    let mut client = Client::connect(server.local_addr()).unwrap();
    let stats = client.stats().expect("stats").catalog.expect("catalog");
    assert_eq!(stats.truncated_tail_bytes, 3, "torn tail measured: {stats:?}");
    let g = client.eval("g", &view).expect("eval g after torn tail");
    assert_eq!(bits(&g), bits(&first_grid), "grid diverged after torn-tail recovery");
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn overwrite_and_delete_invalidate_exactly_the_affected_entries() {
    let dir = scratch_dir("invalidate");
    let server = serve_catalog(&dir);
    let mut client = Client::connect(server.local_addr()).unwrap();
    let view = View::orthographic(0.2);

    let flat = io::grid_to_bytes(&gen::fbm(20, 20, 2, 0.01, 1)); // nearly flat
    let rough = io::grid_to_bytes(&gen::diamond_square(5, 0.7, 15.0, 9)); // 33×33
    client
        .upload_terrain("x", TerrainFormat::GridBin, "tests", &flat)
        .expect("upload x");
    client
        .upload_terrain("y", TerrainFormat::GridBin, "tests", &flat)
        .expect("upload y");

    // Both prepared and cached.
    let x_before = client.eval("x", &view).expect("eval x");
    client.eval("y", &view).expect("eval y");
    let prepared = server.prepared_stats();
    assert_eq!((prepared.prepares, prepared.resident), (2, 2), "{prepared:?}");

    // Overwrite `x` with different content. The stale-answer
    // regression: without exact invalidation the prepared cache keeps
    // serving the old flat terrain under the new registration.
    client
        .upload_terrain("x", TerrainFormat::GridBin, "tests", &rough)
        .expect("overwrite x");
    let x_after = client.eval("x", &view).expect("eval x after overwrite");
    assert_ne!(
        bits(&x_after).0,
        bits(&x_before).0,
        "overwritten terrain must serve the new content, not the cached scene"
    );

    // Exactly one entry was invalidated: `y` stayed resident and its
    // next query is a cache hit, not a re-prepare.
    let hits_before = server.prepared_stats().hits;
    client.eval("y", &view).expect("eval y again");
    let prepared = server.prepared_stats();
    assert_eq!(prepared.invalidations, 1, "{prepared:?}");
    assert_eq!(prepared.hits, hits_before + 1, "y must still be cached: {prepared:?}");
    assert_eq!(prepared.prepares, 3, "only x re-prepared: {prepared:?}");

    // Delete: the name stops resolving and its entry leaves the cache.
    let removed = client.delete_terrain("x").expect("delete x");
    assert_eq!(removed.name, "x");
    match client.eval("x", &view) {
        Err(ClientError::Server(e)) => assert_eq!(e.kind, ErrorKind::UnknownTerrain),
        other => panic!("deleted terrain must be unknown, got {other:?}"),
    }
    let prepared = server.prepared_stats();
    assert_eq!(prepared.invalidations, 2, "{prepared:?}");
    assert_eq!(prepared.resident, 1, "only y remains: {prepared:?}");

    // Deleting a missing name is UnknownTerrain on the wire.
    match client.delete_terrain("never") {
        Err(ClientError::Server(e)) => assert_eq!(e.kind, ErrorKind::UnknownTerrain),
        other => panic!("expected UnknownTerrain, got {other:?}"),
    }

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn upload_discipline_violations_are_rejected_and_the_connection_survives() {
    let dir = scratch_dir("discipline");
    let server = serve_catalog(&dir);
    let mut client = Client::connect(server.local_addr()).unwrap();

    // A chunk with no upload in progress.
    match client.send(&hsr_serve::Request::UploadChunk(hsr_serve::protocol::UploadChunk {
        id: 900,
        data: "AAAA".into(),
        last: false,
    })) {
        Ok(()) => {}
        Err(e) => panic!("send failed: {e}"),
    }
    let resp = client.recv().expect("answered");
    assert_eq!(resp.id, 900);
    assert_eq!(resp.error.expect("rejected").kind, ErrorKind::BadRequest);

    // A final chunk short of the declared size aborts the upload…
    let payload = io::grid_to_bytes(&gen::fbm(16, 16, 2, 5.0, 3));
    client
        .send(&hsr_serve::Request::UploadTerrain(hsr_serve::protocol::UploadBegin {
            id: 901,
            name: "short".into(),
            format: TerrainFormat::GridBin,
            uploader: "tests".into(),
            bytes: payload.len() as u64,
        }))
        .unwrap();
    assert!(client.recv().expect("begin ack").error.is_none());
    client
        .send(&hsr_serve::Request::UploadChunk(hsr_serve::protocol::UploadChunk {
            id: 902,
            data: String::new(),
            last: true,
        }))
        .unwrap();
    let resp = client.recv().expect("answered");
    assert_eq!(resp.error.expect("short upload rejected").kind, ErrorKind::BadRequest);

    // …and the connection is reusable: a full upload succeeds after it.
    let ack = client
        .upload_terrain("ok", TerrainFormat::GridBin, "tests", &payload)
        .expect("upload after abort");
    assert_eq!(ack.name, "ok");
    assert_eq!(client.list_terrains().expect("list").len(), 1, "aborted upload left nothing");

    // Garbage payloads never register.
    match client.upload_terrain("junk", TerrainFormat::GridBin, "tests", b"not a grid") {
        Err(ClientError::Server(e)) => assert_eq!(e.kind, ErrorKind::Catalog),
        other => panic!("expected Catalog error, got {other:?}"),
    }

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn admin_without_catalog_errors_but_stats_always_works() {
    let server = ServerBuilder::new()
        .terrain("t", hsr_serve::TerrainSource::Grid(gen::fbm(8, 8, 2, 5.0, 1)))
        .bind("127.0.0.1:0")
        .unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    let snapshot = client.stats().expect("stats without catalog");
    assert!(snapshot.catalog.is_none());
    assert_eq!(snapshot.serve.completed, 0);

    match client.list_terrains() {
        Err(ClientError::Server(e)) => {
            assert_eq!(e.kind, ErrorKind::Catalog);
            assert!(e.message.contains("no catalog"), "{}", e.message);
        }
        other => panic!("expected Catalog error, got {other:?}"),
    }
    // Eval still works on the same connection afterwards.
    client
        .eval("t", &View::orthographic(0.0))
        .expect("eval after admin error");

    server.shutdown();
}
