//! Concurrency behavior of the service (ISSUE 5 satellite): documented
//! backpressure, the capacity-1 prepared-scene LRU under terrain
//! alternation, coalesced batches matching solo evaluations counter for
//! counter, and the tile-cache stats invariant on the tiled backend.

use hsr_core::pipeline::Algorithm;
use hsr_core::view::{evaluate, Report, View};
use hsr_geometry::Point3;
use hsr_serve::{Client, ErrorKind, ServerBuilder, TerrainSource};
use hsr_terrain::gen;
use hsr_tile::{TileStore, TiledScene, TiledSceneConfig, TilingConfig};
use std::time::Duration;

fn fingerprint(r: &Report) -> (Vec<(u32, u64, u64)>, usize, usize) {
    (
        r.vis
            .pieces
            .iter()
            .map(|p| (p.edge, p.x0.to_bits(), p.x1.to_bits()))
            .collect(),
        r.n,
        r.k,
    )
}

#[test]
fn bounded_queue_rejects_with_overloaded_when_full() {
    let grid = gen::ridge_field(22, 22, 3, 9.0, 11);
    let tin = grid.to_tin().unwrap();
    let server = ServerBuilder::new()
        .terrain("t", TerrainSource::Grid(grid))
        .workers(1)
        .queue_depth(1)
        .max_batch(1)
        .batch_window(Duration::ZERO)
        .bind("127.0.0.1:0")
        .unwrap();
    let addr = server.local_addr();

    // Occupy the single worker with an O(n²) naive evaluation…
    let slow_view = View::orthographic(0.0).algorithm(Algorithm::Naive);
    let slow = {
        let view = slow_view.clone();
        std::thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            client.eval("t", &view)
        })
    };
    std::thread::sleep(Duration::from_millis(150));

    // …then flood far past the queue depth while it grinds.
    let mut flood = Client::connect(addr).unwrap();
    let views: Vec<View> = (0..40)
        .map(|i| View::orthographic(0.01 * i as f64))
        .collect();
    let results = flood.eval_pipelined("t", &views).unwrap();

    // Every request got exactly one answer; the overflow was rejected
    // immediately with the documented error, not buffered or dropped.
    assert_eq!(results.len(), 40);
    let rejected = results
        .iter()
        .filter(|r| matches!(r, Err(e) if e.kind == ErrorKind::Overloaded))
        .count();
    let ok = results.iter().filter(|r| r.is_ok()).count();
    assert_eq!(ok + rejected, 40, "only Overloaded errors are acceptable: {results:?}");
    assert!(rejected > 0, "the flood must overflow a depth-1 queue");
    assert!(ok > 0, "the queued request must still complete");

    let slow_report = slow.join().unwrap().unwrap();
    assert_eq!(fingerprint(&slow_report), fingerprint(&evaluate(&tin, &slow_view).unwrap()));

    let stats = server.stats();
    assert_eq!(stats.rejected, rejected as u64);
    assert_eq!(stats.completed, ok as u64 + 1); // + the slow request
    drop(flood);
    server.shutdown();
}

#[test]
fn capacity_one_scene_lru_serves_alternating_terrains() {
    let grid_a = gen::fbm(14, 14, 3, 7.0, 3);
    let grid_b = gen::gaussian_hills(14, 14, 3, 8);
    let tin_a = grid_a.to_tin().unwrap();
    let tin_b = grid_b.to_tin().unwrap();
    let server = ServerBuilder::new()
        .terrain("a", TerrainSource::Grid(grid_a))
        .terrain("b", TerrainSource::Grid(grid_b))
        .scene_capacity(1)
        .workers(2)
        .bind("127.0.0.1:0")
        .unwrap();
    let addr = server.local_addr();

    // N clients × 2 terrains, racing against the capacity-1 LRU.
    let handles: Vec<_> = (0..4)
        .map(|c| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let mut out = Vec::new();
                for round in 0..3 {
                    let az = 0.1 * (c * 3 + round) as f64;
                    let terrain = if (c + round) % 2 == 0 { "a" } else { "b" };
                    out.push((terrain, az, client.eval(terrain, &View::orthographic(az)).unwrap()));
                }
                out
            })
        })
        .collect();
    for handle in handles {
        for (terrain, az, report) in handle.join().unwrap() {
            let tin = if terrain == "a" { &tin_a } else { &tin_b };
            let solo = evaluate(tin, &View::orthographic(az)).unwrap();
            assert_eq!(fingerprint(&report), fingerprint(&solo), "{terrain} az {az}");
        }
    }

    let prepared = server.prepared_stats();
    assert_eq!(prepared.peak_resident, 1, "the LRU must never retain more than one scene");
    assert!(prepared.evictions > 0, "alternating terrains must evict under capacity 1");
    assert_eq!(prepared.hits + prepared.prepares + prepared.errors, prepared.lookups);
    server.shutdown();
}

#[test]
fn coalesced_batches_match_solo_evaluation_counter_for_counter() {
    let grid = gen::ridge_field(16, 14, 3, 8.0, 23);
    let tin = grid.to_tin().unwrap();
    let (lo, hi) = tin.ground_bounds();
    let observer = Point3::new(hi.x + 40.0, 0.5 * (lo.y + hi.y), 12.0);
    // A single worker plus a generous window: the pipelined batch below
    // reliably coalesces into few dispatch groups.
    let server = ServerBuilder::new()
        .terrain("t", TerrainSource::Grid(grid))
        .workers(1)
        .max_batch(8)
        .batch_window(Duration::from_millis(250))
        .bind("127.0.0.1:0")
        .unwrap();

    let views: Vec<View> = (0..6)
        .map(|i| View::orthographic(0.15 * i as f64))
        .chain(std::iter::once(View::viewshed(
            observer,
            vec![Point3::new(0.5 * (lo.x + hi.x), 0.5 * (lo.y + hi.y), 60.0)],
        )))
        .collect();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let results = client.eval_pipelined("t", &views).unwrap();

    for (view, result) in views.iter().zip(&results) {
        let got = result.as_ref().unwrap();
        let solo = evaluate(&tin, view).unwrap();
        assert_eq!(fingerprint(got), fingerprint(&solo));
        assert_eq!(got.verdicts, solo.verdicts);
        // The per-request cost counters are exact — bit-identical to a
        // solo evaluation — no matter how the batch was coalesced
        // (scoped collectors, PR 3).
        assert_eq!(got.cost.work, solo.cost.work);
        assert_eq!(got.cost.depth, solo.cost.depth);
    }

    let stats = server.stats();
    assert!(
        stats.max_batch_observed >= 2,
        "pipelined same-terrain requests inside a 250ms window must coalesce, got {stats:?}"
    );
    assert_eq!(stats.batched_requests, stats.admitted);
    server.shutdown();
}

#[test]
fn tiled_backend_serves_and_cache_counters_partition_lookups() {
    let grid = gen::diamond_square(5, 0.6, 9.0, 29); // 33×33
    let observer = Point3::new(180.0, 16.0, 15.0);
    let targets: Vec<Point3> = (1..6)
        .map(|i| Point3::new(3.1 * i as f64 + 0.37, 5.0 + 2.0 * i as f64 + 0.53, 4.0))
        .collect();
    let dir = std::env::temp_dir().join(format!("hsr-serve-tiled-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let tiling = TilingConfig { tile_size: 8, levels: 2 };
    let cfg = TiledSceneConfig { cache_capacity: 3, fixed_level: Some(0), ..Default::default() };
    let scene = TiledScene::build(&grid, tiling, TileStore::create(&dir).unwrap(), cfg).unwrap();
    let solo = scene
        .eval(&View::viewshed(observer, targets.clone()))
        .unwrap();
    drop(scene);

    let server = ServerBuilder::new()
        .terrain("big", TerrainSource::TiledStore { dir: dir.clone(), config: cfg })
        .workers(2)
        .bind("127.0.0.1:0")
        .unwrap();
    let addr = server.local_addr();

    let handles: Vec<_> = (0..3)
        .map(|_| {
            let targets = targets.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                client
                    .eval("big", &View::viewshed(observer, targets))
                    .unwrap()
            })
        })
        .collect();
    for handle in handles {
        let report = handle.join().unwrap();
        assert_eq!(report.verdicts, solo.report.verdicts);
        assert_eq!(fingerprint(&report), fingerprint(&solo.report));
    }

    // The served scene's resident-tile cache respected its cap and its
    // counters partition the lookups (satellite invariant).
    let cache = server
        .tile_cache_stats("big")
        .expect("tiled terrain resident");
    assert!(cache.peak_resident <= 3, "peak {} over cap", cache.peak_resident);
    assert_eq!(cache.hits + cache.loads + cache.errors, cache.lookups);
    assert!(cache.lookups > 0);

    // Unknown terrains answer cleanly too.
    let mut client = Client::connect(addr).unwrap();
    let err = client.eval("nope", &View::orthographic(0.0)).unwrap_err();
    match err {
        hsr_serve::ClientError::Server(e) => assert_eq!(e.kind, ErrorKind::UnknownTerrain),
        other => panic!("expected server error, got {other}"),
    }

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn malformed_lines_get_bad_request_answers() {
    let server = ServerBuilder::new()
        .terrain("t", TerrainSource::Grid(gen::fbm(8, 8, 2, 5.0, 1)))
        .bind("127.0.0.1:0")
        .unwrap();
    use std::io::{BufRead as _, BufReader, Write as _};
    let mut stream = std::net::TcpStream::connect(server.local_addr()).unwrap();
    stream.write_all(b"this is not json\n").unwrap();
    let mut line = String::new();
    BufReader::new(stream.try_clone().unwrap())
        .read_line(&mut line)
        .unwrap();
    let response: hsr_serve::Response = serde_json::from_str(line.trim()).unwrap();
    assert_eq!(response.id, 0);
    assert_eq!(response.into_result().unwrap_err().kind, ErrorKind::BadRequest);
    assert_eq!(server.stats().malformed, 1);
    server.shutdown();
}
