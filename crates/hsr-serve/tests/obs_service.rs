//! Observability over the serving stack (ISSUE 9): the wire `Metrics`
//! verb, per-request span trees whose stages account for the request's
//! wall-clock, histogram totals matching the serve counters, slow-ring
//! capture, and the torn-snapshot regression for `ServeStats`.

use hsr_core::view::View;
use hsr_serve::{Client, ErrorKind, Recorder, RecorderConfig, ServerBuilder, TerrainSource};
use hsr_terrain::gen;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

#[test]
fn metrics_over_the_wire_capture_spans_and_histograms() {
    let server = ServerBuilder::new()
        .terrain("t", TerrainSource::Grid(gen::fbm(28, 28, 4, 9.0, 7)))
        .observe(RecorderConfig::default())
        .workers(2)
        .bind("127.0.0.1:0")
        .unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    for i in 0..12 {
        client
            .eval("t", &View::orthographic(0.02 * i as f64))
            .unwrap();
    }
    // One failing request: unknown terrains travel the full traced path
    // and must land in the same histograms as successes.
    let err = client.eval("nope", &View::orthographic(0.0)).unwrap_err();
    let hsr_serve::ClientError::Server(err) = err else {
        panic!("expected a server-side error, got {err:?}");
    };
    assert_eq!(err.kind, ErrorKind::UnknownTerrain);

    // A request's histogram samples and span tree land *after* its
    // response is enqueued (the respond stage must be timed), so a
    // scrape racing the final response can lag by one in-flight
    // finalize. Settle briefly before asserting exact totals.
    let deadline = std::time::Instant::now() + Duration::from_secs(2);
    let snap = loop {
        let snap = client.metrics().unwrap();
        let settled =
            snap.hist("request").map(|h| h.total) == Some(13) && snap.traces_recorded == 13;
        if settled || std::time::Instant::now() > deadline {
            break snap;
        }
        std::thread::sleep(Duration::from_millis(5));
    };
    assert!(snap.enabled);
    let stats = server.stats();
    assert_eq!(stats.completed, 12);
    assert_eq!(stats.failed, 1);

    // Every served (completed or failed) request is exactly one sample
    // in the end-to-end histogram and in each per-stage histogram.
    let request = snap.hist("request").expect("request histogram exists");
    assert_eq!(request.total, stats.completed + stats.failed);
    assert!(request.mean_ns() > 0);
    for stage in ["parse", "queue_wait", "coalesce", "evaluate", "respond"] {
        assert_eq!(snap.hist(stage).map(|h| h.total), Some(13), "stage {stage}");
    }
    let hits = snap.hist("lookup_hit").map(|h| h.total).unwrap_or(0);
    let prepares = snap.hist("lookup_prepare").map(|h| h.total).unwrap_or(0);
    assert_eq!(hits + prepares, 13, "every request took exactly one lookup path");
    assert!(prepares >= 1, "the first request must have prepared the scene");

    // The prepared-scene cache mirrors its outcomes as events.
    assert_eq!(snap.event("scene_hit") + snap.event("scene_prepare"), 12);
    assert_eq!(snap.event("scene_error"), 1);

    // Span trees: stages tile the request interval, and their sum
    // accounts for the end-to-end latency (the ISSUE 9 5% acceptance).
    assert_eq!(snap.traces_recorded, 13);
    assert_eq!(snap.traces_dropped, 0);
    assert!(!snap.recent.is_empty());
    for trace in &snap.recent {
        assert_eq!(trace.root.name, "request");
        let sum = trace.root.stage_sum_ns();
        assert!(sum <= trace.root.dur_ns, "stages are disjoint sub-intervals");
        assert!(
            sum as f64 >= 0.95 * trace.root.dur_ns as f64,
            "stages must account for ≥95% of the request: {sum} of {} ns (id {})",
            trace.root.dur_ns,
            trace.id,
        );
        let evaluate = trace
            .root
            .children
            .iter()
            .find(|c| c.name == "evaluate")
            .expect("every request has an evaluate stage");
        if trace.terrain == "t" {
            // Successful evals graft the pipeline-phase children and
            // the per-report cost counters under the evaluate stage.
            assert_eq!(
                evaluate
                    .children
                    .iter()
                    .map(|c| c.name.as_str())
                    .collect::<Vec<_>>(),
                ["order", "phase1", "phase2"]
            );
            assert!(evaluate.work > 0, "Brent work attribution rides the span");
        } else {
            assert_eq!(trace.terrain, "nope");
            assert!(evaluate.children.is_empty());
        }
    }

    // The pre-existing Stats verb answers unchanged alongside Metrics.
    let stats_over_wire = client.stats().unwrap();
    assert_eq!(stats_over_wire.serve, stats);
    server.shutdown();
}

#[test]
fn zero_slow_threshold_captures_every_trace_in_the_slow_ring() {
    let recorder = Arc::new(Recorder::new(RecorderConfig {
        slow_threshold: Duration::ZERO,
        ..RecorderConfig::default()
    }));
    let server = ServerBuilder::new()
        .terrain("t", TerrainSource::Grid(gen::fbm(20, 20, 3, 8.0, 5)))
        .recorder(Arc::clone(&recorder))
        .bind("127.0.0.1:0")
        .unwrap();
    assert!(server.recorder().is_some());
    let mut client = Client::connect(server.local_addr()).unwrap();
    for i in 0..5 {
        client
            .eval("t", &View::orthographic(0.05 * i as f64))
            .unwrap();
    }
    // Threshold zero classifies every request as slow: captured in the
    // slow ring *and* the recent ring. (Traces land just after the
    // response is enqueued — settle briefly.)
    let deadline = std::time::Instant::now() + Duration::from_secs(2);
    let snap = loop {
        let snap = recorder.snapshot();
        if snap.traces_recorded == 5 || std::time::Instant::now() > deadline {
            break snap;
        }
        std::thread::sleep(Duration::from_millis(5));
    };
    assert_eq!(snap.slow.len(), 5);
    assert_eq!(snap.recent.len(), 5);
    assert_eq!(snap.slow_threshold_ns, 0);
    server.shutdown();
}

#[test]
fn recorderless_server_answers_disabled_metrics() {
    let server = ServerBuilder::new()
        .terrain("t", TerrainSource::Grid(gen::fbm(16, 16, 3, 8.0, 3)))
        .bind("127.0.0.1:0")
        .unwrap();
    assert!(server.recorder().is_none());
    let mut client = Client::connect(server.local_addr()).unwrap();
    client.eval("t", &View::orthographic(0.1)).unwrap();
    let snap = client.metrics().unwrap();
    assert!(!snap.enabled);
    assert!(snap.hists.is_empty());
    assert!(snap.recent.is_empty() && snap.slow.is_empty());
    server.shutdown();
}

/// The ISSUE 9 torn-snapshot regression, serve side: hammer the server
/// from several connections while a reader polls `Server::stats`, and
/// require the documented causal inequalities in *every* snapshot plus
/// exact closure at quiescence.
#[test]
fn serve_stats_invariants_hold_in_every_snapshot_under_load() {
    let server = Arc::new(
        ServerBuilder::new()
            .terrain("t", TerrainSource::Grid(gen::fbm(16, 16, 3, 8.0, 3)))
            .workers(2)
            .queue_depth(1024)
            .bind("127.0.0.1:0")
            .unwrap(),
    );
    let addr = server.local_addr();
    let done = Arc::new(AtomicBool::new(false));

    let reader = {
        let server = Arc::clone(&server);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut prev = server.stats();
            let mut samples = 0u64;
            while !done.load(Ordering::Acquire) {
                let s = server.stats();
                assert!(
                    s.completed + s.failed <= s.batched_requests,
                    "outcomes visible before their dispatch: {s:?}"
                );
                assert!(
                    s.batched_requests <= s.admitted,
                    "dispatch visible before its admission: {s:?}"
                );
                assert!(
                    s.admitted >= prev.admitted
                        && s.completed >= prev.completed
                        && s.failed >= prev.failed
                        && s.batched_requests >= prev.batched_requests,
                    "counters regressed: {prev:?} -> {s:?}"
                );
                prev = s;
                samples += 1;
            }
            assert!(samples > 0);
        })
    };

    let writers: Vec<_> = (0..4)
        .map(|w| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let views: Vec<View> = (0..40)
                    .map(|i| View::orthographic(0.01 * (w * 40 + i) as f64))
                    .collect();
                for result in client.eval_pipelined("t", &views).unwrap() {
                    result.unwrap();
                }
            })
        })
        .collect();
    for w in writers {
        w.join().unwrap();
    }
    done.store(true, Ordering::Release);
    reader.join().unwrap();

    // Quiescent: every admitted request was dispatched and answered.
    let s = server.stats();
    assert_eq!(s.completed, 160);
    assert_eq!(s.failed, 0);
    assert_eq!(s.batched_requests, s.admitted);
    assert_eq!(s.completed + s.failed, s.admitted);
    let server = Arc::try_unwrap(server).unwrap_or_else(|_| panic!("server still shared"));
    server.shutdown();
}
