//! Regression coverage for the ISSUE 6 failure modes: every test here
//! fails against the PR 5 thread-per-connection server.
//!
//! * An oversized request line is rejected the moment it exceeds the cap
//!   — no newline required (PR 5's `read_line` buffered without bound
//!   and never answered).
//! * Request id 0 is reserved; using it is a `BadRequest`, and lines
//!   that parse as JSON but not as a `Request` get their salvageable id
//!   echoed (PR 5 evaluated id-0 requests and echoed 0 on every decode
//!   failure, colliding with the unparseable-line channel).
//! * A client that stops reading is disconnected once its outgoing
//!   queue overflows, counted in `dropped_slow`, while everyone else
//!   keeps getting served (PR 5 wedged a worker in `write_all` forever).
//! * A server echoing duplicate response ids is reported as the
//!   protocol breach it is (PR 5's client silently overwrote the first
//!   report and blamed the *other* request).

use hsr_core::view::{evaluate, Report, View};
use hsr_serve::{Client, ErrorKind, Request, Response, ServerBuilder, TerrainSource};
use hsr_terrain::gen;
use std::io::{BufRead as _, BufReader, Read as _, Write as _};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

fn fingerprint(r: &Report) -> (Vec<(u32, u64, u64)>, usize, usize) {
    (
        r.vis
            .pieces
            .iter()
            .map(|p| (p.edge, p.x0.to_bits(), p.x1.to_bits()))
            .collect(),
        r.n,
        r.k,
    )
}

/// A reader that fails the test after `secs` instead of hanging it —
/// pre-fix code never answers some of these lines.
fn lined_reader(stream: &TcpStream, secs: u64) -> BufReader<TcpStream> {
    let clone = stream.try_clone().expect("clone stream");
    clone
        .set_read_timeout(Some(Duration::from_secs(secs)))
        .expect("set read timeout");
    BufReader::new(clone)
}

fn read_response(reader: &mut BufReader<TcpStream>) -> Response {
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .expect("server must answer before the read timeout");
    serde_json::from_str(line.trim()).expect("response line parses")
}

#[test]
fn oversized_line_is_rejected_before_any_newline_and_the_connection_resyncs() {
    let server = ServerBuilder::new()
        .terrain("t", TerrainSource::Grid(gen::fbm(8, 8, 2, 5.0, 1)))
        .max_line_bytes(256)
        .bind("127.0.0.1:0")
        .unwrap();
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    let mut reader = lined_reader(&stream, 10);

    // 4 KiB of line body, never newline-terminated. The fix answers as
    // soon as the cap is exceeded; the pre-fix server buffers forever
    // waiting for the newline (the read below would time out).
    stream.write_all(&[b'x'; 4096]).unwrap();
    let response = read_response(&mut reader);
    assert_eq!(response.id, 0, "an unparsed line is answered on the reserved id");
    let err = response.into_result().unwrap_err();
    assert_eq!(err.kind, ErrorKind::BadRequest);
    assert!(err.message.contains("256-byte cap"), "cap named in: {}", err.message);

    // More of the same line, its terminating newline, then a *batch* of
    // valid pipelined requests in one write: the connection resyncs at
    // the newline and every subsequent id is answered correctly — the
    // mid-stream rejection must not desynchronize the line framing.
    stream.write_all(&[b'y'; 1024]).unwrap();
    stream.write_all(b"\n").unwrap();
    let mut batch = String::new();
    for id in 9..=13u64 {
        let request = Request::eval(id, "t", View::orthographic(0.02 * id as f64));
        batch.push_str(&serde_json::to_string(&request).unwrap());
        batch.push('\n');
    }
    stream.write_all(batch.as_bytes()).unwrap();
    let mut answered: Vec<u64> = (0..5)
        .map(|_| {
            let response = read_response(&mut reader);
            let id = response.id;
            assert!(
                response.into_result().is_ok(),
                "the connection must survive the oversized line"
            );
            id
        })
        .collect();
    answered.sort_unstable();
    assert_eq!(answered, vec![9, 10, 11, 12, 13], "every pipelined id answered exactly once");

    assert_eq!(server.stats().malformed, 1, "one oversized line, counted once");
    server.shutdown();
}

#[test]
fn reserved_id_zero_is_rejected_and_salvageable_ids_are_echoed() {
    let server = ServerBuilder::new()
        .terrain("t", TerrainSource::Grid(gen::fbm(8, 8, 2, 5.0, 1)))
        .bind("127.0.0.1:0")
        .unwrap();
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    let mut reader = lined_reader(&stream, 10);

    // A well-formed request using the reserved id: rejected, not
    // evaluated (pre-fix served it a report).
    let request = Request::eval(0, "t", View::orthographic(0.0));
    let mut line = serde_json::to_string(&request).unwrap();
    line.push('\n');
    stream.write_all(line.as_bytes()).unwrap();
    let response = read_response(&mut reader);
    assert_eq!(response.id, 0);
    let err = response.into_result().unwrap_err();
    assert_eq!(err.kind, ErrorKind::BadRequest);
    assert!(err.message.contains("reserved"), "policy named in: {}", err.message);

    // Valid JSON, invalid `view`: the client id is salvaged from the
    // text so the error lands on the request that caused it (pre-fix
    // echoed 0, indistinguishable from garbage-line errors).
    stream
        .write_all(b"{\"id\":7,\"terrain\":\"t\",\"view\":\"nope\"}\n")
        .unwrap();
    let response = read_response(&mut reader);
    assert_eq!(response.id, 7, "decode failures echo the salvaged client id");
    assert_eq!(response.into_result().unwrap_err().kind, ErrorKind::BadRequest);

    assert_eq!(server.stats().malformed, 2);
    server.shutdown();
}

#[test]
fn slow_consumer_is_dropped_while_other_clients_stay_served() {
    // ~64 KiB reports (33×33 orthographic sweep) against a 64 KiB
    // outgoing cap: a couple of undrained responses overflow the queue.
    let grid = gen::diamond_square(5, 0.6, 9.0, 77);
    let tin = grid.to_tin().unwrap();
    let server = ServerBuilder::new()
        .terrain("t", TerrainSource::Grid(grid))
        .shards(1)
        .workers(1)
        .queue_depth(256)
        .outgoing_cap_bytes(64 * 1024)
        .bind("127.0.0.1:0")
        .unwrap();
    let addr = server.local_addr();

    // The abusive client: pipeline 200 requests (~12.8 MiB of answers,
    // far past anything kernel socket buffers absorb) and never read.
    // Pre-fix, the single worker wedges in `write_all` on this socket
    // and `dropped_slow` stays 0 forever.
    let mut slow = TcpStream::connect(addr).unwrap();
    for id in 1..=200u64 {
        let request = Request::eval(id, "t", View::orthographic(0.0));
        let mut line = serde_json::to_string(&request).unwrap();
        line.push('\n');
        slow.write_all(line.as_bytes()).unwrap();
    }

    let deadline = Instant::now() + Duration::from_secs(60);
    while server.stats().dropped_slow == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    let stats = server.stats();
    assert!(
        stats.dropped_slow >= 1,
        "an unread 12.8 MiB backlog must trip the 64 KiB outgoing cap: {stats:?}"
    );

    // The worker is free: a well-behaved client is served, bit-identical.
    let view = View::orthographic(0.45);
    let mut healthy = Client::connect(addr).unwrap();
    let report = healthy
        .eval("t", &view)
        .expect("healthy client served after the drop");
    assert_eq!(fingerprint(&report), fingerprint(&evaluate(&tin, &view).unwrap()));

    // The condemned connection is actually closed: draining what the
    // kernel already buffered ends in EOF or a reset, not more data.
    slow.set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut sink = [0u8; 64 * 1024];
    loop {
        match slow.read(&mut sink) {
            Ok(0) => break,
            Ok(_) => continue,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::ConnectionReset | std::io::ErrorKind::ConnectionAborted
                ) =>
            {
                break;
            }
            Err(e) => panic!("expected EOF or reset on the dropped connection, got {e}"),
        }
    }
    server.shutdown();
}

#[test]
fn duplicate_response_ids_are_reported_as_a_protocol_breach() {
    // A fake server that answers both pipelined requests with the
    // *first* request's id. Pre-fix, the client silently overwrote the
    // first result and blamed the second request ("no response for
    // request 2"); the fix names the actual breach.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let fake = std::thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        let mut first_id = None;
        for _ in 0..2 {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let request: Request = serde_json::from_str(line.trim()).unwrap();
            let id = *first_id.get_or_insert(request.id());
            let mut out = serde_json::to_string(&Response::err(
                id,
                hsr_serve::WireError::new(ErrorKind::Eval, "same id twice"),
            ))
            .unwrap();
            out.push('\n');
            writer.write_all(out.as_bytes()).unwrap();
        }
    });

    let mut client = Client::connect(addr).unwrap();
    let views = [View::orthographic(0.0), View::orthographic(0.1)];
    let err = client.eval_pipelined("t", &views).unwrap_err();
    match err {
        hsr_serve::ClientError::Protocol(msg) => {
            assert!(msg.contains("duplicate"), "breach named in: {msg}");
        }
        other => panic!("expected a protocol error, got {other}"),
    }
    fake.join().unwrap();
}
