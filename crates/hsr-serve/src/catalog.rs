//! Hosted terrains and the sharded prepared-scene LRU.
//!
//! The server is configured with a catalog of named [`TerrainSource`]s.
//! A source is cheap to hold (a heightfield grid, a shared TIN, or just
//! the path of a materialized tile store); what evaluation needs is a
//! *prepared* scene — a validated TIN with its adjacency, or an opened
//! [`TiledScene`] with its resident-tile cache. Preparation is the
//! expensive step, so prepared scenes are reused through a hard-capped
//! LRU keyed by terrain name ([`PreparedCache`]), with the same commit
//! discipline as the tile cache underneath: an eviction only commits
//! alongside a successful prepare, so a transient failure never shrinks
//! what is resident.
//!
//! The cache is **sharded by terrain name** so independent terrains
//! never contend: hits take exactly one per-shard bookkeeping lock, and
//! prepares serialize only per terrain (one slow tiled-store open no
//! longer stalls preparing an unrelated grid). The LRU capacity stays
//! *global* — the rare evict+insert commit briefly takes every shard
//! lock in index order, which is what keeps `peak_resident ≤ capacity`
//! an exact invariant rather than a per-shard approximation.

use hsr_catalog::{Catalog, TerrainFormat, TerrainInfo};
use hsr_core::error::HsrError;
use hsr_core::view::{evaluate_batch, Report, View};
use hsr_obs::lock_unpoisoned;
use hsr_terrain::io::from_obj;
use hsr_terrain::{GridTerrain, Tin};
use hsr_tile::{CacheStats, TileStore, TiledScene, TiledSceneConfig};
use std::collections::HashMap;
use std::hash::{Hash as _, Hasher as _};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use crate::protocol::{ErrorKind, WireError};

/// How a hosted terrain is obtained when a prepared scene is needed.
pub enum TerrainSource {
    /// A heightfield grid held in memory; prepared by triangulating and
    /// validating it into a TIN (the monolithic backend).
    Grid(GridTerrain),
    /// An already validated TIN, shared as-is (monolithic backend with a
    /// free prepare step).
    Tin(Arc<Tin>),
    /// A materialized tile-store directory; prepared by opening it as an
    /// out-of-core [`TiledScene`] — this is how a terrain too large for
    /// one in-memory scene (e.g. 2049²) is served under the tiled
    /// residency cap.
    TiledStore {
        /// The store directory (as written by `TiledScene::build` /
        /// `TilePyramid::build`).
        dir: PathBuf,
        /// Evaluation config: resident-tile cap, LOD knobs.
        config: TiledSceneConfig,
    },
    /// A terrain resolved through a persistent [`Catalog`] **at prepare
    /// time**: the entry's current content hash decides what gets
    /// prepared, so an overwrite followed by
    /// [`PreparedCache::invalidate`] makes the next lookup serve the new
    /// content. This is how every cataloged terrain is served; the
    /// variant also lets a specific name be pinned as a static source.
    Catalog {
        /// The catalog holding the entry.
        catalog: Arc<Catalog>,
        /// The entry's name.
        name: String,
    },
}

/// A scene ready to evaluate views: the two backends of the service.
#[derive(Clone)]
pub enum PreparedScene {
    /// One in-memory validated TIN (the facade's `Scene`).
    Monolithic(Arc<Tin>),
    /// An out-of-core tiled scene with its capped resident-tile cache.
    Tiled(Arc<TiledScene>),
}

impl std::fmt::Debug for PreparedScene {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PreparedScene::Monolithic(tin) => {
                let (v, e, t) = tin.counts();
                write!(f, "Monolithic({v} vertices, {e} edges, {t} faces)")
            }
            PreparedScene::Tiled(scene) => {
                write!(f, "Tiled({} tiles/level)", scene.meta().tile_count())
            }
        }
    }
}

impl PreparedScene {
    /// Evaluates a coalesced group of views — one `evaluate_batch` /
    /// `eval_many` fan-out — returning one result per view in order.
    pub fn eval_group(&self, views: &[View]) -> Vec<Result<Report, WireError>> {
        match self {
            PreparedScene::Monolithic(tin) => evaluate_batch(tin, views)
                .into_iter()
                .map(|r| r.map_err(eval_error))
                .collect(),
            PreparedScene::Tiled(scene) => match scene.eval_many(views) {
                Ok(results) => results
                    .into_iter()
                    .map(|r| {
                        r.map(|tiled| tiled.report)
                            .map_err(|e| WireError::new(ErrorKind::Eval, e.to_string()))
                    })
                    .collect(),
                // Infrastructure failure (a tile failed to load): the
                // whole batch fails with the same story.
                Err(e) => views
                    .iter()
                    .map(|_| Err(WireError::new(ErrorKind::Eval, e.to_string())))
                    .collect(),
            },
        }
    }

    /// The tiled backend's resident-tile cache counters, if any.
    pub fn tile_cache_stats(&self) -> Option<CacheStats> {
        match self {
            PreparedScene::Monolithic(_) => None,
            PreparedScene::Tiled(scene) => Some(scene.cache_stats()),
        }
    }
}

fn eval_error(e: HsrError) -> WireError {
    WireError::new(ErrorKind::Eval, e.to_string())
}

/// Prepared-scene cache counters; `hits + prepares + errors == lookups`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct PreparedStats {
    /// Calls to [`PreparedCache::get_or_prepare`].
    pub lookups: u64,
    /// Lookups served from a resident prepared scene.
    pub hits: u64,
    /// Scenes prepared from their source (successful misses).
    pub prepares: u64,
    /// Lookups that failed: unknown terrain or a failed prepare. A
    /// failed prepare commits nothing — no eviction, no residency
    /// change.
    pub errors: u64,
    /// Prepared scenes dropped to make room.
    pub evictions: u64,
    /// Prepared scenes dropped because their terrain was overwritten or
    /// deleted ([`PreparedCache::invalidate`]) — counted separately from
    /// capacity `evictions`.
    pub invalidations: u64,
    /// Prepared scenes resident right now.
    pub resident: usize,
    /// High-water mark of `resident` — proves the cap held.
    pub peak_resident: usize,
}

struct PreparedEntry {
    scene: PreparedScene,
    last_use: u64,
}

/// Lock-free counter cells behind [`PreparedStats`] snapshots. Each
/// `get_or_prepare` increments `lookups` once (first, program order) and
/// exactly one of `hits`/`prepares`/`errors` afterwards, with the
/// outcome increments using `Release`. [`PreparedCache::stats`] reads
/// the outcome counters (`Acquire`) *before* `lookups`, so the ISSUE-9
/// snapshot contract holds in **every** snapshot, not just at
/// quiescence: all counters are monotonic, and
/// `hits + prepares + errors ≤ lookups` — observing an outcome implies
/// observing its lookup (equality once calls in flight finish).
#[derive(Default)]
struct StatCells {
    lookups: AtomicU64,
    hits: AtomicU64,
    prepares: AtomicU64,
    errors: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
    resident: AtomicUsize,
    peak_resident: AtomicUsize,
}

/// Event counters in an attached [`hsr_obs::Recorder`], resolved once at
/// attach time so the hot path pays plain atomic adds (no registry
/// lookup). Mirrors the cache's own [`StatCells`] into the shared
/// observability snapshot.
struct PrepObs {
    recorder: Arc<hsr_obs::Recorder>,
    hit: Arc<AtomicU64>,
    prepare: Arc<AtomicU64>,
    error: Arc<AtomicU64>,
    evict: Arc<AtomicU64>,
    invalidate: Arc<AtomicU64>,
}

/// How many bookkeeping shards the cache spreads terrain names over.
/// Small and fixed: the point is that *distinct hot terrains* land on
/// distinct locks with high probability, not a per-core partition.
const CACHE_SHARDS: usize = 8;

/// A hard-capped, sharded LRU of prepared scenes keyed by terrain name.
///
/// Unlike the tile cache there is no pinning: an in-flight evaluation
/// holds its own `Arc` to the scene it is using, so eviction never
/// interrupts work — the cap bounds how many prepared scenes the cache
/// *retains* for reuse. With capacity 1 and two hot terrains the service
/// still answers correctly; it just re-prepares on each alternation
/// (the concurrency tests pin this behavior down).
///
/// Concurrency structure (ISSUE 6):
/// * **hits** lock exactly one shard (terrains on different shards never
///   contend);
/// * **prepares** serialize per terrain — one `Mutex` per registered
///   name — so a slow tiled-store open does not stall preparing an
///   unrelated grid (two callers racing for the *same* terrain still
///   dedupe: the loser re-checks and hits);
/// * the **evict+insert commit** takes all shard locks in index order,
///   keeping the global `peak_resident ≤ capacity` invariant exact.
///   Commits are rare (successful misses only) and brief (map ops, no
///   I/O).
pub struct PreparedCache {
    capacity: usize,
    sources: HashMap<String, TerrainSource>,
    /// Catalog fallback: names not in `sources` resolve here, so newly
    /// uploaded terrains become servable without reconfiguration.
    catalog: Option<Arc<Catalog>>,
    shards: Vec<Mutex<HashMap<String, PreparedEntry>>>,
    /// One prepare lock per terrain name, created on first use (catalog
    /// entries appear at runtime, so the map itself is locked; the
    /// per-name locks are `Arc`ed out so the map lock is never held
    /// across a prepare).
    prepare_locks: Mutex<HashMap<String, Arc<Mutex<()>>>>,
    /// Global recency clock for the cross-shard LRU ordering.
    tick: AtomicU64,
    stats: StatCells,
    /// Observability mirror (`scene_*` events), when a recorder is
    /// attached. `None` means lookups pay nothing — the off-switch.
    obs: Option<PrepObs>,
}

impl PreparedCache {
    /// A cache over `sources` retaining at most `capacity` prepared
    /// scenes (≥ 1).
    pub fn new(capacity: usize, sources: HashMap<String, TerrainSource>) -> PreparedCache {
        assert!(capacity >= 1, "prepared-scene capacity must be ≥ 1");
        PreparedCache {
            capacity,
            sources,
            catalog: None,
            shards: (0..CACHE_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            prepare_locks: Mutex::new(HashMap::new()),
            tick: AtomicU64::new(0),
            stats: StatCells::default(),
            obs: None,
        }
    }

    /// Attaches a catalog: names not among the static sources resolve
    /// through it at prepare time (static sources win name clashes).
    pub fn with_catalog(mut self, catalog: Arc<Catalog>) -> PreparedCache {
        self.catalog = Some(catalog);
        self
    }

    /// Mirrors this cache's activity into `recorder` as `scene_*` event
    /// counters (hit/prepare/error/evict/invalidate), and attaches the
    /// recorder to every tiled scene it prepares so their resident-tile
    /// caches report `tile_*` events into the same snapshot.
    pub fn with_recorder(mut self, recorder: Arc<hsr_obs::Recorder>) -> PreparedCache {
        self.obs = Some(PrepObs {
            hit: recorder.counter("scene_hit"),
            prepare: recorder.counter("scene_prepare"),
            error: recorder.counter("scene_error"),
            evict: recorder.counter("scene_evict"),
            invalidate: recorder.counter("scene_invalidate"),
            recorder,
        });
        self
    }

    /// The catalog this cache falls back to, if any.
    pub fn catalog(&self) -> Option<&Arc<Catalog>> {
        self.catalog.as_ref()
    }

    /// Every servable terrain name, sorted: the static sources plus the
    /// catalog's current entries.
    pub fn terrain_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.sources.keys().cloned().collect();
        if let Some(catalog) = &self.catalog {
            names.extend(catalog.list().into_iter().map(|info| info.name));
        }
        names.sort();
        names.dedup();
        names
    }

    /// Current counters. Read order matters (ISSUE 9): the outcome
    /// counters are read (`Acquire`) **before** `lookups`, and writers
    /// publish each outcome (`Release`) *after* its lookup, so every
    /// snapshot — even one racing live traffic — satisfies
    /// `hits + prepares + errors ≤ lookups`, with equality at
    /// quiescence. All counters are monotonic.
    pub fn stats(&self) -> PreparedStats {
        // ordering: Acquire — outcome counters are read before
        // `lookups` and pair with each writer's Release-after-lookup,
        // keeping `hits + prepares + errors <= lookups` in every
        // snapshot.
        let hits = self.stats.hits.load(Ordering::Acquire);
        // ordering: Acquire, as `hits` above.
        let prepares = self.stats.prepares.load(Ordering::Acquire);
        // ordering: Acquire, as `hits` above.
        let errors = self.stats.errors.load(Ordering::Acquire);
        PreparedStats {
            // ordering: Acquire keeps `lookups` no older than the
            // outcome counters read above.
            lookups: self.stats.lookups.load(Ordering::Acquire),
            hits,
            prepares,
            errors,
            // ordering: Relaxed — advisory gauges and tallies, each
            // read in isolation; nothing is ordered against them.
            evictions: self.stats.evictions.load(Ordering::Relaxed),
            invalidations: self.stats.invalidations.load(Ordering::Relaxed),
            resident: self.stats.resident.load(Ordering::Relaxed),
            peak_resident: self.stats.peak_resident.load(Ordering::Relaxed),
        }
    }

    /// The resident-tile cache counters of `name`, if that terrain is
    /// currently resident on the tiled backend. A pure peek: touches
    /// neither the LRU recency nor the lookup counters.
    pub fn tile_cache_stats(&self, name: &str) -> Option<CacheStats> {
        let shard = lock_unpoisoned(&self.shards[self.shard_of(name)]);
        shard
            .get(name)
            .and_then(|entry| entry.scene.tile_cache_stats())
    }

    fn shard_of(&self, name: &str) -> usize {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        name.hash(&mut hasher);
        (hasher.finish() as usize) % self.shards.len()
    }

    /// Returns the prepared scene for `name`, preparing it from its
    /// source on a miss. The eviction only commits together with the
    /// successful insert, under one all-shard lock acquisition: a
    /// failed prepare changes nothing but the `errors` counter, and
    /// `resident` never exceeds the capacity (the freshly prepared
    /// scene coexists with its victim only outside the maps, briefly).
    pub fn get_or_prepare(&self, name: &str) -> Result<PreparedScene, WireError> {
        self.get_or_prepare_traced(name).0
    }

    /// [`PreparedCache::get_or_prepare`] plus the lookup's outcome —
    /// whether the scene was served resident (`true`) or had to be
    /// prepared (`false`; also `false` on error). The serving layer uses
    /// this to land the lookup latency in the right stage histogram.
    pub fn get_or_prepare_traced(&self, name: &str) -> (Result<PreparedScene, WireError>, bool) {
        if let Some(hit) = self.lookup(name, true) {
            return (Ok(hit), true);
        }
        (self.prepare_missing(name), false)
    }

    /// The miss path of [`PreparedCache::get_or_prepare_traced`]: the
    /// first shard-locked lookup already failed and was counted.
    fn prepare_missing(&self, name: &str) -> Result<PreparedScene, WireError> {
        let from_catalog = !self.sources.contains_key(name);
        if from_catalog && self.catalog.as_ref().and_then(|c| c.get(name)).is_none() {
            // ordering: Release publishes the outcome after its lookup
            // so `stats()` keeps `hits + prepares + errors <= lookups`.
            self.stats.errors.fetch_add(1, Ordering::Release);
            if let Some(obs) = &self.obs {
                // ordering: Release pairs with the Acquire reads of the
                // Metrics endpoint snapshot.
                obs.error.fetch_add(1, Ordering::Release);
            }
            return Err(WireError::new(
                ErrorKind::UnknownTerrain,
                format!("no terrain named `{name}` is registered"),
            ));
        };
        let preparing = {
            let mut locks = lock_unpoisoned(&self.prepare_locks);
            Arc::clone(locks.entry(name.to_string()).or_default())
        };
        let _preparing = lock_unpoisoned(&preparing);
        // Someone else may have prepared `name` while we waited.
        if let Some(hit) = self.lookup(name, false) {
            return Ok(hit);
        }
        let prepared = match self.catalog.as_ref().filter(|_| from_catalog) {
            // Re-read under the prepare lock: the entry decides *which
            // content* this prepare serves. (A concurrent overwrite can
            // still land between this read and the commit below; its
            // invalidation may then evict a just-stale scene one lookup
            // late — benign, the next lookup re-prepares fresh.)
            Some(catalog) => match catalog.get(name) {
                Some(info) => prepare_from_catalog(catalog, &info),
                None => Err(WireError::new(
                    ErrorKind::UnknownTerrain,
                    format!("no terrain named `{name}` is registered"),
                )),
            },
            // `!from_catalog` means the first lookup saw `name` in the
            // static sources; `get` instead of indexing keeps the path
            // panic-free regardless.
            None => match self.sources.get(name) {
                Some(source) => prepare(source),
                None => Err(WireError::new(
                    ErrorKind::UnknownTerrain,
                    format!("no terrain named `{name}` is registered"),
                )),
            },
        };
        let scene = match prepared {
            Ok(scene) => scene,
            Err(e) => {
                // ordering: Release publishes the outcome after its
                // lookup (see `stats`).
                self.stats.errors.fetch_add(1, Ordering::Release);
                if let Some(obs) = &self.obs {
                    // ordering: Release pairs with the Acquire reads of
                    // the Metrics endpoint snapshot.
                    obs.error.fetch_add(1, Ordering::Release);
                }
                return Err(e);
            }
        };
        if let (PreparedScene::Tiled(tiled), Some(obs)) = (&scene, &self.obs) {
            tiled.attach_recorder(&obs.recorder);
        }
        // Commit: evict and insert atomically under every shard lock.
        // lock-order: all `shards` guards, ascending shard index; no
        // other path holds two shard locks at once, so the ordering is
        // trivially deadlock-free.
        let mut guards: Vec<MutexGuard<'_, HashMap<String, PreparedEntry>>> =
            self.shards.iter().map(lock_unpoisoned).collect();
        let mut resident: usize = guards.iter().map(|g| g.len()).sum();
        while resident >= self.capacity {
            // `resident > 0` here, so some map is non-empty and a
            // victim exists; `None` could only mean the count and the
            // maps disagree, in which case stop evicting rather than
            // panic a worker thread mid-commit.
            let victim = guards
                .iter()
                .enumerate()
                .flat_map(|(s, g)| g.iter().map(move |(k, e)| (e.last_use, s, k.clone())))
                .min();
            let Some((_, shard, key)) = victim else { break };
            if guards[shard].remove(&key).is_none() {
                break;
            }
            resident -= 1;
            // ordering: Relaxed — advisory eviction tally, read in
            // isolation by `stats()`.
            self.stats.evictions.fetch_add(1, Ordering::Relaxed);
            if let Some(obs) = &self.obs {
                // ordering: Release pairs with the Acquire reads of the
                // Metrics endpoint snapshot.
                obs.evict.fetch_add(1, Ordering::Release);
            }
        }
        // ordering: Relaxed — `tick` needs only uniqueness and
        // monotonicity, which the atomic RMW provides by itself.
        let tick = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        guards[self.shard_of(name)]
            .insert(name.to_string(), PreparedEntry { scene: scene.clone(), last_use: tick });
        resident += 1;
        // ordering: Release publishes the outcome after its lookup so
        // `stats()` keeps `hits + prepares + errors <= lookups`.
        self.stats.prepares.fetch_add(1, Ordering::Release);
        if let Some(obs) = &self.obs {
            // ordering: Release pairs with the Acquire reads of the
            // Metrics endpoint snapshot.
            obs.prepare.fetch_add(1, Ordering::Release);
        }
        // ordering: Relaxed — advisory gauge, read in isolation.
        self.stats.resident.store(resident, Ordering::Relaxed);
        // ordering: Relaxed — advisory high-water mark; the RMW keeps
        // it exact without ordering anything else.
        self.stats
            .peak_resident
            .fetch_max(resident, Ordering::Relaxed);
        Ok(scene)
    }

    /// Drops exactly `name`'s prepared scene (if resident), so the next
    /// lookup re-prepares from the terrain's current source — the hook
    /// the server calls when a cataloged terrain is overwritten or
    /// deleted. Other residents are untouched. For a tiled terrain the
    /// dropped [`TiledScene`] takes its resident-tile `SceneCache` with
    /// it (in-flight evaluations holding the `Arc` finish against the
    /// old content, then the memory goes). Returns whether anything was
    /// resident.
    pub fn invalidate(&self, name: &str) -> bool {
        // All shard locks, like the commit path: keeps the `resident`
        // gauge exact against a racing evict+insert.
        // lock-order: all `shards` guards, ascending shard index — the
        // same canonical order as the commit path.
        let mut guards: Vec<MutexGuard<'_, HashMap<String, PreparedEntry>>> =
            self.shards.iter().map(lock_unpoisoned).collect();
        let dropped = guards[self.shard_of(name)].remove(name).is_some();
        if dropped {
            let resident: usize = guards.iter().map(|g| g.len()).sum();
            // ordering: Relaxed — advisory tally, read in isolation.
            self.stats.invalidations.fetch_add(1, Ordering::Relaxed);
            if let Some(obs) = &self.obs {
                // ordering: Release pairs with the Acquire reads of the
                // Metrics endpoint snapshot.
                obs.invalidate.fetch_add(1, Ordering::Release);
            }
            // ordering: Relaxed — advisory gauge, read in isolation.
            self.stats.resident.store(resident, Ordering::Relaxed);
        }
        dropped
    }

    /// One shard-locked hit-check. `first` marks the initial lookup of a
    /// `get_or_prepare` call (counted in `lookups`); the re-check after
    /// waiting on the prepare lock is not a new lookup, but a hit there
    /// still counts as a hit so `hits + prepares + errors == lookups`
    /// stays exact.
    fn lookup(&self, name: &str, first: bool) -> Option<PreparedScene> {
        let mut shard = lock_unpoisoned(&self.shards[self.shard_of(name)]);
        if first {
            // ordering: Relaxed — the Release on whichever outcome
            // counter ends this lookup publishes the increment before a
            // `stats()` Acquire can observe that outcome.
            // lint: allow(atomic-pair): the `stats()` Acquire read
            // pairs with that trailing outcome-counter Release, not
            // with this increment directly.
            self.stats.lookups.fetch_add(1, Ordering::Relaxed);
        }
        let entry = shard.get_mut(name)?;
        // ordering: Relaxed — `tick` needs only uniqueness and
        // monotonicity, which the atomic RMW provides by itself.
        entry.last_use = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        let scene = entry.scene.clone();
        // ordering: Release so a `stats()` snapshot that observes this
        // hit also observes the lookup increment above (see `stats`).
        self.stats.hits.fetch_add(1, Ordering::Release);
        if let Some(obs) = &self.obs {
            // ordering: Release pairs with the Acquire reads of the
            // Metrics endpoint snapshot.
            obs.hit.fetch_add(1, Ordering::Release);
        }
        Some(scene)
    }
}

fn prepare(source: &TerrainSource) -> Result<PreparedScene, WireError> {
    match source {
        TerrainSource::Grid(grid) => grid
            .to_tin()
            .map(|tin| PreparedScene::Monolithic(Arc::new(tin)))
            .map_err(|e| WireError::new(ErrorKind::Prepare, e.to_string())),
        TerrainSource::Tin(tin) => Ok(PreparedScene::Monolithic(Arc::clone(tin))),
        TerrainSource::TiledStore { dir, config } => open_tiled(dir, *config),
        TerrainSource::Catalog { catalog, name } => match catalog.get(name) {
            Some(info) => prepare_from_catalog(catalog, &info),
            None => Err(WireError::new(
                ErrorKind::UnknownTerrain,
                format!("no terrain named `{name}` is registered"),
            )),
        },
    }
}

fn open_tiled(dir: &std::path::Path, config: TiledSceneConfig) -> Result<PreparedScene, WireError> {
    TileStore::open(dir)
        .map_err(|e| WireError::new(ErrorKind::Prepare, e.to_string()))
        .and_then(|store| {
            TiledScene::open(store, config)
                .map_err(|e| WireError::new(ErrorKind::Prepare, e.to_string()))
        })
        .map(|scene| PreparedScene::Tiled(Arc::new(scene)))
}

/// Materializes a catalog entry into a prepared scene: decode the blob
/// per its registered format (lazily building the tile pyramid for
/// `TiledGrid` entries — one pyramid per content hash, shared by deduped
/// uploads).
fn prepare_from_catalog(catalog: &Catalog, info: &TerrainInfo) -> Result<PreparedScene, WireError> {
    let prep = |what: String| WireError::new(ErrorKind::Prepare, what);
    match info.format {
        TerrainFormat::GridBin => {
            let bytes = catalog
                .read_blob(&info.content)
                .map_err(|e| prep(e.to_string()))?;
            hsr_terrain::io::grid_from_bytes(&bytes)
                .map_err(|e| prep(e.to_string()))?
                .to_tin()
                .map(|tin| PreparedScene::Monolithic(Arc::new(tin)))
                .map_err(|e| prep(e.to_string()))
        }
        TerrainFormat::TinObj => {
            let bytes = catalog
                .read_blob(&info.content)
                .map_err(|e| prep(e.to_string()))?;
            let text = std::str::from_utf8(&bytes)
                .map_err(|_| prep("cataloged OBJ blob is not UTF-8".to_string()))?;
            from_obj(text)
                .map(|tin| PreparedScene::Monolithic(Arc::new(tin)))
                .map_err(|e| prep(e.to_string()))
        }
        TerrainFormat::TiledGrid { .. } => {
            let dir = catalog
                .ensure_pyramid(info)
                .map_err(|e| prep(e.to_string()))?;
            open_tiled(&dir, TiledSceneConfig::default())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsr_terrain::gen;

    fn sources() -> HashMap<String, TerrainSource> {
        let mut m = HashMap::new();
        m.insert("a".into(), TerrainSource::Grid(gen::fbm(6, 6, 2, 4.0, 1)));
        m.insert("b".into(), TerrainSource::Grid(gen::fbm(6, 6, 2, 4.0, 2)));
        m.insert(
            "broken".into(),
            TerrainSource::TiledStore {
                dir: std::env::temp_dir().join("hsr-serve-no-such-store"),
                config: TiledSceneConfig::default(),
            },
        );
        m
    }

    #[test]
    fn capacity_one_alternation_reprepares_and_counts() {
        let cache = PreparedCache::new(1, sources());
        for _ in 0..3 {
            cache.get_or_prepare("a").unwrap();
            cache.get_or_prepare("b").unwrap();
        }
        cache.get_or_prepare("b").unwrap(); // hit
        let s = cache.stats();
        assert_eq!((s.lookups, s.hits, s.prepares, s.evictions), (7, 1, 6, 5));
        assert_eq!((s.resident, s.peak_resident), (1, 1));
        assert_eq!(s.hits + s.prepares + s.errors, s.lookups);
    }

    #[test]
    fn failed_prepare_commits_nothing() {
        let cache = PreparedCache::new(1, sources());
        cache.get_or_prepare("a").unwrap();
        let before = cache.stats();
        let err = cache.get_or_prepare("broken").unwrap_err();
        assert_eq!(err.kind, ErrorKind::Prepare);
        let after = cache.stats();
        assert_eq!(
            (after.resident, after.evictions, after.prepares),
            (before.resident, before.evictions, before.prepares)
        );
        assert_eq!(after.errors, before.errors + 1);
        // `a` is still resident.
        cache.get_or_prepare("a").unwrap();
        assert_eq!(cache.stats().hits, before.hits + 1);
    }

    #[test]
    fn racing_lookups_of_one_terrain_prepare_it_exactly_once() {
        let cache = std::sync::Arc::new(PreparedCache::new(2, sources()));
        let threads: Vec<_> = (0..6)
            .map(|_| {
                let cache = std::sync::Arc::clone(&cache);
                std::thread::spawn(move || cache.get_or_prepare("a").unwrap())
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = cache.stats();
        // The per-terrain prepare lock dedupes: one prepare, the rest
        // hit either on first lookup or on the post-lock re-check.
        assert_eq!(s.prepares, 1, "{s:?}");
        assert_eq!(s.hits + s.prepares + s.errors, s.lookups);
        assert_eq!((s.resident, s.peak_resident), (1, 1));
    }

    #[test]
    fn concurrent_prepares_of_independent_terrains_both_commit() {
        let cache = std::sync::Arc::new(PreparedCache::new(2, sources()));
        let threads: Vec<_> = ["a", "b"]
            .into_iter()
            .map(|name| {
                let cache = std::sync::Arc::clone(&cache);
                std::thread::spawn(move || cache.get_or_prepare(name).unwrap())
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = cache.stats();
        assert_eq!((s.prepares, s.resident), (2, 2), "{s:?}");
        assert!(s.peak_resident <= 2, "commit must stay under the cap: {s:?}");
        assert_eq!(s.hits + s.prepares + s.errors, s.lookups);
    }

    /// ISSUE-9 satellite regression: snapshots used to read each atomic
    /// independently, so a scrape racing live traffic could observe an
    /// outcome before its lookup and report
    /// `hits + prepares + errors > lookups` over the wire. The
    /// Release-outcomes / outcomes-before-lookups read order makes the
    /// ≤ invariant hold in every snapshot; this hammers it.
    #[test]
    fn stats_invariant_holds_in_every_snapshot_under_hammering() {
        let cache = std::sync::Arc::new(PreparedCache::new(1, sources()));
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let writers: Vec<_> = (0..4)
            .map(|w| {
                let cache = std::sync::Arc::clone(&cache);
                std::thread::spawn(move || {
                    // Capacity 1 with two names forces constant
                    // re-prepares; the unknown name exercises the error
                    // counter on every fourth call.
                    for i in 0..400u64 {
                        let name = match (i + w) % 4 {
                            0 | 2 => "a",
                            1 => "b",
                            _ => "nope",
                        };
                        let _ = cache.get_or_prepare(name);
                    }
                })
            })
            .collect();
        let reader = {
            let (cache, stop) = (std::sync::Arc::clone(&cache), std::sync::Arc::clone(&stop));
            std::thread::spawn(move || {
                let mut samples = 0u64;
                let mut prev = PreparedStats::default();
                while !stop.load(std::sync::atomic::Ordering::Acquire) {
                    let s = cache.stats();
                    assert!(s.hits + s.prepares + s.errors <= s.lookups, "torn snapshot: {s:?}");
                    // Monotonic counter semantics across snapshots.
                    assert!(s.lookups >= prev.lookups && s.hits >= prev.hits);
                    assert!(s.prepares >= prev.prepares && s.errors >= prev.errors);
                    prev = s;
                    samples += 1;
                }
                samples
            })
        };
        for t in writers {
            t.join().unwrap();
        }
        stop.store(true, std::sync::atomic::Ordering::Release);
        assert!(reader.join().unwrap() > 0);
        let s = cache.stats();
        assert_eq!(s.hits + s.prepares + s.errors, s.lookups, "equality at quiescence: {s:?}");
    }

    #[test]
    fn recorder_mirrors_scene_events() {
        let recorder = Arc::new(hsr_obs::Recorder::default());
        let cache = PreparedCache::new(1, sources()).with_recorder(Arc::clone(&recorder));
        cache.get_or_prepare("a").unwrap();
        cache.get_or_prepare("a").unwrap(); // hit
        cache.get_or_prepare("b").unwrap(); // evicts a
        assert!(cache.get_or_prepare("nope").is_err());
        assert!(cache.invalidate("b"));
        let s = cache.stats();
        let snap = recorder.snapshot();
        assert_eq!(snap.event("scene_hit"), s.hits);
        assert_eq!(snap.event("scene_prepare"), s.prepares);
        assert_eq!(snap.event("scene_error"), s.errors);
        assert_eq!(snap.event("scene_evict"), s.evictions);
        assert_eq!(snap.event("scene_invalidate"), s.invalidations);
        assert_eq!(snap.event("scene_evict"), 1);
    }

    #[test]
    fn unknown_terrains_error_without_side_effects() {
        let cache = PreparedCache::new(2, sources());
        let err = cache.get_or_prepare("nope").unwrap_err();
        assert_eq!(err.kind, ErrorKind::UnknownTerrain);
        let s = cache.stats();
        assert_eq!((s.lookups, s.errors, s.resident), (1, 1, 0));
    }

    #[test]
    fn catalog_fallback_prepares_and_invalidation_evicts_exactly_one() {
        use hsr_terrain::io::grid_to_bytes;
        let dir =
            std::env::temp_dir().join(format!("hsr-serve-cat-fallback-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let catalog = Arc::new(Catalog::open(&dir).unwrap());
        catalog
            .upload(
                "cat",
                TerrainFormat::GridBin,
                "test",
                &grid_to_bytes(&gen::fbm(6, 6, 2, 4.0, 3)),
            )
            .unwrap();
        let cache = PreparedCache::new(2, sources()).with_catalog(Arc::clone(&catalog));
        // Static sources and catalog entries are both servable.
        cache.get_or_prepare("a").unwrap();
        cache.get_or_prepare("cat").unwrap();
        cache.get_or_prepare("cat").unwrap(); // hit
        assert!(cache.terrain_names().contains(&"cat".to_string()));
        let before = cache.stats();
        assert_eq!((before.prepares, before.hits, before.resident), (2, 1, 2));
        // Invalidation drops exactly the named entry; `a` stays hot.
        assert!(cache.invalidate("cat"));
        assert!(!cache.invalidate("cat"), "second invalidate finds nothing");
        let mid = cache.stats();
        assert_eq!((mid.invalidations, mid.resident, mid.evictions), (1, 1, 0));
        cache.get_or_prepare("a").unwrap(); // still a hit
        assert_eq!(cache.stats().hits, before.hits + 1);
        // The next lookup of the invalidated name re-prepares.
        cache.get_or_prepare("cat").unwrap();
        assert_eq!(cache.stats().prepares, before.prepares + 1);
        // A deleted catalog entry stops resolving.
        catalog.delete("cat").unwrap();
        cache.invalidate("cat");
        let err = cache.get_or_prepare("cat").unwrap_err();
        assert_eq!(err.kind, ErrorKind::UnknownTerrain);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
