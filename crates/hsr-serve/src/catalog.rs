//! Hosted terrains and the prepared-scene LRU.
//!
//! The server is configured with a catalog of named [`TerrainSource`]s.
//! A source is cheap to hold (a heightfield grid, a shared TIN, or just
//! the path of a materialized tile store); what evaluation needs is a
//! *prepared* scene — a validated TIN with its adjacency, or an opened
//! [`TiledScene`] with its resident-tile cache. Preparation is the
//! expensive step, so prepared scenes are reused through a hard-capped
//! LRU keyed by terrain name ([`PreparedCache`]), with the same commit
//! discipline as the tile cache underneath: an eviction only commits
//! alongside a successful prepare, so a transient failure never shrinks
//! what is resident.

use hsr_core::error::HsrError;
use hsr_core::view::{evaluate_batch, Report, View};
use hsr_terrain::{GridTerrain, Tin};
use hsr_tile::{CacheStats, TileStore, TiledScene, TiledSceneConfig};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use crate::protocol::{ErrorKind, WireError};

/// How a hosted terrain is obtained when a prepared scene is needed.
pub enum TerrainSource {
    /// A heightfield grid held in memory; prepared by triangulating and
    /// validating it into a TIN (the monolithic backend).
    Grid(GridTerrain),
    /// An already validated TIN, shared as-is (monolithic backend with a
    /// free prepare step).
    Tin(Arc<Tin>),
    /// A materialized tile-store directory; prepared by opening it as an
    /// out-of-core [`TiledScene`] — this is how a terrain too large for
    /// one in-memory scene (e.g. 2049²) is served under the tiled
    /// residency cap.
    TiledStore {
        /// The store directory (as written by `TiledScene::build` /
        /// `TilePyramid::build`).
        dir: PathBuf,
        /// Evaluation config: resident-tile cap, LOD knobs.
        config: TiledSceneConfig,
    },
}

/// A scene ready to evaluate views: the two backends of the service.
#[derive(Clone)]
pub enum PreparedScene {
    /// One in-memory validated TIN (the facade's `Scene`).
    Monolithic(Arc<Tin>),
    /// An out-of-core tiled scene with its capped resident-tile cache.
    Tiled(Arc<TiledScene>),
}

impl std::fmt::Debug for PreparedScene {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PreparedScene::Monolithic(tin) => {
                let (v, e, t) = tin.counts();
                write!(f, "Monolithic({v} vertices, {e} edges, {t} faces)")
            }
            PreparedScene::Tiled(scene) => {
                write!(f, "Tiled({} tiles/level)", scene.meta().tile_count())
            }
        }
    }
}

impl PreparedScene {
    /// Evaluates a coalesced group of views — one `evaluate_batch` /
    /// `eval_many` fan-out — returning one result per view in order.
    pub fn eval_group(&self, views: &[View]) -> Vec<Result<Report, WireError>> {
        match self {
            PreparedScene::Monolithic(tin) => evaluate_batch(tin, views)
                .into_iter()
                .map(|r| r.map_err(eval_error))
                .collect(),
            PreparedScene::Tiled(scene) => match scene.eval_many(views) {
                Ok(results) => results
                    .into_iter()
                    .map(|r| {
                        r.map(|tiled| tiled.report)
                            .map_err(|e| WireError::new(ErrorKind::Eval, e.to_string()))
                    })
                    .collect(),
                // Infrastructure failure (a tile failed to load): the
                // whole batch fails with the same story.
                Err(e) => views
                    .iter()
                    .map(|_| Err(WireError::new(ErrorKind::Eval, e.to_string())))
                    .collect(),
            },
        }
    }

    /// The tiled backend's resident-tile cache counters, if any.
    pub fn tile_cache_stats(&self) -> Option<CacheStats> {
        match self {
            PreparedScene::Monolithic(_) => None,
            PreparedScene::Tiled(scene) => Some(scene.cache_stats()),
        }
    }
}

fn eval_error(e: HsrError) -> WireError {
    WireError::new(ErrorKind::Eval, e.to_string())
}

/// Prepared-scene cache counters; `hits + prepares + errors == lookups`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct PreparedStats {
    /// Calls to [`PreparedCache::get_or_prepare`].
    pub lookups: u64,
    /// Lookups served from a resident prepared scene.
    pub hits: u64,
    /// Scenes prepared from their source (successful misses).
    pub prepares: u64,
    /// Lookups that failed: unknown terrain or a failed prepare. A
    /// failed prepare commits nothing — no eviction, no residency
    /// change.
    pub errors: u64,
    /// Prepared scenes dropped to make room.
    pub evictions: u64,
    /// Prepared scenes resident right now.
    pub resident: usize,
    /// High-water mark of `resident` — proves the cap held.
    pub peak_resident: usize,
}

struct PreparedEntry {
    scene: PreparedScene,
    last_use: u64,
}

struct CacheInner {
    map: HashMap<String, PreparedEntry>,
    tick: u64,
    stats: PreparedStats,
}

/// A hard-capped LRU of prepared scenes keyed by terrain name.
///
/// Unlike the tile cache there is no pinning: an in-flight evaluation
/// holds its own `Arc` to the scene it is using, so eviction never
/// interrupts work — the cap bounds how many prepared scenes the cache
/// *retains* for reuse. With capacity 1 and two hot terrains the service
/// still answers correctly; it just re-prepares on each alternation
/// (the concurrency tests pin this behavior down).
pub struct PreparedCache {
    capacity: usize,
    sources: HashMap<String, TerrainSource>,
    inner: Mutex<CacheInner>,
    /// Serializes the prepare step only: concurrent prepares of big
    /// terrains would multiply peak memory, but a prepare must not hold
    /// the bookkeeping lock — hits on already-resident terrains stay
    /// wait-free while one slow prepare runs.
    prepare_lock: Mutex<()>,
}

impl PreparedCache {
    /// A cache over `sources` retaining at most `capacity` prepared
    /// scenes (≥ 1).
    pub fn new(capacity: usize, sources: HashMap<String, TerrainSource>) -> PreparedCache {
        assert!(capacity >= 1, "prepared-scene capacity must be ≥ 1");
        PreparedCache {
            capacity,
            sources,
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                tick: 0,
                stats: PreparedStats::default(),
            }),
            prepare_lock: Mutex::new(()),
        }
    }

    /// The registered terrain names, sorted.
    pub fn terrain_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.sources.keys().cloned().collect();
        names.sort();
        names
    }

    /// Current counters.
    pub fn stats(&self) -> PreparedStats {
        self.inner.lock().expect("prepared cache lock").stats
    }

    /// The resident-tile cache counters of `name`, if that terrain is
    /// currently resident on the tiled backend. A pure peek: touches
    /// neither the LRU recency nor the lookup counters.
    pub fn tile_cache_stats(&self, name: &str) -> Option<CacheStats> {
        let inner = self.inner.lock().expect("prepared cache lock");
        inner
            .map
            .get(name)
            .and_then(|entry| entry.scene.tile_cache_stats())
    }

    /// Returns the prepared scene for `name`, preparing it from its
    /// source on a miss. Prepares are serialized with each other (one
    /// big terrain materializing at a time bounds peak memory) but do
    /// **not** hold the bookkeeping lock, so hits on already-resident
    /// terrains proceed while a prepare runs. The eviction only commits
    /// together with the successful insert, under one lock acquisition:
    /// a failed prepare changes nothing but the `errors` counter, and
    /// `resident` never exceeds the capacity (the freshly prepared
    /// scene coexists with its victim only outside the map, briefly).
    pub fn get_or_prepare(&self, name: &str) -> Result<PreparedScene, WireError> {
        if let Some(hit) = self.lookup(name, true) {
            return Ok(hit);
        }
        let Some(source) = self.sources.get(name) else {
            self.inner.lock().expect("prepared cache lock").stats.errors += 1;
            return Err(WireError::new(
                ErrorKind::UnknownTerrain,
                format!("no terrain named `{name}` is registered"),
            ));
        };
        let _preparing = self.prepare_lock.lock().expect("prepare lock");
        // Someone else may have prepared `name` while we waited.
        if let Some(hit) = self.lookup(name, false) {
            return Ok(hit);
        }
        let scene = match prepare(source) {
            Ok(scene) => scene,
            Err(e) => {
                self.inner.lock().expect("prepared cache lock").stats.errors += 1;
                return Err(e);
            }
        };
        // Commit: evict and insert atomically.
        let mut inner = self.inner.lock().expect("prepared cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        while inner.map.len() >= self.capacity {
            let victim = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_use)
                .map(|(k, _)| k.clone())
                .expect("non-empty map above capacity");
            inner.map.remove(&victim).expect("victim came from the map");
            inner.stats.evictions += 1;
        }
        inner
            .map
            .insert(name.to_string(), PreparedEntry { scene: scene.clone(), last_use: tick });
        inner.stats.prepares += 1;
        inner.stats.resident = inner.map.len();
        inner.stats.peak_resident = inner.stats.peak_resident.max(inner.map.len());
        Ok(scene)
    }

    /// One locked hit-check. `first` marks the initial lookup of a
    /// `get_or_prepare` call (counted in `lookups`); the re-check after
    /// waiting on the prepare lock is not a new lookup, but a hit there
    /// still counts as a hit so `hits + prepares + errors == lookups`
    /// stays exact.
    fn lookup(&self, name: &str, first: bool) -> Option<PreparedScene> {
        let mut inner = self.inner.lock().expect("prepared cache lock");
        inner.tick += 1;
        if first {
            inner.stats.lookups += 1;
        }
        let tick = inner.tick;
        let entry = inner.map.get_mut(name)?;
        entry.last_use = tick;
        let scene = entry.scene.clone();
        inner.stats.hits += 1;
        Some(scene)
    }
}

fn prepare(source: &TerrainSource) -> Result<PreparedScene, WireError> {
    match source {
        TerrainSource::Grid(grid) => grid
            .to_tin()
            .map(|tin| PreparedScene::Monolithic(Arc::new(tin)))
            .map_err(|e| WireError::new(ErrorKind::Prepare, e.to_string())),
        TerrainSource::Tin(tin) => Ok(PreparedScene::Monolithic(Arc::clone(tin))),
        TerrainSource::TiledStore { dir, config } => TileStore::open(dir)
            .map_err(|e| WireError::new(ErrorKind::Prepare, e.to_string()))
            .and_then(|store| {
                TiledScene::open(store, *config)
                    .map_err(|e| WireError::new(ErrorKind::Prepare, e.to_string()))
            })
            .map(|scene| PreparedScene::Tiled(Arc::new(scene))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsr_terrain::gen;

    fn sources() -> HashMap<String, TerrainSource> {
        let mut m = HashMap::new();
        m.insert("a".into(), TerrainSource::Grid(gen::fbm(6, 6, 2, 4.0, 1)));
        m.insert("b".into(), TerrainSource::Grid(gen::fbm(6, 6, 2, 4.0, 2)));
        m.insert(
            "broken".into(),
            TerrainSource::TiledStore {
                dir: std::env::temp_dir().join("hsr-serve-no-such-store"),
                config: TiledSceneConfig::default(),
            },
        );
        m
    }

    #[test]
    fn capacity_one_alternation_reprepares_and_counts() {
        let cache = PreparedCache::new(1, sources());
        for _ in 0..3 {
            cache.get_or_prepare("a").unwrap();
            cache.get_or_prepare("b").unwrap();
        }
        cache.get_or_prepare("b").unwrap(); // hit
        let s = cache.stats();
        assert_eq!((s.lookups, s.hits, s.prepares, s.evictions), (7, 1, 6, 5));
        assert_eq!((s.resident, s.peak_resident), (1, 1));
        assert_eq!(s.hits + s.prepares + s.errors, s.lookups);
    }

    #[test]
    fn failed_prepare_commits_nothing() {
        let cache = PreparedCache::new(1, sources());
        cache.get_or_prepare("a").unwrap();
        let before = cache.stats();
        let err = cache.get_or_prepare("broken").unwrap_err();
        assert_eq!(err.kind, ErrorKind::Prepare);
        let after = cache.stats();
        assert_eq!(
            (after.resident, after.evictions, after.prepares),
            (before.resident, before.evictions, before.prepares)
        );
        assert_eq!(after.errors, before.errors + 1);
        // `a` is still resident.
        cache.get_or_prepare("a").unwrap();
        assert_eq!(cache.stats().hits, before.hits + 1);
    }

    #[test]
    fn unknown_terrains_error_without_side_effects() {
        let cache = PreparedCache::new(2, sources());
        let err = cache.get_or_prepare("nope").unwrap_err();
        assert_eq!(err.kind, ErrorKind::UnknownTerrain);
        let s = cache.stats();
        assert_eq!((s.lookups, s.errors, s.resident), (1, 1, 0));
    }
}
