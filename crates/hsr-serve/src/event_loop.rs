//! The sharded, readiness-driven connection layer (ISSUE 6 tentpole).
//!
//! PR 5 gave every connection a blocking reader thread and let workers
//! write responses directly to client sockets. Both ends of that design
//! fail under adversarial or merely slow traffic: a thread per
//! connection caps concurrency at the thread ceiling, and a client that
//! stops reading wedges whichever worker is mid-`write_all` to it. This
//! module replaces both with event-driven I/O:
//!
//! * Connections are **sharded** round-robin across a fixed number of
//!   event-loop threads. Each shard owns a [`polling::Poller`] and the
//!   full state of its connections — nothing per-connection is spawned,
//!   so thousands of mostly-idle viewers cost one registered fd each.
//! * **Reads are nonblocking** into a per-connection line buffer capped
//!   at [`ServeConfig::max_line_bytes`]. A line that exceeds the cap is
//!   answered with [`ErrorKind::BadRequest`] immediately (no newline
//!   required), counted in `malformed`, and the connection resumes at
//!   the next newline — memory stays bounded no matter what a client
//!   streams.
//! * **Writes are queued, never blocking**: workers serialize a
//!   response into the connection's bounded outgoing queue
//!   ([`Reply::send`]) and wake the owning shard, which drains the
//!   queue as the socket reports writable. A queue that would exceed
//!   [`ServeConfig::outgoing_cap_bytes`] condemns the connection
//!   instead of growing — the slow client is disconnected, counted in
//!   [`ServeStats::dropped_slow`], and every worker stays available to
//!   everyone else.
//!
//! Readiness is oneshot (the `polling` contract): after servicing a
//! connection the shard re-arms it with read interest plus write
//! interest iff bytes are pending. Cross-thread handoffs — new
//! connections from the acceptor, fresh outgoing bytes from workers —
//! go through small locked queues plus [`polling::Poller::notify`], so
//! a shard blocked in `wait` always learns about them immediately.
//!
//! [`ServeConfig::max_line_bytes`]: crate::server::ServeConfig::max_line_bytes
//! [`ServeConfig::outgoing_cap_bytes`]: crate::server::ServeConfig::outgoing_cap_bytes
//! [`ServeStats::dropped_slow`]: crate::server::ServeStats::dropped_slow
//! [`ErrorKind::BadRequest`]: crate::protocol::ErrorKind::BadRequest

use crate::protocol::{
    salvage_id, ErrorKind, Payload, Request, Response, UploadAck, UploadBegin, UploadChunk,
    WireError,
};
use crate::server::{Counters, Job, JobTrace, Msg, ServeConfig, Shared};
use hsr_catalog::{BlobWriter, Catalog, CatalogError, TerrainFormat};
use hsr_obs::lock_unpoisoned;
use std::collections::{HashMap, VecDeque};
use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Safety-net wait timeout: shards are woken by `notify` for every
/// cross-thread handoff, so this only bounds how long a lost wakeup
/// (which should be impossible) could delay shutdown.
const WAIT_TICK: Duration = Duration::from_millis(500);

/// Bytes read per `read` call while draining a readable socket.
const READ_CHUNK: usize = 8 * 1024;

/// Most `READ_CHUNK`s drained from one connection per wake. A firehose
/// client cannot monopolize its shard: past the budget the connection is
/// simply re-armed, and the still-full kernel buffer makes the next
/// `wait` return it immediately — other connections get served in
/// between.
const READ_BUDGET: usize = 16;

/// How long a stopping shard keeps flushing pending outgoing bytes
/// (shutdown answers already enqueued) before closing everything.
const FLUSH_GRACE: Duration = Duration::from_millis(250);

/// One connection's bounded outgoing queue plus the handle a worker
/// needs to wake the owning shard. Shared: the shard drains it, any
/// worker answering one of its requests fills it.
pub(crate) struct Reply {
    out: Mutex<OutBuf>,
    /// Outgoing-queue capacity in bytes; exceeding it condemns the
    /// connection (slow-consumer policy).
    cap: usize,
    /// The connection's key in its shard.
    key: usize,
    shard: Arc<ShardHandle>,
    counters: Arc<Counters>,
}

#[derive(Default)]
struct OutBuf {
    queue: VecDeque<u8>,
    /// Set when the queue overflowed: the connection is condemned, no
    /// further bytes are accepted, and the shard closes it on its next
    /// wake.
    dropped: bool,
}

impl Reply {
    /// Serializes `response` into the outgoing queue and wakes the
    /// owning shard. Never blocks: a queue past its cap condemns the
    /// connection instead (counted once in `dropped_slow`).
    ///
    /// The cap bounds *backlog*, not a single answer: an empty queue
    /// accepts any one response even when it alone exceeds the cap
    /// (otherwise a well-behaved ping-pong client could be condemned by
    /// one large report). Per-connection memory stays bounded by
    /// `max(cap, largest single response)`.
    pub(crate) fn send(&self, response: &Response) {
        // A response that cannot serialize still owes this id an answer:
        // degrade to a hand-built error line in the exact shape
        // `Response` serializes to, instead of panicking the worker.
        let mut line = serde_json::to_string(response).unwrap_or_else(|_| {
            format!(
                "{{\"id\":{},\"report\":null,\"payload\":null,\
                 \"error\":{{\"kind\":\"Eval\",\"message\":\
                 \"response failed to serialize\"}}}}",
                response.id
            )
        });
        line.push('\n');
        {
            let mut out = lock_unpoisoned(&self.out);
            if out.dropped {
                return;
            }
            if !out.queue.is_empty() && out.queue.len() + line.len() > self.cap {
                out.dropped = true;
                // ordering: standalone tally; no data rides on it.
                self.counters.dropped_slow.fetch_add(1, Ordering::Relaxed);
            } else {
                out.queue.extend(line.as_bytes());
            }
        }
        self.shard.mark_dirty(self.key);
    }

    fn is_dropped(&self) -> bool {
        lock_unpoisoned(&self.out).dropped
    }

    /// A reply wired to a throwaway shard, for unit tests that need a
    /// `Job` but never read what was sent.
    #[cfg(test)]
    pub(crate) fn detached_for_tests() -> Arc<Reply> {
        Arc::new(Reply {
            out: Mutex::new(OutBuf::default()),
            cap: usize::MAX,
            key: 0,
            shard: Arc::new(ShardHandle::new().expect("test shard")),
            counters: Arc::new(Counters::default()),
        })
    }
}

/// The cross-thread face of one event-loop shard: the poller to wake,
/// plus the handoff queues the acceptor and the workers push into.
pub(crate) struct ShardHandle {
    poller: polling::Poller,
    /// Keys with fresh outgoing bytes or a condemned connection.
    dirty: Mutex<Vec<usize>>,
    /// Newly accepted connections awaiting adoption.
    incoming: Mutex<Vec<TcpStream>>,
    stop: AtomicBool,
}

impl ShardHandle {
    pub(crate) fn new() -> std::io::Result<ShardHandle> {
        Ok(ShardHandle {
            poller: polling::Poller::new()?,
            dirty: Mutex::new(Vec::new()),
            incoming: Mutex::new(Vec::new()),
            stop: AtomicBool::new(false),
        })
    }

    /// Hands a freshly accepted connection to this shard.
    pub(crate) fn adopt(&self, stream: TcpStream) {
        lock_unpoisoned(&self.incoming).push(stream);
        let _ = self.poller.notify();
    }

    /// Asks the shard loop to flush and exit.
    pub(crate) fn request_stop(&self) {
        // ordering: SeqCst stop flag; see `Server::shutdown`.
        self.stop.store(true, Ordering::SeqCst);
        let _ = self.poller.notify();
    }

    fn mark_dirty(&self, key: usize) {
        lock_unpoisoned(&self.dirty).push(key);
        let _ = self.poller.notify();
    }
}

/// Everything a shard knows about one connection.
struct Conn {
    stream: TcpStream,
    /// Bytes of the current (incomplete) request line.
    inbuf: Vec<u8>,
    /// Oversized-line recovery: drop bytes until the next newline.
    discarding: bool,
    /// The connection's in-flight chunked upload, if any. Dropped with
    /// the connection, which removes the catalog-side staging file.
    upload: Option<UploadSession>,
    reply: Arc<Reply>,
}

/// An in-flight chunked upload: the catalog staging writer plus what the
/// opening [`Request::UploadTerrain`] declared.
struct UploadSession {
    name: String,
    format: TerrainFormat,
    uploader: String,
    /// Total payload size the client declared; chunks past it (or a
    /// final chunk short of it) abort the upload.
    declared: u64,
    writer: BlobWriter,
}

enum IoOutcome {
    /// Connection healthy; `true` iff outgoing bytes are pending.
    Open(bool),
    /// Connection finished (EOF, error, or condemned): close it.
    Closed,
}

/// The body of one event-loop thread.
pub(crate) fn shard_loop(
    shard: &Arc<ShardHandle>,
    shared: &Arc<Shared>,
    admission: &mpsc::SyncSender<Msg>,
    config: &ServeConfig,
) {
    let mut conns: HashMap<usize, Conn> = HashMap::new();
    let mut next_key: usize = 0;
    let mut events: Vec<polling::Event> = Vec::new();
    loop {
        events.clear();
        let _ = shard.poller.wait(&mut events, Some(WAIT_TICK));
        // ordering: SeqCst stop flag; see `Server::shutdown`.
        if shard.stop.load(Ordering::SeqCst) {
            final_flush(&shard.poller, &mut conns);
            return;
        }

        // Adopt connections the acceptor handed over.
        let adopted: Vec<TcpStream> = lock_unpoisoned(&shard.incoming).drain(..).collect();
        for stream in adopted {
            if stream.set_nonblocking(true).is_err() {
                continue; // dead on arrival
            }
            let key = next_key;
            next_key += 1;
            let reply = Arc::new(Reply {
                out: Mutex::new(OutBuf::default()),
                cap: config.outgoing_cap_bytes.max(1024),
                key,
                shard: Arc::clone(shard),
                counters: Arc::clone(&shared.counters),
            });
            if shard
                .poller
                .add(&stream, polling::Event::readable(key))
                .is_err()
            {
                continue;
            }
            conns.insert(
                key,
                Conn { stream, inbuf: Vec::new(), discarding: false, upload: None, reply },
            );
        }

        // Dirty connections (fresh outgoing bytes / condemnations), then
        // readiness events. Servicing is idempotent, so a key appearing
        // in both lists just gets a cheap second pass.
        let dirty: Vec<usize> = lock_unpoisoned(&shard.dirty).drain(..).collect();
        for key in dirty {
            service(&mut conns, key, false, shard, shared, admission, config);
        }
        for event in &events {
            service(&mut conns, event.key, event.readable, shard, shared, admission, config);
        }
    }
}

/// Services one connection: drains readable bytes (when `readable`),
/// always attempts a write drain, then either closes or re-arms it.
fn service(
    conns: &mut HashMap<usize, Conn>,
    key: usize,
    readable: bool,
    shard: &Arc<ShardHandle>,
    shared: &Arc<Shared>,
    admission: &mpsc::SyncSender<Msg>,
    config: &ServeConfig,
) {
    let Some(conn) = conns.get_mut(&key) else {
        return; // already closed; stale dirty entry or event
    };
    let mut outcome = if conn.reply.is_dropped() {
        IoOutcome::Closed
    } else if readable {
        service_read(conn, shared, admission, config)
    } else {
        IoOutcome::Open(false)
    };
    if let IoOutcome::Open(_) = outcome {
        // Replies may have been enqueued by the read above (or by the
        // worker that marked us dirty): push what the socket will take.
        outcome = service_write(conn);
    }
    match outcome {
        IoOutcome::Closed => {
            if let Some(conn) = conns.remove(&key) {
                let _ = shard.poller.delete(&conn.stream);
                // Dropping the stream closes the socket.
            }
        }
        IoOutcome::Open(write_pending) => {
            let interest = polling::Event { key, readable: true, writable: write_pending };
            if shard.poller.modify(&conn.stream, interest).is_err() {
                if let Some(conn) = conns.remove(&key) {
                    let _ = shard.poller.delete(&conn.stream);
                }
            }
        }
    }
}

/// Nonblocking read drain: pulls up to `READ_BUDGET` chunks, slicing
/// complete lines out and enforcing the line-length cap as bytes arrive.
fn service_read(
    conn: &mut Conn,
    shared: &Arc<Shared>,
    admission: &mpsc::SyncSender<Msg>,
    config: &ServeConfig,
) -> IoOutcome {
    let mut chunk = [0u8; READ_CHUNK];
    for _ in 0..READ_BUDGET {
        match conn.stream.read(&mut chunk) {
            Ok(0) => return IoOutcome::Closed, // client hung up
            Ok(n) => ingest(conn, &chunk[..n], shared, admission, config),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return IoOutcome::Closed,
        }
    }
    IoOutcome::Open(false)
}

/// Splits `bytes` into request lines against the connection's carry
/// buffer, handling each complete line and enforcing the cap on the
/// incomplete remainder.
fn ingest(
    conn: &mut Conn,
    bytes: &[u8],
    shared: &Arc<Shared>,
    admission: &mpsc::SyncSender<Msg>,
    config: &ServeConfig,
) {
    let cap = config.max_line_bytes.max(1);
    let mut rest = bytes;
    while !rest.is_empty() {
        if conn.discarding {
            // Tail of an already-rejected oversized line.
            match rest.iter().position(|&b| b == b'\n') {
                Some(nl) => {
                    conn.discarding = false;
                    rest = &rest[nl + 1..];
                }
                None => return, // still mid-line: drop the whole chunk
            }
            continue;
        }
        match rest.iter().position(|&b| b == b'\n') {
            Some(nl) => {
                let line_len = conn.inbuf.len() + nl;
                if line_len > cap {
                    reject_oversized(conn, line_len, cap, shared);
                    conn.discarding = false; // newline already consumed
                } else if conn.inbuf.is_empty() {
                    handle_line(conn, &rest[..nl], shared, admission, config);
                } else {
                    conn.inbuf.extend_from_slice(&rest[..nl]);
                    let line = std::mem::take(&mut conn.inbuf);
                    handle_line(conn, &line, shared, admission, config);
                }
                conn.inbuf.clear();
                rest = &rest[nl + 1..];
            }
            None => {
                if conn.inbuf.len() + rest.len() > cap {
                    reject_oversized(conn, conn.inbuf.len() + rest.len(), cap, shared);
                    conn.discarding = true;
                    return; // rest of chunk is the oversized line's body
                }
                conn.inbuf.extend_from_slice(rest);
                return;
            }
        }
    }
}

/// Answers an oversized line with `BadRequest` (reserved id 0 — the
/// line was never parsed) and resets the carry buffer. The module
/// contract this enforces: nothing allocates proportionally to what a
/// client streams, newline or not.
fn reject_oversized(conn: &mut Conn, got: usize, cap: usize, shared: &Arc<Shared>) {
    // ordering: standalone tally; no data rides on it.
    shared.counters.malformed.fetch_add(1, Ordering::Relaxed);
    conn.inbuf = Vec::new(); // release the carry allocation too
    conn.reply.send(&Response::err(
        0,
        WireError::new(
            ErrorKind::BadRequest,
            format!("request line exceeds the {cap}-byte cap (≥ {got} bytes)"),
        ),
    ));
}

/// One complete request line: parse, validate the id, then either admit
/// (eval — exactly the PR-5 per-line path, minus the thread it used to
/// run on) or handle inline (admin).
fn handle_line(
    conn: &mut Conn,
    raw: &[u8],
    shared: &Arc<Shared>,
    admission: &mpsc::SyncSender<Msg>,
    config: &ServeConfig,
) {
    // Tracing clock zero: only read when a recorder is installed — the
    // recorder-less fast path takes no timestamps at all.
    let t_start = shared.obs.is_some().then(Instant::now);
    let text = String::from_utf8_lossy(raw);
    let text = text.trim();
    if text.is_empty() {
        return;
    }
    let request: Request = match serde_json::from_str(text) {
        Ok(request) => request,
        Err(e) => {
            // ordering: standalone tally; no data rides on it.
            shared.counters.malformed.fetch_add(1, Ordering::Relaxed);
            conn.reply.send(&Response::err(
                salvage_id(text),
                WireError::new(ErrorKind::BadRequest, format!("unparseable request: {e}")),
            ));
            return;
        }
    };
    let parse_ns = t_start.map(|t0| t0.elapsed().as_nanos() as u64);
    let id = request.id();
    if id == 0 {
        // ordering: standalone tally; no data rides on it.
        shared.counters.malformed.fetch_add(1, Ordering::Relaxed);
        conn.reply.send(&Response::err(
            0,
            WireError::new(
                ErrorKind::BadRequest,
                "id 0 is reserved for answers to unparseable lines",
            ),
        ));
        return;
    }
    // ordering: SeqCst stop flag; see `Server::shutdown`.
    if shared.stop.load(Ordering::SeqCst) {
        conn.reply.send(&Response::err(
            id,
            WireError::new(ErrorKind::ShuttingDown, "server is shutting down"),
        ));
        return;
    }
    let request = match request {
        Request::Eval(eval) => eval,
        admin => return handle_admin(conn, admin, shared, config),
    };
    let trace = t_start.map(|t0| {
        Box::new(JobTrace {
            t_start: t0,
            parse_ns: parse_ns.unwrap_or(0),
            t_admitted: Instant::now(),
            t_dispatched: None,
        })
    });
    let job = Box::new(Job { request, reply: Arc::clone(&conn.reply), trace });
    // `admitted` is counted by the dispatcher at receipt, not here —
    // see the `ServeStats` snapshot-consistency contract.
    match admission.try_send(Msg::Job(job)) {
        Ok(()) => {}
        Err(mpsc::TrySendError::Full(_)) => {
            // ordering: standalone tally; no data rides on it.
            shared.counters.rejected.fetch_add(1, Ordering::Relaxed);
            conn.reply.send(&Response::err(
                id,
                WireError::new(ErrorKind::Overloaded, "admission queue full; retry later"),
            ));
        }
        Err(mpsc::TrySendError::Disconnected(_)) => {
            conn.reply.send(&Response::err(
                id,
                WireError::new(ErrorKind::ShuttingDown, "server is shutting down"),
            ));
        }
    }
}

/// Maps a catalog failure onto the wire: a missing name is the same
/// "unknown terrain" the eval path reports; everything else is
/// [`ErrorKind::Catalog`].
fn catalog_err(e: &CatalogError) -> WireError {
    let kind = match e {
        CatalogError::UnknownName(_) => ErrorKind::UnknownTerrain,
        _ => ErrorKind::Catalog,
    };
    WireError::new(kind, e.to_string())
}

/// Handles one admin request inline on the shard thread. Admin work is
/// metadata-sized — the largest piece, one upload chunk, is bounded by
/// `max_line_bytes` — so it never enters the admission queue and cannot
/// be starved by eval backpressure; the `completed`/`failed` counters
/// stay eval-only.
fn handle_admin(conn: &mut Conn, request: Request, shared: &Arc<Shared>, config: &ServeConfig) {
    let id = request.id();
    if let Request::Stats(_) = request {
        conn.reply
            .send(&Response::with_payload(id, Payload::Stats(shared.stats_snapshot())));
        return;
    }
    if let Request::Metrics(_) = request {
        // Answered even without a recorder (as `enabled: false`), so
        // operators can probe whether tracing is on.
        let snapshot = match shared.obs.as_ref() {
            Some(obs) => obs.recorder.snapshot(),
            None => hsr_obs::MetricsSnapshot::disabled(),
        };
        conn.reply
            .send(&Response::with_payload(id, Payload::Metrics(Box::new(snapshot))));
        return;
    }
    let Some(catalog) = shared.catalog.as_ref() else {
        conn.reply.send(&Response::err(
            id,
            WireError::new(ErrorKind::Catalog, "no catalog is configured on this server"),
        ));
        return;
    };
    match request {
        Request::UploadTerrain(begin) => upload_begin(conn, catalog, begin, config),
        Request::UploadChunk(chunk) => upload_chunk(conn, catalog, shared, chunk, config),
        Request::RegisterTerrain(req) => {
            match catalog.register(&req.name, &req.content, req.format, &req.uploader) {
                Ok(info) => {
                    shared.cache.invalidate(&req.name);
                    conn.reply
                        .send(&Response::with_payload(id, Payload::Terrain(info)));
                }
                Err(e) => conn.reply.send(&Response::err(id, catalog_err(&e))),
            }
        }
        Request::ListTerrains(_) => {
            conn.reply
                .send(&Response::with_payload(id, Payload::Terrains(catalog.list())));
        }
        Request::TerrainInfo(req) => match catalog.get(&req.name) {
            Some(info) => conn
                .reply
                .send(&Response::with_payload(id, Payload::Terrain(info))),
            None => conn.reply.send(&Response::err(
                id,
                WireError::new(
                    ErrorKind::UnknownTerrain,
                    format!("no terrain named `{}` in the catalog", req.name),
                ),
            )),
        },
        Request::DeleteTerrain(req) => match catalog.delete(&req.name) {
            Ok(info) => {
                shared.cache.invalidate(&req.name);
                conn.reply
                    .send(&Response::with_payload(id, Payload::Deleted(info)));
            }
            Err(e) => conn.reply.send(&Response::err(id, catalog_err(&e))),
        },
        Request::Eval(_) | Request::Stats(_) | Request::Metrics(_) => {
            // lint: allow(panic): handle_admin is only called from
            // handle_line, which filters these variants out first; a new
            // call site that forgets is a logic bug worth failing loudly
            // in tests.
            unreachable!("handled by callers")
        }
    }
}

/// Opens a chunked upload on this connection.
fn upload_begin(conn: &mut Conn, catalog: &Arc<Catalog>, begin: UploadBegin, config: &ServeConfig) {
    let id = begin.id;
    if conn.upload.is_some() {
        // The existing session stays live: the offending begin may be a
        // different client thread's mistake, not the uploader's.
        conn.reply.send(&Response::err(
            id,
            WireError::new(
                ErrorKind::BadRequest,
                "an upload is already in progress on this connection",
            ),
        ));
        return;
    }
    if begin.bytes > config.max_upload_bytes {
        conn.reply.send(&Response::err(
            id,
            WireError::new(
                ErrorKind::Catalog,
                format!(
                    "declared size {} exceeds the {}-byte upload cap",
                    begin.bytes, config.max_upload_bytes
                ),
            ),
        ));
        return;
    }
    match catalog.begin_blob() {
        Ok(writer) => {
            conn.upload = Some(UploadSession {
                name: begin.name,
                format: begin.format,
                uploader: begin.uploader,
                declared: begin.bytes,
                writer,
            });
            conn.reply.send(&Response::ack(id));
        }
        Err(e) => conn.reply.send(&Response::err(id, catalog_err(&e))),
    }
}

/// Stages one chunk of the connection's upload; the final chunk commits
/// and registers. Any failure aborts the whole upload (the session is
/// dropped, which removes the staging file) — chunk acknowledgements are
/// ping-pong, so the client sees the abort before sending more.
fn upload_chunk(
    conn: &mut Conn,
    catalog: &Arc<Catalog>,
    shared: &Arc<Shared>,
    chunk: UploadChunk,
    config: &ServeConfig,
) {
    let id = chunk.id;
    let Some(mut session) = conn.upload.take() else {
        conn.reply.send(&Response::err(
            id,
            WireError::new(ErrorKind::BadRequest, "no upload in progress on this connection"),
        ));
        return;
    };
    let data = match crate::b64::decode(&chunk.data) {
        Ok(data) => data,
        Err(e) => {
            conn.reply
                .send(&Response::err(id, WireError::new(ErrorKind::BadRequest, e)));
            return;
        }
    };
    if let Err(e) = session.writer.write(&data) {
        conn.reply.send(&Response::err(id, catalog_err(&e)));
        return;
    }
    let written = session.writer.bytes_written();
    if written > session.declared || written > config.max_upload_bytes {
        conn.reply.send(&Response::err(
            id,
            WireError::new(
                ErrorKind::BadRequest,
                format!(
                    "upload exceeds its declared size ({written} > {} bytes)",
                    session.declared
                ),
            ),
        ));
        return;
    }
    if !chunk.last {
        conn.upload = Some(session);
        conn.reply.send(&Response::ack(id));
        return;
    }
    if written != session.declared {
        conn.reply.send(&Response::err(
            id,
            WireError::new(
                ErrorKind::BadRequest,
                format!("final chunk leaves {written} of {} declared bytes", session.declared),
            ),
        ));
        return;
    }
    let UploadSession { name, format, uploader, writer, .. } = session;
    match catalog.commit_upload(writer, name.clone(), format, uploader) {
        Ok((info, deduped)) => {
            shared.cache.invalidate(&name);
            conn.reply.send(&Response::with_payload(
                id,
                Payload::Upload(UploadAck {
                    name: info.name,
                    content: info.content,
                    bytes: info.bytes,
                    deduped,
                }),
            ));
        }
        Err(e) => conn.reply.send(&Response::err(id, catalog_err(&e))),
    }
}

/// Nonblocking write drain of the outgoing queue.
fn service_write(conn: &mut Conn) -> IoOutcome {
    let mut out = lock_unpoisoned(&conn.reply.out);
    if out.dropped {
        return IoOutcome::Closed;
    }
    while !out.queue.is_empty() {
        let (front, back) = out.queue.as_slices();
        let chunk = if front.is_empty() { back } else { front };
        match conn.stream.write(chunk) {
            Ok(0) => return IoOutcome::Closed,
            Ok(n) => {
                out.queue.drain(..n);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                return IoOutcome::Open(true);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return IoOutcome::Closed,
        }
    }
    IoOutcome::Open(false)
}

/// Shutdown: keep draining pending outgoing bytes (the workers have
/// already enqueued every answer they will ever produce) for a short
/// grace period, then close all connections.
fn final_flush(poller: &polling::Poller, conns: &mut HashMap<usize, Conn>) {
    let deadline = Instant::now() + FLUSH_GRACE;
    loop {
        let mut pending = false;
        conns.retain(|_, conn| match service_write(conn) {
            IoOutcome::Open(p) => {
                pending |= p;
                true
            }
            IoOutcome::Closed => {
                let _ = poller.delete(&conn.stream);
                false
            }
        });
        if !pending || Instant::now() >= deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    for conn in conns.values() {
        let _ = poller.delete(&conn.stream);
    }
    conns.clear();
}
