//! A small blocking client for the wire protocol — what the tests, the
//! load generator, and the examples drive the server with.

use crate::protocol::{
    IdRequest, NameRequest, Payload, RegisterRequest, Request, Response, StatsSnapshot, UploadAck,
    UploadBegin, UploadChunk, WireError,
};
use hsr_catalog::{TerrainFormat, TerrainInfo};
use hsr_core::view::{Report, View};
use std::io::{BufRead as _, BufReader, Write as _};
use std::net::{TcpStream, ToSocketAddrs};

/// Raw bytes per upload chunk, sized so the base64-encoded line stays
/// well under the server's default `max_line_bytes`.
const UPLOAD_CHUNK_BYTES: usize = 48 * 1024;

/// Errors a client call can produce.
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed or dropped.
    Io(std::io::Error),
    /// The server sent something that is not a [`Response`] line.
    Protocol(String),
    /// The server answered with an error response.
    Server(WireError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection: {e}"),
            ClientError::Protocol(what) => write!(f, "protocol: {what}"),
            ClientError::Server(e) => write!(f, "server: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A blocking connection to an [`hsr-serve`](crate) server.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
}

impl Client {
    /// Connects to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(Client { reader: BufReader::new(stream), writer, next_id: 1 })
    }

    /// Sends one raw request line.
    pub fn send(&mut self, request: &Request) -> std::io::Result<()> {
        let mut line = serde_json::to_string(request).expect("requests serialize");
        line.push('\n');
        self.writer.write_all(line.as_bytes())
    }

    /// Reads one response line.
    pub fn recv(&mut self) -> Result<Response, ClientError> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(ClientError::Protocol("server closed the connection".into()));
        }
        serde_json::from_str(line.trim()).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// One request, one response: evaluates `view` against the hosted
    /// terrain `terrain` and waits for the report.
    pub fn eval(&mut self, terrain: &str, view: &View) -> Result<Report, ClientError> {
        let id = self.fresh_id();
        self.send(&Request::eval(id, terrain, view.clone()))?;
        let response = self.recv()?;
        if response.id != id {
            return Err(ClientError::Protocol(format!(
                "response id {} does not answer request {id}",
                response.id
            )));
        }
        response.into_result().map_err(ClientError::Server)
    }

    /// Pipelines a batch: writes every request before reading any
    /// response, then matches responses back to request order by id.
    /// Pipelining is what gives the server's dispatcher companions to
    /// coalesce; a strict request/response ping-pong never batches.
    pub fn eval_pipelined(
        &mut self,
        terrain: &str,
        views: &[View],
    ) -> Result<Vec<Result<Report, WireError>>, ClientError> {
        let ids: Vec<u64> = views.iter().map(|_| self.fresh_id()).collect();
        for (id, view) in ids.iter().zip(views) {
            self.send(&Request::eval(*id, terrain, view.clone()))?;
        }
        let mut by_id: std::collections::HashMap<u64, Result<Report, WireError>> =
            std::collections::HashMap::new();
        for _ in views {
            let response = self.recv()?;
            let id = response.id;
            if by_id.insert(id, response.into_result()).is_some() {
                // A silent overwrite here would drop a report on the
                // floor and surface later as a confusing "no response
                // for request N"; a duplicate id is a protocol breach
                // and is reported as exactly that.
                return Err(ClientError::Protocol(format!("duplicate response id {id}")));
            }
        }
        ids.iter()
            .map(|id| {
                by_id
                    .remove(id)
                    .ok_or_else(|| ClientError::Protocol(format!("no response for request {id}")))
            })
            .collect()
    }

    /// Reads the answer to `id`, surfacing server errors.
    fn expect_reply(&mut self, id: u64) -> Result<Response, ClientError> {
        let response = self.recv()?;
        if response.id != id {
            return Err(ClientError::Protocol(format!(
                "response id {} does not answer request {id}",
                response.id
            )));
        }
        if let Some(error) = response.error {
            return Err(ClientError::Server(error));
        }
        Ok(response)
    }

    /// Snapshots the server's counters ([`Request::Stats`]).
    pub fn stats(&mut self) -> Result<StatsSnapshot, ClientError> {
        let id = self.fresh_id();
        self.send(&Request::Stats(IdRequest { id }))?;
        match self.expect_reply(id)?.payload {
            Some(Payload::Stats(snapshot)) => Ok(snapshot),
            other => Err(ClientError::Protocol(format!("expected stats payload, got {other:?}"))),
        }
    }

    /// Fetches the server's observability snapshot — latency
    /// histograms, event counters, recent and slow span trees. A server
    /// without a recorder answers with `enabled: false` rather than an
    /// error.
    pub fn metrics(&mut self) -> Result<hsr_obs::MetricsSnapshot, ClientError> {
        let id = self.fresh_id();
        self.send(&Request::Metrics(IdRequest { id }))?;
        match self.expect_reply(id)?.payload {
            Some(Payload::Metrics(snapshot)) => Ok(*snapshot),
            other => Err(ClientError::Protocol(format!("expected metrics payload, got {other:?}"))),
        }
    }

    /// Uploads `bytes` to the server's catalog as terrain `name`,
    /// chunked so every line respects the server's line-length cap.
    /// Ping-pong: each chunk is acknowledged before the next is sent.
    pub fn upload_terrain(
        &mut self,
        name: &str,
        format: TerrainFormat,
        uploader: &str,
        bytes: &[u8],
    ) -> Result<UploadAck, ClientError> {
        let id = self.fresh_id();
        self.send(&Request::UploadTerrain(UploadBegin {
            id,
            name: name.into(),
            format,
            uploader: uploader.into(),
            bytes: bytes.len() as u64,
        }))?;
        self.expect_reply(id)?;
        let mut sent = 0usize;
        loop {
            let end = (sent + UPLOAD_CHUNK_BYTES).min(bytes.len());
            let last = end == bytes.len();
            let id = self.fresh_id();
            self.send(&Request::UploadChunk(UploadChunk {
                id,
                data: crate::b64::encode(&bytes[sent..end]),
                last,
            }))?;
            let response = self.expect_reply(id)?;
            sent = end;
            if last {
                return match response.payload {
                    Some(Payload::Upload(ack)) => Ok(ack),
                    other => Err(ClientError::Protocol(format!(
                        "expected upload payload, got {other:?}"
                    ))),
                };
            }
        }
    }

    /// Binds `name` to content already in the server's catalog.
    pub fn register_terrain(
        &mut self,
        name: &str,
        content: &str,
        format: TerrainFormat,
        uploader: &str,
    ) -> Result<TerrainInfo, ClientError> {
        let id = self.fresh_id();
        self.send(&Request::RegisterTerrain(RegisterRequest {
            id,
            name: name.into(),
            content: content.into(),
            format,
            uploader: uploader.into(),
        }))?;
        match self.expect_reply(id)?.payload {
            Some(Payload::Terrain(info)) => Ok(info),
            other => Err(ClientError::Protocol(format!("expected terrain payload, got {other:?}"))),
        }
    }

    /// Lists every cataloged terrain.
    pub fn list_terrains(&mut self) -> Result<Vec<TerrainInfo>, ClientError> {
        let id = self.fresh_id();
        self.send(&Request::ListTerrains(IdRequest { id }))?;
        match self.expect_reply(id)?.payload {
            Some(Payload::Terrains(list)) => Ok(list),
            other => {
                Err(ClientError::Protocol(format!("expected terrains payload, got {other:?}")))
            }
        }
    }

    /// Looks up one cataloged terrain.
    pub fn terrain_info(&mut self, name: &str) -> Result<TerrainInfo, ClientError> {
        let id = self.fresh_id();
        self.send(&Request::TerrainInfo(NameRequest { id, name: name.into() }))?;
        match self.expect_reply(id)?.payload {
            Some(Payload::Terrain(info)) => Ok(info),
            other => Err(ClientError::Protocol(format!("expected terrain payload, got {other:?}"))),
        }
    }

    /// Unbinds `name` from the server's catalog; returns the removed
    /// entry.
    pub fn delete_terrain(&mut self, name: &str) -> Result<TerrainInfo, ClientError> {
        let id = self.fresh_id();
        self.send(&Request::DeleteTerrain(NameRequest { id, name: name.into() }))?;
        match self.expect_reply(id)?.payload {
            Some(Payload::Deleted(info)) => Ok(info),
            other => Err(ClientError::Protocol(format!("expected deleted payload, got {other:?}"))),
        }
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        // Skip the reserved 0 on wraparound so it can never collide
        // with the server's answers to unparseable lines.
        self.next_id = self.next_id.wrapping_add(1).max(1);
        assert_ne!(id, 0, "id 0 is reserved for the wire protocol");
        id
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn fresh_ids_never_emit_the_reserved_zero() {
        let stream = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            std::net::TcpStream::connect(listener.local_addr().unwrap()).unwrap()
        };
        let mut client = super::Client {
            reader: std::io::BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
            next_id: u64::MAX,
        };
        assert_eq!(client.fresh_id(), u64::MAX);
        // Wraparound lands on 1, not the reserved 0.
        assert_eq!(client.fresh_id(), 1);
        assert_eq!(client.fresh_id(), 2);
    }
}
