//! The wire protocol: newline-delimited JSON over TCP.
//!
//! One connection carries any number of requests; each line is one JSON
//! document. The client writes [`Request`] lines and reads [`Response`]
//! lines. Responses are **not** guaranteed to arrive in request order —
//! coalesced batches complete independently — so every request carries a
//! client-chosen [`Request::id`] that its response echoes. The payload
//! types mirror the library vocabulary directly: a request wraps an
//! [`hsr_core::view::View`] (projection + per-view pipeline config) and
//! a successful response carries the full [`hsr_core::view::Report`],
//! bit-identical to what a local `Scene::session().eval(view)` of the
//! same terrain returns (the JSON float codec is round-trip exact for
//! finite values).

use hsr_core::view::{Report, View};

/// One visibility query: evaluate `view` against the hosted terrain
/// named `terrain`.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Request {
    /// Client-chosen correlation id, echoed in the [`Response`]. Ids are
    /// opaque to the server; clients pipelining requests on one
    /// connection should keep them distinct.
    pub id: u64,
    /// Name of a terrain registered with the server.
    pub terrain: String,
    /// The view to evaluate: projection plus per-view pipeline
    /// configuration.
    pub view: View,
}

/// Why a request failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ErrorKind {
    /// The admission queue was full — the documented backpressure
    /// behavior: the server rejects immediately instead of buffering
    /// without bound. Retry later (ideally with jitter).
    Overloaded,
    /// The request line was not a valid [`Request`] document. The echoed
    /// id is 0 because none could be parsed.
    BadRequest,
    /// No terrain with the requested name is registered.
    UnknownTerrain,
    /// The terrain exists but could not be prepared for evaluation
    /// (validation or tile-store failure).
    Prepare,
    /// The evaluation itself failed (malformed view, viewpoint inside
    /// the scene, …).
    Eval,
    /// The server is shutting down.
    ShuttingDown,
}

/// A failed request: machine-readable kind plus human-readable detail.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WireError {
    /// What class of failure this is.
    pub kind: ErrorKind,
    /// Human-readable detail.
    pub message: String,
}

impl WireError {
    /// A new error.
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> WireError {
        WireError { kind, message: message.into() }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}: {}", self.kind, self.message)
    }
}

/// The answer to one [`Request`]: the echoed id plus exactly one of
/// `report` (success) or `error`.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct Response {
    /// The id of the request this answers (0 for unparseable requests).
    pub id: u64,
    /// The evaluation result on success.
    pub report: Option<Report>,
    /// The failure on error.
    pub error: Option<WireError>,
}

impl Response {
    /// A success response.
    pub fn ok(id: u64, report: Report) -> Response {
        Response { id, report: Some(report), error: None }
    }

    /// A failure response.
    pub fn err(id: u64, error: WireError) -> Response {
        Response { id, report: None, error: Some(error) }
    }

    /// Splits into `Ok(report)` / `Err(error)`.
    pub fn into_result(self) -> Result<Report, WireError> {
        match (self.report, self.error) {
            (Some(report), _) => Ok(report),
            (None, Some(error)) => Err(error),
            (None, None) => Err(WireError::new(
                ErrorKind::BadRequest,
                "malformed response: neither report nor error",
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsr_geometry::Point3;

    #[test]
    fn requests_roundtrip_as_single_lines() {
        let req = Request {
            id: 7,
            terrain: "alps".into(),
            view: View::viewshed(Point3::new(40.0, 3.0, 9.0), vec![Point3::new(1.0, 2.0, 3.0)]),
        };
        let line = serde_json::to_string(&req).unwrap();
        assert!(!line.contains('\n'), "wire documents must be single lines");
        let back: Request = serde_json::from_str(&line).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn responses_split_into_results() {
        let err = Response::err(3, WireError::new(ErrorKind::Overloaded, "queue full"));
        let line = serde_json::to_string(&err).unwrap();
        let back: Response = serde_json::from_str(&line).unwrap();
        assert_eq!(back.id, 3);
        assert_eq!(back.into_result().unwrap_err().kind, ErrorKind::Overloaded);
    }
}
