//! The wire protocol: newline-delimited JSON over TCP.
//!
//! One connection carries any number of requests; each line is one JSON
//! document. The client writes [`Request`] lines and reads [`Response`]
//! lines. Responses are **not** guaranteed to arrive in request order —
//! coalesced batches complete independently — so every request carries a
//! client-chosen id that its response echoes. The payload types mirror
//! the library vocabulary directly: an eval request wraps an
//! [`hsr_core::view::View`] (projection + per-view pipeline config) and
//! a successful response carries the full [`hsr_core::view::Report`],
//! bit-identical to what a local `Scene::session().eval(view)` of the
//! same terrain returns (the JSON float codec is round-trip exact for
//! finite values).
//!
//! # Request encoding
//!
//! The original protocol had exactly one request shape — the bare
//! `{"id":…,"terrain":…,"view":…}` eval object — and deployed clients
//! still speak it. [`Request`] therefore keeps that bare object as the
//! encoding of [`Request::Eval`], while every admin message added with
//! the catalog (upload, register, list, info, delete, stats) uses the
//! externally tagged form `{"UploadTerrain":{…}}`. The two are
//! distinguished by the first object key, so the eval fast path costs
//! nothing and old traffic decodes unchanged.
//!
//! Uploads are **chunked**: [`Request::UploadTerrain`] declares name,
//! format, uploader, and total size, then [`Request::UploadChunk`] lines
//! carry base64 payload slices, each small enough that the server's
//! `max_line_bytes` cap still bounds per-connection memory. Every chunk
//! is acknowledged; the final chunk's response carries the committed
//! [`hsr_catalog::TerrainInfo`] in [`Payload::Upload`].
//!
//! # Reserved id 0
//!
//! Request id **0 is reserved for the server**: it is the id echoed on
//! error responses to lines so malformed that no client id could be
//! recovered (see [`salvage_id`]). A pipelined client that used id 0
//! itself could not tell such an error apart from the answer to its own
//! request, so the server rejects id-0 requests with
//! [`ErrorKind::BadRequest`] and well-behaved clients
//! ([`Client`](crate::client::Client)) never emit it. When a line *is*
//! valid JSON but fails to decode as a [`Request`] (for example a
//! malformed `view`), the server salvages the client's id from the text
//! so the error lands on the request that caused it.

use crate::catalog::PreparedStats;
use crate::server::ServeStats;
use hsr_catalog::{CatalogStats, TerrainFormat, TerrainInfo};
use hsr_core::view::{Report, View};
use hsr_obs::MetricsSnapshot;

/// One visibility query: evaluate `view` against the hosted terrain
/// named `terrain`. On the wire this is the bare legacy object
/// `{"id":…,"terrain":…,"view":…}` (see [`Request::Eval`]).
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EvalRequest {
    /// Client-chosen correlation id, echoed in the [`Response`]. Ids are
    /// opaque to the server apart from one rule: **id 0 is reserved**
    /// for error responses to unrecoverable lines, and requests using it
    /// are rejected with [`ErrorKind::BadRequest`]. Clients pipelining
    /// requests on one connection should keep their ids distinct.
    pub id: u64,
    /// Name of a terrain registered with the server.
    pub terrain: String,
    /// The view to evaluate: projection plus per-view pipeline
    /// configuration.
    pub view: View,
}

/// Opens a chunked terrain upload on this connection.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct UploadBegin {
    /// Correlation id (the begin is acknowledged on its own).
    pub id: u64,
    /// Name to register the terrain under once the upload commits.
    pub name: String,
    /// How the uploaded bytes decode into a servable terrain.
    pub format: TerrainFormat,
    /// Provenance: who is uploading.
    pub uploader: String,
    /// Declared total payload size in bytes. The server rejects uploads
    /// that exceed the declaration (or its own `max_upload_bytes` cap)
    /// and refuses commits that fall short of it.
    pub bytes: u64,
}

/// One slice of an in-flight upload's payload.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct UploadChunk {
    /// Correlation id (every chunk is acknowledged individually).
    pub id: u64,
    /// Base64 (standard alphabet, padded) slice of the raw payload.
    pub data: String,
    /// True on the final chunk: the server validates, commits, and
    /// registers, answering with [`Payload::Upload`].
    pub last: bool,
}

/// Binds a name to content already in the catalog — the alias/rename
/// path that moves no payload bytes.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RegisterRequest {
    /// Correlation id.
    pub id: u64,
    /// Name to bind.
    pub name: String,
    /// Lowercase-hex SHA-256 of an existing blob.
    pub content: String,
    /// How the blob decodes into a servable terrain.
    pub format: TerrainFormat,
    /// Provenance: who is registering.
    pub uploader: String,
}

/// A request addressing one catalog entry by name.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct NameRequest {
    /// Correlation id.
    pub id: u64,
    /// The entry's name.
    pub name: String,
}

/// A request with no operand beyond its id.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct IdRequest {
    /// Correlation id.
    pub id: u64,
}

/// One request line.
///
/// [`Request::Eval`] encodes as the bare legacy object; every other
/// variant is externally tagged (`{"ListTerrains":{"id":7}}`). See the
/// [module docs](self) for the compatibility rationale.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// A visibility query (the original protocol, encoding unchanged).
    Eval(EvalRequest),
    /// Open a chunked terrain upload.
    UploadTerrain(UploadBegin),
    /// One payload slice of the connection's in-flight upload.
    UploadChunk(UploadChunk),
    /// Bind a name to existing catalog content.
    RegisterTerrain(RegisterRequest),
    /// List every cataloged terrain ([`Payload::Terrains`]).
    ListTerrains(IdRequest),
    /// Look up one cataloged terrain ([`Payload::Terrain`]).
    TerrainInfo(NameRequest),
    /// Unbind a name ([`Payload::Deleted`] echoes the removed entry).
    DeleteTerrain(NameRequest),
    /// Snapshot the server's counters ([`Payload::Stats`]).
    Stats(IdRequest),
    /// Snapshot the observability recorder — latency histograms, event
    /// counters, and recent/slow span trees ([`Payload::Metrics`]).
    /// Servers built without a recorder answer a snapshot with
    /// `enabled: false` rather than an error, so operators can probe
    /// whether tracing is on.
    Metrics(IdRequest),
}

impl Request {
    /// A visibility query (the common case).
    pub fn eval(id: u64, terrain: impl Into<String>, view: View) -> Request {
        Request::Eval(EvalRequest { id, terrain: terrain.into(), view })
    }

    /// The correlation id this request carries.
    pub fn id(&self) -> u64 {
        match self {
            Request::Eval(r) => r.id,
            Request::UploadTerrain(r) => r.id,
            Request::UploadChunk(r) => r.id,
            Request::RegisterTerrain(r) => r.id,
            Request::ListTerrains(r) => r.id,
            Request::TerrainInfo(r) => r.id,
            Request::DeleteTerrain(r) => r.id,
            Request::Stats(r) => r.id,
            Request::Metrics(r) => r.id,
        }
    }
}

impl From<EvalRequest> for Request {
    fn from(r: EvalRequest) -> Request {
        Request::Eval(r)
    }
}

/// The admin tag names — any other first key means the bare eval shape.
const TAGS: [&str; 8] = [
    "UploadTerrain",
    "UploadChunk",
    "RegisterTerrain",
    "ListTerrains",
    "TerrainInfo",
    "DeleteTerrain",
    "Stats",
    "Metrics",
];

impl serde::Serialize for Request {
    fn serialize(&self, s: &mut serde::ser::Serializer) {
        fn tagged<T: serde::Serialize>(s: &mut serde::ser::Serializer, tag: &str, body: &T) {
            s.begin_object();
            s.key(tag);
            body.serialize(s);
            s.end_value();
            s.end_object();
        }
        match self {
            // The legacy shape: a bare object, no tag.
            Request::Eval(r) => r.serialize(s),
            Request::UploadTerrain(r) => tagged(s, "UploadTerrain", r),
            Request::UploadChunk(r) => tagged(s, "UploadChunk", r),
            Request::RegisterTerrain(r) => tagged(s, "RegisterTerrain", r),
            Request::ListTerrains(r) => tagged(s, "ListTerrains", r),
            Request::TerrainInfo(r) => tagged(s, "TerrainInfo", r),
            Request::DeleteTerrain(r) => tagged(s, "DeleteTerrain", r),
            Request::Stats(r) => tagged(s, "Stats", r),
            Request::Metrics(r) => tagged(s, "Metrics", r),
        }
    }
}

impl serde::Deserialize for Request {
    fn deserialize(d: &mut serde::de::Deserializer<'_>) -> Result<Self, serde::de::Error> {
        d.expect(b'{')?;
        if d.eat(b'}') {
            return Err(d.error("empty object is not a request"));
        }
        // One forward pass: the first key decides the shape. Tag names
        // never collide with eval field names, so this is unambiguous.
        let first = d.parse_string()?;
        d.expect(b':')?;
        if TAGS.contains(&first.as_str()) {
            let req = match first.as_str() {
                "UploadTerrain" => Request::UploadTerrain(UploadBegin::deserialize(d)?),
                "UploadChunk" => Request::UploadChunk(UploadChunk::deserialize(d)?),
                "RegisterTerrain" => Request::RegisterTerrain(RegisterRequest::deserialize(d)?),
                "ListTerrains" => Request::ListTerrains(IdRequest::deserialize(d)?),
                "TerrainInfo" => Request::TerrainInfo(NameRequest::deserialize(d)?),
                "DeleteTerrain" => Request::DeleteTerrain(NameRequest::deserialize(d)?),
                "Stats" => Request::Stats(IdRequest::deserialize(d)?),
                _ => Request::Metrics(IdRequest::deserialize(d)?),
            };
            d.expect(b'}')?;
            return Ok(req);
        }
        // The bare eval object, with `first` (and its ':') consumed.
        let mut id = None;
        let mut terrain = None;
        let mut view = None;
        let mut key = first;
        loop {
            match key.as_str() {
                "id" => id = Some(u64::deserialize(d)?),
                "terrain" => terrain = Some(String::deserialize(d)?),
                "view" => view = Some(View::deserialize(d)?),
                _ => d.skip_value()?,
            }
            if !d.eat(b',') {
                break;
            }
            key = d.parse_string()?;
            d.expect(b':')?;
        }
        d.expect(b'}')?;
        Ok(Request::Eval(EvalRequest {
            id: id.ok_or_else(|| d.error("missing field `id`"))?,
            terrain: terrain.ok_or_else(|| d.error("missing field `terrain`"))?,
            view: view.ok_or_else(|| d.error("missing field `view`"))?,
        }))
    }
}

/// Why a request failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ErrorKind {
    /// The admission queue was full — the documented backpressure
    /// behavior: the server rejects immediately instead of buffering
    /// without bound. Retry later (ideally with jitter).
    Overloaded,
    /// The request line was not a valid [`Request`] document (or used
    /// the reserved id 0, or exceeded the server's line-length cap, or
    /// broke the upload chunking discipline). The echoed id is the
    /// client's where one could be salvaged from the line
    /// ([`salvage_id`]), otherwise the reserved 0.
    BadRequest,
    /// No terrain with the requested name is registered (statically or
    /// in the catalog).
    UnknownTerrain,
    /// The terrain exists but could not be prepared for evaluation
    /// (validation or tile-store failure).
    Prepare,
    /// The evaluation itself failed (malformed view, viewpoint inside
    /// the scene, …).
    Eval,
    /// A catalog operation failed: the server has no catalog configured,
    /// the payload failed validation, or the catalog I/O itself failed.
    Catalog,
    /// The server is shutting down.
    ShuttingDown,
}

/// A failed request: machine-readable kind plus human-readable detail.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WireError {
    /// What class of failure this is.
    pub kind: ErrorKind,
    /// Human-readable detail.
    pub message: String,
}

impl WireError {
    /// A new error.
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> WireError {
        WireError { kind, message: message.into() }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}: {}", self.kind, self.message)
    }
}

/// Best-effort recovery of the client id from a line that failed to
/// decode as a [`Request`].
///
/// Scans for a top-level `"id"` key with an unsigned-integer value,
/// respecting strings and nesting (an `"id"` inside the `view` object —
/// or a *value* `"id"` — is never matched). Admin requests nest their id
/// one level down inside the tag object, so a malformed admin line
/// usually salvages the reserved 0 — acceptable for a best-effort path
/// whose answer is always "this line was garbage". Returns the reserved
/// 0 when nothing can be salvaged, which is exactly what the server then
/// echoes in its [`ErrorKind::BadRequest`] response: an id the client
/// provably did not use for any well-formed request.
pub fn salvage_id(line: &str) -> u64 {
    let bytes = line.as_bytes();
    let mut depth = 0usize;
    let mut i = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            b'{' | b'[' => depth += 1,
            b'}' | b']' => depth = depth.saturating_sub(1),
            b'"' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'"' {
                    if bytes[j] == b'\\' {
                        j += 1;
                    }
                    j += 1;
                }
                if j >= bytes.len() {
                    return 0; // unterminated string
                }
                let key_depth = depth;
                let key = &bytes[start..j];
                i = j + 1;
                while i < bytes.len() && bytes[i].is_ascii_whitespace() {
                    i += 1;
                }
                // Only keys are followed by ':'; values never are.
                if key_depth == 1 && key == b"id" && bytes.get(i) == Some(&b':') {
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_whitespace() {
                        i += 1;
                    }
                    let digits_start = i;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    return line[digits_start..i].parse().unwrap_or(0);
                }
                continue;
            }
            _ => {}
        }
        i += 1;
    }
    0
}

/// Acknowledgement of a committed upload.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct UploadAck {
    /// The registered name.
    pub name: String,
    /// Lowercase-hex SHA-256 content address the bytes landed on.
    pub content: String,
    /// Payload size in bytes.
    pub bytes: u64,
    /// True when identical content already existed — the upload wrote
    /// zero new blob bytes and only a metadata record was appended.
    pub deduped: bool,
}

/// One snapshot of every server-side counter family, answered to
/// [`Request::Stats`]. Benches and operators read this instead of
/// scraping `/proc` or test-side state.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct StatsSnapshot {
    /// Connection/admission/dispatch counters.
    pub serve: ServeStats,
    /// Prepared-scene cache counters.
    pub prepared: PreparedStats,
    /// Catalog counters, when a catalog is configured.
    pub catalog: Option<CatalogStats>,
}

/// The data payload of a successful admin response. Eval responses
/// carry their [`Report`] in [`Response::report`] instead — the legacy
/// shape, unchanged.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Payload {
    /// A committed upload ([`Request::UploadTerrain`] final chunk).
    Upload(UploadAck),
    /// The full catalog listing ([`Request::ListTerrains`]).
    Terrains(Vec<TerrainInfo>),
    /// One catalog entry ([`Request::TerrainInfo`],
    /// [`Request::RegisterTerrain`]).
    Terrain(TerrainInfo),
    /// The entry a [`Request::DeleteTerrain`] removed.
    Deleted(TerrainInfo),
    /// The counter snapshot ([`Request::Stats`]).
    Stats(StatsSnapshot),
    /// The observability snapshot ([`Request::Metrics`]): histograms,
    /// event counters, recent and slow span trees. Boxed — it is by far
    /// the largest payload variant.
    Metrics(Box<MetricsSnapshot>),
}

/// The answer to one [`Request`]: the echoed id plus exactly one of
/// `report` (eval success), `payload` (admin success), or `error` —
/// except intermediate upload acknowledgements, which are all-`None`
/// ("chunk accepted, keep going").
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct Response {
    /// The id of the request this answers (the reserved 0 for lines no
    /// client id could be salvaged from).
    pub id: u64,
    /// The evaluation result on eval success.
    pub report: Option<Report>,
    /// The data payload on admin success.
    pub payload: Option<Payload>,
    /// The failure on error.
    pub error: Option<WireError>,
}

impl Response {
    /// A successful eval response.
    pub fn ok(id: u64, report: Report) -> Response {
        Response { id, report: Some(report), payload: None, error: None }
    }

    /// A successful admin response.
    pub fn with_payload(id: u64, payload: Payload) -> Response {
        Response { id, report: None, payload: Some(payload), error: None }
    }

    /// A bare acknowledgement (intermediate upload chunks).
    pub fn ack(id: u64) -> Response {
        Response { id, report: None, payload: None, error: None }
    }

    /// A failure response.
    pub fn err(id: u64, error: WireError) -> Response {
        Response { id, report: None, payload: None, error: Some(error) }
    }

    /// Splits into `Ok(report)` / `Err(error)`. Admin responses (no
    /// report) error with [`ErrorKind::BadRequest`]; use
    /// [`Response::payload`] for those.
    pub fn into_result(self) -> Result<Report, WireError> {
        match (self.report, self.error) {
            (Some(report), _) => Ok(report),
            (None, Some(error)) => Err(error),
            (None, None) => Err(WireError::new(
                ErrorKind::BadRequest,
                "malformed response: neither report nor error",
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsr_geometry::Point3;

    fn some_view() -> View {
        View::viewshed(Point3::new(40.0, 3.0, 9.0), vec![Point3::new(1.0, 2.0, 3.0)])
    }

    #[test]
    fn requests_roundtrip_as_single_lines() {
        let requests = vec![
            Request::eval(7, "alps", some_view()),
            Request::UploadTerrain(UploadBegin {
                id: 8,
                name: "alps".into(),
                format: TerrainFormat::TiledGrid { tile_size: 8, levels: 2 },
                uploader: "ops".into(),
                bytes: 4096,
            }),
            Request::UploadChunk(UploadChunk { id: 9, data: "AAECaGVsbG8=".into(), last: true }),
            Request::RegisterTerrain(RegisterRequest {
                id: 10,
                name: "alias".into(),
                content: "ab".repeat(32),
                format: TerrainFormat::GridBin,
                uploader: "ops".into(),
            }),
            Request::ListTerrains(IdRequest { id: 11 }),
            Request::TerrainInfo(NameRequest { id: 12, name: "alps".into() }),
            Request::DeleteTerrain(NameRequest { id: 13, name: "alps".into() }),
            Request::Stats(IdRequest { id: 14 }),
            Request::Metrics(IdRequest { id: 15 }),
        ];
        for (want_id, req) in (7u64..).zip(&requests) {
            let line = serde_json::to_string(req).unwrap();
            assert!(!line.contains('\n'), "wire documents must be single lines");
            let back: Request = serde_json::from_str(&line).unwrap();
            assert_eq!(&back, req);
            assert_eq!(back.id(), want_id);
        }
    }

    #[test]
    fn eval_requests_keep_the_legacy_bare_object_shape() {
        let line = serde_json::to_string(&Request::eval(7, "alps", some_view())).unwrap();
        // No tag wrapper: deployed clients' bare objects stay valid.
        assert!(line.starts_with(r#"{"id":7,"terrain":"alps","view":"#), "got {line}");
        // Field order from such clients is arbitrary; unknown keys skip.
        let view_json = serde_json::to_string(&some_view()).unwrap();
        let shuffled =
            format!(r#"{{"view":{view_json},"extra":[1,{{"a":2}}],"terrain":"t","id":3}}"#);
        let back: Request = serde_json::from_str(&shuffled).unwrap();
        assert_eq!(back.id(), 3);
        assert!(matches!(back, Request::Eval(ref e) if e.terrain == "t"));
    }

    #[test]
    fn malformed_requests_fail_to_decode() {
        for line in [
            "{}",
            r#"{"id":1,"terrain":"t"}"#,
            r#"{"NoSuchTag":{"id":1}}"#,
            r#"{"Stats":{"id":1},"extra":true}"#,
        ] {
            assert!(serde_json::from_str::<Request>(line).is_err(), "accepted {line}");
        }
    }

    #[test]
    fn salvage_id_recovers_top_level_ids_only() {
        // A view that fails to decode, with a recoverable client id.
        assert_eq!(salvage_id(r#"{"id":42,"terrain":"t","view":"broken"}"#), 42);
        assert_eq!(salvage_id(r#"{ "terrain" : "t" , "id" : 7 }"#), 7);
        // Nested "id" keys belong to the view, not the request.
        assert_eq!(salvage_id(r#"{"view":{"id":9},"terrain":"t"}"#), 0);
        // A string *value* "id" is not a key, even at depth 1.
        assert_eq!(salvage_id(r#"{"terrain":"id","view":{"id":3}}"#), 0);
        // Escapes inside strings do not desynchronize the scan.
        assert_eq!(salvage_id(r#"{"terrain":"a\"id\":5,","id":11}"#), 11);
        // Garbage, non-integer ids, and unterminated strings salvage 0.
        assert_eq!(salvage_id("this is not json"), 0);
        assert_eq!(salvage_id(r#"{"id":"seven"}"#), 0);
        assert_eq!(salvage_id(r#"{"id":-3}"#), 0);
        assert_eq!(salvage_id(r#"{"id"#), 0);
    }

    #[test]
    fn responses_split_into_results() {
        let err = Response::err(3, WireError::new(ErrorKind::Overloaded, "queue full"));
        let line = serde_json::to_string(&err).unwrap();
        let back: Response = serde_json::from_str(&line).unwrap();
        assert_eq!(back.id, 3);
        assert_eq!(back.into_result().unwrap_err().kind, ErrorKind::Overloaded);
    }

    #[test]
    fn payload_responses_roundtrip() {
        let info = TerrainInfo {
            name: "alps".into(),
            content: "cd".repeat(32),
            format: TerrainFormat::TinObj,
            uploader: "ops".into(),
            registered_unix_ms: 1_700_000_000_000,
            bytes: 12345,
        };
        let resp = Response::with_payload(5, Payload::Terrains(vec![info.clone()]));
        let back: Response = serde_json::from_str(&serde_json::to_string(&resp).unwrap()).unwrap();
        assert_eq!(back.id, 5);
        match back.payload {
            Some(Payload::Terrains(list)) => assert_eq!(list, vec![info]),
            other => panic!("wrong payload: {other:?}"),
        }
        // Bare acknowledgements are all-None.
        let ack = Response::ack(6);
        let back: Response = serde_json::from_str(&serde_json::to_string(&ack).unwrap()).unwrap();
        assert!(back.report.is_none() && back.payload.is_none() && back.error.is_none());
    }

    #[test]
    fn metrics_payloads_roundtrip() {
        // A recorder-less server answers the disabled snapshot; it must
        // survive the wire like any other payload.
        let resp =
            Response::with_payload(8, Payload::Metrics(Box::new(MetricsSnapshot::disabled())));
        let back: Response = serde_json::from_str(&serde_json::to_string(&resp).unwrap()).unwrap();
        match back.payload {
            Some(Payload::Metrics(snap)) => assert!(!snap.enabled),
            other => panic!("wrong payload: {other:?}"),
        }
    }
}
