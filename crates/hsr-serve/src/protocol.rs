//! The wire protocol: newline-delimited JSON over TCP.
//!
//! One connection carries any number of requests; each line is one JSON
//! document. The client writes [`Request`] lines and reads [`Response`]
//! lines. Responses are **not** guaranteed to arrive in request order —
//! coalesced batches complete independently — so every request carries a
//! client-chosen [`Request::id`] that its response echoes. The payload
//! types mirror the library vocabulary directly: a request wraps an
//! [`hsr_core::view::View`] (projection + per-view pipeline config) and
//! a successful response carries the full [`hsr_core::view::Report`],
//! bit-identical to what a local `Scene::session().eval(view)` of the
//! same terrain returns (the JSON float codec is round-trip exact for
//! finite values).
//!
//! # Reserved id 0
//!
//! Request id **0 is reserved for the server**: it is the id echoed on
//! error responses to lines so malformed that no client id could be
//! recovered (see [`salvage_id`]). A pipelined client that used id 0
//! itself could not tell such an error apart from the answer to its own
//! request, so the server rejects id-0 requests with
//! [`ErrorKind::BadRequest`] and well-behaved clients
//! ([`Client`](crate::client::Client)) never emit it. When a line *is*
//! valid JSON but fails to decode as a [`Request`] (for example a
//! malformed `view`), the server salvages the client's id from the text
//! so the error lands on the request that caused it.

use hsr_core::view::{Report, View};

/// One visibility query: evaluate `view` against the hosted terrain
/// named `terrain`.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Request {
    /// Client-chosen correlation id, echoed in the [`Response`]. Ids are
    /// opaque to the server apart from one rule: **id 0 is reserved**
    /// for error responses to unrecoverable lines, and requests using it
    /// are rejected with [`ErrorKind::BadRequest`]. Clients pipelining
    /// requests on one connection should keep their ids distinct.
    pub id: u64,
    /// Name of a terrain registered with the server.
    pub terrain: String,
    /// The view to evaluate: projection plus per-view pipeline
    /// configuration.
    pub view: View,
}

/// Why a request failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ErrorKind {
    /// The admission queue was full — the documented backpressure
    /// behavior: the server rejects immediately instead of buffering
    /// without bound. Retry later (ideally with jitter).
    Overloaded,
    /// The request line was not a valid [`Request`] document (or used
    /// the reserved id 0, or exceeded the server's line-length cap).
    /// The echoed id is the client's where one could be salvaged from
    /// the line ([`salvage_id`]), otherwise the reserved 0.
    BadRequest,
    /// No terrain with the requested name is registered.
    UnknownTerrain,
    /// The terrain exists but could not be prepared for evaluation
    /// (validation or tile-store failure).
    Prepare,
    /// The evaluation itself failed (malformed view, viewpoint inside
    /// the scene, …).
    Eval,
    /// The server is shutting down.
    ShuttingDown,
}

/// A failed request: machine-readable kind plus human-readable detail.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WireError {
    /// What class of failure this is.
    pub kind: ErrorKind,
    /// Human-readable detail.
    pub message: String,
}

impl WireError {
    /// A new error.
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> WireError {
        WireError { kind, message: message.into() }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}: {}", self.kind, self.message)
    }
}

/// Best-effort recovery of the client id from a line that failed to
/// decode as a [`Request`].
///
/// Scans for a top-level `"id"` key with an unsigned-integer value,
/// respecting strings and nesting (an `"id"` inside the `view` object —
/// or a *value* `"id"` — is never matched). Returns the reserved 0 when
/// nothing can be salvaged, which is exactly what the server then echoes
/// in its [`ErrorKind::BadRequest`] response: an id the client
/// provably did not use for any well-formed request.
pub fn salvage_id(line: &str) -> u64 {
    let bytes = line.as_bytes();
    let mut depth = 0usize;
    let mut i = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            b'{' | b'[' => depth += 1,
            b'}' | b']' => depth = depth.saturating_sub(1),
            b'"' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'"' {
                    if bytes[j] == b'\\' {
                        j += 1;
                    }
                    j += 1;
                }
                if j >= bytes.len() {
                    return 0; // unterminated string
                }
                let key_depth = depth;
                let key = &bytes[start..j];
                i = j + 1;
                while i < bytes.len() && bytes[i].is_ascii_whitespace() {
                    i += 1;
                }
                // Only keys are followed by ':'; values never are.
                if key_depth == 1 && key == b"id" && bytes.get(i) == Some(&b':') {
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_whitespace() {
                        i += 1;
                    }
                    let digits_start = i;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    return line[digits_start..i].parse().unwrap_or(0);
                }
                continue;
            }
            _ => {}
        }
        i += 1;
    }
    0
}

/// The answer to one [`Request`]: the echoed id plus exactly one of
/// `report` (success) or `error`.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct Response {
    /// The id of the request this answers (the reserved 0 for lines no
    /// client id could be salvaged from).
    pub id: u64,
    /// The evaluation result on success.
    pub report: Option<Report>,
    /// The failure on error.
    pub error: Option<WireError>,
}

impl Response {
    /// A success response.
    pub fn ok(id: u64, report: Report) -> Response {
        Response { id, report: Some(report), error: None }
    }

    /// A failure response.
    pub fn err(id: u64, error: WireError) -> Response {
        Response { id, report: None, error: Some(error) }
    }

    /// Splits into `Ok(report)` / `Err(error)`.
    pub fn into_result(self) -> Result<Report, WireError> {
        match (self.report, self.error) {
            (Some(report), _) => Ok(report),
            (None, Some(error)) => Err(error),
            (None, None) => Err(WireError::new(
                ErrorKind::BadRequest,
                "malformed response: neither report nor error",
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsr_geometry::Point3;

    #[test]
    fn requests_roundtrip_as_single_lines() {
        let req = Request {
            id: 7,
            terrain: "alps".into(),
            view: View::viewshed(Point3::new(40.0, 3.0, 9.0), vec![Point3::new(1.0, 2.0, 3.0)]),
        };
        let line = serde_json::to_string(&req).unwrap();
        assert!(!line.contains('\n'), "wire documents must be single lines");
        let back: Request = serde_json::from_str(&line).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn salvage_id_recovers_top_level_ids_only() {
        // A view that fails to decode, with a recoverable client id.
        assert_eq!(salvage_id(r#"{"id":42,"terrain":"t","view":"broken"}"#), 42);
        assert_eq!(salvage_id(r#"{ "terrain" : "t" , "id" : 7 }"#), 7);
        // Nested "id" keys belong to the view, not the request.
        assert_eq!(salvage_id(r#"{"view":{"id":9},"terrain":"t"}"#), 0);
        // A string *value* "id" is not a key, even at depth 1.
        assert_eq!(salvage_id(r#"{"terrain":"id","view":{"id":3}}"#), 0);
        // Escapes inside strings do not desynchronize the scan.
        assert_eq!(salvage_id(r#"{"terrain":"a\"id\":5,","id":11}"#), 11);
        // Garbage, non-integer ids, and unterminated strings salvage 0.
        assert_eq!(salvage_id("this is not json"), 0);
        assert_eq!(salvage_id(r#"{"id":"seven"}"#), 0);
        assert_eq!(salvage_id(r#"{"id":-3}"#), 0);
        assert_eq!(salvage_id(r#"{"id"#), 0);
    }

    #[test]
    fn responses_split_into_results() {
        let err = Response::err(3, WireError::new(ErrorKind::Overloaded, "queue full"));
        let line = serde_json::to_string(&err).unwrap();
        let back: Response = serde_json::from_str(&line).unwrap();
        assert_eq!(back.id, 3);
        assert_eq!(back.into_result().unwrap_err().kind, ErrorKind::Overloaded);
    }
}
