//! A concurrent visibility-query service over the HSR pipeline.
//!
//! PRs 2–4 built the evaluation machinery — the multi-view `Session`
//! API, scoped per-view cost accounting, and out-of-core tiled
//! evaluation. This crate is the layer that accepts *requests* and
//! turns them into batched evaluations: the workload of a
//! viewshed/visibility service over massive grid terrains (Haverkort &
//! Toma's setting), made schedulable by the paper's output-size
//! sensitive bound — per-request cost counters arrive with every
//! response.
//!
//! * [`protocol`] — newline-delimited JSON over TCP; [`Request`] wraps
//!   an [`hsr_core::view::View`], [`Response`] carries the full
//!   [`hsr_core::view::Report`], bit-identical to a local evaluation.
//!   Request id 0 is reserved for answers to unparseable lines.
//! * [`server`] + the event-driven connection layer (ISSUE 6) — a
//!   fixed-size set of event-loop shards multiplexes every connection
//!   with nonblocking I/O: capped request-line buffers, bounded
//!   per-connection outgoing queues (a slow reader is disconnected,
//!   never buffered without bound), a bounded admission queue with
//!   immediate [`ErrorKind::Overloaded`] rejection, a dispatcher that
//!   **coalesces** requests targeting the same terrain and compatible
//!   config ([`hsr_core::view::CompatKey`]) into one
//!   `evaluate_batch`/`eval_many` fan-out, and a bounded worker pool
//!   that *enqueues* responses instead of blocking on client sockets.
//! * [`catalog`] — named terrains behind a hard-capped prepared-scene
//!   LRU, **sharded by terrain name** (per-shard bookkeeping locks,
//!   per-terrain prepare locks), with two backends: a monolithic
//!   in-memory TIN, or an out-of-core [`hsr_tile::TiledScene`] so
//!   multi-million-cell terrains serve under the tiled residency cap.
//! * [`client`] — a small blocking client (single-shot and pipelined),
//!   including the admin verbs: chunked uploads, register/list/info/
//!   delete, and a [`StatsSnapshot`] of every server counter family.
//! * Persistence (ISSUE 7) — attach an [`hsr_catalog::Catalog`] via
//!   [`ServerBuilder::catalog_dir`] and terrains uploaded over the wire
//!   survive process restarts: content-addressed blobs plus an
//!   append-only manifest, served through the same prepared-scene LRU
//!   with exact invalidation on overwrite/delete.
//! * Observability (ISSUE 9) — install an [`hsr_obs::Recorder`] via
//!   [`ServerBuilder::observe`] and every served request records a span
//!   tree (parse → queue wait → coalesce → scene lookup → evaluate →
//!   respond, with the pipeline's phase children and cost counters
//!   grafted under `evaluate`) plus per-stage latency histograms;
//!   requests slower than the configured threshold are captured in a
//!   separate bounded ring. [`Request::Metrics`] snapshots all of it
//!   over the wire; without a recorder every touchpoint is one branch.
//!
//! The scoped cost collectors of PR 3 are what make coalescing safe:
//! a view evaluated inside a coalesced batch reports counters
//! bit-identical to a solo evaluation, so batching is purely a
//! throughput decision.
//!
//! ```no_run
//! use hsr_core::view::View;
//! use hsr_serve::{Client, ServerBuilder, TerrainSource};
//! use hsr_terrain::gen;
//!
//! let server = ServerBuilder::new()
//!     .terrain("demo", TerrainSource::Grid(gen::fbm(32, 32, 4, 9.0, 5)))
//!     .bind("127.0.0.1:0")
//!     .unwrap();
//!
//! let mut client = Client::connect(server.local_addr()).unwrap();
//! let report = client.eval("demo", &View::orthographic(0.3)).unwrap();
//! assert!(report.k > 0);
//! server.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod b64;
pub mod catalog;
pub mod client;
mod event_loop;
pub mod protocol;
pub mod server;

pub use catalog::{PreparedCache, PreparedScene, PreparedStats, TerrainSource};
pub use client::{Client, ClientError};
pub use hsr_catalog::{Catalog, CatalogError, CatalogStats, TerrainFormat, TerrainInfo};
pub use hsr_obs::{
    HistSnapshot, MetricsSnapshot, Recorder, RecorderConfig, SpanRecord, TraceRecord,
};
pub use protocol::{ErrorKind, Payload, Request, Response, StatsSnapshot, UploadAck, WireError};
pub use server::{ServeConfig, ServeStats, Server, ServerBuilder};
