//! Base64 (RFC 4648 standard alphabet, padded) for chunked uploads.
//!
//! Terrain payloads are binary; the wire is newline-delimited JSON
//! text. Upload chunks therefore carry base64 — the standard alphabet
//! with `=` padding, strict decoding (no whitespace, no alphabet
//! mixing, padding required), so an encoded chunk is exactly
//! `4 * ceil(n/3)` characters and the server can budget line length
//! precisely.

const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Encodes `bytes` as padded standard-alphabet base64.
pub(crate) fn encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len().div_ceil(3) * 4);
    for chunk in bytes.chunks(3) {
        let b = [
            chunk[0],
            *chunk.get(1).unwrap_or(&0),
            *chunk.get(2).unwrap_or(&0),
        ];
        let n = (u32::from(b[0]) << 16) | (u32::from(b[1]) << 8) | u32::from(b[2]);
        let sextets = [(n >> 18) & 63, (n >> 12) & 63, (n >> 6) & 63, n & 63];
        for (i, &s) in sextets.iter().enumerate() {
            if i <= chunk.len() {
                out.push(ALPHABET[s as usize] as char);
            } else {
                out.push('=');
            }
        }
    }
    out
}

/// Decodes padded standard-alphabet base64, strictly.
pub(crate) fn decode(text: &str) -> Result<Vec<u8>, String> {
    let bytes = text.as_bytes();
    if !bytes.len().is_multiple_of(4) {
        return Err(format!("base64 length {} is not a multiple of 4", bytes.len()));
    }
    let mut out = Vec::with_capacity(bytes.len() / 4 * 3);
    for (at, quad) in bytes.chunks_exact(4).enumerate() {
        let last = (at + 1) * 4 == bytes.len();
        let pad = quad.iter().rev().take_while(|&&b| b == b'=').count();
        if pad > 2 || (pad > 0 && !last) {
            return Err("misplaced base64 padding".to_string());
        }
        let mut n = 0u32;
        for &b in &quad[..4 - pad] {
            let v = match b {
                b'A'..=b'Z' => b - b'A',
                b'a'..=b'z' => b - b'a' + 26,
                b'0'..=b'9' => b - b'0' + 52,
                b'+' => 62,
                b'/' => 63,
                _ => return Err(format!("invalid base64 byte 0x{b:02x}")),
            };
            n = (n << 6) | u32::from(v);
        }
        n <<= 6 * pad as u32;
        let emit = 3 - pad;
        let octets = [(n >> 16) as u8, (n >> 8) as u8, n as u8];
        out.extend_from_slice(&octets[..emit]);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc4648_vectors() {
        let vectors: [(&[u8], &str); 7] = [
            (b"", ""),
            (b"f", "Zg=="),
            (b"fo", "Zm8="),
            (b"foo", "Zm9v"),
            (b"foob", "Zm9vYg=="),
            (b"fooba", "Zm9vYmE="),
            (b"foobar", "Zm9vYmFy"),
        ];
        for (raw, enc) in vectors {
            assert_eq!(encode(raw), enc);
            assert_eq!(decode(enc).unwrap(), raw);
        }
    }

    #[test]
    fn binary_roundtrip_at_every_length() {
        for len in 0..100usize {
            let data: Vec<u8> = (0..len).map(|i| (i * 37 % 256) as u8).collect();
            assert_eq!(decode(&encode(&data)).unwrap(), data, "len {len}");
        }
    }

    #[test]
    fn strict_decoding_rejects_garbage() {
        assert!(decode("Zg=").is_err(), "bad length");
        assert!(decode("Zg==Zm8=").is_err(), "padding mid-stream");
        assert!(decode("Z===").is_err(), "triple padding");
        assert!(decode("Zm 8=").is_err(), "whitespace");
        assert!(decode("Zm9\n").is_err(), "newline");
    }
}
