//! The service: admission, coalescing, workers, backpressure.
//!
//! ```text
//!                        ┌── event-loop shard 0 ──────────────┐
//! clients ──TCP──▶ accept│  poll: nonblocking reads, capped   │
//!   (round-robin) ──────▶│  line buffers ── parse ──try_send──┼──▶ admission
//!                        │  bounded outgoing queues drained   │    queue
//!                        │  on writability ◀─── enqueue ──────┼─┐  (bounded)
//!                        └────────────────────────────────────┘ │    │ full?
//!                        ┌── event-loop shard 1 … N ─────────┐  │    │ reject
//!                        │  (identical; connections sharded) │  │    ▼
//!                        └──────────────────────────────────-┘  │  dispatcher
//!                                                               │    │ groups by
//!                                                               │    ▼ (terrain,
//!                                                               │  rendezvous
//!                                                               │  channel
//!                                                               │    │ CompatKey)
//!                                                               │    ▼
//!                                                               └─ worker pool
//!                                                                  (bounded,
//!                                                                   sharded
//!                                                                   PreparedCache)
//! ```
//!
//! Backpressure is a chain, not a single knob: workers pull coalesced
//! batches from a zero-capacity rendezvous channel, so a busy pool
//! blocks the dispatcher; the dispatcher stops draining the bounded
//! admission queue; and once that queue is full, the event loops reject
//! new requests immediately with [`ErrorKind::Overloaded`] instead of
//! buffering without bound. Nothing in the path allocates
//! proportionally to offered load — request lines are capped at
//! [`ServeConfig::max_line_bytes`], per-connection response queues at
//! [`ServeConfig::outgoing_cap_bytes`] (overflow disconnects the slow
//! client, counted in [`ServeStats::dropped_slow`]), and workers *never
//! block on a client socket*: they enqueue and move on.

use crate::catalog::{PreparedCache, PreparedStats, TerrainSource};
use crate::event_loop::{shard_loop, Reply, ShardHandle};
use crate::protocol::{ErrorKind, StatsSnapshot};
use hsr_catalog::Catalog;
use hsr_core::view::CompatKey;
use hsr_obs::{lock_unpoisoned, Histogram, Recorder, RecorderConfig, SpanRecord, TraceRecord};
use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Service tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Event-loop shards multiplexing the connections (≥ 1). Each is
    /// one thread owning a `poll` set; connections are assigned
    /// round-robin at accept time.
    pub shards: usize,
    /// Worker threads evaluating coalesced batches (≥ 1).
    pub workers: usize,
    /// Admission-queue depth: requests accepted but not yet dispatched.
    /// When full, new requests are rejected with
    /// [`ErrorKind::Overloaded`].
    pub queue_depth: usize,
    /// Most requests coalesced into one dispatch round (≥ 1).
    pub max_batch: usize,
    /// How long the dispatcher waits for companions after the first
    /// request of a round. Zero disables waiting (group only what is
    /// already queued).
    pub batch_window: Duration,
    /// Prepared scenes retained by the LRU (≥ 1).
    pub scene_capacity: usize,
    /// Longest accepted request line in bytes; longer lines are
    /// answered with [`ErrorKind::BadRequest`] (before any newline
    /// arrives) and skipped.
    pub max_line_bytes: usize,
    /// Per-connection outgoing-queue cap in bytes. A connection whose
    /// client reads too slowly for its responses to fit is dropped and
    /// counted in [`ServeStats::dropped_slow`].
    pub outgoing_cap_bytes: usize,
    /// Largest terrain payload one upload may carry (declared *and*
    /// actual; chunked uploads past the cap are aborted mid-stream).
    pub max_upload_bytes: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shards: 2,
            workers: 2,
            queue_depth: 64,
            max_batch: 16,
            batch_window: Duration::from_millis(1),
            scene_capacity: 4,
            max_line_bytes: 1 << 20,     // 1 MiB
            outgoing_cap_bytes: 2 << 20, // 2 MiB
            max_upload_bytes: 64 << 20,  // 64 MiB
        }
    }
}

/// Live service counters (monotonic unless noted).
///
/// # Snapshot consistency
///
/// A snapshot is not a single atomic read of all ten counters, but it
/// is never *torn against causality*: counters are incremented in
/// pipeline order with `Release` and read in **reverse** pipeline order
/// with `Acquire`, so every snapshot satisfies
///
/// `completed + failed ≤ batched_requests ≤ admitted`.
///
/// A request is `admitted` when the dispatcher receives it (not when
/// the shard enqueues it), so an outcome can never be visible before
/// its admission is. At quiescence (no requests in flight) the
/// inequalities close to `completed + failed + unanswerable = admitted`
/// where `unanswerable` counts jobs answered `ShuttingDown` from the
/// drain path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ServeStats {
    /// Connections accepted.
    pub connections: u64,
    /// Well-formed requests admitted to the queue (counted at dispatch
    /// receipt — see the snapshot-consistency contract above).
    pub admitted: u64,
    /// Requests rejected because the admission queue was full.
    pub rejected: u64,
    /// Request lines that did not parse, used the reserved id 0, or
    /// exceeded the line-length cap.
    pub malformed: u64,
    /// Responses written with a report.
    pub completed: u64,
    /// Responses written with an error (excluding rejections).
    pub failed: u64,
    /// Connections dropped because their outgoing queue overflowed (the
    /// slow-consumer policy: disconnect, don't buffer without bound).
    pub dropped_slow: u64,
    /// Dispatch groups evaluated (each is one batched fan-out).
    pub batches: u64,
    /// Requests carried by those groups.
    pub batched_requests: u64,
    /// Largest single group observed.
    pub max_batch_observed: u64,
}

#[derive(Default)]
pub(crate) struct Counters {
    pub(crate) connections: AtomicU64,
    pub(crate) admitted: AtomicU64,
    pub(crate) rejected: AtomicU64,
    pub(crate) malformed: AtomicU64,
    pub(crate) completed: AtomicU64,
    pub(crate) failed: AtomicU64,
    pub(crate) dropped_slow: AtomicU64,
    pub(crate) batches: AtomicU64,
    pub(crate) batched_requests: AtomicU64,
    pub(crate) max_batch_observed: AtomicU64,
}

impl Counters {
    /// Reads the counters in **reverse pipeline order** (outcomes before
    /// dispatch counters before `admitted`). Writers increment in
    /// pipeline order with `Release` — `admitted` happens-before the
    /// batch counters (same dispatcher thread), which happen-before the
    /// worker outcomes (rendezvous-channel handoff) — so an `Acquire`
    /// load that observes an outcome also observes the admission that
    /// caused it. That is what makes the [`ServeStats`] inequalities
    /// hold in *every* snapshot, not just at quiescence.
    fn snapshot(&self) -> ServeStats {
        // ordering: Acquire on the pipeline counters pairs with their
        // Release increments; reading outcomes first means any outcome
        // seen here has its admission visible below.
        let completed = self.completed.load(Ordering::Acquire);
        // ordering: Acquire; see `completed`.
        let failed = self.failed.load(Ordering::Acquire);
        // ordering: Acquire; see `completed`.
        let batched_requests = self.batched_requests.load(Ordering::Acquire);
        // ordering: Acquire; see `completed`.
        let batches = self.batches.load(Ordering::Acquire);
        // ordering: Acquire; see `completed`.
        let admitted = self.admitted.load(Ordering::Acquire);
        ServeStats {
            // ordering: gauges outside the pipeline inequalities; no
            // cross-counter promise, Relaxed suffices.
            connections: self.connections.load(Ordering::Relaxed),
            admitted,
            // ordering: Relaxed; see `connections`.
            rejected: self.rejected.load(Ordering::Relaxed),
            // ordering: Relaxed; see `connections`.
            malformed: self.malformed.load(Ordering::Relaxed),
            completed,
            failed,
            // ordering: Relaxed; see `connections`.
            dropped_slow: self.dropped_slow.load(Ordering::Relaxed),
            batches,
            batched_requests,
            // ordering: Relaxed; see `connections`.
            max_batch_observed: self.max_batch_observed.load(Ordering::Relaxed),
        }
    }
}

pub(crate) struct Job {
    /// Always an eval: admin requests are answered on the shard thread
    /// and never enter the admission queue.
    pub(crate) request: crate::protocol::EvalRequest,
    pub(crate) reply: Arc<Reply>,
    /// Timestamps gathered along the request's path, allocated only
    /// when a recorder is installed (`None` is the off-switch: the
    /// shard takes no timestamps and span assembly is skipped).
    pub(crate) trace: Option<Box<JobTrace>>,
}

/// The cross-thread timing baggage of one traced request: the shard
/// stamps arrival and admission, the dispatcher stamps receipt, and the
/// worker folds the stamps into the finished span tree at reply time.
pub(crate) struct JobTrace {
    /// When the shard started handling the request line (the root
    /// span's clock zero).
    pub(crate) t_start: Instant,
    /// How long parsing the line took, from `t_start`.
    pub(crate) parse_ns: u64,
    /// When the shard handed the job to the admission queue.
    pub(crate) t_admitted: Instant,
    /// When the dispatcher received the job (set by the dispatcher;
    /// `None` only if the job never reached it).
    pub(crate) t_dispatched: Option<Instant>,
}

pub(crate) enum Msg {
    Job(Box<Job>),
    Stop,
}

enum WorkerMsg {
    /// One coalesced group: same terrain, same [`CompatKey`].
    Group(String, Vec<Job>),
    Stop,
}

pub(crate) struct Shared {
    pub(crate) cache: PreparedCache,
    pub(crate) catalog: Option<Arc<Catalog>>,
    pub(crate) counters: Arc<Counters>,
    pub(crate) stop: AtomicBool,
    /// The observability recorder plus its cached stage histograms.
    /// `None` means tracing is off and every obs touchpoint reduces to
    /// one branch (the same pattern as `CostCollector`).
    pub(crate) obs: Option<Obs>,
}

/// The installed recorder with one pre-resolved [`Histogram`] handle
/// per pipeline stage, so the hot path never takes the recorder's
/// registry lock.
pub(crate) struct Obs {
    pub(crate) recorder: Arc<Recorder>,
    hist_request: Arc<Histogram>,
    hist_parse: Arc<Histogram>,
    hist_queue_wait: Arc<Histogram>,
    hist_coalesce: Arc<Histogram>,
    hist_lookup_hit: Arc<Histogram>,
    hist_lookup_prepare: Arc<Histogram>,
    hist_evaluate: Arc<Histogram>,
    hist_respond: Arc<Histogram>,
}

impl Obs {
    fn new(recorder: Arc<Recorder>) -> Obs {
        Obs {
            hist_request: recorder.hist("request"),
            hist_parse: recorder.hist("parse"),
            hist_queue_wait: recorder.hist("queue_wait"),
            hist_coalesce: recorder.hist("coalesce"),
            hist_lookup_hit: recorder.hist("lookup_hit"),
            hist_lookup_prepare: recorder.hist("lookup_prepare"),
            hist_evaluate: recorder.hist("evaluate"),
            hist_respond: recorder.hist("respond"),
            recorder,
        }
    }
}

impl Shared {
    /// The full counter snapshot a [`Request::Stats`] answers with.
    ///
    /// [`Request::Stats`]: crate::protocol::Request::Stats
    pub(crate) fn stats_snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            serve: self.counters.snapshot(),
            prepared: self.cache.stats(),
            catalog: self.catalog.as_ref().map(|c| c.stats()),
        }
    }
}

/// A running visibility-query service.
///
/// Construct with [`ServerBuilder`], drive with
/// [`Client`](crate::client::Client) (or any newline-delimited-JSON TCP
/// client), observe with [`Server::stats`] /
/// [`Server::prepared_stats`], and stop with [`Server::shutdown`].
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    admission: mpsc::SyncSender<Msg>,
    accept_handle: Option<std::thread::JoinHandle<()>>,
    dispatch_handle: Option<std::thread::JoinHandle<()>>,
    worker_handles: Vec<std::thread::JoinHandle<()>>,
    shards: Vec<Arc<ShardHandle>>,
    shard_handles: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// The bound address (use with port 0 to discover the chosen port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Service counters.
    pub fn stats(&self) -> ServeStats {
        self.shared.counters.snapshot()
    }

    /// Prepared-scene LRU counters.
    pub fn prepared_stats(&self) -> PreparedStats {
        self.shared.cache.stats()
    }

    /// Resident-tile cache counters of a currently resident tiled
    /// terrain (None for monolithic or non-resident terrains).
    pub fn tile_cache_stats(&self, terrain: &str) -> Option<hsr_tile::CacheStats> {
        self.shared.cache.tile_cache_stats(terrain)
    }

    /// The terrain catalog this server serves from, if one is attached.
    pub fn catalog(&self) -> Option<&Arc<Catalog>> {
        self.shared.catalog.as_ref()
    }

    /// The observability recorder, if one was installed at build time
    /// ([`ServerBuilder::recorder`] / [`ServerBuilder::observe`]).
    /// `Recorder::snapshot` on it returns the same data a wire
    /// [`Request::Metrics`](crate::protocol::Request::Metrics) does.
    pub fn recorder(&self) -> Option<&Arc<Recorder>> {
        self.shared.obs.as_ref().map(|obs| &obs.recorder)
    }

    /// Stops accepting, answers whatever is still queued with
    /// [`ErrorKind::ShuttingDown`], flushes pending responses for a
    /// short grace period, and joins every service thread. Connections
    /// still open afterwards are closed (clients observe EOF).
    pub fn shutdown(mut self) {
        // ordering: SeqCst stop flag — set once at shutdown; the total
        // order keeps the accept/dispatch/shard exit checks trivial to
        // reason about and costs nothing off the steady-state path.
        self.shared.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a no-op connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        // Stop the dispatcher; it answers the queue's stragglers and
        // forwards one Stop per worker. The shards outlive the workers
        // so every answer a worker enqueues still reaches its client.
        let _ = self.admission.send(Msg::Stop);
        if let Some(h) = self.dispatch_handle.take() {
            let _ = h.join();
        }
        for h in self.worker_handles.drain(..) {
            let _ = h.join();
        }
        for shard in &self.shards {
            shard.request_stop();
        }
        for h in self.shard_handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Configures and starts a [`Server`].
///
/// ```no_run
/// use hsr_serve::{ServerBuilder, TerrainSource};
/// use hsr_terrain::gen;
///
/// let server = ServerBuilder::new()
///     .terrain("demo", TerrainSource::Grid(gen::fbm(48, 48, 4, 10.0, 7)))
///     .workers(4)
///     .bind("127.0.0.1:0")
///     .unwrap();
/// println!("serving on {}", server.local_addr());
/// # server.shutdown();
/// ```
pub struct ServerBuilder {
    config: ServeConfig,
    terrains: HashMap<String, TerrainSource>,
    catalog: Option<Arc<Catalog>>,
    recorder: Option<Arc<Recorder>>,
}

impl Default for ServerBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ServerBuilder {
    /// A builder with [`ServeConfig::default`] and no terrains.
    pub fn new() -> ServerBuilder {
        ServerBuilder {
            config: ServeConfig::default(),
            terrains: HashMap::new(),
            catalog: None,
            recorder: None,
        }
    }

    /// Registers a hosted terrain under `name` (replacing any previous
    /// source with that name).
    pub fn terrain(mut self, name: impl Into<String>, source: TerrainSource) -> ServerBuilder {
        self.terrains.insert(name.into(), source);
        self
    }

    /// Attaches a persistent terrain catalog: its entries become
    /// servable alongside the static terrains (static names win
    /// clashes), and the admin wire messages (upload, register, list,
    /// info, delete) operate on it. Without a catalog those messages
    /// answer [`ErrorKind::Catalog`].
    pub fn catalog(mut self, catalog: Arc<Catalog>) -> ServerBuilder {
        self.catalog = Some(catalog);
        self
    }

    /// Opens (creating if necessary) the catalog at `dir` and attaches
    /// it — the one-stop way to make a server durable.
    pub fn catalog_dir(self, dir: impl AsRef<Path>) -> std::io::Result<ServerBuilder> {
        let catalog = Catalog::open(dir.as_ref())
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        Ok(self.catalog(Arc::new(catalog)))
    }

    /// Installs an observability recorder: every served request records
    /// a span tree and per-stage latency histograms into it, the
    /// prepared-scene cache and resident tile caches mirror their
    /// events, and the wire answers
    /// [`Request::Metrics`](crate::protocol::Request::Metrics) with its
    /// snapshot. Without a recorder all of that is compiled down to one
    /// branch per touchpoint and `Metrics` answers `enabled: false`.
    pub fn recorder(mut self, recorder: Arc<Recorder>) -> ServerBuilder {
        self.recorder = Some(recorder);
        self
    }

    /// Convenience: build and install a fresh recorder from `config`
    /// (retrieve it later with [`Server::recorder`]).
    pub fn observe(self, config: RecorderConfig) -> ServerBuilder {
        self.recorder(Arc::new(Recorder::new(config)))
    }

    /// Largest terrain payload one upload may carry (default 64 MiB).
    pub fn max_upload_bytes(mut self, bytes: u64) -> ServerBuilder {
        self.config.max_upload_bytes = bytes.max(1);
        self
    }

    /// Event-loop shards multiplexing the connections (≥ 1).
    pub fn shards(mut self, shards: usize) -> ServerBuilder {
        self.config.shards = shards.max(1);
        self
    }

    /// Worker threads (≥ 1).
    pub fn workers(mut self, workers: usize) -> ServerBuilder {
        self.config.workers = workers.max(1);
        self
    }

    /// Admission-queue depth.
    pub fn queue_depth(mut self, depth: usize) -> ServerBuilder {
        self.config.queue_depth = depth;
        self
    }

    /// Most requests coalesced into one dispatch round (≥ 1).
    pub fn max_batch(mut self, n: usize) -> ServerBuilder {
        self.config.max_batch = n.max(1);
        self
    }

    /// How long to wait for coalescing companions.
    pub fn batch_window(mut self, window: Duration) -> ServerBuilder {
        self.config.batch_window = window;
        self
    }

    /// Prepared scenes retained by the LRU (≥ 1).
    pub fn scene_capacity(mut self, scenes: usize) -> ServerBuilder {
        self.config.scene_capacity = scenes.max(1);
        self
    }

    /// Longest accepted request line in bytes (≥ 1; default 1 MiB).
    pub fn max_line_bytes(mut self, bytes: usize) -> ServerBuilder {
        self.config.max_line_bytes = bytes.max(1);
        self
    }

    /// Per-connection outgoing-queue cap in bytes (≥ 1 KiB; default
    /// 2 MiB). Overflow drops the connection — the slow-client policy.
    pub fn outgoing_cap_bytes(mut self, bytes: usize) -> ServerBuilder {
        self.config.outgoing_cap_bytes = bytes.max(1024);
        self
    }

    /// Binds the listener and starts the service threads: `shards`
    /// event loops, one dispatcher, `workers` evaluators, one acceptor
    /// — a **fixed-size** set, independent of how many connections are
    /// held open.
    pub fn bind(self, addr: impl ToSocketAddrs) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let config = self.config;
        let mut cache = PreparedCache::new(config.scene_capacity, self.terrains);
        if let Some(catalog) = &self.catalog {
            cache = cache.with_catalog(Arc::clone(catalog));
        }
        if let Some(recorder) = &self.recorder {
            cache = cache.with_recorder(Arc::clone(recorder));
        }
        let shared = Arc::new(Shared {
            cache,
            catalog: self.catalog,
            counters: Arc::new(Counters::default()),
            stop: AtomicBool::new(false),
            obs: self.recorder.map(Obs::new),
        });

        let (admission_tx, admission_rx) = mpsc::sync_channel::<Msg>(config.queue_depth.max(1));
        // Zero capacity: handing a group over *is* the rendezvous with a
        // free worker — the dispatcher blocking here is what propagates
        // worker saturation back to the admission queue.
        let (worker_tx, worker_rx) = mpsc::sync_channel::<WorkerMsg>(0);
        let worker_rx = Arc::new(Mutex::new(worker_rx));

        let worker_handles: Vec<_> = (0..config.workers.max(1))
            .map(|i| {
                let rx = Arc::clone(&worker_rx);
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("hsr-serve-worker-{i}"))
                    .spawn(move || worker_loop(&rx, &shared))
            })
            .collect::<std::io::Result<_>>()?;

        let dispatch_handle = {
            let shared = Arc::clone(&shared);
            let workers = config.workers.max(1);
            std::thread::Builder::new()
                .name("hsr-serve-dispatch".into())
                .spawn(move || dispatch_loop(&admission_rx, &worker_tx, &shared, config, workers))?
        };

        let shards: Vec<Arc<ShardHandle>> = (0..config.shards.max(1))
            .map(|_| ShardHandle::new().map(Arc::new))
            .collect::<std::io::Result<_>>()?;
        let shard_handles: Vec<_> = shards
            .iter()
            .enumerate()
            .map(|(i, shard)| {
                let shard = Arc::clone(shard);
                let shared = Arc::clone(&shared);
                let admission = admission_tx.clone();
                std::thread::Builder::new()
                    .name(format!("hsr-serve-shard-{i}"))
                    .spawn(move || shard_loop(&shard, &shared, &admission, &config))
            })
            .collect::<std::io::Result<_>>()?;

        let accept_handle = {
            let shared = Arc::clone(&shared);
            let shards = shards.clone();
            std::thread::Builder::new()
                .name("hsr-serve-accept".into())
                .spawn(move || accept_loop(&listener, &shards, &shared))?
        };

        Ok(Server {
            addr,
            shared,
            admission: admission_tx,
            accept_handle: Some(accept_handle),
            dispatch_handle: Some(dispatch_handle),
            worker_handles,
            shards,
            shard_handles,
        })
    }
}

fn accept_loop(listener: &TcpListener, shards: &[Arc<ShardHandle>], shared: &Arc<Shared>) {
    let mut next_shard = 0usize;
    for stream in listener.incoming() {
        // ordering: SeqCst; see `Server::shutdown`.
        if shared.stop.load(Ordering::SeqCst) {
            // Whatever woke us — the shutdown's no-op connection or a
            // real client racing it — is dropped here, and the listener
            // (plus its backlog) closes when this loop returns: raced
            // clients observe a closed connection, never a silent hang.
            return;
        }
        let Ok(stream) = stream else { continue };
        // ordering: standalone gauge, no data published through it.
        shared.counters.connections.fetch_add(1, Ordering::Relaxed);
        shards[next_shard % shards.len()].adopt(stream);
        next_shard = next_shard.wrapping_add(1);
    }
}

fn dispatch_loop(
    admission: &mpsc::Receiver<Msg>,
    worker_tx: &mpsc::SyncSender<WorkerMsg>,
    shared: &Arc<Shared>,
    config: ServeConfig,
    workers: usize,
) {
    // Admission is counted here, at receipt, not at the shard's
    // `try_send`: the increment then happens-before every downstream
    // batch counter and worker outcome (same thread, then channel
    // handoff), which is what the [`ServeStats`] snapshot-consistency
    // contract relies on. At quiescence the total is identical to
    // enqueue-time counting — every sent job is received.
    let receive = |job: &mut Job| {
        // ordering: Release starts the pipeline happens-before chain the
        // Acquire reads in `Counters::snapshot` rely on.
        shared.counters.admitted.fetch_add(1, Ordering::Release);
        if let Some(trace) = job.trace.as_deref_mut() {
            trace.t_dispatched = Some(Instant::now());
        }
    };
    'rounds: loop {
        // Block for the first request of a round.
        let mut first = match admission.recv() {
            Ok(Msg::Job(job)) => job,
            Ok(Msg::Stop) | Err(_) => break 'rounds,
        };
        receive(&mut first);
        let mut round: Vec<Job> = vec![*first];
        let mut stopping = false;
        // Gather companions until the window closes or the round fills.
        let deadline = Instant::now() + config.batch_window;
        while round.len() < config.max_batch.max(1) {
            let remaining = deadline.saturating_duration_since(Instant::now());
            let msg = if remaining.is_zero() {
                match admission.try_recv() {
                    Ok(msg) => msg,
                    Err(_) => break,
                }
            } else {
                match admission.recv_timeout(remaining) {
                    Ok(msg) => msg,
                    Err(_) => break,
                }
            };
            match msg {
                Msg::Job(mut job) => {
                    receive(&mut job);
                    round.push(*job);
                }
                Msg::Stop => {
                    stopping = true;
                    break;
                }
            }
        }
        // Coalesce the round: (terrain, CompatKey) → one group, arrival
        // order preserved within each group, first-seen order across
        // groups.
        for (terrain, group) in coalesce(round) {
            let len = group.len() as u64;
            // ordering: Release; pipeline counter read with Acquire by
            // `Counters::snapshot`.
            shared.counters.batches.fetch_add(1, Ordering::Release);
            // ordering: Release; see `batches` above.
            shared
                .counters
                .batched_requests
                .fetch_add(len, Ordering::Release);
            // ordering: high-water gauge outside the pipeline
            // inequalities; Relaxed suffices.
            shared
                .counters
                .max_batch_observed
                .fetch_max(len, Ordering::Relaxed);
            if worker_tx.send(WorkerMsg::Group(terrain, group)).is_err() {
                break 'rounds;
            }
        }
        if stopping {
            break 'rounds;
        }
    }
    // Answer whatever is still queued with a shutdown error, then stop
    // the workers. The short grace timeout covers event loops that
    // passed their stop-flag check just before shutdown flipped it and
    // whose send lands after the queue looked empty — their jobs still
    // get a response instead of vanishing with the receiver.
    while let Ok(msg) = admission.recv_timeout(Duration::from_millis(50)) {
        if let Msg::Job(mut job) = msg {
            receive(&mut job);
            job.reply.send(&crate::protocol::Response::err(
                job.request.id,
                crate::protocol::WireError::new(ErrorKind::ShuttingDown, "server is shutting down"),
            ));
        }
    }
    for _ in 0..workers {
        let _ = worker_tx.send(WorkerMsg::Stop);
    }
}

/// Groups a dispatch round by `(terrain, CompatKey)`, preserving arrival
/// order within each group and first-seen order across groups. Views
/// with equal keys against the same terrain evaluate identically alone
/// or batched (scoped per-view cost collectors), so grouping is purely a
/// throughput decision — one prepared-scene lookup and one parallel
/// fan-out per group.
fn coalesce(round: Vec<Job>) -> Vec<(String, Vec<Job>)> {
    let mut order: Vec<(String, CompatKey)> = Vec::new();
    let mut groups: HashMap<(String, CompatKey), Vec<Job>> = HashMap::new();
    for job in round {
        let key = (job.request.terrain.clone(), job.request.view.compat_key());
        let slot = groups.entry(key.clone()).or_default();
        if slot.is_empty() {
            order.push(key);
        }
        slot.push(job);
    }
    order
        .into_iter()
        .filter_map(|key| groups.remove(&key).map(|group| (key.0, group)))
        .collect()
}

fn worker_loop(rx: &Arc<Mutex<mpsc::Receiver<WorkerMsg>>>, shared: &Arc<Shared>) {
    loop {
        let msg = {
            let rx = lock_unpoisoned(rx);
            rx.recv()
        };
        let (terrain, group) = match msg {
            Ok(WorkerMsg::Group(terrain, group)) => (terrain, group),
            Ok(WorkerMsg::Stop) | Err(_) => return,
        };
        let t_group = Instant::now();
        let (scene, hit) = match shared.cache.get_or_prepare_traced(&terrain) {
            (Ok(scene), hit) => (scene, hit),
            (Err(e), hit) => {
                let t_lookup = Instant::now();
                for job in &group {
                    // ordering: Release; outcome counter read with
                    // Acquire by `Counters::snapshot`.
                    shared.counters.failed.fetch_add(1, Ordering::Release);
                    let t_send0 = Instant::now();
                    job.reply
                        .send(&crate::protocol::Response::err(job.request.id, e.clone()));
                    let stamps = Stamps {
                        t_group,
                        t_lookup,
                        hit,
                        t_eval: t_lookup,
                        t_send0,
                        t_send1: Instant::now(),
                    };
                    finalize_trace(shared, job, &terrain, &stamps, None);
                }
                continue;
            }
        };
        let t_lookup = Instant::now();
        let views: Vec<_> = group.iter().map(|job| job.request.view.clone()).collect();
        let results = scene.eval_group(&views);
        let t_eval = Instant::now();
        debug_assert_eq!(results.len(), group.len());
        for (job, result) in group.iter().zip(results) {
            let (response, eval_detail) = match result {
                Ok(report) => {
                    // ordering: Release; see the `failed` bump above.
                    shared.counters.completed.fetch_add(1, Ordering::Release);
                    let detail = shared
                        .obs
                        .as_ref()
                        .map(|_| hsr_core::view::evaluate_span(&report));
                    (crate::protocol::Response::ok(job.request.id, report), detail)
                }
                Err(e) => {
                    // ordering: Release; see the `failed` bump above.
                    shared.counters.failed.fetch_add(1, Ordering::Release);
                    (crate::protocol::Response::err(job.request.id, e), None)
                }
            };
            let t_send0 = Instant::now();
            job.reply.send(&response);
            let stamps =
                Stamps { t_group, t_lookup, hit, t_eval, t_send0, t_send1: Instant::now() };
            finalize_trace(shared, job, &terrain, &stamps, eval_detail);
        }
    }
}

/// The worker-side timestamps of one request's tail: group receipt,
/// scene lookup, group evaluation, and this job's reply enqueue.
struct Stamps {
    t_group: Instant,
    t_lookup: Instant,
    /// Whether the scene lookup was served resident (`lookup_hit`) or
    /// had to prepare (`lookup_prepare`).
    hit: bool,
    t_eval: Instant,
    t_send0: Instant,
    t_send1: Instant,
}

/// Folds one finished request into the recorder: per-stage histogram
/// samples plus the span tree. No-op (one branch) without a recorder.
///
/// The stages tile the root interval: `parse` from the line's arrival,
/// `queue_wait` from admission to dispatch receipt, `coalesce` from
/// receipt to the worker picking the group up, then `lookup_*`,
/// `evaluate` (the *group's* evaluation wall — the job's answer waits
/// for the whole group either way), and `respond`. The only uncovered
/// gaps are sub-microsecond bookkeeping between stamps, which is what
/// keeps `stage_sum_ns` within a few percent of the root duration.
fn finalize_trace(
    shared: &Arc<Shared>,
    job: &Job,
    terrain: &str,
    stamps: &Stamps,
    eval_detail: Option<SpanRecord>,
) {
    let (Some(obs), Some(trace)) = (shared.obs.as_ref(), job.trace.as_deref()) else {
        return;
    };
    let base = trace.t_start;
    let off = |at: Instant| at.saturating_duration_since(base).as_nanos() as u64;
    let total = off(stamps.t_send1);

    let mut root = SpanRecord::new("request", 0, total);
    root.children
        .push(SpanRecord::new("parse", 0, trace.parse_ns));
    let t_dispatched = trace.t_dispatched.unwrap_or(trace.t_admitted);
    let queue_wait = t_dispatched
        .saturating_duration_since(trace.t_admitted)
        .as_nanos() as u64;
    root.children
        .push(SpanRecord::new("queue_wait", off(trace.t_admitted), queue_wait));
    let coalesce_ns = stamps
        .t_group
        .saturating_duration_since(t_dispatched)
        .as_nanos() as u64;
    root.children
        .push(SpanRecord::new("coalesce", off(t_dispatched), coalesce_ns));
    let lookup_ns = stamps
        .t_lookup
        .saturating_duration_since(stamps.t_group)
        .as_nanos() as u64;
    let lookup_name = if stamps.hit {
        "lookup_hit"
    } else {
        "lookup_prepare"
    };
    root.children
        .push(SpanRecord::new(lookup_name, off(stamps.t_group), lookup_ns));
    let eval_ns = stamps
        .t_eval
        .saturating_duration_since(stamps.t_lookup)
        .as_nanos() as u64;
    let mut eval_stage = SpanRecord::new("evaluate", off(stamps.t_lookup), eval_ns);
    if let Some(detail) = eval_detail {
        // Graft the pipeline-phase children (order/phase1/phase2) and
        // the cost attribution under the stage span, re-anchored to the
        // request clock.
        eval_stage.work = detail.work;
        eval_stage.depth = detail.depth;
        eval_stage.pred_filter = detail.pred_filter;
        eval_stage.pred_exact = detail.pred_exact;
        eval_stage.children = detail.children;
        for child in &mut eval_stage.children {
            child.shift(off(stamps.t_lookup));
        }
    }
    root.children.push(eval_stage);
    let respond_ns = stamps
        .t_send1
        .saturating_duration_since(stamps.t_send0)
        .as_nanos() as u64;
    root.children
        .push(SpanRecord::new("respond", off(stamps.t_send0), respond_ns));

    obs.hist_request.record(total);
    obs.hist_parse.record(trace.parse_ns);
    obs.hist_queue_wait.record(queue_wait);
    obs.hist_coalesce.record(coalesce_ns);
    let lookup_hist = if stamps.hit {
        &obs.hist_lookup_hit
    } else {
        &obs.hist_lookup_prepare
    };
    lookup_hist.record(lookup_ns);
    obs.hist_evaluate.record(eval_ns);
    obs.hist_respond.record(respond_ns);
    obs.recorder.record_trace(TraceRecord {
        id: job.request.id,
        terrain: terrain.to_string(),
        root,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::EvalRequest;
    use hsr_core::pipeline::Algorithm;
    use hsr_core::view::View;
    use hsr_geometry::Point3;

    fn job(id: u64, terrain: &str, view: View) -> Job {
        Job {
            request: EvalRequest { id, terrain: terrain.into(), view },
            reply: Reply::detached_for_tests(),
            trace: None,
        }
    }

    #[test]
    fn coalesce_groups_by_terrain_and_compat_key() {
        let obs = Point3::new(50.0, 2.0, 8.0);
        let round = vec![
            job(1, "a", View::orthographic(0.0)),
            job(2, "b", View::orthographic(0.1)),
            job(3, "a", View::viewshed(obs, vec![Point3::new(1.0, 1.0, 1.0)])),
            job(4, "a", View::orthographic(0.2).algorithm(Algorithm::Sequential)),
            job(5, "b", View::orthographic(0.3)),
            job(6, "a", View::orthographic(0.4)),
        ];
        let groups = coalesce(round);
        let shape: Vec<(String, Vec<u64>)> = groups
            .iter()
            .map(|(t, g)| (t.clone(), g.iter().map(|j| j.request.id).collect()))
            .collect();
        // Same terrain + same config coalesce across projection kinds
        // (1, 3, 6); the sequential-algorithm request gets its own
        // group; terrain b's defaults coalesce (2, 5). First-seen order.
        assert_eq!(
            shape,
            vec![
                ("a".into(), vec![1, 3, 6]),
                ("b".into(), vec![2, 5]),
                ("a".into(), vec![4]),
            ]
        );
    }
}
