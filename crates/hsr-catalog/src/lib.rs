//! Persistent, content-addressed terrain catalog.
//!
//! Everything upstream of the visibility pipeline (Gupta & Sen, IPPS
//! 1998) assumes terrains exist as durable artifacts: ingested once,
//! evaluated many times. This crate is that store — a crash-safe
//! on-disk catalog mapping **names** to **content-addressed blobs**
//! (SHA-256) plus provenance metadata, with
//!
//! * **dedup on identical content** — re-uploading the same bytes under
//!   a new name appends one metadata record and writes zero blob bytes;
//! * **atomic commits** — blobs land by write-temp-then-rename,
//!   metadata by fsynced appends to a checksummed manifest log;
//! * **torn-tail recovery** — a crash mid-append loses only the
//!   unacknowledged record; replay on open truncates the tail instead
//!   of refusing the catalog.
//!
//! Three payload formats are understood ([`TerrainFormat`]): the binary
//! grid codec, OBJ TINs, and grids served out of core via a lazily
//! materialized tile pyramid (shared per content hash). The serving
//! layer (`hsr-serve`) exposes the catalog over the wire and prepares
//! scenes from it on demand.
//!
//! ```
//! use hsr_catalog::{Catalog, TerrainFormat};
//! use hsr_terrain::{gen, io::grid_to_bytes};
//!
//! let dir = std::env::temp_dir().join(format!("cat-doc-{}", std::process::id()));
//! # let _ = std::fs::remove_dir_all(&dir);
//! let catalog = Catalog::open(&dir)?;
//! let bytes = grid_to_bytes(&gen::fbm(9, 9, 2, 5.0, 7));
//! let (info, deduped) = catalog.upload("demo", TerrainFormat::GridBin, "docs", &bytes)?;
//! assert!(!deduped);
//! assert_eq!(catalog.read_blob(&info.content)?, bytes);
//! // A second upload of the same bytes stores nothing new.
//! let (_, deduped) = catalog.upload("demo-copy", TerrainFormat::GridBin, "docs", &bytes)?;
//! assert!(deduped);
//! # std::fs::remove_dir_all(&dir).unwrap();
//! # Ok::<(), hsr_catalog::CatalogError>(())
//! ```

#![forbid(unsafe_code)]

mod catalog;
mod hash;
mod manifest;

pub use catalog::{BlobWriter, Catalog, CatalogError, CatalogStats, TerrainFormat, TerrainInfo};
pub use hash::{is_hex_digest, sha256_hex, to_hex, Sha256};
