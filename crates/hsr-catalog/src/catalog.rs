//! The catalog proper: names → content-addressed blobs + provenance.
//!
//! On disk a catalog is a directory:
//!
//! ```text
//! <dir>/
//!   manifest.log            append-only metadata log (see `manifest`)
//!   blobs/<sha256-hex>.blob terrain payloads, content-addressed
//!   tmp/                    in-flight blob staging (write-temp-then-rename)
//!   pyramids/<hex>-t<ts>-l<lv>/  lazily materialized tile stores
//! ```
//!
//! Two rules give the crash-safety story:
//!
//! * **Blobs commit by rename.** An upload streams into a unique file
//!   under `tmp/`, is fsynced, and only then renamed to its
//!   content-hash name — readers never observe a partial blob, and a
//!   crash leaves at worst an orphaned temp file (cleaned on the next
//!   open). Identical content renames onto the same target, so a
//!   re-upload of existing bytes writes **zero** new blob bytes
//!   (`CatalogStats::dedup_hits`).
//! * **Metadata commits by append.** Register/delete append one framed,
//!   checksummed record to `manifest.log` (fsynced) and only then
//!   mutate the in-memory map. Replay on open applies the valid prefix
//!   and truncates any torn tail — a crash mid-append loses only the
//!   un-acknowledged record.

use crate::hash::{is_hex_digest, Sha256};
use crate::manifest;
use hsr_terrain::io::{from_obj, grid_from_bytes};
use hsr_tile::{TilePyramid, TileStore, TilingConfig};
use std::collections::BTreeMap;
use std::fs::File;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

/// How a cataloged blob's bytes are interpreted when the terrain is
/// prepared for evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum TerrainFormat {
    /// The binary heightfield-grid codec of [`hsr_terrain::io`]
    /// (`HSRG`); prepared by triangulating into a TIN.
    GridBin,
    /// A Wavefront OBJ TIN as written by [`hsr_terrain::io::to_obj`];
    /// prepared by parsing and validating.
    TinObj,
    /// A binary heightfield grid served **out of core**: on first
    /// prepare the grid is cut into a tile pyramid materialized under
    /// the catalog's `pyramids/` directory (keyed by content hash, so
    /// deduped content shares one pyramid) and opened as a tiled scene.
    TiledGrid {
        /// Tile edge length in cells (≥ 2).
        tile_size: usize,
        /// Pyramid levels including full resolution (≥ 1).
        levels: u32,
    },
}

impl std::fmt::Display for TerrainFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TerrainFormat::GridBin => write!(f, "grid-bin"),
            TerrainFormat::TinObj => write!(f, "tin-obj"),
            TerrainFormat::TiledGrid { tile_size, levels } => {
                write!(f, "tiled-grid(tile_size={tile_size}, levels={levels})")
            }
        }
    }
}

/// One catalog entry: a name bound to a content-addressed blob, plus
/// the provenance the wire protocol reports.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TerrainInfo {
    /// The terrain's registered name.
    pub name: String,
    /// Lowercase-hex SHA-256 of the blob's bytes — the content address.
    pub content: String,
    /// How the blob decodes into a servable terrain.
    pub format: TerrainFormat,
    /// Who registered it (free-form provenance).
    pub uploader: String,
    /// Registration time, milliseconds since the Unix epoch.
    pub registered_unix_ms: u64,
    /// Blob size in bytes.
    pub bytes: u64,
}

/// Catalog counters. Gauges (`entries`) reflect the current state;
/// everything else is monotonic for the process lifetime, with the
/// `replayed_records` / `truncated_tail_bytes` pair describing what the
/// open-time replay found.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CatalogStats {
    /// Names currently registered.
    pub entries: usize,
    /// Register operations applied (replayed + live).
    pub registers: u64,
    /// Delete operations applied (replayed + live).
    pub deletes: u64,
    /// Blob files actually written by this process (dedup writes none).
    pub blobs_written: u64,
    /// Bytes of those blob files — the counter the dedup acceptance
    /// test asserts stays flat across a re-upload of identical content.
    pub blob_bytes_written: u64,
    /// Uploads whose content already existed as a blob.
    pub dedup_hits: u64,
    /// Manifest records applied during the open-time replay.
    pub replayed_records: u64,
    /// Torn/garbage manifest tail bytes truncated at open (0 = clean).
    pub truncated_tail_bytes: u64,
}

/// Errors from catalog operations.
#[derive(Debug)]
pub enum CatalogError {
    /// An underlying filesystem operation failed.
    Io {
        /// The file or directory involved.
        path: PathBuf,
        /// The OS error.
        source: std::io::Error,
    },
    /// No entry with this name.
    UnknownName(String),
    /// No blob with this content hash (register of an address that was
    /// never uploaded, or a malformed hash string).
    UnknownContent(String),
    /// The uploaded bytes do not decode as the declared format.
    InvalidTerrain {
        /// The declared format.
        format: TerrainFormat,
        /// Why the bytes were rejected.
        what: String,
    },
    /// The upload did not match its declaration (size mismatch).
    BadUpload(String),
}

impl std::fmt::Display for CatalogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CatalogError::Io { path, source } => {
                write!(f, "catalog I/O on {}: {source}", path.display())
            }
            CatalogError::UnknownName(name) => {
                write!(f, "no terrain named `{name}` in the catalog")
            }
            CatalogError::UnknownContent(hex) => {
                write!(f, "no blob with content hash `{hex}`")
            }
            CatalogError::InvalidTerrain { format, what } => {
                write!(f, "payload does not decode as {format}: {what}")
            }
            CatalogError::BadUpload(what) => write!(f, "bad upload: {what}"),
        }
    }
}

impl std::error::Error for CatalogError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CatalogError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

fn io_err(path: &Path) -> impl FnOnce(std::io::Error) -> CatalogError + '_ {
    move |source| CatalogError::Io { path: path.to_path_buf(), source }
}

/// One manifest record. Serialized as JSON inside the framed log.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
enum Record {
    /// Bind (or rebind) a name to a blob.
    Register(TerrainInfo),
    /// Unbind a name.
    Delete {
        /// The name removed.
        name: String,
        /// When, milliseconds since the Unix epoch.
        unix_ms: u64,
    },
}

struct Inner {
    entries: BTreeMap<String, TerrainInfo>,
    log: File,
    stats: CatalogStats,
}

/// A persistent, content-addressed terrain catalog rooted at a
/// directory. Cheap to share (`Arc<Catalog>`); every operation takes
/// one internal lock, and writes fsync before acknowledging.
pub struct Catalog {
    dir: PathBuf,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for Catalog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().expect("catalog lock");
        write!(f, "Catalog({}, {} entries)", self.dir.display(), inner.entries.len())
    }
}

impl Catalog {
    /// Opens (creating if necessary) the catalog at `dir`: creates the
    /// layout, sweeps orphaned staging files, replays the manifest
    /// (truncating any torn tail), and is then ready to serve.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Catalog, CatalogError> {
        let dir = dir.into();
        for sub in ["blobs", "tmp", "pyramids"] {
            let p = dir.join(sub);
            std::fs::create_dir_all(&p).map_err(io_err(&p))?;
        }
        // Orphaned staging files are crash debris: unreferenced by any
        // manifest record, safe to sweep. Pyramid build temps too.
        let tmp = dir.join("tmp");
        if let Ok(entries) = std::fs::read_dir(&tmp) {
            for entry in entries.flatten() {
                let _ = std::fs::remove_file(entry.path());
            }
        }

        let manifest_path = dir.join("manifest.log");
        let replayed = manifest::replay(&manifest_path).map_err(io_err(&manifest_path))?;
        let mut stats = CatalogStats {
            replayed_records: replayed.records.len() as u64,
            truncated_tail_bytes: replayed.truncated_bytes,
            ..CatalogStats::default()
        };
        let mut entries = BTreeMap::new();
        for payload in &replayed.records {
            let text = String::from_utf8_lossy(payload);
            // A record that framed+checksummed correctly but does not
            // decode would mean a version skew, not corruption; skip it
            // rather than refuse the whole catalog.
            let Ok(record) = serde_json::from_str::<Record>(&text) else {
                continue;
            };
            match record {
                Record::Register(info) => {
                    stats.registers += 1;
                    entries.insert(info.name.clone(), info);
                }
                Record::Delete { name, .. } => {
                    stats.deletes += 1;
                    entries.remove(&name);
                }
            }
        }
        stats.entries = entries.len();
        Ok(Catalog { dir, inner: Mutex::new(Inner { entries, log: replayed.log, stats }) })
    }

    /// The catalog's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Current counters.
    pub fn stats(&self) -> CatalogStats {
        self.inner.lock().expect("catalog lock").stats
    }

    /// The entry bound to `name`, if any.
    pub fn get(&self, name: &str) -> Option<TerrainInfo> {
        self.inner
            .lock()
            .expect("catalog lock")
            .entries
            .get(name)
            .cloned()
    }

    /// Every entry, sorted by name.
    pub fn list(&self) -> Vec<TerrainInfo> {
        self.inner
            .lock()
            .expect("catalog lock")
            .entries
            .values()
            .cloned()
            .collect()
    }

    /// The file a blob lives in (whether or not it exists yet).
    pub fn blob_path(&self, content: &str) -> PathBuf {
        self.dir.join("blobs").join(format!("{content}.blob"))
    }

    /// Reads a blob's bytes by content hash.
    pub fn read_blob(&self, content: &str) -> Result<Vec<u8>, CatalogError> {
        if !is_hex_digest(content) {
            return Err(CatalogError::UnknownContent(content.to_string()));
        }
        let path = self.blob_path(content);
        std::fs::read(&path).map_err(|source| match source.kind() {
            std::io::ErrorKind::NotFound => CatalogError::UnknownContent(content.to_string()),
            _ => CatalogError::Io { path, source },
        })
    }

    /// Starts staging a blob for a (possibly chunked) upload. Bytes
    /// stream to a unique temp file while the hash accumulates;
    /// [`Catalog::commit_upload`] validates, commits, and registers.
    /// Dropping the writer without committing removes the temp file.
    pub fn begin_blob(&self) -> Result<BlobWriter, CatalogError> {
        BlobWriter::new(&self.dir)
    }

    /// Validates the staged bytes as `format`, commits the blob
    /// (dedup-aware: identical content never writes a second blob), and
    /// registers it under `name`, replacing any previous binding.
    /// Returns the new entry plus whether the content already existed.
    pub fn commit_upload(
        &self,
        writer: BlobWriter,
        name: impl Into<String>,
        format: TerrainFormat,
        uploader: impl Into<String>,
    ) -> Result<(TerrainInfo, bool), CatalogError> {
        let bytes = std::fs::read(&writer.tmp).map_err(io_err(&writer.tmp))?;
        validate(format, &bytes)?;
        let (content, size, existed) = self.commit_blob(writer)?;
        let info = self.register_unchecked(name.into(), content, format, uploader.into(), size)?;
        Ok((info, existed))
    }

    /// One-shot upload: stage `bytes`, validate, commit, register.
    pub fn upload(
        &self,
        name: impl Into<String>,
        format: TerrainFormat,
        uploader: impl Into<String>,
        bytes: &[u8],
    ) -> Result<(TerrainInfo, bool), CatalogError> {
        let mut writer = self.begin_blob()?;
        writer.write(bytes)?;
        self.commit_upload(writer, name, format, uploader)
    }

    /// Binds `name` to an **existing** blob by content hash — the
    /// alias/rename path that moves no payload bytes. Fails with
    /// [`CatalogError::UnknownContent`] if no such blob exists.
    pub fn register(
        &self,
        name: impl Into<String>,
        content: &str,
        format: TerrainFormat,
        uploader: impl Into<String>,
    ) -> Result<TerrainInfo, CatalogError> {
        if !is_hex_digest(content) {
            return Err(CatalogError::UnknownContent(content.to_string()));
        }
        let path = self.blob_path(content);
        let meta =
            std::fs::metadata(&path).map_err(|_| CatalogError::UnknownContent(content.into()))?;
        self.register_unchecked(
            name.into(),
            content.to_string(),
            format,
            uploader.into(),
            meta.len(),
        )
    }

    /// Unbinds `name`. The blob stays (other names may share it; a
    /// garbage-collection pass is future work, see ROADMAP).
    pub fn delete(&self, name: &str) -> Result<TerrainInfo, CatalogError> {
        let mut inner = self.inner.lock().expect("catalog lock");
        if !inner.entries.contains_key(name) {
            return Err(CatalogError::UnknownName(name.to_string()));
        }
        let record = Record::Delete { name: name.to_string(), unix_ms: unix_ms() };
        append(&mut inner, &record, &self.dir)?;
        let info = inner.entries.remove(name).expect("checked above");
        inner.stats.deletes += 1;
        inner.stats.entries = inner.entries.len();
        Ok(info)
    }

    /// The materialized tile-pyramid directory for a `TiledGrid` entry,
    /// building it on first use (atomically: built in a temp directory,
    /// renamed into place — concurrent builders of the same content
    /// race harmlessly, first rename wins). Keyed by content hash and
    /// tiling parameters, so deduped blobs share one pyramid.
    pub fn ensure_pyramid(&self, info: &TerrainInfo) -> Result<PathBuf, CatalogError> {
        let TerrainFormat::TiledGrid { tile_size, levels } = info.format else {
            return Err(CatalogError::BadUpload(format!(
                "`{}` is {}, not a tiled grid",
                info.name, info.format
            )));
        };
        let target = self
            .dir
            .join("pyramids")
            .join(format!("{}-t{tile_size}-l{levels}", info.content));
        if target.join("meta.hsrp").is_file() {
            return Ok(target);
        }
        let grid = grid_from_bytes(&self.read_blob(&info.content)?).map_err(|e| {
            CatalogError::InvalidTerrain { format: info.format, what: e.to_string() }
        })?;
        let staging = self.dir.join("pyramids").join(format!(
            ".build-{}-t{tile_size}-l{levels}-{}",
            info.content,
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&staging);
        let store = TileStore::create(&staging)
            .map_err(|e| CatalogError::BadUpload(format!("pyramid staging: {e}")))?;
        TilePyramid::build(&grid, TilingConfig { tile_size, levels }, &store)
            .map_err(|e| CatalogError::BadUpload(format!("pyramid build: {e}")))?;
        match std::fs::rename(&staging, &target) {
            Ok(()) => Ok(target),
            Err(e) => {
                // Lost the race to a concurrent builder of the same
                // content: their pyramid is as good as ours.
                let _ = std::fs::remove_dir_all(&staging);
                if target.join("meta.hsrp").is_file() {
                    Ok(target)
                } else {
                    Err(CatalogError::Io { path: target, source: e })
                }
            }
        }
    }

    /// Commits a staged blob: fsync, then rename to its content-hash
    /// name (or discard the temp when the content already exists).
    fn commit_blob(&self, mut writer: BlobWriter) -> Result<(String, u64, bool), CatalogError> {
        let file = writer.file.take().expect("uncommitted writer has a file");
        file.sync_all().map_err(io_err(&writer.tmp))?;
        drop(file);
        let content = crate::hash::to_hex(&writer.hasher.clone().finalize());
        let size = writer.bytes;
        let target = self.blob_path(&content);
        let mut inner = self.inner.lock().expect("catalog lock");
        let existed = target.is_file();
        if existed {
            inner.stats.dedup_hits += 1;
            // `writer` drops below and removes the temp file.
        } else {
            std::fs::rename(&writer.tmp, &target).map_err(io_err(&target))?;
            writer.committed = true;
            inner.stats.blobs_written += 1;
            inner.stats.blob_bytes_written += size;
        }
        Ok((content, size, existed))
    }

    /// Appends a register record and applies it. `content` must already
    /// be a committed blob.
    fn register_unchecked(
        &self,
        name: String,
        content: String,
        format: TerrainFormat,
        uploader: String,
        bytes: u64,
    ) -> Result<TerrainInfo, CatalogError> {
        let info =
            TerrainInfo { name, content, format, uploader, registered_unix_ms: unix_ms(), bytes };
        let mut inner = self.inner.lock().expect("catalog lock");
        append(&mut inner, &Record::Register(info.clone()), &self.dir)?;
        inner.entries.insert(info.name.clone(), info.clone());
        inner.stats.registers += 1;
        inner.stats.entries = inner.entries.len();
        Ok(info)
    }
}

fn append(inner: &mut Inner, record: &Record, dir: &Path) -> Result<(), CatalogError> {
    let payload = serde_json::to_string(record).expect("manifest records serialize");
    let path = dir.join("manifest.log");
    manifest::append_record(&mut inner.log, payload.as_bytes()).map_err(io_err(&path))
}

fn unix_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Decodes enough of the payload to reject garbage at upload time, so a
/// registered terrain is always *servable* (modulo validation that
/// needs the full prepare, e.g. TIN topology checks on a grid).
fn validate(format: TerrainFormat, bytes: &[u8]) -> Result<(), CatalogError> {
    let invalid = |what: String| CatalogError::InvalidTerrain { format, what };
    match format {
        TerrainFormat::GridBin => {
            let g = grid_from_bytes(bytes).map_err(|e| invalid(e.to_string()))?;
            if g.nx < 2 || g.ny < 2 {
                return Err(invalid(format!("grid must be at least 2×2, got {}×{}", g.nx, g.ny)));
            }
        }
        TerrainFormat::TinObj => {
            let text =
                std::str::from_utf8(bytes).map_err(|_| invalid("not UTF-8 text".to_string()))?;
            from_obj(text).map_err(|e| invalid(e.to_string()))?;
        }
        TerrainFormat::TiledGrid { tile_size, levels } => {
            if tile_size < 2 || !(1..=32).contains(&levels) {
                return Err(invalid(format!(
                    "tiling parameters out of range: tile_size={tile_size}, levels={levels}"
                )));
            }
            let g = grid_from_bytes(bytes).map_err(|e| invalid(e.to_string()))?;
            if g.nx < 2 || g.ny < 2 {
                return Err(invalid(format!("grid must be at least 2×2, got {}×{}", g.nx, g.ny)));
            }
        }
    }
    Ok(())
}

/// Streams one blob into the catalog's staging area while hashing it.
/// Created by [`Catalog::begin_blob`]; consumed by
/// [`Catalog::commit_upload`]. Dropped uncommitted (client vanished
/// mid-upload, validation failed), the temp file is removed.
pub struct BlobWriter {
    tmp: PathBuf,
    file: Option<File>,
    hasher: Sha256,
    bytes: u64,
    committed: bool,
}

impl BlobWriter {
    fn new(dir: &Path) -> Result<BlobWriter, CatalogError> {
        // Unique per process + writer: concurrent uploads never share a
        // staging file.
        use std::sync::atomic::{AtomicU64, Ordering};
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let tmp = dir.join("tmp").join(format!(
            "upload-{}-{}.part",
            std::process::id(),
            // ordering: uniqueness-only counter for temp file names.
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let file = File::create(&tmp).map_err(io_err(&tmp))?;
        Ok(BlobWriter { tmp, file: Some(file), hasher: Sha256::new(), bytes: 0, committed: false })
    }

    /// Appends a chunk.
    pub fn write(&mut self, chunk: &[u8]) -> Result<(), CatalogError> {
        let file = self.file.as_mut().expect("write after commit");
        file.write_all(chunk).map_err(io_err(&self.tmp))?;
        self.hasher.update(chunk);
        self.bytes += chunk.len() as u64;
        Ok(())
    }

    /// Bytes staged so far.
    pub fn bytes_written(&self) -> u64 {
        self.bytes
    }
}

impl Drop for BlobWriter {
    fn drop(&mut self) {
        drop(self.file.take());
        if !self.committed {
            let _ = std::fs::remove_file(&self.tmp);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::sha256_hex;
    use hsr_terrain::gen;
    use hsr_terrain::io::{grid_to_bytes, to_obj};

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hsr-catalog-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn grid_bytes(seed: u64) -> Vec<u8> {
        grid_to_bytes(&gen::fbm(9, 9, 2, 5.0, seed))
    }

    #[test]
    fn upload_register_read_round_trip() {
        let dir = scratch("roundtrip");
        let cat = Catalog::open(&dir).unwrap();
        let bytes = grid_bytes(1);
        let (info, existed) = cat
            .upload("alps", TerrainFormat::GridBin, "tester", &bytes)
            .unwrap();
        assert!(!existed);
        assert_eq!(info.content, sha256_hex(&bytes));
        assert_eq!(info.bytes, bytes.len() as u64);
        assert_eq!(cat.read_blob(&info.content).unwrap(), bytes);
        assert_eq!(cat.get("alps").unwrap(), info);
        assert_eq!(cat.list().len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn identical_content_dedups_to_zero_new_blob_bytes() {
        let dir = scratch("dedup");
        let cat = Catalog::open(&dir).unwrap();
        let bytes = grid_bytes(2);
        cat.upload("first", TerrainFormat::GridBin, "a", &bytes)
            .unwrap();
        let before = cat.stats();
        let (info, existed) = cat
            .upload("second", TerrainFormat::GridBin, "b", &bytes)
            .unwrap();
        assert!(existed, "identical bytes must dedup");
        let after = cat.stats();
        assert_eq!(after.blob_bytes_written, before.blob_bytes_written, "zero new blob bytes");
        assert_eq!(after.blobs_written, before.blobs_written);
        assert_eq!(after.dedup_hits, before.dedup_hits + 1);
        assert_eq!(after.entries, 2);
        // Both names resolve to the same blob.
        assert_eq!(cat.get("first").unwrap().content, info.content);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn register_aliases_an_existing_blob_and_rejects_unknown_content() {
        let dir = scratch("alias");
        let cat = Catalog::open(&dir).unwrap();
        let bytes = grid_bytes(3);
        let (info, _) = cat
            .upload("orig", TerrainFormat::GridBin, "a", &bytes)
            .unwrap();
        let alias = cat
            .register("alias", &info.content, TerrainFormat::GridBin, "b")
            .unwrap();
        assert_eq!(alias.content, info.content);
        assert_eq!(alias.bytes, info.bytes);
        assert!(matches!(
            cat.register("nope", &"0".repeat(64), TerrainFormat::GridBin, "b"),
            Err(CatalogError::UnknownContent(_))
        ));
        assert!(matches!(
            cat.register("nope", "../../etc/passwd", TerrainFormat::GridBin, "b"),
            Err(CatalogError::UnknownContent(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_preserves_entries_and_survives_a_torn_tail() {
        let dir = scratch("reopen");
        let bytes = grid_bytes(4);
        let obj = to_obj(&gen::fbm(7, 7, 2, 4.0, 9).to_tin().unwrap());
        {
            let cat = Catalog::open(&dir).unwrap();
            cat.upload("grid", TerrainFormat::GridBin, "a", &bytes)
                .unwrap();
            cat.upload("tin", TerrainFormat::TinObj, "a", obj.as_bytes())
                .unwrap();
            cat.upload("gone", TerrainFormat::GridBin, "a", &grid_bytes(5))
                .unwrap();
            cat.delete("gone").unwrap();
        }
        // Crash simulation: garbage appended mid-record.
        {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(dir.join("manifest.log"))
                .unwrap();
            f.write_all(&[0x99, 0x12, 0x00]).unwrap();
        }
        let cat = Catalog::open(&dir).unwrap();
        let stats = cat.stats();
        assert_eq!(stats.truncated_tail_bytes, 3);
        assert_eq!(stats.replayed_records, 4);
        assert_eq!((stats.registers, stats.deletes), (3, 1));
        assert_eq!(cat.get("grid").unwrap().bytes, bytes.len() as u64);
        assert_eq!(cat.read_blob(&cat.get("grid").unwrap().content).unwrap(), bytes);
        assert!(cat.get("gone").is_none());
        assert_eq!(cat.list().len(), 2);
        // The truncated log accepts further writes.
        cat.upload("more", TerrainFormat::TinObj, "b", obj.as_bytes())
            .unwrap();
        drop(cat);
        assert_eq!(Catalog::open(&dir).unwrap().list().len(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn overwrite_rebinds_and_delete_unbinds() {
        let dir = scratch("overwrite");
        let cat = Catalog::open(&dir).unwrap();
        let (a, _) = cat
            .upload("x", TerrainFormat::GridBin, "a", &grid_bytes(6))
            .unwrap();
        let (b, _) = cat
            .upload("x", TerrainFormat::GridBin, "a", &grid_bytes(7))
            .unwrap();
        assert_ne!(a.content, b.content);
        assert_eq!(cat.get("x").unwrap().content, b.content);
        assert_eq!(cat.stats().entries, 1);
        let deleted = cat.delete("x").unwrap();
        assert_eq!(deleted.content, b.content);
        assert!(cat.get("x").is_none());
        assert!(matches!(cat.delete("x"), Err(CatalogError::UnknownName(_))));
        // The old blob is still content-addressable (no GC yet).
        assert!(cat.read_blob(&a.content).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn invalid_payloads_are_rejected_and_leave_no_debris() {
        let dir = scratch("invalid");
        let cat = Catalog::open(&dir).unwrap();
        assert!(matches!(
            cat.upload("bad", TerrainFormat::GridBin, "a", b"not a grid"),
            Err(CatalogError::InvalidTerrain { .. })
        ));
        assert!(matches!(
            cat.upload("bad", TerrainFormat::TinObj, "a", &[0xff, 0xfe]),
            Err(CatalogError::InvalidTerrain { .. })
        ));
        assert!(matches!(
            cat.upload(
                "bad",
                TerrainFormat::TiledGrid { tile_size: 1, levels: 1 },
                "a",
                &grid_bytes(8)
            ),
            Err(CatalogError::InvalidTerrain { .. })
        ));
        assert_eq!(cat.stats().entries, 0);
        assert_eq!(cat.stats().blobs_written, 0);
        // Staging directory is clean: failed uploads removed their temp.
        assert_eq!(std::fs::read_dir(dir.join("tmp")).unwrap().count(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn chunked_staging_matches_one_shot_upload() {
        let dir = scratch("chunked");
        let cat = Catalog::open(&dir).unwrap();
        let bytes = grid_bytes(10);
        let mut w = cat.begin_blob().unwrap();
        for chunk in bytes.chunks(13) {
            w.write(chunk).unwrap();
        }
        assert_eq!(w.bytes_written(), bytes.len() as u64);
        let (info, existed) = cat
            .commit_upload(w, "chunked", TerrainFormat::GridBin, "c")
            .unwrap();
        assert!(!existed);
        assert_eq!(info.content, sha256_hex(&bytes));
        assert_eq!(cat.read_blob(&info.content).unwrap(), bytes);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tiled_entries_materialize_one_shared_pyramid() {
        let dir = scratch("pyramid");
        let cat = Catalog::open(&dir).unwrap();
        let grid = gen::fbm(21, 17, 3, 6.0, 12);
        let bytes = grid_to_bytes(&grid);
        let fmt = TerrainFormat::TiledGrid { tile_size: 8, levels: 2 };
        let (info, _) = cat.upload("tiled-a", fmt, "a", &bytes).unwrap();
        let (info2, existed) = cat.upload("tiled-b", fmt, "b", &bytes).unwrap();
        assert!(existed);
        let p1 = cat.ensure_pyramid(&info).unwrap();
        let p2 = cat.ensure_pyramid(&info2).unwrap();
        assert_eq!(p1, p2, "deduped content shares one pyramid");
        let store = TileStore::open(&p1).unwrap();
        let meta = store.read_meta().unwrap();
        assert_eq!((meta.nx, meta.ny), (21, 17));
        // Non-tiled entries refuse pyramid materialization.
        let (g, _) = cat
            .upload("plain", TerrainFormat::GridBin, "a", &grid_bytes(13))
            .unwrap();
        assert!(cat.ensure_pyramid(&g).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
