//! Content hashing for the blob store: a self-contained SHA-256.
//!
//! The catalog addresses every blob by the SHA-256 of its bytes, so two
//! uploads of identical content land on the same blob file no matter
//! who uploaded them or under what name. The implementation is the
//! plain FIPS 180-4 compression loop over `u32` words — no lookup
//! tables beyond the round constants, no unsafe, and streaming
//! (`update` may be called once per upload chunk), which is what the
//! chunked wire upload path needs: the hash is computed as bytes arrive
//! and never requires the whole blob in memory.

/// SHA-256 round constants (FIPS 180-4 §4.2.2).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Initial hash state (FIPS 180-4 §5.3.3).
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// A streaming SHA-256 hasher.
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    /// Partial block awaiting 64 bytes.
    buf: [u8; 64],
    buf_len: usize,
    /// Total message length in bytes.
    total: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// A fresh hasher.
    pub fn new() -> Sha256 {
        Sha256 { state: H0, buf: [0u8; 64], buf_len: 0, total: 0 }
    }

    /// Absorbs `data` (callable any number of times, any chunk sizes).
    pub fn update(&mut self, data: &[u8]) {
        self.total = self.total.wrapping_add(data.len() as u64);
        let mut rest = data;
        if self.buf_len > 0 {
            let take = rest.len().min(64 - self.buf_len);
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len < 64 {
                return; // block still partial; nothing to compress
            }
            let block = self.buf;
            self.compress(&block);
            self.buf_len = 0;
        }
        while rest.len() >= 64 {
            let (block, tail) = rest.split_at(64);
            self.compress(block.try_into().expect("64-byte block"));
            rest = tail;
        }
        self.buf[..rest.len()].copy_from_slice(rest);
        self.buf_len = rest.len();
    }

    /// Finishes the message and returns the 32-byte digest.
    pub fn finalize(mut self) -> [u8; 32] {
        let bit_len = self.total.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // The length block must not be counted in `total`; write it
        // directly into the buffer and compress.
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.compress(&block);
        let mut out = [0u8; 32];
        for (chunk, word) in out.chunks_exact_mut(4).zip(self.state) {
            chunk.copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().expect("4 bytes"));
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (s, v) in self.state.iter_mut().zip([a, b, c, d, e, f, g, h]) {
            *s = s.wrapping_add(v);
        }
    }
}

/// One-shot convenience: the lowercase-hex SHA-256 of `bytes`.
pub fn sha256_hex(bytes: &[u8]) -> String {
    let mut h = Sha256::new();
    h.update(bytes);
    to_hex(&h.finalize())
}

/// Lowercase-hex encoding of a digest.
pub fn to_hex(digest: &[u8; 32]) -> String {
    let mut out = String::with_capacity(64);
    for b in digest {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

/// True iff `s` is a well-formed lowercase-hex SHA-256 digest — the only
/// strings the catalog accepts as content addresses (anything else could
/// escape the blob directory when joined into a path).
pub fn is_hex_digest(s: &str) -> bool {
    s.len() == 64
        && s.bytes()
            .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fips_test_vectors() {
        assert_eq!(
            sha256_hex(b""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            sha256_hex(b"abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            sha256_hex(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn streaming_matches_one_shot_at_every_split() {
        let data: Vec<u8> = (0..257u16).map(|i| (i % 251) as u8).collect();
        let whole = sha256_hex(&data);
        for split in [0, 1, 55, 56, 63, 64, 65, 128, 200, 257] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(to_hex(&h.finalize()), whole, "split at {split}");
        }
    }

    #[test]
    fn hex_digest_validation() {
        let good = sha256_hex(b"x");
        assert!(is_hex_digest(&good));
        assert!(!is_hex_digest(&good[..63]));
        assert!(!is_hex_digest(&good.to_uppercase()));
        assert!(!is_hex_digest("../escape/0000000000000000000000000000000000000000000000000000"));
    }
}
