//! The append-only manifest log: framing, checksums, torn-tail replay.
//!
//! Every metadata mutation (register, delete) is one framed record
//! appended to `manifest.log` and fsynced before the call returns. A
//! record is `[len: u32 LE][fnv1a-64(payload): u64 LE][payload]` where
//! the payload is one JSON document. On open the log is replayed from
//! the start; the first record that fails its frame or checksum marks
//! the *valid prefix* — everything before it is applied, everything
//! from it on is a torn tail (a crash mid-append) and is **truncated,
//! not fatal**. This is the standard write-ahead-log recovery rule: an
//! append either fully commits or effectively never happened.

use std::fs::{File, OpenOptions};
use std::io::{Read as _, Seek as _, SeekFrom, Write as _};
use std::path::Path;

/// Frame header size: `u32` length + `u64` checksum.
const HEADER: usize = 12;

/// Upper bound on one record's payload — far above any real manifest
/// record (they are small JSON documents), low enough that a corrupt
/// length field cannot ask for gigabytes.
const MAX_RECORD: usize = 1 << 20;

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Appends one framed record and fsyncs. The frame is written with a
/// single `write_all` so a crash tears at most the trailing record —
/// exactly the case replay recovers from.
pub(crate) fn append_record(log: &mut File, payload: &[u8]) -> std::io::Result<()> {
    assert!(payload.len() <= MAX_RECORD, "manifest record over the frame bound");
    let mut frame = Vec::with_capacity(HEADER + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&fnv1a64(payload).to_le_bytes());
    frame.extend_from_slice(payload);
    log.write_all(&frame)?;
    log.sync_data()
}

/// The result of replaying a manifest log.
pub(crate) struct Replay {
    /// Every valid record's payload, in append order.
    pub(crate) records: Vec<Vec<u8>>,
    /// Torn/garbage tail bytes dropped (0 for a clean log).
    pub(crate) truncated_bytes: u64,
    /// The log file, positioned at its (possibly truncated) end, ready
    /// for appends.
    pub(crate) log: File,
}

/// Opens (creating if absent) and replays the log at `path`, truncating
/// any torn tail in place.
pub(crate) fn replay(path: &Path) -> std::io::Result<Replay> {
    let mut log = OpenOptions::new()
        .read(true)
        .write(true)
        .create(true)
        .truncate(false)
        .open(path)?;
    let mut bytes = Vec::new();
    log.read_to_end(&mut bytes)?;

    let mut records = Vec::new();
    let mut at = 0usize;
    loop {
        let rest = &bytes[at..];
        if rest.is_empty() {
            break; // clean end
        }
        if rest.len() < HEADER {
            break; // torn header
        }
        let len = u32::from_le_bytes(rest[..4].try_into().expect("4 bytes")) as usize;
        let sum = u64::from_le_bytes(rest[4..12].try_into().expect("8 bytes"));
        if len > MAX_RECORD || rest.len() < HEADER + len {
            break; // absurd length (garbage) or torn payload
        }
        let payload = &rest[HEADER..HEADER + len];
        if fnv1a64(payload) != sum {
            break; // payload bytes damaged
        }
        records.push(payload.to_vec());
        at += HEADER + len;
    }

    let truncated_bytes = (bytes.len() - at) as u64;
    if truncated_bytes > 0 {
        log.set_len(at as u64)?;
        log.sync_data()?;
    }
    log.seek(SeekFrom::Start(at as u64))?;
    Ok(Replay { records, truncated_bytes, log })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("hsr-manifest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn records_replay_in_order() {
        let path = scratch("order.log");
        {
            let mut r = replay(&path).unwrap();
            append_record(&mut r.log, b"one").unwrap();
            append_record(&mut r.log, b"two").unwrap();
            append_record(&mut r.log, b"three").unwrap();
        }
        let r = replay(&path).unwrap();
        assert_eq!(r.records, vec![b"one".to_vec(), b"two".to_vec(), b"three".to_vec()]);
        assert_eq!(r.truncated_bytes, 0);
    }

    #[test]
    fn torn_tail_is_truncated_and_appends_resume() {
        let path = scratch("torn.log");
        {
            let mut r = replay(&path).unwrap();
            append_record(&mut r.log, b"keep-a").unwrap();
            append_record(&mut r.log, b"keep-b").unwrap();
        }
        // Simulate a crash mid-append: half a frame of garbage.
        let clean_len = std::fs::metadata(&path).unwrap().len();
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[0x07, 0x00, 0x00, 0x00, 0xde, 0xad]).unwrap();
        }
        let mut r = replay(&path).unwrap();
        assert_eq!(r.records, vec![b"keep-a".to_vec(), b"keep-b".to_vec()]);
        assert_eq!(r.truncated_bytes, 6);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), clean_len);
        // The truncated log accepts new appends cleanly.
        append_record(&mut r.log, b"after").unwrap();
        let r = replay(&path).unwrap();
        assert_eq!(r.records.len(), 3);
        assert_eq!(r.records[2], b"after".to_vec());
    }

    #[test]
    fn damaged_payload_drops_the_tail_from_the_damage_on() {
        let path = scratch("damage.log");
        {
            let mut r = replay(&path).unwrap();
            append_record(&mut r.log, b"good").unwrap();
            append_record(&mut r.log, b"flipped").unwrap();
        }
        // Flip one byte inside the second record's payload.
        let mut bytes = std::fs::read(&path).unwrap();
        let second_payload_at = HEADER + 4 + HEADER;
        bytes[second_payload_at] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let r = replay(&path).unwrap();
        assert_eq!(r.records, vec![b"good".to_vec()]);
        assert!(r.truncated_bytes > 0);
    }

    #[test]
    fn absurd_length_field_is_garbage_not_an_allocation() {
        let path = scratch("absurd.log");
        {
            let mut r = replay(&path).unwrap();
            append_record(&mut r.log, b"ok").unwrap();
        }
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            let mut frame = Vec::new();
            frame.extend_from_slice(&u32::MAX.to_le_bytes());
            frame.extend_from_slice(&[0u8; 8]);
            frame.extend_from_slice(b"pretend payload");
            f.write_all(&frame).unwrap();
        }
        let r = replay(&path).unwrap();
        assert_eq!(r.records, vec![b"ok".to_vec()]);
    }
}
