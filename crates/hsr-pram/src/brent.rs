//! Brent slow-down simulation (the paper's Lemmas 2.1 / 2.2).
//!
//! Lemma 2.1: an algorithm with `N` tasks over `λ` phases runs in
//! `O(λ(t_{p,N} + t) + N·t/p)` on `p` processors. With work-stealing
//! scheduling the allocation term `t_{p,N}` is a small constant per phase,
//! so the usable prediction is `T_p ≈ c_w·W/p + c_d·D`: work divided by
//! processors plus the critical path. [`BrentModel`] calibrates the two
//! constants from measured runs and predicts scaling curves, which the
//! speedup experiment (E3) compares against measurements.

/// A calibrated two-parameter Brent model `T_p = cw·W/p + cd·D`.
#[derive(Clone, Copy, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct BrentModel {
    /// Seconds per unit of work.
    pub cw: f64,
    /// Seconds per unit of depth.
    pub cd: f64,
    /// Total work `W` of the measured computation.
    pub work: u64,
    /// Total depth `D` of the measured computation.
    pub depth: u64,
}

impl BrentModel {
    /// Calibrates from a single-thread measurement `t1` (seconds) and a
    /// many-thread measurement `(p_hi, t_hi)`.
    ///
    /// Solves the 2×2 system `t1 = cw·W + cd·D`, `t_hi = cw·W/p_hi + cd·D`;
    /// clamps `cd` at zero when the system is degenerate (perfect scaling).
    ///
    /// Measurement noise is tolerated: non-finite or non-positive timings
    /// and inverted pairs (`t1 <= t_hi`, i.e. the "parallel" run measured
    /// slower) clamp to a degenerate but well-defined model whose
    /// predictions are finite and positive — never NaN.
    pub fn calibrate(work: u64, depth: u64, t1: f64, p_hi: usize, t_hi: f64) -> Self {
        let w = work.max(1) as f64;
        let d = depth.max(1) as f64;
        let p = p_hi.max(2) as f64;
        // Sanitize the measurements. A t1 at or below zero (timer
        // resolution) becomes a tiny positive time; a t_hi that is
        // non-finite or exceeds t1 (noise) is treated as "no scaling
        // observed", which zeroes cw and puts all the time on the
        // critical path.
        let t1 = if t1.is_finite() && t1 > 0.0 {
            t1
        } else {
            1e-12
        };
        let t_hi = if t_hi.is_finite() && (0.0..=t1).contains(&t_hi) {
            t_hi
        } else {
            t1
        };
        // t1 - t_hi = cw * W * (1 - 1/p)
        let cw = ((t1 - t_hi) / (w * (1.0 - 1.0 / p))).max(0.0);
        let cd = ((t1 - cw * w) / d).max(0.0);
        BrentModel { cw, cd, work, depth }
    }

    /// Predicted wall time on `p` processors.
    pub fn predict(&self, p: usize) -> f64 {
        let p = p.max(1) as f64;
        self.cw * self.work as f64 / p + self.cd * self.depth as f64
    }

    /// Predicted speedup over one processor; `1.0` when the model is so
    /// degenerate that the predicted time vanishes (instead of `0/0`).
    pub fn predicted_speedup(&self, p: usize) -> f64 {
        let t_p = self.predict(p);
        if t_p > 0.0 {
            self.predict(1) / t_p
        } else {
            1.0
        }
    }

    /// The asymptotic speedup ceiling `T_1 / (cd·D)` implied by the critical
    /// path (infinite for `cd = 0`; `1.0` for a fully degenerate model).
    pub fn speedup_ceiling(&self) -> f64 {
        let t1 = self.predict(1);
        if t1 <= 0.0 {
            return 1.0;
        }
        let serial = self.cd * self.depth as f64;
        if serial <= 0.0 {
            f64::INFINITY
        } else {
            t1 / serial
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_reproduces_inputs() {
        // Synthetic machine: cw = 1e-8, cd = 1e-5, W = 1e8, D = 1e3.
        let (w, d) = (100_000_000u64, 1_000u64);
        let t = |p: f64| 1e-8 * w as f64 / p + 1e-5 * d as f64;
        let m = BrentModel::calibrate(w, d, t(1.0), 8, t(8.0));
        assert!((m.predict(1) - t(1.0)).abs() / t(1.0) < 1e-9);
        assert!((m.predict(4) - t(4.0)).abs() / t(4.0) < 1e-9);
        assert!((m.predict(16) - t(16.0)).abs() / t(16.0) < 1e-9);
    }

    #[test]
    fn speedup_monotone_and_bounded() {
        let m = BrentModel::calibrate(1_000_000, 100, 1.0, 8, 0.2);
        let s2 = m.predicted_speedup(2);
        let s8 = m.predicted_speedup(8);
        assert!(s2 > 1.0 && s8 > s2);
        assert!(m.predicted_speedup(1_000_000) <= m.speedup_ceiling() * 1.001);
    }

    #[test]
    fn perfect_scaling_degenerate() {
        // t1 == p * t_hi => cd clamps to ~0, ceiling infinite.
        let m = BrentModel::calibrate(1_000, 10, 1.0, 4, 0.25);
        assert!(m.speedup_ceiling() > 1e6);
    }

    #[test]
    fn inverted_measurements_clamp_instead_of_nan() {
        // Noise made the "parallel" run slower than the serial one; the
        // model must degrade to "no scaling", not to negative cw / NaN.
        let m = BrentModel::calibrate(1_000_000, 100, 0.5, 8, 0.9);
        assert_eq!(m.cw, 0.0);
        assert!(m.cd > 0.0);
        for p in [1, 2, 8, 1024] {
            assert!(m.predict(p).is_finite() && m.predict(p) > 0.0);
            assert!((m.predicted_speedup(p) - 1.0).abs() < 1e-12);
        }
        assert!((m.speedup_ceiling() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn garbage_timings_clamp_instead_of_nan() {
        for (t1, t_hi) in [
            (0.0, 0.0),
            (f64::NAN, 0.1),
            (0.1, f64::NAN),
            (f64::INFINITY, 0.1),
            (0.1, -3.0),
            (-1.0, -2.0),
        ] {
            let m = BrentModel::calibrate(1_000, 10, t1, 4, t_hi);
            assert!(m.cw.is_finite() && m.cw >= 0.0, "cw from ({t1}, {t_hi})");
            assert!(m.cd.is_finite() && m.cd >= 0.0, "cd from ({t1}, {t_hi})");
            for p in [1, 7, 64] {
                assert!(m.predict(p).is_finite(), "predict from ({t1}, {t_hi})");
                let s = m.predicted_speedup(p);
                assert!(s.is_finite() && s >= 1.0 - 1e-12, "speedup {s} from ({t1}, {t_hi})");
            }
            assert!(!m.speedup_ceiling().is_nan());
        }
    }

    #[test]
    fn zero_work_model_has_finite_speedups() {
        let m = BrentModel::calibrate(0, 0, 1.0, 8, 0.2);
        for p in [1, 2, 16] {
            assert!(!m.predicted_speedup(p).is_nan());
        }
        assert!(!m.speedup_ceiling().is_nan());
    }
}
