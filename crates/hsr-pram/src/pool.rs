//! Thread-pool helpers for controlled-parallelism experiments.

use rayon::ThreadPoolBuilder;

/// Runs `f` on a dedicated rayon pool with exactly `threads` worker
/// threads. All rayon parallelism inside `f` (parallel iterators, `join`,
/// `scope`) is confined to that pool.
///
/// This is how the speedup experiments sweep `p` without restarting the
/// process.
pub fn with_threads<R: Send>(threads: usize, f: impl FnOnce() -> R + Send) -> R {
    let pool = ThreadPoolBuilder::new()
        .num_threads(threads.max(1))
        .build()
        .expect("failed to build thread pool");
    pool.install(f)
}

/// Number of logical CPUs rayon would use by default.
pub fn max_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn pool_confines_parallelism() {
        let n = with_threads(2, || (0..1000u64).into_par_iter().map(|i| i * i).sum::<u64>());
        assert_eq!(n, (0..1000u64).map(|i| i * i).sum::<u64>());
    }

    #[test]
    fn single_thread_works() {
        let v = with_threads(1, || {
            let mut v: Vec<u32> = (0..64).rev().collect();
            v.par_sort();
            v
        });
        assert!(v.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn max_threads_positive() {
        assert!(max_threads() >= 1);
    }
}
