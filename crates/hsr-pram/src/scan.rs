//! Parallel prefix computation (Ladner–Fischer / blocked two-pass).
//!
//! The paper's phase 2 is "an approach similar to the systolic
//! implementation of parallel prefix computation \[9\]" (Ladner & Fischer).
//! This module supplies the routine itself, instrumented for work/depth:
//! an upsweep computing block sums, a scan over block sums, and a downsweep
//! applying block offsets — `O(n)` work, `O(log n)` depth.

use crate::cost::{add_work, Category, DepthScope};
use rayon::prelude::*;

/// Minimum block size before falling back to a sequential scan; keeps the
/// constant factors sane on small inputs.
const SEQ_CUTOFF: usize = 4096;

/// Exclusive prefix scan under an associative `combine` with `identity`.
///
/// Returns a vector `out` with `out[i] = combine(identity, a[0], …,
/// a[i-1])` and the total reduction as the second tuple element.
pub fn exclusive_scan<T, F>(a: &[T], identity: T, combine: F) -> (Vec<T>, T)
where
    T: Clone + Send + Sync,
    F: Fn(&T, &T) -> T + Send + Sync,
{
    let n = a.len();
    add_work(Category::Primitive, n as u64);
    let _depth = DepthScope::logarithmic(Category::Primitive, n);
    if n == 0 {
        return (Vec::new(), identity);
    }
    if n <= SEQ_CUTOFF {
        let mut out = Vec::with_capacity(n);
        let mut acc = identity;
        for x in a {
            out.push(acc.clone());
            acc = combine(&acc, x);
        }
        return (out, acc);
    }

    let nblocks = rayon::current_num_threads().max(2) * 4;
    let block = n.div_ceil(nblocks);

    // Upsweep: per-block reductions.
    let block_sums: Vec<T> = a
        .par_chunks(block)
        .map(|c| {
            let mut acc = c[0].clone();
            for x in &c[1..] {
                acc = combine(&acc, x);
            }
            acc
        })
        .collect();

    // Scan of the (small) block-sum vector.
    let mut block_offsets = Vec::with_capacity(block_sums.len());
    let mut acc = identity.clone();
    for s in &block_sums {
        block_offsets.push(acc.clone());
        acc = combine(&acc, s);
    }
    let total = acc;

    // Downsweep: local scans seeded with block offsets.
    let mut out: Vec<T> = Vec::with_capacity(n);
    let blocks: Vec<Vec<T>> = a
        .par_chunks(block)
        .zip(block_offsets.par_iter())
        .map(|(c, off)| {
            let mut local = Vec::with_capacity(c.len());
            let mut acc = off.clone();
            for x in c {
                local.push(acc.clone());
                acc = combine(&acc, x);
            }
            local
        })
        .collect();
    for b in blocks {
        out.extend(b);
    }
    (out, total)
}

/// Inclusive prefix sums of `u64` values (convenience wrapper).
pub fn inclusive_sum(a: &[u64]) -> Vec<u64> {
    let (mut ex, _) = exclusive_scan(a, 0u64, |x, y| x + y);
    for (e, v) in ex.iter_mut().zip(a) {
        *e += *v;
    }
    ex
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_matches_sequential() {
        let a: Vec<u64> = (1..=10).collect();
        let (scan, total) = exclusive_scan(&a, 0, |x, y| x + y);
        assert_eq!(scan, vec![0, 1, 3, 6, 10, 15, 21, 28, 36, 45]);
        assert_eq!(total, 55);
    }

    #[test]
    fn large_matches_sequential() {
        let a: Vec<u64> = (0..100_000).map(|i| (i * 7 + 3) % 101).collect();
        let (scan, total) = exclusive_scan(&a, 0, |x, y| x + y);
        let mut acc = 0u64;
        for (i, x) in a.iter().enumerate() {
            assert_eq!(scan[i], acc, "mismatch at {i}");
            acc += x;
        }
        assert_eq!(total, acc);
    }

    #[test]
    fn inclusive_wrapper() {
        assert_eq!(inclusive_sum(&[1, 2, 3]), vec![1, 3, 6]);
        assert_eq!(inclusive_sum(&[]), Vec::<u64>::new());
    }

    #[test]
    fn non_commutative_monoid() {
        // String concatenation is associative but not commutative; a correct
        // parallel scan must preserve order.
        let a: Vec<String> = (0..10_000).map(|i| format!("{},", i % 10)).collect();
        let (scan, total) = exclusive_scan(&a, String::new(), |x, y| format!("{x}{y}"));
        let mut acc = String::new();
        for (i, x) in a.iter().enumerate() {
            assert_eq!(&scan[i], &acc, "mismatch at {i}");
            acc.push_str(x);
        }
        assert_eq!(total, acc);
    }
}
