//! List ranking by pointer jumping — the textbook PRAM primitive
//! (Wyllie's algorithm): given a linked list as a successor array, compute
//! every node's distance to the tail in `O(log n)` rounds of `O(n)` work.
//!
//! The separator-tree construction the paper leans on (Tamassia–Vitter)
//! is built from exactly this family of tree/list contraction routines;
//! we provide the instrumented primitive both for completeness of the
//! PRAM toolbox and as a depth-accounting example: `O(n log n)` work,
//! `O(log n)` rounds — Brent-schedulable onto `p` cores.

use crate::cost::{add_work, record_depth, Category};
use rayon::prelude::*;

/// Sentinel for "no successor" (the list tail).
pub const NIL: u32 = u32::MAX;

/// Computes, for every node of a successor-array linked list, its distance
/// (number of links) to the tail of its list. Multiple disjoint lists are
/// allowed; cycles are reported as an error.
pub fn list_rank(succ: &[u32]) -> Result<Vec<u32>, CyclicList> {
    let n = succ.len();
    let mut next: Vec<u32> = succ.to_vec();
    let mut rank: Vec<u32> = succ.iter().map(|&s| u32::from(s != NIL)).collect();
    for (i, &s) in succ.iter().enumerate() {
        if s != NIL && (s as usize >= n || s as usize == i) {
            return Err(CyclicList);
        }
    }
    let mut rounds = 0u64;
    // ceil(log2 n) + 2 rounds suffice for acyclic lists; needing more
    // means a cycle (whose ranks would otherwise double forever).
    let max_rounds = (n.max(2) as f64).log2().ceil() as u64 + 2;
    loop {
        rounds += 1;
        if rounds > max_rounds {
            return Err(CyclicList);
        }
        add_work(Category::Primitive, n as u64);
        let advanced: Vec<(u32, u32)> = (0..n)
            .into_par_iter()
            .map(|i| {
                let s = next[i];
                if s == NIL {
                    (rank[i], NIL)
                } else {
                    (rank[i].saturating_add(rank[s as usize]), next[s as usize])
                }
            })
            .collect();
        let mut changed = false;
        for (i, (r, s)) in advanced.into_iter().enumerate() {
            if next[i] != s || rank[i] != r {
                changed = true;
            }
            rank[i] = r;
            next[i] = s;
        }
        if !changed {
            break;
        }
    }
    record_depth(Category::Primitive, rounds);
    Ok(rank)
}

/// Error: the successor array contains a cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CyclicList;

impl std::fmt::Display for CyclicList {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "successor array contains a cycle")
    }
}

impl std::error::Error for CyclicList {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_chain() {
        // 0 -> 1 -> 2 -> 3 -> NIL
        let succ = vec![1, 2, 3, NIL];
        assert_eq!(list_rank(&succ).unwrap(), vec![3, 2, 1, 0]);
    }

    #[test]
    fn scrambled_chain_matches_sequential() {
        // Build a 10_000-node list in scrambled memory order.
        let n = 10_000usize;
        let perm: Vec<usize> = (0..n).map(|i| (i * 7919) % n).collect();
        let mut succ = vec![NIL; n];
        for w in perm.windows(2) {
            succ[w[0]] = w[1] as u32;
        }
        let rank = list_rank(&succ).unwrap();
        for (pos, &node) in perm.iter().enumerate() {
            assert_eq!(rank[node] as usize, n - 1 - pos, "node {node}");
        }
    }

    #[test]
    fn forest_of_lists() {
        // Two lists: 0->1->NIL and 2->3->4->NIL.
        let succ = vec![1, NIL, 3, 4, NIL];
        assert_eq!(list_rank(&succ).unwrap(), vec![1, 0, 2, 1, 0]);
    }

    #[test]
    fn detects_cycles() {
        assert_eq!(list_rank(&[1, 0]).unwrap_err(), CyclicList);
        assert_eq!(list_rank(&[0]).unwrap_err(), CyclicList);
        assert_eq!(list_rank(&[1, 2, 0]).unwrap_err(), CyclicList);
    }

    #[test]
    fn empty_and_singletons() {
        assert_eq!(list_rank(&[]).unwrap(), Vec::<u32>::new());
        assert_eq!(list_rank(&[NIL, NIL]).unwrap(), vec![0, 0]);
    }
}
