//! Parallel merge of two sorted sequences by merge-path rank splitting
//! (the Shiloach–Vishkin-flavoured routine the paper cites as \[23\]).
//!
//! `O(n + m)` work, `O(log(n + m))` splitting depth: find the pair of ranks
//! `(i, j)` with `i + j = (n + m) / 2` such that the first half of the
//! stable merge is exactly `a[..i] ++ b[..j]` (double binary search), then
//! recurse on the two halves in parallel. Equal keys keep `a` items first.

use crate::cost::{add_work, Category, DepthScope};

/// Sequential cutoff below which a plain two-finger merge is used.
const SEQ_CUTOFF: usize = 4096;

/// Merges two sorted slices by `key` into a single sorted vector.
/// Stable: for equal keys, items of `a` precede items of `b`.
pub fn par_merge_by<T, K, F>(a: &[T], b: &[T], key: F) -> Vec<T>
where
    T: Clone + Send + Sync,
    K: Ord,
    F: Fn(&T) -> K + Send + Sync + Copy,
{
    let _depth = DepthScope::logarithmic(Category::Primitive, a.len() + b.len());
    add_work(Category::Primitive, (a.len() + b.len()) as u64);
    let mut out = vec_with_len(a.len() + b.len());
    merge_into(a, b, &mut out, key);
    out.into_iter().map(|o| o.expect("filled")).collect()
}

/// Merges two sorted slices of `Ord` items (stable, `a` first on ties).
pub fn par_merge<T: Clone + Send + Sync + Ord>(a: &[T], b: &[T]) -> Vec<T> {
    par_merge_by(a, b, |x| x.clone())
}

fn vec_with_len<T>(n: usize) -> Vec<Option<T>> {
    let mut v = Vec::with_capacity(n);
    v.resize_with(n, || None);
    v
}

fn merge_into<T, K, F>(a: &[T], b: &[T], out: &mut [Option<T>], key: F)
where
    T: Clone + Send + Sync,
    K: Ord,
    F: Fn(&T) -> K + Send + Sync + Copy,
{
    debug_assert_eq!(out.len(), a.len() + b.len());
    let total = a.len() + b.len();
    if total <= SEQ_CUTOFF {
        let (mut i, mut j) = (0, 0);
        for slot in out.iter_mut() {
            let take_a = match (a.get(i), b.get(j)) {
                (Some(x), Some(y)) => key(x) <= key(y),
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => unreachable!("output longer than inputs"),
            };
            if take_a {
                *slot = Some(a[i].clone());
                i += 1;
            } else {
                *slot = Some(b[j].clone());
                j += 1;
            }
        }
        return;
    }

    // Merge-path split: find (i, j), i + j = k, with the first k items of
    // the stable merge equal to a[..i] ++ b[..j]:
    //   (1) i == 0 || j == b.len() || key(a[i-1]) <= key(b[j])
    //   (2) j == 0 || i == a.len() || key(b[j-1]) <  key(a[i])
    let k = total / 2;
    let mut lo = k.saturating_sub(b.len());
    let mut hi = k.min(a.len());
    let i = loop {
        let i = lo + (hi - lo) / 2;
        let j = k - i;
        if i < a.len() && j > 0 && key(&b[j - 1]) >= key(&a[i]) {
            lo = i + 1; // (2) violated: need more items from a
        } else if i > 0 && j < b.len() && key(&a[i - 1]) > key(&b[j]) {
            hi = i - 1; // (1) violated: need fewer items from a
        } else {
            break i;
        }
    };
    let j = k - i;

    let (a_lo, a_hi) = a.split_at(i);
    let (b_lo, b_hi) = b.split_at(j);
    let (out_lo, out_hi) = out.split_at_mut(k);
    rayon::join(|| merge_into(a_lo, b_lo, out_lo, key), || merge_into(a_hi, b_hi, out_hi, key));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_merge() {
        assert_eq!(par_merge(&[1, 3, 5], &[2, 4, 6]), vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(par_merge::<i32>(&[], &[]), Vec::<i32>::new());
        assert_eq!(par_merge(&[1], &[]), vec![1]);
    }

    #[test]
    fn large_merge_matches_sort() {
        let mut a: Vec<u64> = (0..60_000)
            .map(|i| (i * 2_654_435_761) % 1_000_003)
            .collect();
        let mut b: Vec<u64> = (0..80_000).map(|i| (i * 40_503 + 7) % 1_000_003).collect();
        a.sort();
        b.sort();
        let merged = par_merge(&a, &b);
        let mut expect = [a, b].concat();
        expect.sort();
        assert_eq!(merged, expect);
    }

    #[test]
    fn stability_equal_keys() {
        let a: Vec<(u32, char)> = vec![(1, 'a'), (2, 'a'), (2, 'a'), (3, 'a')];
        let b: Vec<(u32, char)> = vec![(2, 'b'), (3, 'b')];
        let m = par_merge_by(&a, &b, |x| x.0);
        assert_eq!(m, vec![(1, 'a'), (2, 'a'), (2, 'a'), (2, 'b'), (3, 'a'), (3, 'b')]);
    }

    #[test]
    fn stability_equal_keys_forced_parallel() {
        // All-equal keys stress the split logic; the merge must still place
        // every a-item before every b-item.
        let a: Vec<(u32, u32)> = (0..6_000).map(|i| (7, i)).collect();
        let b: Vec<(u32, u32)> = (0..6_000).map(|i| (7, 100_000 + i)).collect();
        let m = par_merge_by(&a, &b, |x| x.0);
        assert_eq!(m.len(), 12_000);
        assert!(m[..6_000].iter().all(|x| x.1 < 100_000));
        assert!(m[6_000..].iter().all(|x| x.1 >= 100_000));
        assert!(m[..6_000].windows(2).all(|w| w[0].1 < w[1].1));
    }

    #[test]
    fn forced_parallel_path() {
        let a: Vec<u64> = (0..10_000).map(|i| i * 2).collect();
        let b: Vec<u64> = (0..10_000).map(|i| i * 2 + 1).collect();
        let m = par_merge(&a, &b);
        assert_eq!(m.len(), 20_000);
        assert!(m.windows(2).all(|w| w[0] <= w[1]));
    }
}
