//! Parallel merge of two sorted sequences by merge-path rank splitting
//! (the Shiloach–Vishkin-flavoured routine the paper cites as \[23\]).
//!
//! `O(n + m)` work, `O(log(n + m))` splitting depth: find the pair of ranks
//! `(i, j)` with `i + j = (n + m) / 2` such that the first half of the
//! stable merge is exactly `a[..i] ++ b[..j]` (double binary search), then
//! recurse on the two halves in parallel. Equal keys keep `a` items first.
//!
//! Items are compared *by reference* throughout — no keys are cloned, and
//! [`par_merge`] in particular never clones an element just to compare it.
//! Each sequential leaf merges straight into its own output vector; the
//! leaves are then stitched together with `Vec::append` (a pointer-sized
//! memmove per leaf), so there is no `Option<T>` scaffolding and no second
//! unwrapping pass over the data.

use crate::cost::{add_work, Category, DepthScope};

/// Sequential cutoff below which a plain two-finger merge is used.
const SEQ_CUTOFF: usize = 4096;

/// Merges two sorted slices by `key` into a single sorted vector.
/// Stable: for equal keys, items of `a` precede items of `b`.
pub fn par_merge_by<T, K, F>(a: &[T], b: &[T], key: F) -> Vec<T>
where
    T: Clone + Send + Sync,
    K: Ord,
    F: Fn(&T) -> K + Send + Sync + Copy,
{
    merge_with(a, b, move |x, y| key(x) <= key(y))
}

/// Merges two sorted slices of `Ord` items (stable, `a` first on ties).
/// Comparisons borrow the items; nothing is cloned until it is emitted.
pub fn par_merge<T: Clone + Send + Sync + Ord>(a: &[T], b: &[T]) -> Vec<T> {
    merge_with(a, b, |x, y| x <= y)
}

/// Shared driver: `le(x, y)` answers "may `x` (from `a`) precede `y`
/// (from `b`)?", i.e. `x <= y` under the intended order.
fn merge_with<T, LE>(a: &[T], b: &[T], le: LE) -> Vec<T>
where
    T: Clone + Send + Sync,
    LE: Fn(&T, &T) -> bool + Send + Sync + Copy,
{
    let total = a.len() + b.len();
    let _depth = DepthScope::logarithmic(Category::Primitive, total);
    add_work(Category::Primitive, total as u64);
    let mut parts = merge_rec(a, b, le);
    if parts.len() == 1 {
        return parts.pop().expect("one part");
    }
    let mut out = Vec::with_capacity(total);
    for mut part in parts {
        out.append(&mut part);
    }
    out
}

/// Recursive merge-path splitter; returns the merged runs in output order.
fn merge_rec<T, LE>(a: &[T], b: &[T], le: LE) -> Vec<Vec<T>>
where
    T: Clone + Send + Sync,
    LE: Fn(&T, &T) -> bool + Send + Sync + Copy,
{
    let total = a.len() + b.len();
    if total <= SEQ_CUTOFF {
        return vec![seq_merge(a, b, le)];
    }

    // Merge-path split: find (i, j), i + j = k, with the first k items of
    // the stable merge equal to a[..i] ++ b[..j]:
    //   (1) i == 0 || j == b.len() || a[i-1] <= b[j]
    //   (2) j == 0 || i == a.len() || b[j-1] <  a[i]
    let k = total / 2;
    let mut lo = k.saturating_sub(b.len());
    let mut hi = k.min(a.len());
    let i = loop {
        let i = lo + (hi - lo) / 2;
        let j = k - i;
        if i < a.len() && j > 0 && le(&a[i], &b[j - 1]) {
            lo = i + 1; // (2) violated: need more items from a
        } else if i > 0 && j < b.len() && !le(&a[i - 1], &b[j]) {
            hi = i - 1; // (1) violated: need fewer items from a
        } else {
            break i;
        }
    };
    let j = k - i;

    let (a_lo, a_hi) = a.split_at(i);
    let (b_lo, b_hi) = b.split_at(j);
    let (mut left, right) = crate::join(|| merge_rec(a_lo, b_lo, le), || merge_rec(a_hi, b_hi, le));
    left.extend(right);
    left
}

/// Two-finger sequential merge of a leaf range.
fn seq_merge<T, LE>(a: &[T], b: &[T], le: LE) -> Vec<T>
where
    T: Clone,
    LE: Fn(&T, &T) -> bool,
{
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if le(&a[i], &b[j]) {
            out.push(a[i].clone());
            i += 1;
        } else {
            out.push(b[j].clone());
            j += 1;
        }
    }
    out.extend(a[i..].iter().cloned());
    out.extend(b[j..].iter().cloned());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_merge() {
        assert_eq!(par_merge(&[1, 3, 5], &[2, 4, 6]), vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(par_merge::<i32>(&[], &[]), Vec::<i32>::new());
        assert_eq!(par_merge(&[1], &[]), vec![1]);
    }

    #[test]
    fn large_merge_matches_sort() {
        let mut a: Vec<u64> = (0..60_000)
            .map(|i| (i * 2_654_435_761) % 1_000_003)
            .collect();
        let mut b: Vec<u64> = (0..80_000).map(|i| (i * 40_503 + 7) % 1_000_003).collect();
        a.sort();
        b.sort();
        let merged = par_merge(&a, &b);
        let mut expect = [a, b].concat();
        expect.sort();
        assert_eq!(merged, expect);
    }

    #[test]
    fn stability_equal_keys() {
        let a: Vec<(u32, char)> = vec![(1, 'a'), (2, 'a'), (2, 'a'), (3, 'a')];
        let b: Vec<(u32, char)> = vec![(2, 'b'), (3, 'b')];
        let m = par_merge_by(&a, &b, |x| x.0);
        assert_eq!(m, vec![(1, 'a'), (2, 'a'), (2, 'a'), (2, 'b'), (3, 'a'), (3, 'b')]);
    }

    #[test]
    fn stability_equal_keys_forced_parallel() {
        // All-equal keys stress the split logic; the merge must still place
        // every a-item before every b-item.
        let a: Vec<(u32, u32)> = (0..6_000).map(|i| (7, i)).collect();
        let b: Vec<(u32, u32)> = (0..6_000).map(|i| (7, 100_000 + i)).collect();
        let m = par_merge_by(&a, &b, |x| x.0);
        assert_eq!(m.len(), 12_000);
        assert!(m[..6_000].iter().all(|x| x.1 < 100_000));
        assert!(m[6_000..].iter().all(|x| x.1 >= 100_000));
        assert!(m[..6_000].windows(2).all(|w| w[0].1 < w[1].1));
    }

    #[test]
    fn forced_parallel_path() {
        let a: Vec<u64> = (0..10_000).map(|i| i * 2).collect();
        let b: Vec<u64> = (0..10_000).map(|i| i * 2 + 1).collect();
        let m = par_merge(&a, &b);
        assert_eq!(m.len(), 20_000);
        assert!(m.windows(2).all(|w| w[0] <= w[1]));
    }

    /// Cloning this type anywhere but at emission is a test failure.
    #[derive(PartialEq, Eq, PartialOrd, Ord, Debug)]
    struct CountedClone(u64);

    static CLONES: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

    impl Clone for CountedClone {
        fn clone(&self) -> Self {
            CLONES.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            CountedClone(self.0)
        }
    }

    #[test]
    fn par_merge_clones_each_element_exactly_once() {
        // 20_000 elements force the parallel path; comparisons must not
        // clone (the old implementation cloned whole elements as keys —
        // O(n log n) clones from the binary searches alone).
        let a: Vec<CountedClone> = (0..10_000).map(|i| CountedClone(i * 2)).collect();
        let b: Vec<CountedClone> = (0..10_000).map(|i| CountedClone(i * 2 + 1)).collect();
        CLONES.store(0, std::sync::atomic::Ordering::Relaxed);
        let m = par_merge(&a, &b);
        assert_eq!(m.len(), 20_000);
        assert!(m.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(
            CLONES.load(std::sync::atomic::Ordering::Relaxed),
            20_000,
            "exactly one clone per emitted element"
        );
    }

    #[test]
    fn merge_work_is_counted_once() {
        let (_, report) = crate::cost::CostCollector::measure(|| {
            par_merge(&[1u32, 3, 5], &[2, 4, 6]);
        });
        assert_eq!(report.work_of(Category::Primitive), 6);
    }
}
