//! Parallel compaction (stream filtering) via prefix sums — the classic
//! PRAM pattern for turning a parallel predicate pass into a dense output
//! array: flag, scan, scatter. `O(n)` work, `O(log n)` depth.

use crate::cost::{add_work, Category, DepthScope};
use crate::scan::exclusive_scan;
use rayon::prelude::*;

/// Sequential cutoff.
const SEQ_CUTOFF: usize = 4096;

/// Keeps the items satisfying `pred`, preserving order, with scan-based
/// parallel placement.
pub fn par_compact<T, F>(items: &[T], pred: F) -> Vec<T>
where
    T: Clone + Send + Sync,
    F: Fn(&T) -> bool + Send + Sync,
{
    let n = items.len();
    add_work(Category::Primitive, n as u64);
    let _d = DepthScope::logarithmic(Category::Primitive, n);
    if n <= SEQ_CUTOFF {
        return items.iter().filter(|x| pred(x)).cloned().collect();
    }
    // Flag pass.
    let flags: Vec<u64> = items.par_iter().map(|x| u64::from(pred(x))).collect();
    // Scan for destinations.
    let (dests, total) = exclusive_scan(&flags, 0u64, |a, b| a + b);
    // Scatter.
    let mut out: Vec<Option<T>> = Vec::with_capacity(total as usize);
    out.resize_with(total as usize, || None);
    let slots: Vec<(usize, T)> = items
        .par_iter()
        .zip(flags.par_iter().zip(dests.par_iter()))
        .filter(|&(_, (&f, _))| f == 1)
        .map(|(x, (_, &d))| (d as usize, x.clone()))
        .collect();
    for (d, x) in slots {
        out[d] = Some(x);
    }
    out.into_iter()
        .map(|o| o.expect("scatter filled every slot"))
        .collect()
}

/// Parallel map + compact in one pass: applies `f` and keeps the `Some`s.
pub fn par_filter_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> Option<U> + Send + Sync,
{
    add_work(Category::Primitive, items.len() as u64);
    let _d = DepthScope::logarithmic(Category::Primitive, items.len());
    items.par_iter().filter_map(f).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_matches_filter() {
        let v: Vec<u32> = (0..100).collect();
        assert_eq!(
            par_compact(&v, |x| x % 3 == 0),
            v.iter().copied().filter(|x| x % 3 == 0).collect::<Vec<_>>()
        );
    }

    #[test]
    fn large_preserves_order() {
        let v: Vec<u64> = (0..50_000).map(|i| (i * 2_654_435_761) % 1000).collect();
        let ours = par_compact(&v, |&x| x < 250);
        let std: Vec<u64> = v.iter().copied().filter(|&x| x < 250).collect();
        assert_eq!(ours, std);
    }

    #[test]
    fn empty_and_all() {
        let v: Vec<u8> = (0..200).map(|i| i as u8).collect();
        assert!(par_compact(&v, |_| false).is_empty());
        assert_eq!(par_compact(&v, |_| true), v);
    }

    #[test]
    fn filter_map_works() {
        let v: Vec<i32> = (-10..10).collect();
        let out = par_filter_map(&v, |&x| (x > 0).then_some(x * x));
        assert_eq!(out, vec![1, 4, 9, 16, 25, 36, 49, 64, 81]);
    }
}
