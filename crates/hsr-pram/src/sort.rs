//! Parallel merge sort built on the instrumented [`crate::merge`] routine.
//!
//! `O(n log n)` work, `O(log² n)` depth — the classical PRAM merge sort the
//! paper's separator-tree step presupposes. Stability follows from the
//! stable parallel merge.

use crate::cost::{add_work, Category, DepthScope};
use crate::merge::par_merge_by;

/// Sequential cutoff (std's sort is used below it).
const SEQ_CUTOFF: usize = 8192;

/// Sorts a vector by `key`, stably, in parallel.
pub fn par_sort_by_key<T, K, F>(items: Vec<T>, key: F) -> Vec<T>
where
    T: Clone + Send + Sync,
    K: Ord,
    F: Fn(&T) -> K + Send + Sync + Copy,
{
    let n = items.len();
    let _depth = DepthScope::logarithmic(Category::Primitive, n);
    add_work(Category::Primitive, (n.max(1) as u64).ilog2() as u64 * n as u64);
    sort_rec(items, key)
}

fn sort_rec<T, K, F>(mut items: Vec<T>, key: F) -> Vec<T>
where
    T: Clone + Send + Sync,
    K: Ord,
    F: Fn(&T) -> K + Send + Sync + Copy,
{
    if items.len() <= SEQ_CUTOFF {
        items.sort_by_key(|a| key(a));
        return items;
    }
    let right = items.split_off(items.len() / 2);
    // `crate::join` (not `rayon::join`): the cost collector must follow
    // the stolen half onto whatever thread runs it.
    let (l, r) = crate::join(|| sort_rec(items, key), || sort_rec(right, key));
    par_merge_by(&l, &r, key)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_small() {
        let v = par_sort_by_key(vec![3, 1, 2], |&x| x);
        assert_eq!(v, vec![1, 2, 3]);
        assert_eq!(par_sort_by_key(Vec::<u8>::new(), |&x| x), Vec::<u8>::new());
    }

    #[test]
    fn sorts_large_matches_std() {
        let v: Vec<u64> = (0..100_000).map(|i| (i * 2_654_435_761) % 65_536).collect();
        let ours = par_sort_by_key(v.clone(), |&x| x);
        let mut expect = v;
        expect.sort();
        assert_eq!(ours, expect);
    }

    #[test]
    fn stable_on_equal_keys() {
        // (key, original index): equal keys must keep index order.
        let v: Vec<(u8, u32)> = (0..50_000u32).map(|i| ((i % 7) as u8, i)).collect();
        let sorted = par_sort_by_key(v, |x| x.0);
        for w in sorted.windows(2) {
            if w[0].0 == w[1].0 {
                assert!(w[0].1 < w[1].1, "instability at {:?}", w);
            }
        }
    }
}
