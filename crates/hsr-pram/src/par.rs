//! Collector-propagating fork primitives.
//!
//! The cost counters of [`crate::cost`] live in a thread-local slot, and
//! rayon subtasks may run on other worker threads, so a bare `rayon::join`
//! inside a measured region would silently drop every charge made by the
//! stolen half. These wrappers capture the spawning thread's active
//! [`CostCollector`](crate::cost::CostCollector) handle and re-install it
//! around each closure, whatever thread it lands on. All fork sites inside
//! the workspace use them; external code embedding the primitives in its
//! own `rayon::join` calls should too, or accept that work done on other
//! threads goes uncounted.
//!
//! When no collector is installed the wrappers degenerate to plain
//! `rayon::join` / `rayon::scope` plus one thread-local read.

use crate::cost;

/// Like `rayon::join`, but both closures charge the spawning thread's
/// active cost collector regardless of which worker thread runs them.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let active_a = cost::current();
    let active_b = active_a.clone();
    rayon::join(
        move || cost::with_active(active_a, oper_a),
        move || cost::with_active(active_b, oper_b),
    )
}

/// Like `rayon::scope`, but closures spawned through the scope charge the
/// spawning thread's active cost collector.
pub fn scope<'scope, F, R>(f: F) -> R
where
    F: FnOnce(&Scope<'_, 'scope>) -> R,
{
    let active = cost::current();
    rayon::scope(|inner| f(&Scope { inner, active }))
}

/// Collector-carrying counterpart of `rayon::Scope`, handed to the closure
/// of [`scope`].
pub struct Scope<'r, 'scope> {
    inner: &'r rayon::Scope<'scope>,
    active: Option<cost::CostCollector>,
}

impl<'r, 'scope> Scope<'r, 'scope> {
    /// Spawns `f` into the scope; it runs with the scope's collector
    /// installed on whichever thread picks it up.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'_, 'scope>) + Send + 'scope,
    {
        let active = self.active.clone();
        self.inner.spawn(move |inner| {
            let rescope = Scope { inner, active: active.clone() };
            cost::with_active(active, || f(&rescope));
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{add_work, Category, CostCollector};

    #[test]
    fn join_charges_the_spawning_collector_on_both_branches() {
        let c = CostCollector::new();
        let g = c.install();
        // Force real fork fan-out: a recursive split deep enough that, on
        // a multi-core host, some branches run on helper threads.
        fn rec(depth: usize) {
            if depth == 0 {
                add_work(Category::Primitive, 1);
                return;
            }
            join(|| rec(depth - 1), || rec(depth - 1));
        }
        rec(7); // 128 leaves
        drop(g);
        assert_eq!(c.report().work_of(Category::Primitive), 128);
    }

    #[test]
    fn join_without_collector_is_plain() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!((a, b), (4, "ok"));
    }

    #[test]
    fn concurrent_collectors_do_not_bleed() {
        // Two measured regions running on two OS threads at once must end
        // with exactly their own counts, even though both fork internally.
        let counts: Vec<u64> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..2)
                .map(|i| {
                    s.spawn(move || {
                        let (_, report) = CostCollector::measure(|| {
                            fn rec(depth: usize, amount: u64) {
                                if depth == 0 {
                                    add_work(Category::Other, amount);
                                    return;
                                }
                                join(|| rec(depth - 1, amount), || rec(depth - 1, amount));
                            }
                            rec(6, i + 1); // 64 leaves of (i + 1) units
                        });
                        report.work_of(Category::Other)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(counts, vec![64, 128]);
    }

    #[test]
    fn scope_spawns_charge_the_collector() {
        let c = CostCollector::new();
        let g = c.install();
        scope(|s| {
            for _ in 0..10 {
                s.spawn(|inner| {
                    add_work(Category::Query, 1);
                    inner.spawn(|_| add_work(Category::Query, 2));
                });
            }
        });
        drop(g);
        assert_eq!(c.report().work_of(Category::Query), 30);
    }
}
