//! CREW-PRAM substitute: cost accounting, Brent slow-down simulation and
//! instrumented parallel primitives.
//!
//! The paper states its results in the CREW PRAM model and relies on the
//! Brent slow-down lemma (its Lemmas 2.1 and 2.2) to trade processors for
//! time. Real hardware is a fixed small set of cores behind a work-stealing
//! scheduler, so this crate reproduces the *model*:
//!
//! * [`cost`] — scoped work counters (per category) and structural depth
//!   meters that algorithms update as they run, collected per measurement
//!   through [`cost::CostCollector`]. Work corresponds to the PRAM "total
//!   number of tasks"; depth to the number of dependent phases. The
//!   [`join`]/[`scope`] wrappers carry the active collector across rayon
//!   task boundaries so concurrent measurements stay isolated.
//! * [`brent`] — given `(W, D)` measured by [`cost`], predicts `T_p ≈
//!   c·(W/p + D)` and compares against measured wall-clock scaling.
//! * [`scan`] / [`merge`] / [`sort`] — the "basic parallel routines" of the
//!   paper's §3: parallel prefix (Ladner–Fischer), parallel merge by rank
//!   splitting, and parallel merge sort, all instrumented.
//! * [`pool`] — helpers to run a closure on a dedicated rayon pool with an
//!   exact thread count (used by the speedup experiments).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod brent;
pub mod compact;
pub mod cost;
pub mod merge;
pub mod par;
pub mod pool;
pub mod ranking;
pub mod scan;
pub mod sort;

pub use brent::BrentModel;
pub use cost::{Category, CostCollector, CostReport, DepthScope};
pub use par::{join, scope, Scope};
pub use pool::with_threads;
