//! Work and depth accounting, scoped per measurement.
//!
//! *Work* is counted in abstract "tasks" (the paper's unit in Lemma 2.1):
//! algorithms call [`add_work`] with a category and a batch count at natural
//! chunk boundaries; relaxed atomic adds keep the overhead negligible
//! compared to per-operation counting.
//!
//! *Depth* is structural: each algorithm phase knows its dependent-round
//! count (PCT layers, recursion depth of a divide-and-conquer, rounds of a
//! topological peel) and records it through [`record_depth`] or the
//! [`DepthScope`] guard. Sequential phases add; the maximum nesting within a
//! phase is what the phase records.
//!
//! # Scoped collection
//!
//! Counters live in a [`CostCollector`] — a cheap `Arc`-backed handle a
//! measurement creates and *installs* in a thread-local slot for the
//! duration of the measured region:
//!
//! ```
//! use hsr_pram::cost::{self, Category, CostCollector};
//!
//! let collector = CostCollector::new();
//! let guard = collector.install();
//! cost::add_work(Category::Query, 3); // charged to `collector`
//! drop(guard);
//! assert_eq!(collector.report().work_of(Category::Query), 3);
//! ```
//!
//! [`add_work`] / [`record_depth`] / [`DepthScope`] resolve the calling
//! thread's active collector; when none is installed they are a no-op, so
//! uninstrumented hot loops pay a thread-local read and nothing else.
//! Collectors *nest*: a collector created while another is active keeps a
//! parent link, and every charge propagates up the chain, so an outer
//! bracket (for example a test asserting that a batch of views builds the
//! shared terrain state exactly once) still observes everything its inner
//! scopes counted.
//!
//! Thread-locals do not cross `rayon` task boundaries on their own. Code
//! that forks inside a measured region must use [`crate::join`] /
//! [`crate::scope`] (collector-propagating wrappers of `rayon::join` /
//! `rayon::scope`) so work-stolen subtasks keep charging the collector of
//! the evaluation that spawned them. Every parallel primitive in this
//! crate and every fork in the HSR pipeline does; concurrent measurements
//! therefore never bleed counts into each other — the defect that made
//! per-view `CostReport`s untrustworthy when the old process-global
//! counters were bracketed with `snapshot()`/`since()` under parallel
//! batch evaluation.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Work/depth categories, roughly one per paper ingredient.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
#[repr(usize)]
pub enum Category {
    /// Front-to-back ordering (separator-tree substitute).
    Order,
    /// Phase-1 intermediate profile construction (Lemma 3.1).
    EnvelopeBuild,
    /// Phase-2 prefix profile merging.
    EnvelopeMerge,
    /// Persistent-treap node copies (the persistence cost).
    TreapOps,
    /// CG/ACG structure construction (Lemmas 3.3–3.5).
    CgBuild,
    /// Intersection queries (Lemmas 3.2, 3.6).
    Query,
    /// Crossings actually found (chargeable to the output size `k`).
    Crossings,
    /// Basic parallel routines (scan / merge / sort).
    Primitive,
    /// Full terrain adjacency builds (TIN validation + edge extraction).
    /// One unit per build — lets callers assert that shared terrain state
    /// was constructed exactly once across a batch of views.
    TinBuild,
    /// Everything else.
    Other,
    // New categories append at the end: the `repr` discriminant indexes
    // serialized counter arrays, so existing indices must stay stable.
    /// Arena-treap slot writes (allocations and cross-epoch copies of the
    /// non-persistent, index-linked treap representation). Kept separate
    /// from [`Category::TreapOps`] so the experiments can attribute cost
    /// to the `Arc` path-copying representation vs. the arena one.
    TreapArena,
    /// Piece-pair relations settled by the interval filter alone (the
    /// batched-predicate fast path; one unit per filtered pair). The
    /// fast-path hit rate is `PredicateFilter / (PredicateFilter +
    /// PredicateExact)`.
    PredicateFilter,
    /// Piece-pair relations where the interval filter was inconclusive
    /// and the exact (expansion-sign or scalar) fallback ran.
    PredicateExact,
}

/// Number of categories (length of the counter arrays).
pub const N_CATEGORIES: usize = 13;

/// All categories in `repr` order.
pub const ALL_CATEGORIES: [Category; N_CATEGORIES] = [
    Category::Order,
    Category::EnvelopeBuild,
    Category::EnvelopeMerge,
    Category::TreapOps,
    Category::CgBuild,
    Category::Query,
    Category::Crossings,
    Category::Primitive,
    Category::TinBuild,
    Category::Other,
    Category::TreapArena,
    Category::PredicateFilter,
    Category::PredicateExact,
];

/// The atomic counter arrays of one collector, plus the parent link that
/// makes nested brackets see their children's charges.
#[derive(Debug)]
struct Counters {
    work: [AtomicU64; N_CATEGORIES],
    depth: [AtomicU64; N_CATEGORIES],
    parent: Option<Arc<Counters>>,
}

impl Counters {
    fn new(parent: Option<Arc<Counters>>) -> Counters {
        Counters {
            work: std::array::from_fn(|_| AtomicU64::new(0)),
            depth: std::array::from_fn(|_| AtomicU64::new(0)),
            parent,
        }
    }
}

thread_local! {
    /// The calling thread's innermost installed collector.
    static ACTIVE: RefCell<Option<Arc<Counters>>> = const { RefCell::new(None) };
}

/// Charges `f` to the active collector and every ancestor in its chain;
/// no-op when nothing is installed.
#[inline]
fn charge(f: impl Fn(&Counters)) {
    ACTIVE.with(|a| {
        let borrow = a.borrow();
        let mut cur = borrow.as_deref();
        while let Some(c) = cur {
            f(c);
            cur = c.parent.as_deref();
        }
    });
}

/// A scoped set of work/depth counters.
///
/// Created per measurement (each `evaluate` of a view owns one), installed
/// with [`CostCollector::install`], read back with
/// [`CostCollector::report`]. The handle is a cheap `Arc` clone and is
/// `Send + Sync`; [`crate::join`] and [`crate::scope`] carry it across
/// rayon task boundaries automatically.
#[derive(Clone, Debug)]
pub struct CostCollector {
    inner: Arc<Counters>,
}

impl CostCollector {
    /// Creates a collector. If the calling thread already has an active
    /// collector, the new one is nested under it: every charge to the new
    /// collector also propagates to the enclosing one, preserving
    /// outer-bracket semantics.
    pub fn new() -> CostCollector {
        let parent = ACTIVE.with(|a| a.borrow().clone());
        CostCollector { inner: Arc::new(Counters::new(parent)) }
    }

    /// Installs this collector as the calling thread's active one,
    /// returning a guard that restores the previous collector when
    /// dropped. The guard must be dropped on the thread that created it
    /// (it is deliberately `!Send`).
    #[must_use = "dropping the guard immediately uninstalls the collector"]
    pub fn install(&self) -> CollectorGuard {
        let prev = ACTIVE.with(|a| a.borrow_mut().replace(Arc::clone(&self.inner)));
        CollectorGuard { prev, _not_send: std::marker::PhantomData }
    }

    /// A snapshot of everything charged to this collector so far.
    pub fn report(&self) -> CostReport {
        CostReport {
            work: self
                .inner
                .work
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            depth: self
                .inner
                .depth
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
        }
    }

    /// Runs `f` under a fresh collector and returns its result together
    /// with the collected counters — the one-line measurement bracket.
    pub fn measure<R>(f: impl FnOnce() -> R) -> (R, CostReport) {
        let collector = CostCollector::new();
        let guard = collector.install();
        let r = f();
        drop(guard);
        (r, collector.report())
    }
}

impl Default for CostCollector {
    fn default() -> Self {
        CostCollector::new()
    }
}

/// RAII guard of [`CostCollector::install`]; restores the previously
/// active collector on drop.
pub struct CollectorGuard {
    prev: Option<Arc<Counters>>,
    /// The guard manipulates a thread-local slot; sending it to another
    /// thread would restore the wrong slot.
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for CollectorGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        ACTIVE.with(|a| *a.borrow_mut() = prev);
    }
}

/// The calling thread's active collector, if any — a cheap handle clone.
/// [`crate::join`] / [`crate::scope`] use this to re-install the collector
/// on the threads their subtasks land on.
pub fn current() -> Option<CostCollector> {
    ACTIVE.with(|a| a.borrow().clone().map(|inner| CostCollector { inner }))
}

/// Runs `f` with `active` installed (when `Some`); used by the
/// task-boundary wrappers to propagate the spawning thread's collector.
pub fn with_active<R>(active: Option<CostCollector>, f: impl FnOnce() -> R) -> R {
    match active {
        Some(c) => {
            let _guard = c.install();
            f()
        }
        None => f(),
    }
}

/// True when the calling thread has a collector installed (i.e. counting
/// is live rather than the no-op fast path).
pub fn is_active() -> bool {
    ACTIVE.with(|a| a.borrow().is_some())
}

/// Adds `n` units of work in `cat` to the active collector (and its
/// ancestors); no-op when no collector is installed.
#[inline]
pub fn add_work(cat: Category, n: u64) {
    charge(|c| {
        c.work[cat as usize].fetch_add(n, Ordering::Relaxed);
    });
}

/// Records that a phase of category `cat` ran `d` dependent rounds;
/// sequential phases of the same category accumulate. No-op when no
/// collector is installed.
#[inline]
pub fn record_depth(cat: Category, d: u64) {
    charge(|c| {
        c.depth[cat as usize].fetch_add(d, Ordering::Relaxed);
    });
}

/// Does nothing. Counters are no longer process-global: create a
/// [`CostCollector`] per measured region instead of resetting shared
/// state (which corrupted any measurement bracketing the reset).
#[deprecated(
    since = "0.1.0",
    note = "counters are scoped now — bracket measurements with `CostCollector` \
            (e.g. `CostCollector::measure`) instead of resetting globals"
)]
pub fn reset() {}

/// A snapshot of all counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CostReport {
    /// Work per category, `repr` order (see [`ALL_CATEGORIES`]).
    pub work: Vec<u64>,
    /// Accumulated structural depth per category.
    pub depth: Vec<u64>,
}

impl CostReport {
    /// A report with every category present and zero.
    pub fn zeroed() -> CostReport {
        CostReport { work: vec![0; N_CATEGORIES], depth: vec![0; N_CATEGORIES] }
    }

    /// The calling thread's active collector's counters (zeros when none
    /// is installed).
    #[deprecated(
        since = "0.1.0",
        note = "counters are scoped now — read `CostCollector::report()` on the \
                collector you installed, or a `Report`'s `cost` field"
    )]
    pub fn snapshot() -> Self {
        current().map_or_else(CostReport::zeroed, |c| c.report())
    }

    /// Work in one category (0 when the report predates the category).
    pub fn work_of(&self, cat: Category) -> u64 {
        self.work.get(cat as usize).copied().unwrap_or(0)
    }

    /// Depth of one category (0 when the report predates the category).
    pub fn depth_of(&self, cat: Category) -> u64 {
        self.depth.get(cat as usize).copied().unwrap_or(0)
    }

    /// Total work over all categories.
    pub fn total_work(&self) -> u64 {
        self.work.iter().sum()
    }

    /// Total depth (sum of per-category accumulated phase depths; phases of
    /// different categories run sequentially in the pipeline).
    pub fn total_depth(&self) -> u64 {
        self.depth.iter().sum()
    }

    /// Counter-wise sum of `other` into `self` — the accounting of a
    /// measurement stitched together from parts (e.g. per-tile reports of
    /// a tiled evaluation). Work adds; depth also adds, modelling the
    /// parts as evaluated sequentially — a conservative (upper-bound)
    /// depth for schedules that overlap parts. Length-tolerant like
    /// [`CostReport::since`]: missing categories count as zero and the
    /// result covers the longer vector.
    pub fn absorb(&mut self, other: &CostReport) {
        fn add(a: &mut Vec<u64>, b: &[u64]) {
            if a.len() < b.len() {
                a.resize(b.len(), 0);
            }
            for (x, &y) in a.iter_mut().zip(b) {
                *x = x.saturating_add(y);
            }
        }
        add(&mut self.work, &other.work);
        add(&mut self.depth, &other.depth);
    }

    /// Counter-wise difference `self - earlier` (for comparing two
    /// reports). Robust against reports of different vintages: missing
    /// categories (older serialized reports) count as zero, and the
    /// subtraction saturates instead of panicking when `earlier` is ahead
    /// in some category.
    pub fn since(&self, earlier: &CostReport) -> CostReport {
        fn diff(a: &[u64], b: &[u64]) -> Vec<u64> {
            (0..a.len().max(b.len()))
                .map(|i| {
                    let x = a.get(i).copied().unwrap_or(0);
                    let y = b.get(i).copied().unwrap_or(0);
                    x.saturating_sub(y)
                })
                .collect()
        }
        CostReport {
            work: diff(&self.work, &earlier.work),
            depth: diff(&self.depth, &earlier.depth),
        }
    }
}

/// RAII guard that records the depth of a phase as `ceil(log2(n)) + 1`
/// rounds — the canonical depth of a balanced divide-and-conquer or a
/// layer-by-layer pass over a balanced tree of `n` leaves.
pub struct DepthScope {
    cat: Category,
    rounds: u64,
}

impl DepthScope {
    /// Opens a scope for a phase over `n` items with logarithmic round
    /// structure.
    pub fn logarithmic(cat: Category, n: usize) -> Self {
        let rounds = (usize::BITS - n.max(1).leading_zeros()) as u64;
        DepthScope { cat, rounds }
    }

    /// Opens a scope for a phase with an explicit round count.
    pub fn rounds(cat: Category, rounds: u64) -> Self {
        DepthScope { cat, rounds }
    }
}

impl Drop for DepthScope {
    fn drop(&mut self) {
        record_depth(self.cat, self.rounds);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uninstrumented_fast_path_is_a_noop() {
        assert!(!is_active());
        add_work(Category::Query, 10); // nowhere to go; must not panic
        record_depth(Category::Query, 3);
        let c = CostCollector::new();
        assert_eq!(c.report().total_work(), 0);
        assert_eq!(c.report().total_depth(), 0);
    }

    #[test]
    fn work_accumulates_per_collector() {
        let c = CostCollector::new();
        let g = c.install();
        add_work(Category::Query, 10);
        add_work(Category::Query, 5);
        add_work(Category::Crossings, 2);
        drop(g);
        add_work(Category::Query, 99); // after uninstall: not charged
        let r = c.report();
        assert_eq!(r.work_of(Category::Query), 15);
        assert_eq!(r.work_of(Category::Crossings), 2);
        assert_eq!(r.total_work(), 17);
    }

    #[test]
    fn guard_restores_previous_collector() {
        let outer = CostCollector::new();
        let og = outer.install();
        {
            let inner = CostCollector::new();
            let ig = inner.install();
            add_work(Category::Order, 4);
            drop(ig);
            // Nested: the inner charge propagated to the outer bracket too.
            assert_eq!(inner.report().work_of(Category::Order), 4);
        }
        add_work(Category::Order, 1); // outer is active again
        drop(og);
        assert_eq!(outer.report().work_of(Category::Order), 5);
    }

    #[test]
    fn nesting_chains_to_all_ancestors() {
        let grandparent = CostCollector::new();
        let gg = grandparent.install();
        let parent = CostCollector::new();
        let pg = parent.install();
        let child = CostCollector::new();
        let cg = child.install();
        add_work(Category::TreapOps, 7);
        drop(cg);
        drop(pg);
        drop(gg);
        assert_eq!(child.report().work_of(Category::TreapOps), 7);
        assert_eq!(parent.report().work_of(Category::TreapOps), 7);
        assert_eq!(grandparent.report().work_of(Category::TreapOps), 7);
    }

    #[test]
    fn measure_brackets() {
        let (value, report) = CostCollector::measure(|| {
            add_work(Category::CgBuild, 21);
            "done"
        });
        assert_eq!(value, "done");
        assert_eq!(report.work_of(Category::CgBuild), 21);
        assert!(!is_active());
    }

    #[test]
    fn collectors_on_other_threads_are_isolated() {
        let here = CostCollector::new();
        let g = here.install();
        std::thread::scope(|s| {
            s.spawn(|| {
                // A plain OS thread has no collector: charges vanish.
                assert!(!is_active());
                add_work(Category::Other, 1_000);
            })
            .join()
            .unwrap();
        });
        add_work(Category::Other, 1);
        drop(g);
        assert_eq!(here.report().work_of(Category::Other), 1);
    }

    #[test]
    fn depth_scope_logs() {
        let c = CostCollector::new();
        let g = c.install();
        {
            let _s = DepthScope::logarithmic(Category::EnvelopeBuild, 1024);
        }
        drop(g);
        assert_eq!(c.report().depth_of(Category::EnvelopeBuild), 11); // ceil(log2(1024)) + 1
    }

    #[test]
    fn since_subtracts() {
        let c = CostCollector::new();
        let g = c.install();
        add_work(Category::Order, 7);
        let a = c.report();
        add_work(Category::Order, 3);
        let b = c.report();
        drop(g);
        assert_eq!(b.since(&a).work_of(Category::Order), 3);
    }

    #[test]
    fn absorb_sums_and_tolerates_length_mismatch() {
        let mut a = CostReport { work: vec![1, 2], depth: vec![3] };
        let b = CostReport { work: vec![10, 20, 30], depth: vec![1, 1] };
        a.absorb(&b);
        assert_eq!(a.work, vec![11, 22, 30]);
        assert_eq!(a.depth, vec![4, 1]);
        let mut z = CostReport::zeroed();
        z.absorb(&CostReport::default());
        assert_eq!(z, CostReport::zeroed());
    }

    #[test]
    fn since_saturates_instead_of_panicking() {
        let newer = CostReport { work: vec![5, 2], depth: vec![0, 1] };
        let older = CostReport { work: vec![9, 1], depth: vec![3, 0] };
        let d = newer.since(&older);
        assert_eq!(d.work, vec![0, 1]);
        assert_eq!(d.depth, vec![0, 1]);
    }

    #[test]
    fn since_tolerates_length_mismatched_reports() {
        // An older serialized report may predate newer categories (shorter
        // vectors) or come from a build with more (longer); both directions
        // must subtract as if padded with zeros, not truncate.
        let long = CostReport { work: vec![4, 4, 4], depth: vec![1, 1, 1] };
        let short = CostReport { work: vec![1], depth: vec![] };
        let d = long.since(&short);
        assert_eq!(d.work, vec![3, 4, 4]);
        assert_eq!(d.depth, vec![1, 1, 1]);
        let d2 = short.since(&long);
        assert_eq!(d2.work, vec![0, 0, 0]);
        assert_eq!(d2.depth, vec![0, 0, 0]);
        // Accessors are equally robust on short reports.
        assert_eq!(short.depth_of(Category::Other), 0);
        assert_eq!(short.work_of(Category::Other), 0);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_still_compile_and_behave() {
        reset(); // no-op
        assert_eq!(CostReport::snapshot(), CostReport::zeroed());
        let c = CostCollector::new();
        let g = c.install();
        add_work(Category::Query, 2);
        assert_eq!(CostReport::snapshot().work_of(Category::Query), 2);
        drop(g);
    }
}
