//! Work and depth accounting.
//!
//! *Work* is counted in abstract "tasks" (the paper's unit in Lemma 2.1):
//! algorithms call [`add_work`] with a category and a batch count at natural
//! chunk boundaries; relaxed atomic adds keep the overhead negligible
//! compared to per-operation counting.
//!
//! *Depth* is structural: each algorithm phase knows its dependent-round
//! count (PCT layers, recursion depth of a divide-and-conquer, rounds of a
//! topological peel) and records it through [`record_depth`] or the
//! [`DepthScope`] guard. Sequential phases add; the maximum nesting within a
//! phase is what the phase records.

use std::sync::atomic::{AtomicU64, Ordering};

/// Work/depth categories, roughly one per paper ingredient.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
#[repr(usize)]
pub enum Category {
    /// Front-to-back ordering (separator-tree substitute).
    Order,
    /// Phase-1 intermediate profile construction (Lemma 3.1).
    EnvelopeBuild,
    /// Phase-2 prefix profile merging.
    EnvelopeMerge,
    /// Persistent-treap node copies (the persistence cost).
    TreapOps,
    /// CG/ACG structure construction (Lemmas 3.3–3.5).
    CgBuild,
    /// Intersection queries (Lemmas 3.2, 3.6).
    Query,
    /// Crossings actually found (chargeable to the output size `k`).
    Crossings,
    /// Basic parallel routines (scan / merge / sort).
    Primitive,
    /// Full terrain adjacency builds (TIN validation + edge extraction).
    /// One unit per build — lets callers assert that shared terrain state
    /// was constructed exactly once across a batch of views.
    TinBuild,
    /// Everything else.
    Other,
}

/// Number of categories (length of the counter arrays).
pub const N_CATEGORIES: usize = 10;

/// All categories in `repr` order.
pub const ALL_CATEGORIES: [Category; N_CATEGORIES] = [
    Category::Order,
    Category::EnvelopeBuild,
    Category::EnvelopeMerge,
    Category::TreapOps,
    Category::CgBuild,
    Category::Query,
    Category::Crossings,
    Category::Primitive,
    Category::TinBuild,
    Category::Other,
];

#[allow(clippy::declare_interior_mutable_const)] // used purely as an array initializer
const ZERO: AtomicU64 = AtomicU64::new(0);
static WORK: [AtomicU64; N_CATEGORIES] = [ZERO; N_CATEGORIES];
static DEPTH: [AtomicU64; N_CATEGORIES] = [ZERO; N_CATEGORIES];

/// Adds `n` units of work in `cat`.
#[inline]
pub fn add_work(cat: Category, n: u64) {
    WORK[cat as usize].fetch_add(n, Ordering::Relaxed);
}

/// Records that a phase of category `cat` ran `d` dependent rounds;
/// sequential phases of the same category accumulate.
#[inline]
pub fn record_depth(cat: Category, d: u64) {
    DEPTH[cat as usize].fetch_add(d, Ordering::Relaxed);
}

/// Resets all counters (call at the start of a measured run).
pub fn reset() {
    for c in &WORK {
        c.store(0, Ordering::Relaxed);
    }
    for c in &DEPTH {
        c.store(0, Ordering::Relaxed);
    }
}

/// A snapshot of all counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CostReport {
    /// Work per category, `repr` order (see [`ALL_CATEGORIES`]).
    pub work: Vec<u64>,
    /// Accumulated structural depth per category.
    pub depth: Vec<u64>,
}

impl CostReport {
    /// Captures the current counter state.
    pub fn snapshot() -> Self {
        CostReport {
            work: WORK.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
            depth: DEPTH.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
        }
    }

    /// Work in one category.
    pub fn work_of(&self, cat: Category) -> u64 {
        self.work[cat as usize]
    }

    /// Depth of one category.
    pub fn depth_of(&self, cat: Category) -> u64 {
        self.depth[cat as usize]
    }

    /// Total work over all categories.
    pub fn total_work(&self) -> u64 {
        self.work.iter().sum()
    }

    /// Total depth (sum of per-category accumulated phase depths; phases of
    /// different categories run sequentially in the pipeline).
    pub fn total_depth(&self) -> u64 {
        self.depth.iter().sum()
    }

    /// Counter-wise difference `self - earlier` (for bracketing a region).
    pub fn since(&self, earlier: &CostReport) -> CostReport {
        CostReport {
            work: self
                .work
                .iter()
                .zip(&earlier.work)
                .map(|(a, b)| a - b)
                .collect(),
            depth: self
                .depth
                .iter()
                .zip(&earlier.depth)
                .map(|(a, b)| a - b)
                .collect(),
        }
    }
}

/// RAII guard that records the depth of a phase as `ceil(log2(n)) + 1`
/// rounds — the canonical depth of a balanced divide-and-conquer or a
/// layer-by-layer pass over a balanced tree of `n` leaves.
pub struct DepthScope {
    cat: Category,
    rounds: u64,
}

impl DepthScope {
    /// Opens a scope for a phase over `n` items with logarithmic round
    /// structure.
    pub fn logarithmic(cat: Category, n: usize) -> Self {
        let rounds = (usize::BITS - n.max(1).leading_zeros()) as u64;
        DepthScope { cat, rounds }
    }

    /// Opens a scope for a phase with an explicit round count.
    pub fn rounds(cat: Category, rounds: u64) -> Self {
        DepthScope { cat, rounds }
    }
}

impl Drop for DepthScope {
    fn drop(&mut self) {
        record_depth(self.cat, self.rounds);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    // The counters are process-global; serialize the tests that reset them.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn work_accumulates_and_resets() {
        let _g = TEST_LOCK.lock().unwrap();
        reset();
        add_work(Category::Query, 10);
        add_work(Category::Query, 5);
        add_work(Category::Crossings, 2);
        let r = CostReport::snapshot();
        assert_eq!(r.work_of(Category::Query), 15);
        assert_eq!(r.work_of(Category::Crossings), 2);
        assert_eq!(r.total_work(), 17);
        reset();
        assert_eq!(CostReport::snapshot().total_work(), 0);
    }

    #[test]
    fn depth_scope_logs() {
        let _g = TEST_LOCK.lock().unwrap();
        reset();
        {
            let _s = DepthScope::logarithmic(Category::EnvelopeBuild, 1024);
        }
        let r = CostReport::snapshot();
        assert_eq!(r.depth_of(Category::EnvelopeBuild), 11); // ceil(log2(1024)) + 1
    }

    #[test]
    fn since_subtracts() {
        let _g = TEST_LOCK.lock().unwrap();
        reset();
        add_work(Category::Order, 7);
        let a = CostReport::snapshot();
        add_work(Category::Order, 3);
        let b = CostReport::snapshot();
        assert_eq!(b.since(&a).work_of(Category::Order), 3);
    }
}
