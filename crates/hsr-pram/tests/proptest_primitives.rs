//! Property tests for the PRAM primitives: every parallel routine must be
//! extensionally equal to its obvious sequential counterpart.

use proptest::prelude::*;

use hsr_pram::compact::par_compact;
use hsr_pram::merge::{par_merge, par_merge_by};
use hsr_pram::ranking::{list_rank, NIL};
use hsr_pram::scan::exclusive_scan;
use hsr_pram::sort::par_sort_by_key;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn scan_equals_sequential(v in prop::collection::vec(0u64..1000, 0..2000)) {
        let (scan, total) = exclusive_scan(&v, 0u64, |a, b| a + b);
        let mut acc = 0u64;
        for (i, x) in v.iter().enumerate() {
            prop_assert_eq!(scan[i], acc);
            acc += x;
        }
        prop_assert_eq!(total, acc);
    }

    #[test]
    fn merge_equals_sorted_concat(
        mut a in prop::collection::vec(any::<u32>(), 0..500),
        mut b in prop::collection::vec(any::<u32>(), 0..500),
    ) {
        a.sort_unstable();
        b.sort_unstable();
        let merged = par_merge(&a, &b);
        let mut expect = [a, b].concat();
        expect.sort_unstable();
        prop_assert_eq!(merged, expect);
    }

    #[test]
    fn merge_stability(
        a in prop::collection::vec(0u8..8, 0..200),
        b in prop::collection::vec(0u8..8, 0..200),
    ) {
        // Tag items with their source and position; equal keys must keep
        // a-before-b and stable within each side.
        let mut ta: Vec<(u8, usize)> = a.iter().map(|&k| (k, 0usize)).collect();
        let mut tb: Vec<(u8, usize)> = b.iter().map(|&k| (k, 1usize)).collect();
        ta.sort_by_key(|x| x.0);
        tb.sort_by_key(|x| x.0);
        let merged = par_merge_by(&ta, &tb, |x| x.0);
        for w in merged.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 <= w[1].1, "b item before equal a item");
            }
        }
    }

    #[test]
    fn sort_equals_std(v in prop::collection::vec(any::<i64>(), 0..3000)) {
        let ours = par_sort_by_key(v.clone(), |&x| x);
        let mut expect = v;
        expect.sort();
        prop_assert_eq!(ours, expect);
    }

    #[test]
    fn compact_equals_filter(v in prop::collection::vec(any::<u32>(), 0..3000)) {
        let ours = par_compact(&v, |&x| x % 7 < 3);
        let expect: Vec<u32> = v.iter().copied().filter(|&x| x % 7 < 3).collect();
        prop_assert_eq!(ours, expect);
    }

    #[test]
    fn list_rank_equals_walk(perm_seed in any::<u64>(), n in 1usize..300) {
        // Build a random permutation chain via an LCG shuffle.
        let mut order: Vec<usize> = (0..n).collect();
        let mut s = perm_seed | 1;
        for i in (1..n).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            order.swap(i, (s >> 33) as usize % (i + 1));
        }
        let mut succ = vec![NIL; n];
        for w in order.windows(2) {
            succ[w[0]] = w[1] as u32;
        }
        let rank = list_rank(&succ).unwrap();
        for (pos, &node) in order.iter().enumerate() {
            prop_assert_eq!(rank[node] as usize, n - 1 - pos);
        }
    }
}
