//! Differential property tests for the data-oriented envelope kernels:
//! the columnar merge/build paths must reproduce the legacy scalar
//! kernels **bit for bit** — exact `f64::to_bits` equality on every
//! coordinate, not epsilon closeness. The interval filter and the exact
//! endpoint tier are only admissible because they never change a verdict,
//! and these tests are the standing proof.

use hsr_core::envelope::{from_pieces_legacy, merge_pieces_legacy, Envelope, Piece};
use proptest::prelude::*;

/// Random pieces with unique edge ids (the `Piece::edge` contract).
fn arb_pieces(max: usize) -> impl Strategy<Value = Vec<Piece>> {
    prop::collection::vec((-50.0f64..150.0, 1e-3f64..40.0, -30.0f64..30.0, -30.0f64..30.0), 1..max)
        .prop_map(|raw| {
            raw.into_iter()
                .enumerate()
                .map(|(i, (x0, w, z0, z1))| Piece { x0, x1: x0 + w, z0, z1, edge: i as u32 })
                .collect()
        })
}

fn assert_bit_identical(got: &[Piece], want: &[Piece], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: piece count");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(g.edge, w.edge, "{what}: edge id at piece {i}");
        for (gc, wc, name) in [
            (g.x0, w.x0, "x0"),
            (g.x1, w.x1, "x1"),
            (g.z0, w.z0, "z0"),
            (g.z1, w.z1, "z1"),
        ] {
            assert_eq!(gc.to_bits(), wc.to_bits(), "{what}: {name} at piece {i}: {gc} vs {wc}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn columnar_build_is_bit_identical_to_legacy(pieces in arb_pieces(96)) {
        let legacy = from_pieces_legacy(&pieces);
        let columnar = Envelope::from_pieces(&pieces).to_pieces();
        assert_bit_identical(&columnar, &legacy, "from_pieces");
    }

    #[test]
    fn columnar_merge_is_bit_identical_to_legacy(
        a in arb_pieces(64),
        b in arb_pieces(64),
    ) {
        // Distinct id spaces for the two operands.
        let b: Vec<Piece> = b
            .into_iter()
            .map(|mut p| {
                p.edge += 100_000;
                p
            })
            .collect();
        let ea = Envelope::from_pieces(&a);
        let eb = Envelope::from_pieces(&b);
        let legacy = merge_pieces_legacy(&ea.to_pieces(), &eb.to_pieces());
        let columnar = Envelope::merge(&ea, &eb).to_pieces();
        assert_bit_identical(&columnar, &legacy, "merge");
    }

    #[test]
    fn negative_zero_boundaries_survive_round_trips(pieces in arb_pieces(32)) {
        // Shift a prefix of boundaries onto ±0.0 so the dedup-representative
        // rule is exercised, then compare paths again.
        let mut ps = pieces;
        for (i, p) in ps.iter_mut().enumerate() {
            if i % 3 == 0 {
                let w = p.x1 - p.x0;
                p.x0 = if i % 2 == 0 { -0.0 } else { 0.0 };
                p.x1 = p.x0 + w;
            }
        }
        let legacy = from_pieces_legacy(&ps);
        let columnar = Envelope::from_pieces(&ps).to_pieces();
        assert_bit_identical(&columnar, &legacy, "neg-zero build");
    }
}
