//! Projection of terrain edges onto the image plane.
//!
//! The viewer sits at `x = +∞` looking along `-x`; the image plane is
//! `y–z` (paper §2). Every terrain edge projects to an image segment whose
//! abscissa is world `y` and ordinate is world `z`.

use hsr_geometry::{Point2, Segment2};
use hsr_terrain::Tin;

use crate::envelope::Piece;

/// A terrain edge with its image-plane projection.
#[derive(Clone, Copy, Debug)]
pub struct SceneEdge {
    /// Edge id (index into [`Tin::edges`]).
    pub id: u32,
    /// Image-plane projection (abscissa = world `y`, ordinate = world `z`).
    pub seg: Segment2,
    /// True when the edge runs along the view direction and projects to a
    /// vertical (zero-width) image segment; such edges contribute no
    /// envelope pieces and their visibility reduces to a point query.
    pub vertical: bool,
}

impl SceneEdge {
    /// The envelope piece of this edge (`None` for vertical projections).
    #[inline]
    pub fn piece(&self) -> Option<Piece> {
        Piece::from_segment(&self.seg, self.id)
    }
}

/// Projects all edges of a TIN onto the image plane.
pub fn project_edges(tin: &Tin) -> Vec<SceneEdge> {
    tin.edges()
        .iter()
        .enumerate()
        .map(|(id, &[a, b])| {
            let pa = tin.vertices()[a as usize];
            let pb = tin.vertices()[b as usize];
            let seg = Segment2::new(Point2::new(pa.y, pa.z), Point2::new(pb.y, pb.z));
            SceneEdge { id: id as u32, seg, vertical: seg.is_vertical() }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsr_geometry::Point3;

    #[test]
    fn projection_drops_x() {
        let tin = Tin::new(
            vec![
                Point3::new(0.0, 0.0, 1.0),
                Point3::new(1.0, 2.0, 3.0),
                Point3::new(0.0, 1.0, 0.0),
            ],
            vec![[0, 1, 2]],
        )
        .unwrap();
        let edges = project_edges(&tin);
        assert_eq!(edges.len(), 3);
        for e in &edges {
            // Projected coordinates must come from (y, z) of the endpoints.
            assert!(e.seg.a.x <= e.seg.b.x);
        }
    }

    #[test]
    fn vertical_edge_detected() {
        // Edge between two vertices with the same world y projects to a
        // vertical image segment.
        let tin = Tin::new(
            vec![
                Point3::new(0.0, 0.0, 0.0),
                Point3::new(1.0, 0.0, 5.0),
                Point3::new(0.5, 1.0, 0.0),
            ],
            vec![[0, 1, 2]],
        )
        .unwrap();
        let edges = project_edges(&tin);
        let vertical: Vec<_> = edges.iter().filter(|e| e.vertical).collect();
        assert_eq!(vertical.len(), 1);
        assert!(vertical[0].piece().is_none());
    }
}
