//! Image-space z-buffer reference renderer.
//!
//! The paper's introduction contrasts object-space solutions with
//! image-space ones that "compute the visibility information at every
//! pixel". We implement the image-space solution too — not as a
//! contender but as an *oracle*: rasterize every terrain face into a depth
//! buffer and statistically validate the object-space visibility maps
//! against it.

use crate::visibility::VisibilityMap;
use hsr_terrain::Tin;

/// A depth buffer over the image plane (`y` horizontal, `z` vertical).
/// Depth is world `x`; the viewer is at `x = +∞`, so *larger is closer*
/// and the buffer keeps the maximum.
pub struct ZBuffer {
    /// Pixels along the image `y` axis.
    pub ny: usize,
    /// Pixels along the image `z` axis.
    pub nz: usize,
    y0: f64,
    y1: f64,
    z0: f64,
    z1: f64,
    depth: Vec<f64>,
}

impl ZBuffer {
    /// Rasterizes all faces of the terrain at `res` pixels along `y`.
    pub fn render(tin: &Tin, res: usize) -> ZBuffer {
        let (lo, hi) = tin.ground_bounds();
        let (zlo, zhi) = tin.height_range();
        // Pad the window slightly so boundary samples stay inside.
        let pad_y = (hi.y - lo.y).max(1e-9) * 1e-3;
        let pad_z = (zhi - zlo).max(1e-9) * 1e-3 + 1e-9;
        let (y0, y1) = (lo.y - pad_y, hi.y + pad_y);
        let (z0, z1) = (zlo - pad_z, zhi + pad_z);
        let ny = res.max(8);
        let nz = ((z1 - z0) / (y1 - y0) * ny as f64).ceil().max(8.0) as usize;
        let mut zb = ZBuffer { ny, nz, y0, y1, z0, z1, depth: vec![f64::NEG_INFINITY; ny * nz] };

        for tri in tin.triangles() {
            let p: Vec<_> = tri.iter().map(|&v| tin.vertices()[v as usize]).collect();
            zb.raster_triangle(
                (p[0].y, p[0].z, p[0].x),
                (p[1].y, p[1].z, p[1].x),
                (p[2].y, p[2].z, p[2].x),
            );
        }
        zb
    }

    fn px(&self, y: f64) -> f64 {
        (y - self.y0) / (self.y1 - self.y0) * self.ny as f64
    }
    fn pz(&self, z: f64) -> f64 {
        (z - self.z0) / (self.z1 - self.z0) * self.nz as f64
    }
    /// Image-plane size of one pixel, `(dy, dz)`.
    pub fn pixel_size(&self) -> (f64, f64) {
        ((self.y1 - self.y0) / self.ny as f64, (self.z1 - self.z0) / self.nz as f64)
    }

    /// Rasterizes one triangle given as `(y, z, depth)` triples.
    fn raster_triangle(&mut self, a: (f64, f64, f64), b: (f64, f64, f64), c: (f64, f64, f64)) {
        let det = (b.0 - a.0) * (c.1 - a.1) - (c.0 - a.0) * (b.1 - a.1);
        if det == 0.0 {
            return; // degenerate in the image plane
        }
        let iy0 = self.px(a.0.min(b.0).min(c.0)).floor().max(0.0) as usize;
        let iy1 = (self.px(a.0.max(b.0).max(c.0)).ceil() as usize).min(self.ny - 1);
        let iz0 = self.pz(a.1.min(b.1).min(c.1)).floor().max(0.0) as usize;
        let iz1 = (self.pz(a.1.max(b.1).max(c.1)).ceil() as usize).min(self.nz - 1);
        for iy in iy0..=iy1 {
            let y = self.y0 + (iy as f64 + 0.5) / self.ny as f64 * (self.y1 - self.y0);
            for iz in iz0..=iz1 {
                let z = self.z0 + (iz as f64 + 0.5) / self.nz as f64 * (self.z1 - self.z0);
                // Barycentric coordinates.
                let l1 = ((b.0 - a.0) * (z - a.1) - (y - a.0) * (b.1 - a.1)) / det;
                let l2 = ((y - a.0) * (c.1 - a.1) - (c.0 - a.0) * (z - a.1)) / det;
                let l0 = 1.0 - l1 - l2;
                if l0 < 0.0 || l1 < 0.0 || l2 < 0.0 {
                    continue;
                }
                let d = l0 * a.2 + l2 * b.2 + l1 * c.2;
                let cell = &mut self.depth[iy * self.nz + iz];
                if d > *cell {
                    *cell = d;
                }
            }
        }
    }

    /// Depth at an image point (`NEG_INFINITY` when nothing covers it).
    pub fn depth_at(&self, y: f64, z: f64) -> f64 {
        let iy = self.px(y) as isize;
        let iz = self.pz(z) as isize;
        if iy < 0 || iz < 0 || iy >= self.ny as isize || iz >= self.nz as isize {
            return f64::NEG_INFINITY;
        }
        self.depth[iy as usize * self.nz + iz as usize]
    }

    /// `(min, max)` depth over the 3×3 pixel neighborhood of an image
    /// point. Used for conservative visibility classification: near
    /// silhouettes the within-pixel depth range is unbounded, so a sample
    /// only counts when its whole neighborhood agrees.
    pub fn depth_minmax3(&self, y: f64, z: f64) -> (f64, f64) {
        let iy = self.px(y) as isize;
        let iz = self.pz(z) as isize;
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for dy in -1..=1 {
            for dz in -1..=1 {
                let (jy, jz) = (iy + dy, iz + dz);
                if jy < 0 || jz < 0 || jy >= self.ny as isize || jz >= self.nz as isize {
                    continue;
                }
                let d = self.depth[jy as usize * self.nz + jz as usize];
                lo = lo.min(d);
                hi = hi.max(d);
            }
        }
        (lo, hi)
    }
}

/// Statistical agreement between an object-space visibility map and the
/// z-buffer: the fraction of edge samples where both agree. Samples within
/// a couple of pixels of a visibility transition are skipped (both methods
/// quantise such boundary pixels arbitrarily).
pub fn agreement_with_zbuffer(
    tin: &Tin,
    vis: &VisibilityMap,
    res: usize,
    samples_per_edge: usize,
) -> f64 {
    let zb = ZBuffer::render(tin, res);
    let (px_y, _) = zb.pixel_size();
    let margin = 2.5 * px_y;
    let depth_extent = {
        let (lo, hi) = tin.ground_bounds();
        (hi.x - lo.x).max(1e-9)
    };
    // Depth tolerance: a few pixels worth of average depth slope
    // (depth_extent spread over ~res pixels).
    let tol = (6.0 * depth_extent / res as f64).max(1e-6);

    let intervals = vis.per_edge_intervals();
    let empty = Vec::new();
    let mut agree = 0usize;
    let mut total = 0usize;
    for (e, &[a, b]) in tin.edges().iter().enumerate() {
        let (pa, pb) = (tin.vertices()[a as usize], tin.vertices()[b as usize]);
        let iv = intervals.get(&(e as u32)).unwrap_or(&empty);
        for s in 0..samples_per_edge {
            let t = (s as f64 + 0.5) / samples_per_edge as f64;
            let y = pa.y + t * (pb.y - pa.y);
            let z = pa.z + t * (pb.z - pa.z);
            let x = pa.x + t * (pb.x - pa.x);
            // Skip samples too close to a visibility transition.
            let near_boundary = iv
                .iter()
                .any(|&(u, v)| (y - u).abs() < margin || (y - v).abs() < margin);
            if near_boundary || (pb.y - pa.y).abs() < 4.0 * margin {
                continue;
            }
            let alg_visible = iv.iter().any(|&(u, v)| u <= y && y <= v);
            let (dmin, dmax) = zb.depth_minmax3(y, z);
            // Conservative classification: skip samples whose pixel
            // neighborhood is ambiguous (silhouettes, steep faces).
            let zb_visible = if x + tol >= dmax {
                true
            } else if x + tol < dmin {
                false
            } else {
                continue;
            };
            total += 1;
            if alg_visible == zb_visible {
                agree += 1;
            }
        }
    }
    if total == 0 {
        1.0
    } else {
        agree as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edges::project_edges;
    use crate::order::depth_order;
    use crate::seq::run_sequential;
    use hsr_terrain::gen;

    #[test]
    fn flat_terrain_all_visible() {
        let tin = gen::amphitheater(8, 8, 10.0, 1).to_tin().unwrap();
        let zb = ZBuffer::render(&tin, 128);
        // Every vertex must be visible: its own depth equals the buffer.
        let mut visible = 0;
        for v in tin.vertices() {
            if zb.depth_at(v.y, v.z) <= v.x + 0.5 {
                visible += 1;
            }
        }
        assert!(visible as f64 > 0.9 * tin.vertices().len() as f64);
    }

    #[test]
    fn wall_hides_back_vertices() {
        let tin = gen::occlusion_knob(12, 12, 1.0, 10.0, 2).to_tin().unwrap();
        let zb = ZBuffer::render(&tin, 256);
        // Vertices of the far rows sit below the wall: buffer depth at
        // their pixel must be much closer (larger x) than they are.
        let mut hidden = 0;
        let mut back = 0;
        for v in tin.vertices() {
            if v.x < 3.0 && v.z < 5.0 {
                back += 1;
                if zb.depth_at(v.y, v.z) > v.x + 0.5 {
                    hidden += 1;
                }
            }
        }
        assert!(back > 0);
        assert!(hidden as f64 > 0.8 * back as f64, "{hidden}/{back}");
    }

    #[test]
    fn object_space_statistically_matches_zbuffer() {
        // The z-buffer aliases on grazing occluders (sub-pixel slivers in
        // image space) and always errs towards "visible" there, so this is
        // a statistical sanity bound; the exact arbiter lives in
        // `oracle::tests`.
        for tin in [
            gen::fbm(10, 10, 3, 8.0, 3).to_tin().unwrap(),
            gen::ridge_field(12, 10, 3, 12.0, 4).to_tin().unwrap(),
        ] {
            let edges = project_edges(&tin);
            let order = depth_order(&tin).unwrap();
            let ordered: Vec<_> = order.iter().map(|&e| edges[e as usize]).collect();
            let vis = run_sequential(&ordered);
            let ag = agreement_with_zbuffer(&tin, &vis, 512, 16);
            assert!(ag > 0.80, "zbuffer agreement {ag}");
        }
    }
}
