//! The single error type of the high-level API.
//!
//! Every way a view evaluation can fail — invalid terrain, an unorderable
//! (cyclic) occlusion relation, a viewpoint inside the scene, a malformed
//! view description — is one variant of [`HsrError`], so callers match on
//! one enum instead of juggling `TinError`, `CyclicOcclusion` and
//! `PerspectiveError` separately.

use crate::order::CyclicOcclusion;
use crate::perspective::PerspectiveError;
use hsr_terrain::TinError;

/// Everything that can go wrong building a scene or evaluating a view.
#[derive(Clone, Debug, PartialEq)]
pub enum HsrError {
    /// The terrain failed validation (absorbs [`TinError`]).
    Terrain(TinError),
    /// The occlusion relation is cyclic: the input is not a terrain as
    /// seen from this direction (absorbs the order module's
    /// [`CyclicOcclusion`] marker type).
    CyclicOcclusion,
    /// A perspective or viewshed eye position does not see the whole
    /// terrain from the front: after aligning the view direction, some
    /// vertex has depth `max_depth >= eye_depth`.
    ViewpointInsideScene {
        /// Depth of the eye along the view axis.
        eye_depth: f64,
        /// Maximum terrain depth along the view axis.
        max_depth: f64,
    },
    /// The view description itself is malformed (non-finite angle, empty
    /// field of view, zero resolution, …).
    InvalidView(String),
}

impl std::fmt::Display for HsrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HsrError::Terrain(e) => write!(f, "invalid terrain: {e}"),
            HsrError::CyclicOcclusion => write!(f, "{CyclicOcclusion}"),
            HsrError::ViewpointInsideScene { eye_depth, max_depth } => write!(
                f,
                "viewpoint depth {eye_depth} must exceed the terrain's maximum depth {max_depth}"
            ),
            HsrError::InvalidView(msg) => write!(f, "invalid view: {msg}"),
        }
    }
}

impl std::error::Error for HsrError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HsrError::Terrain(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TinError> for HsrError {
    fn from(e: TinError) -> Self {
        HsrError::Terrain(e)
    }
}

impl From<CyclicOcclusion> for HsrError {
    fn from(_: CyclicOcclusion) -> Self {
        HsrError::CyclicOcclusion
    }
}

impl From<PerspectiveError> for HsrError {
    fn from(e: PerspectiveError) -> Self {
        match e {
            PerspectiveError::ViewpointInsideScene { vx, max_x } => {
                HsrError::ViewpointInsideScene { eye_depth: vx, max_depth: max_x }
            }
            PerspectiveError::Degenerate(t) => HsrError::Terrain(t),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: HsrError = TinError::NonFiniteVertex(3).into();
        assert!(matches!(e, HsrError::Terrain(TinError::NonFiniteVertex(3))));
        assert!(e.to_string().contains("vertex 3"));

        let e: HsrError = CyclicOcclusion.into();
        assert_eq!(e, HsrError::CyclicOcclusion);
        assert!(e.to_string().contains("cyclic"));

        let e: HsrError = PerspectiveError::ViewpointInsideScene { vx: 1.0, max_x: 2.0 }.into();
        assert!(matches!(e, HsrError::ViewpointInsideScene { .. }));

        let e = HsrError::InvalidView("fov must be positive".into());
        assert!(e.to_string().contains("fov"));
    }
}
