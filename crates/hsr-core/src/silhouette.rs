//! The terrain silhouette (horizon): the root profile of the PCT, wrapped
//! in the CG query structure.
//!
//! The paper's "(upper) profile … other commonly used terms are
//! upper-envelope and silhouette" (§1.1). The root of the PCT *is* the
//! silhouette of the whole scene, and the ACG over it answers the classic
//! horizon queries: what is the skyline height at an image abscissa, is a
//! sky point visible, where does a sight-line graze the terrain.

use crate::cg::HullTree;
use crate::envelope::{CrossEvent, Envelope, Piece};
use hsr_geometry::Point2;

/// A queryable terrain silhouette.
pub struct Silhouette {
    env: Envelope,
    tree: Option<HullTree>,
}

impl Silhouette {
    /// Wraps a profile (typically [`crate::pct::Pct::root_profile`]).
    pub fn new(env: Envelope) -> Silhouette {
        let tree = HullTree::build(&env);
        Silhouette { env, tree }
    }

    /// The skyline height at image abscissa `x` (`None` off the terrain).
    pub fn horizon_at(&self, x: f64) -> Option<f64> {
        self.env.eval(x)
    }

    /// True when an image point is strictly above the skyline — i.e. a
    /// point at infinity depth ("sky") with this image position would be
    /// visible past the whole terrain.
    pub fn is_above(&self, p: Point2) -> bool {
        match self.env.eval(p.x) {
            None => true,
            Some(z) => p.y > z,
        }
    }

    /// All points where a sight-line (image-plane segment) grazes the
    /// silhouette — the crossings of the segment with the horizon curve,
    /// via the ACG query of Lemma 3.2.
    pub fn graze_points(&self, s: &Piece) -> Vec<CrossEvent> {
        match &self.tree {
            Some(t) => t.all_crossings(s),
            None => Vec::new(),
        }
    }

    /// The ridgeline as a polyline: the vertices of the silhouette.
    pub fn ridgeline(&self) -> Vec<Point2> {
        let mut out = Vec::with_capacity(self.env.size() + 1);
        for p in self.env.iter() {
            let a = Point2::new(p.x0, p.z0);
            if out.last() != Some(&a) {
                out.push(a);
            }
            out.push(Point2::new(p.x1, p.z1));
        }
        out
    }

    /// Number of silhouette pieces.
    pub fn size(&self) -> usize {
        self.env.size()
    }

    /// The underlying envelope.
    pub fn envelope(&self) -> &Envelope {
        &self.env
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edges::project_edges;
    use crate::order::depth_order;
    use crate::pct::Pct;
    use hsr_terrain::gen;

    fn silhouette_of(tin: &hsr_terrain::Tin) -> Silhouette {
        let edges = project_edges(tin);
        let order = depth_order(tin).unwrap();
        let ordered: Vec<_> = order.iter().map(|&e| edges[e as usize]).collect();
        let pct = Pct::build(ordered);
        Silhouette::new(pct.root_profile().clone())
    }

    #[test]
    fn horizon_is_max_over_all_vertices_at_columns() {
        let tin = gen::gaussian_hills(12, 12, 4, 5).to_tin().unwrap();
        let sil = silhouette_of(&tin);
        // At each vertex's image abscissa, the horizon is at least the
        // vertex height (every vertex is on or under the skyline).
        for v in tin.vertices() {
            let h = sil.horizon_at(v.y).expect("vertex column on terrain");
            assert!(h >= v.z - 1e-9, "vertex at y={} z={} above horizon {h}", v.y, v.z);
        }
    }

    #[test]
    fn above_and_below() {
        let tin = gen::ridge_field(12, 10, 3, 10.0, 6).to_tin().unwrap();
        let sil = silhouette_of(&tin);
        let (_, zhi) = tin.height_range();
        let x = 4.5;
        assert!(sil.is_above(Point2::new(x, zhi + 1.0)));
        let h = sil.horizon_at(x).unwrap();
        assert!(!sil.is_above(Point2::new(x, h - 0.1)));
        // Way off the terrain: everything is "above".
        assert!(sil.is_above(Point2::new(1e6, -1e6)));
    }

    #[test]
    fn ridgeline_is_continuous_and_ordered() {
        let tin = gen::fbm(10, 10, 3, 8.0, 7).to_tin().unwrap();
        let sil = silhouette_of(&tin);
        let line = sil.ridgeline();
        assert!(line.len() > sil.size());
        for w in line.windows(2) {
            assert!(w[0].x <= w[1].x, "ridgeline not x-monotone");
        }
    }

    #[test]
    fn graze_points_match_direct_queries() {
        let tin = gen::gaussian_hills(10, 10, 3, 8).to_tin().unwrap();
        let sil = silhouette_of(&tin);
        let (zlo, zhi) = tin.height_range();
        let (lo, hi) = tin.ground_bounds();
        let ray =
            Piece { x0: lo.y, x1: hi.y, z0: 0.5 * (zlo + zhi), z1: zhi + 0.1, edge: u32::MAX };
        let grazes = sil.graze_points(&ray);
        let (_, walk) = sil.envelope().visible_parts(&ray);
        assert_eq!(grazes.len(), walk.len());
    }
}
