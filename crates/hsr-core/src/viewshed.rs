//! Point-visibility queries ("is this object visible above the terrain?").
//!
//! A downstream application of the profile machinery: given query points
//! above (or on) the terrain — aircraft, towers, markers — decide which
//! are visible from the viewer at `x = +∞`.
//!
//! For a query point `q` **on or above the terrain surface**, `q` is
//! occluded exactly when the upper profile of the edges *in front of* `q`
//! exceeds its image height: along the view ray the surface cross-section
//! is piecewise linear with its maxima on edge crossings, and every
//! in-front crossing belongs to an edge the order places before `q`'s
//! depth position. (For points *inside* the terrain this reduction is
//! invalid — the face fragment directly overhead can occlude without any
//! in-front edge reaching the query height — so callers must keep queries
//! above the surface.) The implementation runs the sequential profile
//! sweep with the queries spliced into the front-to-back order at their
//! depth positions, so a batch of `Q` queries costs one HSR pass plus the
//! rank computation — *not* `Q` ray marches.

use crate::edges::SceneEdge;
use crate::envelope::Piece;
use hsr_geometry::{Point3, TotalF64};
use hsr_pstruct::ArenaTreap;
use hsr_terrain::Tin;
use std::collections::BTreeMap;

/// A visibility verdict for one query point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Verdict {
    /// Nothing in front reaches the query point's image height.
    Visible,
    /// Some terrain in front strictly covers it.
    Hidden,
}

/// Batch-classifies query points against a terrain view.
///
/// `order` is the front-to-back edge order (from [`crate::order`]);
/// `edges` the projected scene edges indexed by edge id.
///
/// Data-oriented: the `O(Q·n)` rank scan runs over flat per-edge
/// coefficient columns (no vertex-index chasing per query), and the
/// profile sweep splices an [`ArenaTreap`] in place. Both changes are
/// layout-only — every coefficient is computed by the same subtractions
/// as [`classify_points_legacy`], so verdicts are bit-identical.
pub fn classify_points(
    tin: &Tin,
    edges: &[SceneEdge],
    order: &[u32],
    queries: &[Point3],
) -> Vec<Verdict> {
    // Depth position of a query: the number of order entries whose ground
    // crossing at the query's ordinate lies strictly in front (larger
    // ground x). Edges not crossing the ordinate are irrelevant at that
    // ordinate, so any consistent position among them is fine.
    //
    // Columnar precompute: per order entry, the ordinate window and the
    // crossing-line coefficients. `dy`/`dx` hold the very differences the
    // scalar code formed inside the loop, so `t` and `x_cross` below are
    // the identical computations.
    let verts = tin.vertices();
    let n = order.len();
    let (mut ylo, mut yhi) = (vec![0.0f64; n], vec![0.0f64; n]);
    let (mut pay, mut dy) = (vec![0.0f64; n], vec![0.0f64; n]);
    let (mut pax, mut dx) = (vec![0.0f64; n], vec![0.0f64; n]);
    for (k, &e) in order.iter().enumerate() {
        let [a, b] = tin.edges()[e as usize];
        let (pa, pb) = (verts[a as usize], verts[b as usize]);
        ylo[k] = pa.y.min(pb.y);
        yhi[k] = pa.y.max(pb.y);
        pay[k] = pa.y;
        dy[k] = pb.y - pa.y;
        pax[k] = pa.x;
        dx[k] = pb.x - pa.x;
    }
    // For each query, find its insertion rank: after the last in-front
    // crossing edge.
    let mut insertions: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (qi, q) in queries.iter().enumerate() {
        let mut last_front = 0usize;
        for pos in 0..n {
            if !(ylo[pos] < q.y && q.y < yhi[pos]) {
                continue;
            }
            let t = (q.y - pay[pos]) / dy[pos];
            let x_cross = pax[pos] + t * dx[pos];
            if x_cross > q.x {
                last_front = pos + 1;
            }
        }
        insertions.entry(last_front).or_default().push(qi);
    }

    // One sequential profile sweep with queries answered at their depth.
    let mut profile: ArenaTreap<TotalF64, Piece> = ArenaTreap::new();
    let mut verdicts = vec![Verdict::Visible; queries.len()];
    let eval = |profile: &ArenaTreap<TotalF64, Piece>, x: f64| -> Option<f64> {
        let (_, p) = profile.floor(&TotalF64(x))?;
        (x <= p.x1).then(|| p.eval(x))
    };
    let mut answer = |profile: &ArenaTreap<TotalF64, Piece>, qi: usize| {
        let q = queries[qi];
        let img_x = q.y; // image abscissa = world y
        let img_z = q.z;
        verdicts[qi] = match eval(profile, img_x) {
            Some(env) if env >= img_z => Verdict::Hidden,
            _ => Verdict::Visible,
        };
    };
    if let Some(qs) = insertions.get(&0) {
        for &qi in qs {
            answer(&profile, qi);
        }
    }
    for (pos, &e) in order.iter().enumerate() {
        if let Some(piece) = edges[e as usize].piece() {
            splice(&mut profile, piece);
        }
        if let Some(qs) = insertions.get(&(pos + 1)) {
            for &qi in qs {
                answer(&profile, qi);
            }
        }
    }
    verdicts
}

/// The pre-columnar classification (vertex chasing per query, `BTreeMap`
/// profile), kept verbatim as the differential reference: `exp_hotpath`
/// asserts [`classify_points`] returns identical verdicts.
pub fn classify_points_legacy(
    tin: &Tin,
    edges: &[SceneEdge],
    order: &[u32],
    queries: &[Point3],
) -> Vec<Verdict> {
    let verts = tin.vertices();
    let ground = |e: u32| {
        let [a, b] = tin.edges()[e as usize];
        (verts[a as usize], verts[b as usize])
    };
    let mut insertions: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (qi, q) in queries.iter().enumerate() {
        let mut last_front = 0usize;
        for (pos, &e) in order.iter().enumerate() {
            let (pa, pb) = ground(e);
            let (ylo, yhi) = (pa.y.min(pb.y), pa.y.max(pb.y));
            if !(ylo < q.y && q.y < yhi) {
                continue;
            }
            let t = (q.y - pa.y) / (pb.y - pa.y);
            let x_cross = pa.x + t * (pb.x - pa.x);
            if x_cross > q.x {
                last_front = pos + 1;
            }
        }
        insertions.entry(last_front).or_default().push(qi);
    }

    let mut profile: BTreeMap<TotalF64, Piece> = BTreeMap::new();
    let mut verdicts = vec![Verdict::Visible; queries.len()];
    let eval = |profile: &BTreeMap<TotalF64, Piece>, x: f64| -> Option<f64> {
        let (_, p) = profile.range(..=TotalF64(x)).next_back()?;
        (x <= p.x1).then(|| p.eval(x))
    };
    let mut answer = |profile: &BTreeMap<TotalF64, Piece>, qi: usize| {
        let q = queries[qi];
        let img_x = q.y;
        let img_z = q.z;
        verdicts[qi] = match eval(profile, img_x) {
            Some(env) if env >= img_z => Verdict::Hidden,
            _ => Verdict::Visible,
        };
    };
    if let Some(qs) = insertions.get(&0) {
        for &qi in qs {
            answer(&profile, qi);
        }
    }
    for (pos, &e) in order.iter().enumerate() {
        if let Some(piece) = edges[e as usize].piece() {
            splice_legacy(&mut profile, piece);
        }
        if let Some(qs) = insertions.get(&(pos + 1)) {
            for &qi in qs {
                answer(&profile, qi);
            }
        }
    }
    verdicts
}

/// Minimal envelope splice (pointwise max) used by the sweep; mirrors the
/// sequential algorithm's update but without visibility bookkeeping.
fn splice(profile: &mut ArenaTreap<TotalF64, Piece>, s: Piece) {
    use crate::envelope::{relate, Relation};
    let mut affected: Vec<Piece> = Vec::new();
    if let Some((_, p)) = profile.floor_strict(&TotalF64(s.x0)) {
        if p.x1 > s.x0 {
            affected.push(*p);
        }
    }
    profile.for_range(&TotalF64(s.x0), &TotalF64(s.x1), &mut |_, p| affected.push(*p));

    let mut out: Vec<Piece> = Vec::with_capacity(affected.len() + 2);
    let mut push = |p: Option<Piece>| {
        if let Some(p) = p {
            if p.width() > 0.0 {
                out.push(p);
            }
        }
    };
    let mut x = s.x0;
    for p in &affected {
        if p.x0 < s.x0 {
            push(p.clip(p.x0, s.x0));
        }
        if p.x0 > x {
            push(s.clip(x, p.x0));
            x = p.x0;
        }
        let v = p.x1.min(s.x1);
        if v > x {
            match relate(p, &s, x, v) {
                Relation::AAbove => push(p.clip(x, v)),
                Relation::BAbove => push(s.clip(x, v)),
                Relation::CrossAtoB { x: cx, .. } => {
                    push(p.clip(x, cx));
                    push(s.clip(cx, v));
                }
                Relation::CrossBtoA { x: cx, .. } => {
                    push(s.clip(x, cx));
                    push(p.clip(cx, v));
                }
            }
            x = v;
        }
        if p.x1 > s.x1 {
            push(p.clip(s.x1, p.x1));
        }
    }
    if x < s.x1 {
        push(s.clip(x, s.x1));
    }
    profile.remove_range(&TotalF64(s.x0), &TotalF64(s.x1));
    if let Some(p) = affected.first() {
        if p.x0 < s.x0 {
            profile.remove(&TotalF64(p.x0));
        }
    }
    for p in out {
        profile.insert(TotalF64(p.x0), p);
    }
}

/// The `BTreeMap` splice used by [`classify_points_legacy`]; identical
/// piece arithmetic to [`splice`], differing only in the container.
fn splice_legacy(profile: &mut BTreeMap<TotalF64, Piece>, s: Piece) {
    use crate::envelope::{relate, Relation};
    let mut affected: Vec<Piece> = Vec::new();
    if let Some((_, p)) = profile.range(..TotalF64(s.x0)).next_back() {
        if p.x1 > s.x0 {
            affected.push(*p);
        }
    }
    affected.extend(
        profile
            .range(TotalF64(s.x0)..TotalF64(s.x1))
            .map(|(_, p)| *p),
    );

    let mut out: Vec<Piece> = Vec::with_capacity(affected.len() + 2);
    let mut push = |p: Option<Piece>| {
        if let Some(p) = p {
            if p.width() > 0.0 {
                out.push(p);
            }
        }
    };
    let mut x = s.x0;
    for p in &affected {
        if p.x0 < s.x0 {
            push(p.clip(p.x0, s.x0));
        }
        if p.x0 > x {
            push(s.clip(x, p.x0));
            x = p.x0;
        }
        let v = p.x1.min(s.x1);
        if v > x {
            match relate(p, &s, x, v) {
                Relation::AAbove => push(p.clip(x, v)),
                Relation::BAbove => push(s.clip(x, v)),
                Relation::CrossAtoB { x: cx, .. } => {
                    push(p.clip(x, cx));
                    push(s.clip(cx, v));
                }
                Relation::CrossBtoA { x: cx, .. } => {
                    push(s.clip(x, cx));
                    push(p.clip(cx, v));
                }
            }
            x = v;
        }
        if p.x1 > s.x1 {
            push(p.clip(s.x1, p.x1));
        }
    }
    if x < s.x1 {
        push(s.clip(x, s.x1));
    }
    for p in &affected {
        profile.remove(&TotalF64(p.x0));
    }
    for p in out {
        profile.insert(TotalF64(p.x0), p);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edges::project_edges;
    use crate::oracle;
    use crate::order::depth_order;
    use hsr_terrain::gen;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn setup(tin: &Tin) -> (Vec<SceneEdge>, Vec<u32>) {
        (project_edges(tin), depth_order(tin).unwrap())
    }

    #[test]
    fn high_points_visible_low_points_behind_wall_hidden() {
        let tin = gen::occlusion_knob(12, 12, 1.0, 10.0, 2).to_tin().unwrap();
        let (edges, order) = setup(&tin);
        let queries = vec![
            Point3::new(1.0, 5.5, 100.0), // far above everything
            Point3::new(1.0, 5.5, 0.5),   // behind and below the wall
            Point3::new(11.5, 5.5, 0.5),  // in front of the wall
        ];
        let v = classify_points(&tin, &edges, &order, &queries);
        assert_eq!(v[0], Verdict::Visible);
        assert_eq!(v[1], Verdict::Hidden);
        assert_eq!(v[2], Verdict::Visible);
    }

    /// Terrain surface height at a ground position (test helper).
    fn surface_z(tin: &Tin, x: f64, y: f64) -> Option<f64> {
        let verts = tin.vertices();
        for t in tin.triangles() {
            let (a, b, c) = (verts[t[0] as usize], verts[t[1] as usize], verts[t[2] as usize]);
            let det = (b.x - a.x) * (c.y - a.y) - (c.x - a.x) * (b.y - a.y);
            if det == 0.0 {
                continue;
            }
            let l1 = ((b.x - a.x) * (y - a.y) - (x - a.x) * (b.y - a.y)) / det;
            let l2 = ((x - a.x) * (c.y - a.y) - (c.x - a.x) * (y - a.y)) / det;
            let l0 = 1.0 - l1 - l2;
            if l0 >= 0.0 && l1 >= 0.0 && l2 >= 0.0 {
                return Some(l0 * a.z + l2 * b.z + l1 * c.z);
            }
        }
        None
    }

    #[test]
    fn matches_exact_oracle_on_random_points() {
        for (seed, theta) in [(3u64, 0.3), (4, 0.8)] {
            let tin = gen::occlusion_knob(12, 12, theta, 10.0, seed)
                .to_tin()
                .unwrap();
            let (edges, order) = setup(&tin);
            let (lo, hi) = tin.ground_bounds();
            let (_, zhi) = tin.height_range();
            let mut rng = SmallRng::seed_from_u64(seed);
            // Queries strictly above the surface (the documented domain).
            let queries: Vec<Point3> = std::iter::repeat_with(|| {
                let x = rng.random_range(lo.x..hi.x);
                let y = rng.random_range(lo.y..hi.y);
                let floor = surface_z(&tin, x, y)?;
                Some(Point3::new(
                    x,
                    y,
                    floor + rng.random_range(1e-3..(zhi - floor).max(0.1) + 3.0),
                ))
            })
            .flatten()
            .take(200)
            .collect();
            let verdicts = classify_points(&tin, &edges, &order, &queries);
            let mut agree = 0;
            for (q, v) in queries.iter().zip(&verdicts) {
                let exact = if oracle::occluded(&tin, *q, 1e-9) {
                    Verdict::Hidden
                } else {
                    Verdict::Visible
                };
                if exact == *v {
                    agree += 1;
                }
            }
            // Points exactly on occlusion boundaries can tie-break either
            // way; require near-perfect agreement.
            assert!(agree >= 196, "agreement {agree}/200 (theta {theta})");
        }
    }

    #[test]
    fn empty_query_batch() {
        let tin = gen::fbm(6, 6, 2, 4.0, 1).to_tin().unwrap();
        let (edges, order) = setup(&tin);
        assert!(classify_points(&tin, &edges, &order, &[]).is_empty());
    }

    #[test]
    fn columnar_matches_legacy_verdicts() {
        for seed in [1u64, 9, 42] {
            let tin = gen::fbm(10, 10, 3, 9.0, seed).to_tin().unwrap();
            let (edges, order) = setup(&tin);
            let (lo, hi) = tin.ground_bounds();
            let (zlo, zhi) = tin.height_range();
            let mut rng = SmallRng::seed_from_u64(seed ^ 0xc0ff_ee00);
            let queries: Vec<Point3> = std::iter::repeat_with(|| {
                Point3::new(
                    rng.random_range(lo.x..hi.x),
                    rng.random_range(lo.y..hi.y),
                    rng.random_range(zlo - 1.0..zhi + 3.0),
                )
            })
            .take(300)
            .collect();
            let fast = classify_points(&tin, &edges, &order, &queries);
            let slow = classify_points_legacy(&tin, &edges, &order, &queries);
            assert_eq!(fast, slow, "verdict drift at seed {seed}");
        }
    }
}
