//! The `O(n²)` object-space baseline.
//!
//! For every edge, test it against *all* edges in front of it and subtract
//! the covered intervals. This is the worst-case-optimal strawman of the
//! paper's introduction ("the worst case optimal algorithms … will have a
//! running time of Ω(n²)") — insensitive to the output size, which is
//! exactly what experiment E4's crossover demonstrates.

use crate::edges::SceneEdge;
use crate::envelope::{relate, CrossEvent, Piece, Relation};
use crate::visibility::VisibilityMap;
use hsr_pram::cost::{add_work, Category};
use rayon::prelude::*;

/// Runs the naive algorithm over edges already in front-to-back order.
pub fn run_naive(edges: &[SceneEdge]) -> VisibilityMap {
    add_work(Category::Other, (edges.len() * edges.len()) as u64);
    let pieces: Vec<Option<Piece>> = edges.iter().map(|e| e.piece()).collect();

    let per_edge: Vec<(Vec<Piece>, Vec<CrossEvent>, Option<u32>)> = edges
        .par_iter()
        .enumerate()
        .map(|(i, edge)| {
            let Some(s) = pieces[i] else {
                // Vertical projection: visible iff the top clears every
                // front edge at this abscissa.
                let x = edge.seg.a.x;
                let top = edge.seg.a.y.max(edge.seg.b.y);
                let hidden = pieces[..i]
                    .iter()
                    .flatten()
                    .any(|f| f.x0 <= x && x <= f.x1 && f.eval(x) >= top);
                return (Vec::new(), Vec::new(), (!hidden).then_some(edge.id));
            };
            // Covered intervals from all front edges.
            let mut covered: Vec<(f64, f64)> = Vec::new();
            let mut events: Vec<CrossEvent> = Vec::new();
            for f in pieces[..i].iter().flatten() {
                let u = f.x0.max(s.x0);
                let v = f.x1.min(s.x1);
                if u >= v {
                    continue;
                }
                match relate(f, &s, u, v) {
                    Relation::AAbove => covered.push((u, v)),
                    Relation::BAbove => {}
                    Relation::CrossAtoB { x, z } => {
                        covered.push((u, x));
                        events.push(CrossEvent { x, z, upper_left: f.edge, upper_right: s.edge });
                    }
                    Relation::CrossBtoA { x, z } => {
                        covered.push((x, v));
                        events.push(CrossEvent { x, z, upper_left: s.edge, upper_right: f.edge });
                    }
                }
            }
            // Visible = span minus union of covered.
            covered.sort_by(|a, b| a.0.total_cmp(&b.0));
            let mut vis = Vec::new();
            let mut x = s.x0;
            for &(u, v) in &covered {
                if u > x {
                    if let Some(c) = s.clip(x, u) {
                        vis.push(c);
                    }
                }
                x = x.max(v);
                if x >= s.x1 {
                    break;
                }
            }
            if x < s.x1 {
                if let Some(c) = s.clip(x, s.x1) {
                    vis.push(c);
                }
            }
            // Keep only crossing events on the visibility boundary (events
            // interior to a covered union are occluded intersections — the
            // quantity `I` the paper distinguishes from `k`).
            let on_boundary = |x: f64| {
                vis.iter()
                    .any(|p| (p.x0 - x).abs() < 1e-9 || (p.x1 - x).abs() < 1e-9)
            };
            events.retain(|e| on_boundary(e.x));
            (vis, events, None)
        })
        .collect();

    let mut vis = VisibilityMap { n_edges: edges.len(), ..Default::default() };
    for (pieces, crossings, vertical) in per_edge {
        vis.pieces.extend(pieces);
        vis.crossings.extend(crossings);
        if let Some(e) = vertical {
            vis.vertical_visible.push(e);
        }
    }
    vis.canonicalize();
    vis
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edges::project_edges;
    use crate::order::depth_order;
    use crate::seq::run_sequential;
    use hsr_terrain::gen;

    fn ordered_edges(tin: &hsr_terrain::Tin) -> Vec<SceneEdge> {
        let edges = project_edges(tin);
        let order = depth_order(tin).unwrap();
        order.iter().map(|&e| edges[e as usize]).collect()
    }

    #[test]
    fn matches_sequential() {
        for tin in [
            gen::fbm(7, 7, 3, 8.0, 4).to_tin().unwrap(),
            gen::amphitheater(6, 8, 10.0, 5).to_tin().unwrap(),
            gen::quadratic_comb(4),
        ] {
            let edges = ordered_edges(&tin);
            let a = run_naive(&edges);
            let b = run_sequential(&edges);
            let ag = a.agreement(&b);
            assert!(ag > 0.9999, "agreement {ag}");
            assert_eq!(a.vertical_visible, b.vertical_visible);
        }
    }

    #[test]
    fn single_edge_fully_visible() {
        let tin = gen::fbm(3, 3, 2, 3.0, 1).to_tin().unwrap();
        let edges = ordered_edges(&tin);
        let vis = run_naive(&edges[..1]);
        assert_eq!(vis.pieces.len(), 1);
    }
}
