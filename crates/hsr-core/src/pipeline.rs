//! End-to-end pipeline: terrain in, visibility map + measurements out.

use crate::edges::{project_edges, SceneEdge};
use crate::order::{depth_order, depth_order_parallel, CyclicOcclusion};
use crate::pct::{LayerStats, Pct};
use crate::visibility::VisibilityMap;
use hsr_pram::cost::{CostCollector, CostReport};
use hsr_terrain::Tin;
use std::time::Instant;

/// Which algorithm to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Algorithm {
    /// The paper's parallel algorithm (PCT + persistent prefix profiles).
    Parallel(Phase2Mode),
    /// The sequential Reif–Sen baseline.
    Sequential,
    /// The `O(n²)` strawman.
    Naive,
}

/// Phase-2 engine (DESIGN.md §4.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Phase2Mode {
    /// Persistent shared prefix profiles (default).
    Persistent,
    /// Static envelopes copied per node (rebuild ablation).
    Rebuild,
}

/// Pipeline configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct HsrConfig {
    /// Algorithm selection.
    pub algorithm: Algorithm,
    /// Use the layered parallel Kahn ordering instead of sequential Kahn.
    pub parallel_order: bool,
    /// Collect per-layer sharing statistics (adds traversal cost).
    pub collect_stats: bool,
}

impl Default for HsrConfig {
    fn default() -> Self {
        HsrConfig {
            algorithm: Algorithm::Parallel(Phase2Mode::Persistent),
            parallel_order: true,
            collect_stats: false,
        }
    }
}

/// Wall-clock timings of the pipeline stages, in seconds.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Timings {
    /// Edge projection + front-to-back ordering.
    pub order_s: f64,
    /// Phase 1 (PCT build + intermediate profiles).
    pub phase1_s: f64,
    /// Phase 2 (prefix profiles + visibility extraction).
    pub phase2_s: f64,
    /// Total.
    pub total_s: f64,
}

impl Timings {
    /// Stage-wise sum of `other` into `self` — the timing ledger of a
    /// result stitched from parts (per-tile runs of a tiled evaluation).
    /// Sums are cumulative compute time, not wall-clock time, when the
    /// parts ran concurrently.
    pub fn absorb(&mut self, other: &Timings) {
        self.order_s += other.order_s;
        self.phase1_s += other.phase1_s;
        self.phase2_s += other.phase2_s;
        self.total_s += other.total_s;
    }
}

/// The result of a pipeline run.
pub struct HsrResult {
    /// The visible image.
    pub vis: VisibilityMap,
    /// Input size `n` (number of edges).
    pub n: usize,
    /// Output size `k` (pieces + crossings + vertical points).
    pub k: usize,
    /// Cost-model counters accumulated during this run.
    pub cost: CostReport,
    /// Stage timings.
    pub timings: Timings,
    /// Per-layer statistics (only when `collect_stats`).
    pub layers: Vec<LayerStats>,
    /// Crossings discovered at internal PCT merges.
    pub internal_crossings: u64,
}

/// Projects, orders and runs the selected algorithm on a terrain.
///
/// The run owns a scoped [`CostCollector`]: the result's `cost` counts
/// exactly this run's work, even when other runs execute concurrently
/// (nested under any collector the caller has installed, so outer
/// measurement brackets still see this run's charges).
pub fn run(tin: &Tin, cfg: &HsrConfig) -> Result<HsrResult, CyclicOcclusion> {
    run_scoped(tin, cfg, &CostCollector::new())
}

/// Like [`run`], but charges an existing `collector` instead of creating
/// one. Callers that already own a collector for a wider measurement
/// (e.g. `view::evaluate`, whose collector also covers the projection
/// remap) pass it here so the hot loops update exactly one collector
/// chain instead of a nested pair whose inner report would be discarded.
pub fn run_scoped(
    tin: &Tin,
    cfg: &HsrConfig,
    collector: &CostCollector,
) -> Result<HsrResult, CyclicOcclusion> {
    let _scope = collector.install();
    let t_start = Instant::now();

    let edges = project_edges(tin);
    let order = if cfg.parallel_order {
        depth_order_parallel(tin)?
    } else {
        depth_order(tin)?
    };
    Ok(run_core(tin, cfg, &edges, &order, collector, t_start))
}

/// Runs the selected algorithm on an already projected and ordered scene
/// (callers like the viewshed evaluation share `edges`/`order` with the
/// batched point classification instead of recomputing them). The prep
/// work the caller already paid is *not* included in the result's cost
/// or order timing; callers widen the bracket themselves (with their own
/// [`CostCollector`] and [`run_prepared_scoped`]) if they need it.
pub fn run_prepared(tin: &Tin, cfg: &HsrConfig, edges: &[SceneEdge], order: &[u32]) -> HsrResult {
    run_prepared_scoped(tin, cfg, edges, order, &CostCollector::new())
}

/// Like [`run_prepared`], but charges an existing `collector` (see
/// [`run_scoped`]). Note the result's `cost` is the collector's full
/// report, so it includes whatever the caller already charged to it.
pub fn run_prepared_scoped(
    tin: &Tin,
    cfg: &HsrConfig,
    edges: &[SceneEdge],
    order: &[u32],
    collector: &CostCollector,
) -> HsrResult {
    let _scope = collector.install();
    let t_start = Instant::now();
    run_core(tin, cfg, edges, order, collector, t_start)
}

fn run_core(
    tin: &Tin,
    cfg: &HsrConfig,
    edges: &[SceneEdge],
    order: &[u32],
    collector: &CostCollector,
    t_start: Instant,
) -> HsrResult {
    let ordered: Vec<SceneEdge> = order.iter().map(|&e| edges[e as usize]).collect();
    let t_order = Instant::now();

    let (vis, layers, internal_crossings, t_phase1) = match cfg.algorithm {
        Algorithm::Parallel(mode) => {
            let pct = Pct::build(ordered);
            let t_phase1 = Instant::now();
            let out = match mode {
                Phase2Mode::Persistent => pct.phase2(cfg.collect_stats),
                Phase2Mode::Rebuild => pct.phase2_rebuild(),
            };
            (out.vis, out.layers, out.internal_crossings, t_phase1)
        }
        Algorithm::Sequential => {
            let t_phase1 = Instant::now();
            (crate::seq::run_sequential(&ordered), Vec::new(), 0, t_phase1)
        }
        Algorithm::Naive => {
            let t_phase1 = Instant::now();
            (crate::naive::run_naive(&ordered), Vec::new(), 0, t_phase1)
        }
    };

    let t_end = Instant::now();
    let cost = collector.report();
    let k = vis.output_size();
    HsrResult {
        n: tin.edges().len(),
        k,
        vis,
        cost,
        timings: Timings {
            order_s: (t_order - t_start).as_secs_f64(),
            phase1_s: (t_phase1 - t_order).as_secs_f64(),
            phase2_s: (t_end - t_phase1).as_secs_f64(),
            total_s: (t_end - t_start).as_secs_f64(),
        },
        layers,
        internal_crossings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsr_terrain::gen;

    #[test]
    fn all_algorithms_agree_end_to_end() {
        let tin = gen::fbm(9, 9, 3, 8.0, 13).to_tin().unwrap();
        let base = run(&tin, &HsrConfig::default()).unwrap();
        for alg in [
            Algorithm::Parallel(Phase2Mode::Rebuild),
            Algorithm::Sequential,
            Algorithm::Naive,
        ] {
            let other = run(&tin, &HsrConfig { algorithm: alg, ..Default::default() }).unwrap();
            let ag = base.vis.agreement(&other.vis);
            assert!(ag > 0.9999, "{alg:?} agreement {ag}");
            assert_eq!(base.vis.vertical_visible, other.vis.vertical_visible, "{alg:?}");
        }
    }

    #[test]
    fn output_size_reported() {
        let tin = gen::quadratic_comb(6);
        let r = run(&tin, &HsrConfig::default()).unwrap();
        assert_eq!(r.k, r.vis.output_size());
        assert!(r.k > r.n, "comb must have superlinear output");
        assert!(r.timings.total_s > 0.0);
    }

    #[test]
    fn stats_collection_is_optional() {
        let tin = gen::gaussian_hills(8, 8, 3, 17).to_tin().unwrap();
        let with = run(&tin, &HsrConfig { collect_stats: true, ..Default::default() }).unwrap();
        assert!(!with.layers.is_empty());
        let without = run(&tin, &HsrConfig::default()).unwrap();
        assert!(without.layers.is_empty());
        assert!(with.vis.agreement(&without.vis) > 0.9999);
    }
}
