//! Perspective projection support.
//!
//! The paper (§2): "We are viewing the scene in a direction perpendicular
//! to the projection plane, however the algorithm works for perspective
//! projection as well." The standard way to realize that claim is a
//! projective pre-transform that sends the viewpoint to infinity:
//!
//! For a viewpoint `O = (vx, vy, vz)` with the whole terrain strictly in
//! front (`x < vx`), map
//!
//! ```text
//! X' = 1 / (vx − x)        (depth; closer to O ⇒ larger X')
//! Y' = (y − vy) / (vx − x) (screen abscissa)
//! Z' = (z − vz) / (vx − x) (screen ordinate)
//! ```
//!
//! * rays through `O` become lines parallel to the `X'` axis, with the
//!   near-to-far order along each ray preserved as decreasing `X'` — the
//!   orthographic convention (viewer at `X' = +∞`);
//! * planes map to planes, so triangles stay (planar) triangles;
//! * the function-graph property is preserved: `(X', Y')` determines
//!   `(x, y)` and hence a unique surface point.
//!
//! Running the ordinary pipeline on the transformed terrain therefore
//! computes perspective-correct visibility, with `(Y', Z')` the true
//! perspective image coordinates.

use hsr_geometry::Point3;
use hsr_terrain::{Tin, TinError};

/// Errors from the perspective pre-transform.
#[derive(Clone, Debug, PartialEq)]
pub enum PerspectiveError {
    /// The viewpoint does not see the whole terrain from the front: some
    /// vertex has `x >= vx - margin`.
    ViewpointInsideScene {
        /// The viewpoint depth.
        vx: f64,
        /// The offending maximum terrain depth.
        max_x: f64,
    },
    /// The transformed vertex set fails TIN validation (numerically
    /// degenerate configuration).
    Degenerate(TinError),
}

impl std::fmt::Display for PerspectiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PerspectiveError::ViewpointInsideScene { vx, max_x } => {
                write!(f, "viewpoint depth {vx} must exceed the terrain's maximum depth {max_x}")
            }
            PerspectiveError::Degenerate(e) => write!(f, "degenerate after transform: {e}"),
        }
    }
}

impl std::error::Error for PerspectiveError {}

/// The viewpoint of a perspective view.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Viewpoint {
    /// Depth of the eye (must exceed every terrain `x`).
    pub vx: f64,
    /// Eye ground ordinate.
    pub vy: f64,
    /// Eye height.
    pub vz: f64,
}

impl Viewpoint {
    /// Forward transform of a world point (see module docs).
    #[inline]
    pub fn project(&self, p: Point3) -> Point3 {
        let w = 1.0 / (self.vx - p.x);
        Point3::new(w, (p.y - self.vy) * w, (p.z - self.vz) * w)
    }

    /// Inverse transform of a transformed point back to world space.
    #[inline]
    pub fn unproject(&self, q: Point3) -> Point3 {
        let d = 1.0 / q.x; // vx − x
        Point3::new(self.vx - d, self.vy + q.y * d, self.vz + q.z * d)
    }
}

/// Checks the conditioning margin of the pre-transform: the eye depth
/// must clear the scene's maximum depth by a sliver relative to the depth
/// span so `1/(vx − x)` stays well conditioned. The single source of the
/// margin rule — `perspective_tin` and the view validation both use it.
pub fn check_eye_margin(
    depths: impl Iterator<Item = f64>,
    eye_depth: f64,
) -> Result<(), PerspectiveError> {
    let (mut min_x, mut max_x) = (f64::INFINITY, f64::NEG_INFINITY);
    for x in depths {
        min_x = min_x.min(x);
        max_x = max_x.max(x);
    }
    let span = (max_x - min_x).max(1e-9);
    if eye_depth <= max_x + 1e-9 * span {
        return Err(PerspectiveError::ViewpointInsideScene { vx: eye_depth, max_x });
    }
    Ok(())
}

/// Transforms a terrain so that the orthographic pipeline computes
/// perspective-correct visibility from `view`.
pub fn perspective_tin(tin: &Tin, view: Viewpoint) -> Result<Tin, PerspectiveError> {
    check_eye_margin(tin.vertices().iter().map(|v| v.x), view.vx)?;
    let vertices: Vec<Point3> = tin.vertices().iter().map(|&p| view.project(p)).collect();
    Tin::new(vertices, tin.triangles().to_vec()).map_err(PerspectiveError::Degenerate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{run, Algorithm, HsrConfig};
    use hsr_terrain::gen;

    #[test]
    fn transform_roundtrips() {
        let v = Viewpoint { vx: 100.0, vy: 3.0, vz: 7.0 };
        for p in [
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(10.0, -5.0, 2.0),
            Point3::new(99.0, 50.0, -3.0),
        ] {
            let q = v.unproject(v.project(p));
            assert!((q.x - p.x).abs() < 1e-9);
            assert!((q.y - p.y).abs() < 1e-9);
            assert!((q.z - p.z).abs() < 1e-9);
        }
    }

    #[test]
    fn rejects_viewpoint_inside() {
        let tin = gen::fbm(8, 8, 3, 5.0, 1).to_tin().unwrap();
        let err = perspective_tin(&tin, Viewpoint { vx: 3.0, vy: 0.0, vz: 5.0 }).unwrap_err();
        assert!(matches!(err, PerspectiveError::ViewpointInsideScene { .. }));
    }

    #[test]
    fn depth_order_is_preserved_along_rays() {
        // Two points on one ray through the viewpoint: the closer one must
        // come out with the larger transformed depth and equal screen
        // coordinates.
        let v = Viewpoint { vx: 50.0, vy: 0.0, vz: 10.0 };
        let far = Point3::new(0.0, 4.0, 2.0);
        // A point 40% of the way from `far` to the eye.
        let near = Point3::new(
            far.x + 0.4 * (v.vx - far.x),
            far.y + 0.4 * (v.vy - far.y),
            far.z + 0.4 * (v.vz - far.z),
        );
        let (f, n) = (v.project(far), v.project(near));
        assert!(n.x > f.x, "closer point must have larger transformed depth");
        assert!((n.y - f.y).abs() < 1e-12 && (n.z - f.z).abs() < 1e-12);
    }

    #[test]
    fn distant_viewpoint_approaches_orthographic() {
        let tin = gen::gaussian_hills(10, 10, 4, 9).to_tin().unwrap();
        let ortho = run(&tin, &HsrConfig::default()).unwrap();
        // Viewpoint very far away, centered on the terrain.
        let (lo, hi) = tin.ground_bounds();
        let view = Viewpoint { vx: 1e7, vy: 0.5 * (lo.y + hi.y), vz: 5.0 };
        let persp_tin = perspective_tin(&tin, view).unwrap();
        let persp = run(&persp_tin, &HsrConfig::default()).unwrap();
        // Edge-level visibility (which edges have any visible portion)
        // converges to the orthographic answer.
        let vis_set = |r: &crate::pipeline::HsrResult| {
            let mut s: Vec<u32> = r.vis.per_edge_intervals().keys().copied().collect();
            s.extend(&r.vis.vertical_visible);
            s.sort_unstable();
            s
        };
        let a = vis_set(&ortho);
        let b = vis_set(&persp);
        let common = a.iter().filter(|e| b.binary_search(e).is_ok()).count();
        let denom = a.len().max(b.len()).max(1);
        assert!(
            common as f64 / denom as f64 > 0.97,
            "edge visibility sets diverge: {} vs {} (common {})",
            a.len(),
            b.len(),
            common
        );
    }

    #[test]
    fn perspective_view_agrees_across_algorithms() {
        let tin = gen::ridge_field(12, 10, 3, 10.0, 5).to_tin().unwrap();
        let (lo, hi) = tin.ground_bounds();
        let view = Viewpoint { vx: hi.x + 20.0, vy: 0.5 * (lo.y + hi.y), vz: 25.0 };
        let ptin = perspective_tin(&tin, view).unwrap();
        let par = run(&ptin, &HsrConfig::default()).unwrap();
        let seq = run(&ptin, &HsrConfig { algorithm: Algorithm::Sequential, ..Default::default() })
            .unwrap();
        assert!(par.vis.agreement(&seq.vis) > 0.9999);
    }

    #[test]
    fn perspective_matches_exact_point_oracle() {
        // Visibility computed through the transform must agree with direct
        // occlusion tests against the *transformed* terrain (which is the
        // perspective-correct oracle by construction).
        let tin = gen::occlusion_knob(10, 10, 0.8, 10.0, 3).to_tin().unwrap();
        let (lo, hi) = tin.ground_bounds();
        let view = Viewpoint { vx: hi.x + 15.0, vy: 0.5 * (lo.y + hi.y), vz: 12.0 };
        let ptin = perspective_tin(&tin, view).unwrap();
        let res = run(&ptin, &HsrConfig::default()).unwrap();
        let intervals = res.vis.per_edge_intervals();
        let empty = Vec::new();
        let (mut agree, mut total) = (0, 0);
        for (e, &[a, b]) in ptin.edges().iter().enumerate() {
            let (pa, pb) = (ptin.vertices()[a as usize], ptin.vertices()[b as usize]);
            if (pb.y - pa.y).abs() < 1e-12 {
                continue;
            }
            let iv = intervals.get(&(e as u32)).unwrap_or(&empty);
            for s in 0..8 {
                let t = (s as f64 + 0.5) / 8.0;
                let y = pa.y + t * (pb.y - pa.y);
                if iv
                    .iter()
                    .any(|&(u, v)| (y - u).abs() < 1e-9 || (y - v).abs() < 1e-9)
                {
                    continue;
                }
                let p = Point3::new(pa.x + t * (pb.x - pa.x), y, pa.z + t * (pb.z - pa.z));
                let alg = iv.iter().any(|&(u, v)| u <= y && y <= v);
                let exact = !crate::oracle::occluded(&ptin, p, 1e-12);
                total += 1;
                if alg == exact {
                    agree += 1;
                }
            }
        }
        assert!(
            agree as f64 / total.max(1) as f64 > 0.99,
            "perspective oracle agreement {agree}/{total}"
        );
    }
}
