//! The sequential baseline: Reif–Sen style incremental profile maintenance
//! (paper §2, "In the sequential algorithm, the edges are processed one by
//! one sequentially in order").
//!
//! The profile is a mutable ordered map of envelope pieces — an
//! [`ArenaTreap`], since this working set never exploits persistence:
//! nodes live in one contiguous arena, splices mutate in place, and
//! removed slots are recycled instead of path-copied. For each edge in
//! front-to-back order, the pieces overlapping its span are walked, the
//! visible sub-intervals and crossings are extracted, and the profile is
//! spliced. The cost per edge is `O(log m + overlapped + changed)` — the
//! practical analogue of the `O((n + k) log² n)` bound the paper's Remark
//! compares against.

use crate::edges::SceneEdge;
use crate::envelope::{relate, CrossEvent, Envelope, EnvelopeBuilder, Piece, Relation};
use crate::visibility::VisibilityMap;
use hsr_geometry::TotalF64;
use hsr_pram::cost::{add_work, record_depth, Category};
use hsr_pstruct::ArenaTreap;

/// Runs the sequential algorithm over edges already in front-to-back
/// order; returns the visible image.
pub fn run_sequential(edges: &[SceneEdge]) -> VisibilityMap {
    let mut profile: ArenaTreap<TotalF64, Piece> = ArenaTreap::new();
    let mut vis = VisibilityMap { n_edges: edges.len(), ..Default::default() };
    record_depth(Category::EnvelopeMerge, edges.len() as u64);

    for edge in edges {
        let Some(s) = edge.piece() else {
            // Vertical projection: point query against the profile.
            let x = edge.seg.a.x;
            let top = edge.seg.a.y.max(edge.seg.b.y);
            let visible = eval(&profile, x).is_none_or(|z| top > z);
            if visible {
                vis.vertical_visible.push(edge.id);
            }
            continue;
        };
        let (pieces, crossings) = insert_edge(&mut profile, s);
        vis.pieces.extend(pieces);
        vis.crossings.extend(crossings);
    }
    add_work(Category::Crossings, vis.crossings.len() as u64);
    vis.canonicalize();
    vis
}

fn eval(profile: &ArenaTreap<TotalF64, Piece>, x: f64) -> Option<f64> {
    let (_, p) = profile.floor(&TotalF64(x))?;
    (x <= p.x1).then(|| p.eval(x))
}

/// Splices piece `s` into the profile; returns the surfaced (visible)
/// sub-pieces of `s` and the crossings found.
fn insert_edge(
    profile: &mut ArenaTreap<TotalF64, Piece>,
    s: Piece,
) -> (Vec<Piece>, Vec<CrossEvent>) {
    // Collect the pieces overlapping [s.x0, s.x1] (including a straddler
    // that starts before s.x0).
    let mut affected: Vec<Piece> = Vec::new();
    if let Some((_, p)) = profile.floor_strict(&TotalF64(s.x0)) {
        if p.x1 > s.x0 {
            affected.push(*p);
        }
    }
    profile.for_range(&TotalF64(s.x0), &TotalF64(s.x1), &mut |_, p| affected.push(*p));
    add_work(Category::EnvelopeMerge, 1 + affected.len() as u64);

    // Rebuild the affected span: visible parts of s plus surviving parts
    // of the old pieces.
    let mut vis = EnvelopeBuilder::with_capacity(2);
    let mut out = EnvelopeBuilder::with_capacity(affected.len() + 2);
    let mut crossings = Vec::new();
    let mut x = s.x0;
    let push_s = |b: &mut EnvelopeBuilder, v: &mut EnvelopeBuilder, u: f64, w: f64| {
        if let Some(c) = s.clip(u, w) {
            b.push(c);
            v.push(c);
        }
    };
    for p in &affected {
        // Keep the part of p before s's span untouched in the rebuild.
        if p.x0 < s.x0 {
            out.push_clip(p, p.x0, s.x0);
        }
        // Gap before this piece: s surfaces.
        if p.x0 > x {
            push_s(&mut out, &mut vis, x, p.x0);
            x = p.x0;
        }
        let v = p.x1.min(s.x1);
        if v > x {
            match relate(p, &s, x, v) {
                Relation::AAbove => out.push_clip(p, x, v),
                Relation::BAbove => push_s(&mut out, &mut vis, x, v),
                Relation::CrossAtoB { x: cx, z } => {
                    crossings.push(CrossEvent {
                        x: cx,
                        z,
                        upper_left: p.edge,
                        upper_right: s.edge,
                    });
                    out.push_clip(p, x, cx);
                    push_s(&mut out, &mut vis, cx, v);
                }
                Relation::CrossBtoA { x: cx, z } => {
                    crossings.push(CrossEvent {
                        x: cx,
                        z,
                        upper_left: s.edge,
                        upper_right: p.edge,
                    });
                    push_s(&mut out, &mut vis, x, cx);
                    out.push_clip(p, cx, v);
                }
            }
            x = v;
        }
        // Part of p after s's span survives untouched.
        if p.x1 > s.x1 {
            out.push_clip(p, s.x1, p.x1);
        }
    }
    if x < s.x1 {
        push_s(&mut out, &mut vis, x, s.x1);
    }

    // Splice: remove the affected pieces (the in-span run in one
    // split/join, plus the straddler key sitting before the span), insert
    // the rebuilt ones.
    profile.remove_range(&TotalF64(s.x0), &TotalF64(s.x1));
    if let Some(p) = affected.first() {
        if p.x0 < s.x0 {
            profile.remove(&TotalF64(p.x0));
        }
    }
    for p in out.finish() {
        profile.insert(TotalF64(p.x0), p);
    }
    (vis.finish(), crossings)
}

/// Materialises the final profile (for tests).
pub fn final_profile(edges: &[SceneEdge]) -> Envelope {
    let mut profile: ArenaTreap<TotalF64, Piece> = ArenaTreap::new();
    for edge in edges {
        if let Some(s) = edge.piece() {
            insert_edge(&mut profile, s);
        }
    }
    Envelope::from_sorted_pieces(profile.into_values())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edges::project_edges;
    use crate::order::depth_order;
    use hsr_terrain::gen;

    fn ordered_edges(tin: &hsr_terrain::Tin) -> Vec<SceneEdge> {
        let edges = project_edges(tin);
        let order = depth_order(tin).unwrap();
        order.iter().map(|&e| edges[e as usize]).collect()
    }

    #[test]
    fn front_edge_fully_visible() {
        let tin = gen::fbm(6, 6, 3, 5.0, 1).to_tin().unwrap();
        let edges = ordered_edges(&tin);
        let vis = run_sequential(&edges);
        // The very first processed edge is always fully visible.
        let first = edges.iter().find(|e| !e.vertical).unwrap();
        let iv = vis.per_edge_intervals();
        let spans = iv.get(&first.id).expect("first edge visible");
        let len: f64 = spans.iter().map(|(u, v)| v - u).sum();
        assert!((len - (first.seg.b.x - first.seg.a.x)).abs() < 1e-9);
    }

    #[test]
    fn final_profile_matches_global_envelope() {
        let tin = gen::gaussian_hills(8, 8, 4, 2).to_tin().unwrap();
        let edges = ordered_edges(&tin);
        let seq_prof = final_profile(&edges);
        let pieces: Vec<Piece> = edges.iter().filter_map(|e| e.piece()).collect();
        let direct = Envelope::from_pieces(&pieces);
        for i in 0..400 {
            let x = i as f64 * 8.0 / 400.0;
            let (a, b) = (seq_prof.eval(x), direct.eval(x));
            match (a, b) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    assert!((a - b).abs() < 1e-9, "profile mismatch at {x}: {a} vs {b}")
                }
                _ => panic!("gap mismatch at {x}: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn matches_parallel_pct() {
        for tin in [
            gen::fbm(8, 8, 3, 8.0, 7).to_tin().unwrap(),
            gen::ridge_field(10, 8, 3, 12.0, 8).to_tin().unwrap(),
            gen::quadratic_comb(5),
            gen::random_tin(70, 8.0, 9),
        ] {
            let edges = ordered_edges(&tin);
            let seq = run_sequential(&edges);
            let pct = crate::pct::Pct::build(edges);
            let par = pct.phase2(false);
            let ag = seq.agreement(&par.vis);
            assert!(ag > 0.9999, "agreement {ag}");
            assert_eq!(seq.vertical_visible, par.vis.vertical_visible);
        }
    }
}
