//! Exact brute-force visibility oracle.
//!
//! For a sample point on the terrain surface, walks *every* face and tests
//! analytically whether the view ray (towards `x = +∞`) passes strictly
//! below the surface anywhere — `O(n)` per query, no discretisation. Used
//! by the test suite as the arbiter of correctness: the z-buffer
//! ([`crate::zbuffer`]) aliases on grazing occluders (sub-pixel slivers in
//! image space), which is precisely the image-space weakness the paper's
//! introduction cites.

use hsr_geometry::Point3;
use hsr_terrain::Tin;

/// Is the view ray from `p` towards `x = +∞` blocked by the terrain?
///
/// `eps_x` excludes a small band around the sample itself so that the
/// faces *containing* the sample do not count as blockers at the contact
/// point (they still count farther along the ray if they rise above it).
pub fn occluded(tin: &Tin, p: Point3, eps_x: f64) -> bool {
    let verts = tin.vertices();
    for tri in tin.triangles() {
        let a = verts[tri[0] as usize];
        let b = verts[tri[1] as usize];
        let c = verts[tri[2] as usize];
        // The ray's ground projection is the horizontal line y = p.y at
        // x > p.x. Intersect it with the triangle's ground projection.
        let (mut x_lo, mut x_hi) = (f64::INFINITY, f64::NEG_INFINITY);
        let mut touched = false;
        for (u, v) in [(a, b), (b, c), (c, a)] {
            let (y0, y1) = (u.y, v.y);
            if (y0 - p.y) * (y1 - p.y) > 0.0 {
                continue; // edge strictly on one side
            }
            if y0 == y1 {
                // Horizontal edge exactly on the line.
                x_lo = x_lo.min(u.x.min(v.x));
                x_hi = x_hi.max(u.x.max(v.x));
                touched = true;
                continue;
            }
            let t = (p.y - y0) / (y1 - y0);
            let x = u.x + t * (v.x - u.x);
            x_lo = x_lo.min(x);
            x_hi = x_hi.max(x);
            touched = true;
        }
        if !touched {
            continue;
        }
        // Only the part of the crossing strictly in front of the sample.
        let lo = x_lo.max(p.x + eps_x);
        let hi = x_hi;
        if lo >= hi {
            continue;
        }
        // Surface height along the crossing is linear in x; check both
        // interval ends.
        let z_at = |x: f64| -> f64 {
            // Barycentric on the ground projection at (x, p.y).
            let det = (b.x - a.x) * (c.y - a.y) - (c.x - a.x) * (b.y - a.y);
            if det == 0.0 {
                return f64::NEG_INFINITY;
            }
            let l1 = ((b.x - a.x) * (p.y - a.y) - (x - a.x) * (b.y - a.y)) / det;
            let l2 = ((x - a.x) * (c.y - a.y) - (c.x - a.x) * (p.y - a.y)) / det;
            let l0 = 1.0 - l1 - l2;
            l0 * a.z + l2 * b.z + l1 * c.z
        };
        if z_at(lo) > p.z || z_at(hi) > p.z {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsr_terrain::gen;

    #[test]
    fn front_of_wall_visible_behind_hidden() {
        let tin = gen::occlusion_knob(12, 12, 1.0, 10.0, 2).to_tin().unwrap();
        // A point far behind and below the wall is occluded.
        let behind = Point3::new(1.0, 5.5, 0.5);
        assert!(occluded(&tin, behind, 1e-6));
        // A point above everything is visible.
        let above = Point3::new(1.0, 5.5, 100.0);
        assert!(!occluded(&tin, above, 1e-6));
    }

    #[test]
    fn amphitheater_samples_visible() {
        let tin = gen::amphitheater(8, 8, 10.0, 1).to_tin().unwrap();
        // Every vertex of a rising terrain sees the viewer.
        for v in tin.vertices() {
            assert!(!occluded(&tin, *v, 1e-9), "vertex {v:?} wrongly occluded");
        }
    }

    #[test]
    fn algorithms_match_exact_oracle() {
        use crate::edges::project_edges;
        use crate::order::depth_order;
        use crate::seq::run_sequential;

        for tin in [
            gen::fbm(10, 10, 3, 8.0, 3).to_tin().unwrap(),
            gen::ridge_field(12, 10, 3, 12.0, 4).to_tin().unwrap(),
            gen::occlusion_knob(10, 10, 0.7, 10.0, 5).to_tin().unwrap(),
        ] {
            let edges = project_edges(&tin);
            let order = depth_order(&tin).unwrap();
            let ordered: Vec<_> = order.iter().map(|&e| edges[e as usize]).collect();
            let vis = run_sequential(&ordered);
            let intervals = vis.per_edge_intervals();
            let empty = Vec::new();

            let (lo, hi) = tin.ground_bounds();
            let extent = (hi.y - lo.y).max(1e-9);
            let margin = 1e-6 * extent;
            let (mut agree, mut total) = (0usize, 0usize);
            for (e, &[a, b]) in tin.edges().iter().enumerate() {
                let (pa, pb) = (tin.vertices()[a as usize], tin.vertices()[b as usize]);
                if (pb.y - pa.y).abs() < 1e-9 {
                    continue; // vertical projection: point visibility, skip
                }
                let iv = intervals.get(&(e as u32)).unwrap_or(&empty);
                for s in 0..14 {
                    let t = (s as f64 + 0.5) / 14.0;
                    let y = pa.y + t * (pb.y - pa.y);
                    // Skip samples numerically on a visibility transition.
                    if iv
                        .iter()
                        .any(|&(u, v)| (y - u).abs() < margin || (y - v).abs() < margin)
                    {
                        continue;
                    }
                    let p = Point3::new(pa.x + t * (pb.x - pa.x), y, pa.z + t * (pb.z - pa.z));
                    let alg = iv.iter().any(|&(u, v)| u <= y && y <= v);
                    let exact = !occluded(&tin, p, 1e-9 * extent);
                    total += 1;
                    if alg == exact {
                        agree += 1;
                    }
                }
            }
            let ratio = agree as f64 / total.max(1) as f64;
            assert!(ratio > 0.995, "exact-oracle agreement {ratio} ({agree}/{total})");
        }
    }
}
