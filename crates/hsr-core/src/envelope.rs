//! Upper envelopes ("profiles") of image-plane segments.
//!
//! A *profile* (paper §1.1) is the pointwise maximum, in the `+z` direction,
//! of a set of segments projected on the image plane — a piecewise-linear
//! partial function of the abscissa, monotone as a polygonal chain. This
//! module provides the static representation used by phase 1 of the
//! algorithm: [`Envelope`] as a sorted vector of disjoint [`Piece`]s (gaps
//! allowed), linear-time pairwise [`Envelope::merge`], and the
//! divide-and-conquer [`Envelope::from_pieces`] construction of Lemma 3.1
//! (`O(m log m)` work, `O(log² m)` depth, parallelised with rayon joins).

use hsr_geometry::Segment2;
use hsr_pram::cost::{add_work, Category};

/// One linear piece of an envelope: the graph of a linear function over
/// `[x0, x1]`, contributed by terrain edge `edge`.
///
/// Pieces are self-contained (they carry their endpoint ordinates), so a
/// clipped piece evaluates *exactly* like its parent on the shared
/// boundary — which is what keeps junctions of adjacent pieces watertight.
///
/// **Contract:** all pieces sharing an `edge` id must lie on one common
/// supporting line (they come from one terrain segment). The builders rely
/// on this to coalesce touching fragments of the same edge; feeding two
/// unrelated pieces with the same id produces envelopes that interpolate
/// across the spurious junction.
#[derive(Clone, Copy, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Piece {
    /// Left abscissa.
    pub x0: f64,
    /// Right abscissa (`> x0` for all stored pieces).
    pub x1: f64,
    /// Ordinate at `x0`.
    pub z0: f64,
    /// Ordinate at `x1`.
    pub z1: f64,
    /// Id of the terrain edge this piece belongs to.
    pub edge: u32,
}

impl Piece {
    /// A piece covering the whole (non-vertical) segment.
    #[inline]
    pub fn from_segment(seg: &Segment2, edge: u32) -> Option<Piece> {
        if seg.is_vertical() {
            return None;
        }
        Some(Piece { x0: seg.a.x, x1: seg.b.x, z0: seg.a.y, z1: seg.b.y, edge })
    }

    /// Value at `x` (exact at the stored endpoints).
    #[inline]
    pub fn eval(&self, x: f64) -> f64 {
        if x <= self.x0 {
            return self.z0;
        }
        if x >= self.x1 {
            return self.z1;
        }
        let t = (x - self.x0) / (self.x1 - self.x0);
        self.z0 + t * (self.z1 - self.z0)
    }

    /// Slope of the supporting line.
    #[inline]
    pub fn slope(&self) -> f64 {
        (self.z1 - self.z0) / (self.x1 - self.x0)
    }

    /// The sub-piece over `[u, v] ⊆ [x0, x1]`; `None` when the clip is
    /// empty or degenerate.
    #[inline]
    pub fn clip(&self, u: f64, v: f64) -> Option<Piece> {
        let u = u.max(self.x0);
        let v = v.min(self.x1);
        if u >= v {
            return None;
        }
        Some(Piece { x0: u, x1: v, z0: self.eval(u), z1: self.eval(v), edge: self.edge })
    }

    /// Width of the piece.
    #[inline]
    pub fn width(&self) -> f64 {
        self.x1 - self.x0
    }

    /// Minimum ordinate over the piece.
    #[inline]
    pub fn z_min(&self) -> f64 {
        self.z0.min(self.z1)
    }

    /// Maximum ordinate over the piece.
    #[inline]
    pub fn z_max(&self) -> f64 {
        self.z0.max(self.z1)
    }
}

/// A crossing between a segment and a profile — a vertex of the visible
/// image (chargeable to the output size `k`).
#[derive(Clone, Copy, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CrossEvent {
    /// Abscissa of the crossing.
    pub x: f64,
    /// Ordinate of the crossing.
    pub z: f64,
    /// The edge that is on top to the left of the crossing.
    pub upper_left: u32,
    /// The edge that is on top to the right of the crossing.
    pub upper_right: u32,
}

/// Relation of two linear pieces over a common interval `[u, v]`.
#[derive(Clone, Copy, Debug)]
pub enum Relation {
    /// `a` is on top over the whole interval (ties go to `a`).
    AAbove,
    /// `b` is strictly on top over the whole interval.
    BAbove,
    /// They cross at the contained point: `a` on top on `[u, x]`, `b` on
    /// `[x, v]`.
    CrossAtoB {
        /// Crossing abscissa.
        x: f64,
        /// Crossing ordinate.
        z: f64,
    },
    /// They cross at the contained point: `b` on top on `[u, x]`, `a` on
    /// `[x, v]`.
    CrossBtoA {
        /// Crossing abscissa.
        x: f64,
        /// Crossing ordinate.
        z: f64,
    },
}

/// Classifies two linear pieces over `[u, v]`. Tie policy: where the
/// functions are equal, `a` wins (callers pass the *front* / already-visible
/// piece as `a`, so later edges never peek through ties).
pub fn relate(a: &Piece, b: &Piece, u: f64, v: f64) -> Relation {
    debug_assert!(u < v, "relate needs a non-degenerate interval");
    let du = b.eval(u) - a.eval(u);
    let dv = b.eval(v) - a.eval(v);
    if du <= 0.0 && dv <= 0.0 {
        return Relation::AAbove;
    }
    if du > 0.0 && dv > 0.0 {
        return Relation::BAbove;
    }
    // Signs differ: exactly one crossing inside.
    let t = du / (du - dv); // in [0, 1]
    let x = (u + t * (v - u)).clamp(u, v);
    let z = a.eval(x);
    if du <= 0.0 {
        // a on top first.
        Relation::CrossAtoB { x, z }
    } else {
        Relation::CrossBtoA { x, z }
    }
}

/// An upper envelope: sorted pieces with pairwise-disjoint interiors
/// (gaps allowed where no segment spans).
///
/// ```
/// use hsr_core::envelope::{Envelope, Piece};
///
/// // Two crossing roof lines: the envelope takes the higher one on
/// // each side of their crossing at x = 1.
/// let rising = Piece { x0: 0.0, x1: 2.0, z0: 0.0, z1: 2.0, edge: 0 };
/// let falling = Piece { x0: 0.0, x1: 2.0, z0: 2.0, z1: 0.0, edge: 1 };
/// let env = Envelope::from_pieces(&[rising, falling]);
/// assert_eq!(env.size(), 2);
/// assert_eq!(env.eval(0.5), Some(1.5)); // falling piece on top
/// assert_eq!(env.eval(1.5), Some(1.5)); // rising piece on top
/// assert_eq!(env.eval(5.0), None);      // outside: a gap
/// ```
#[derive(Clone, Debug, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Envelope {
    pieces: Vec<Piece>,
}

impl Envelope {
    /// The empty envelope.
    pub fn new() -> Self {
        Envelope { pieces: Vec::new() }
    }

    /// An envelope of a single piece.
    pub fn from_piece(p: Piece) -> Self {
        Envelope { pieces: vec![p] }
    }

    /// Wraps a sorted, disjoint piece vector (debug-checked).
    pub fn from_sorted_pieces(pieces: Vec<Piece>) -> Self {
        let e = Envelope { pieces };
        debug_assert!(e.check_invariants().is_ok(), "{:?}", e.check_invariants());
        e
    }

    /// The pieces, sorted by abscissa.
    #[inline]
    pub fn pieces(&self) -> &[Piece] {
        &self.pieces
    }

    /// Number of pieces (the profile size `m` of the paper's lemmas).
    #[inline]
    pub fn size(&self) -> usize {
        self.pieces.len()
    }

    /// True when the envelope has no pieces.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pieces.is_empty()
    }

    /// Envelope value at `x`, `None` over gaps.
    pub fn eval(&self, x: f64) -> Option<f64> {
        let i = self.pieces.partition_point(|p| p.x1 < x);
        let p = self.pieces.get(i)?;
        (p.x0 <= x).then(|| p.eval(x))
    }

    /// Builds the upper envelope of a set of pieces by parallel divide and
    /// conquer (Lemma 3.1).
    pub fn from_pieces(pieces: &[Piece]) -> Envelope {
        match pieces.len() {
            0 => Envelope::new(),
            1 => Envelope::from_piece(pieces[0]),
            n => {
                let (l, r) = pieces.split_at(n / 2);
                let (el, er) = if n > 256 {
                    // Collector-propagating join: envelope-build work on
                    // the stolen branch charges the spawning evaluation.
                    hsr_pram::join(|| Envelope::from_pieces(l), || Envelope::from_pieces(r))
                } else {
                    (Envelope::from_pieces(l), Envelope::from_pieces(r))
                };
                Envelope::merge(&el, &er)
            }
        }
    }

    /// Merges two envelopes into their pointwise maximum in linear time.
    /// Ties go to `a`'s pieces.
    pub fn merge(a: &Envelope, b: &Envelope) -> Envelope {
        if a.is_empty() {
            return b.clone();
        }
        if b.is_empty() {
            return a.clone();
        }
        add_work(Category::EnvelopeBuild, (a.size() + b.size()) as u64);

        // Sweep over the union of piece boundaries.
        let mut xs: Vec<f64> = Vec::with_capacity(2 * (a.size() + b.size()));
        for p in a.pieces().iter().chain(b.pieces()) {
            xs.push(p.x0);
            xs.push(p.x1);
        }
        xs.sort_by(f64::total_cmp);
        xs.dedup();

        let mut out = EnvelopeBuilder::with_capacity(a.size() + b.size());
        let (mut i, mut j) = (0usize, 0usize);
        for w in xs.windows(2) {
            let (u, v) = (w[0], w[1]);
            if u >= v {
                continue;
            }
            while i < a.pieces.len() && a.pieces[i].x1 <= u {
                i += 1;
            }
            while j < b.pieces.len() && b.pieces[j].x1 <= u {
                j += 1;
            }
            let pa = a.pieces.get(i).filter(|p| p.x0 <= u && v <= p.x1);
            let pb = b.pieces.get(j).filter(|p| p.x0 <= u && v <= p.x1);
            match (pa, pb) {
                (None, None) => {}
                (Some(p), None) | (None, Some(p)) => out.push_clip(p, u, v),
                (Some(pa), Some(pb)) => match relate(pa, pb, u, v) {
                    Relation::AAbove => out.push_clip(pa, u, v),
                    Relation::BAbove => out.push_clip(pb, u, v),
                    Relation::CrossAtoB { x, .. } => {
                        out.push_clip(pa, u, x);
                        out.push_clip(pb, x, v);
                    }
                    Relation::CrossBtoA { x, .. } => {
                        out.push_clip(pb, u, x);
                        out.push_clip(pa, x, v);
                    }
                },
            }
        }
        Envelope { pieces: out.finish() }
    }

    /// Splits piece `s` against this envelope: returns the sub-pieces of
    /// `s` strictly above the envelope (its *visible* parts when the
    /// envelope is the profile of everything in front) and the crossings.
    /// Linear in the number of envelope pieces overlapping `s`'s span.
    pub fn visible_parts(&self, s: &Piece) -> (Vec<Piece>, Vec<CrossEvent>) {
        let mut vis = EnvelopeBuilder::with_capacity(2);
        let mut crossings = Vec::new();
        let mut x = s.x0;
        let mut i = self.pieces.partition_point(|p| p.x1 <= s.x0);
        while x < s.x1 {
            match self.pieces.get(i) {
                Some(p) if p.x0 <= x => {
                    // Overlap region [x, v].
                    let v = p.x1.min(s.x1);
                    if v > x {
                        match relate(p, s, x, v) {
                            Relation::AAbove => {}
                            Relation::BAbove => vis.push_clip(s, x, v),
                            Relation::CrossAtoB { x: cx, z } => {
                                crossings.push(CrossEvent {
                                    x: cx,
                                    z,
                                    upper_left: p.edge,
                                    upper_right: s.edge,
                                });
                                vis.push_clip(s, cx, v);
                            }
                            Relation::CrossBtoA { x: cx, z } => {
                                crossings.push(CrossEvent {
                                    x: cx,
                                    z,
                                    upper_left: s.edge,
                                    upper_right: p.edge,
                                });
                                vis.push_clip(s, x, cx);
                            }
                        }
                    }
                    x = v;
                    if p.x1 <= x {
                        i += 1;
                    }
                }
                Some(p) => {
                    // Gap until the next piece starts: s is visible there.
                    let v = p.x0.min(s.x1);
                    vis.push_clip(s, x, v);
                    x = v;
                }
                None => {
                    // Gap to the end.
                    vis.push_clip(s, x, s.x1);
                    x = s.x1;
                }
            }
        }
        (vis.finish(), crossings)
    }

    /// Structural sanity check (used by tests and debug assertions).
    pub fn check_invariants(&self) -> Result<(), String> {
        for (i, p) in self.pieces.iter().enumerate() {
            if p.x0 >= p.x1 || p.x0.is_nan() || p.x1.is_nan() {
                return Err(format!("piece {i} degenerate: [{}, {}]", p.x0, p.x1));
            }
            if !p.x0.is_finite() || !p.z0.is_finite() || !p.z1.is_finite() {
                return Err(format!("piece {i} non-finite"));
            }
        }
        for w in self.pieces.windows(2) {
            if w[0].x1 > w[1].x0 {
                return Err(format!(
                    "pieces overlap: [{}, {}] then [{}, {}]",
                    w[0].x0, w[0].x1, w[1].x0, w[1].x1
                ));
            }
        }
        Ok(())
    }

    /// The abscissa range covered (hull of all pieces), `None` when empty.
    pub fn span(&self) -> Option<(f64, f64)> {
        Some((self.pieces.first()?.x0, self.pieces.last()?.x1))
    }
}

/// Accumulates output pieces, coalescing adjacent fragments of the same
/// edge into maximal pieces.
pub(crate) struct EnvelopeBuilder {
    out: Vec<Piece>,
}

impl EnvelopeBuilder {
    pub(crate) fn with_capacity(n: usize) -> Self {
        EnvelopeBuilder { out: Vec::with_capacity(n) }
    }

    pub(crate) fn push_clip(&mut self, p: &Piece, u: f64, v: f64) {
        if let Some(c) = p.clip(u, v) {
            self.push(c);
        }
    }

    pub(crate) fn push(&mut self, c: Piece) {
        if let Some(last) = self.out.last_mut() {
            if last.edge == c.edge && last.x1 == c.x0 && last.z1 == c.z0 {
                last.x1 = c.x1;
                last.z1 = c.z1;
                return;
            }
        }
        self.out.push(c);
    }

    pub(crate) fn finish(self) -> Vec<Piece> {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hsr_geometry::Point2;

    fn piece(x0: f64, z0: f64, x1: f64, z1: f64, edge: u32) -> Piece {
        Piece { x0, x1, z0, z1, edge }
    }

    #[test]
    fn single_piece_eval() {
        let p = piece(0.0, 0.0, 2.0, 4.0, 0);
        assert_eq!(p.eval(0.0), 0.0);
        assert_eq!(p.eval(2.0), 4.0);
        assert_eq!(p.eval(1.0), 2.0);
        assert_eq!(p.slope(), 2.0);
    }

    #[test]
    fn clip_is_exact_at_boundaries() {
        let p = piece(0.0, 0.0, 3.0, 9.0, 0);
        let c = p.clip(1.0, 2.0).unwrap();
        assert_eq!((c.x0, c.x1), (1.0, 2.0));
        assert_eq!(c.z0, p.eval(1.0));
        assert_eq!(c.z1, p.eval(2.0));
        assert!(p.clip(3.0, 4.0).is_none());
    }

    #[test]
    fn merge_disjoint() {
        let a = Envelope::from_piece(piece(0.0, 1.0, 1.0, 1.0, 0));
        let b = Envelope::from_piece(piece(2.0, 2.0, 3.0, 2.0, 1));
        let m = Envelope::merge(&a, &b);
        assert_eq!(m.size(), 2);
        assert_eq!(m.eval(0.5), Some(1.0));
        assert_eq!(m.eval(1.5), None); // gap
        assert_eq!(m.eval(2.5), Some(2.0));
    }

    #[test]
    fn merge_crossing() {
        // a: rising 0->2 over [0,2]; b: falling 2->0 over [0,2]; cross at 1.
        let a = Envelope::from_piece(piece(0.0, 0.0, 2.0, 2.0, 0));
        let b = Envelope::from_piece(piece(0.0, 2.0, 2.0, 0.0, 1));
        let m = Envelope::merge(&a, &b);
        assert_eq!(m.size(), 2);
        assert_eq!(m.eval(0.0), Some(2.0));
        assert_eq!(m.eval(2.0), Some(2.0));
        assert_eq!(m.eval(1.0), Some(1.0));
        assert_eq!(m.pieces()[0].edge, 1);
        assert_eq!(m.pieces()[1].edge, 0);
        m.check_invariants().unwrap();
    }

    #[test]
    fn merge_containment() {
        // High short piece inside a low long one.
        let a = Envelope::from_piece(piece(0.0, 1.0, 10.0, 1.0, 0));
        let b = Envelope::from_piece(piece(4.0, 5.0, 6.0, 5.0, 1));
        let m = Envelope::merge(&a, &b);
        assert_eq!(m.size(), 3);
        assert_eq!(m.eval(5.0), Some(5.0));
        assert_eq!(m.eval(1.0), Some(1.0));
        assert_eq!(m.eval(9.0), Some(1.0));
        m.check_invariants().unwrap();
    }

    #[test]
    fn ties_go_to_a() {
        let a = Envelope::from_piece(piece(0.0, 1.0, 2.0, 1.0, 0));
        let b = Envelope::from_piece(piece(0.0, 1.0, 2.0, 1.0, 1));
        let m = Envelope::merge(&a, &b);
        assert_eq!(m.size(), 1);
        assert_eq!(m.pieces()[0].edge, 0);
    }

    #[test]
    fn from_pieces_matches_bruteforce() {
        // Pseudo-random pieces; envelope must equal pointwise max at many
        // sample abscissae.
        let mut pieces = Vec::new();
        let mut state = 12345u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        for e in 0..60u32 {
            let x0 = next() * 90.0;
            let w = next() * 10.0 + 0.5;
            let (z0, z1) = (next() * 20.0, next() * 20.0);
            pieces.push(piece(x0, z0, x0 + w, z1, e));
        }
        let env = Envelope::from_pieces(&pieces);
        env.check_invariants().unwrap();
        for s in 0..1000 {
            let x = s as f64 * 0.1;
            let expect = pieces
                .iter()
                .filter(|p| p.x0 <= x && x <= p.x1)
                .map(|p| p.eval(x))
                .fold(f64::NEG_INFINITY, f64::max);
            let got = env.eval(x).unwrap_or(f64::NEG_INFINITY);
            if expect.is_finite() || got.is_finite() {
                assert!(
                    (expect - got).abs() < 1e-9,
                    "mismatch at x={x}: brute={expect}, env={got}"
                );
            }
        }
    }

    #[test]
    fn from_segments_via_pieces() {
        let segs = [
            Segment2::new(Point2::new(0.0, 0.0), Point2::new(4.0, 4.0)),
            Segment2::new(Point2::new(0.0, 3.0), Point2::new(4.0, 3.0)),
        ];
        let pieces: Vec<Piece> = segs
            .iter()
            .enumerate()
            .filter_map(|(i, s)| Piece::from_segment(s, i as u32))
            .collect();
        let env = Envelope::from_pieces(&pieces);
        // Flat wins until x=3, then the rising segment.
        assert_eq!(env.eval(1.0), Some(3.0));
        assert_eq!(env.eval(3.5), Some(3.5));
        assert_eq!(env.size(), 2);
    }

    #[test]
    fn vertical_segments_are_skipped() {
        let s = Segment2::new(Point2::new(1.0, 0.0), Point2::new(1.0, 5.0));
        assert!(Piece::from_segment(&s, 0).is_none());
    }

    #[test]
    fn relate_tie_break() {
        let a = piece(0.0, 1.0, 1.0, 2.0, 0);
        let b = piece(0.0, 1.0, 1.0, 2.0, 1);
        assert!(matches!(relate(&a, &b, 0.0, 1.0), Relation::AAbove));
    }

    #[test]
    fn visible_parts_over_gap_and_pieces() {
        // Envelope: flat z=2 on [1,3] and [5,7]; gaps elsewhere.
        let env = Envelope::from_sorted_pieces(vec![
            piece(1.0, 2.0, 3.0, 2.0, 0),
            piece(5.0, 2.0, 7.0, 2.0, 1),
        ]);
        // s: flat z=1 over [0,8]: visible only over the gaps.
        let s = piece(0.0, 1.0, 8.0, 1.0, 9);
        let (vis, cross) = env.visible_parts(&s);
        assert!(cross.is_empty());
        let spans: Vec<(f64, f64)> = vis.iter().map(|p| (p.x0, p.x1)).collect();
        assert_eq!(spans, vec![(0.0, 1.0), (3.0, 5.0), (7.0, 8.0)]);
    }

    #[test]
    fn visible_parts_crossing() {
        // Envelope: flat z=2 on [0,10]; s rises 0 -> 4 over [0,10]:
        // crossing at x=5, visible on [5,10].
        let env = Envelope::from_piece(piece(0.0, 2.0, 10.0, 2.0, 0));
        let s = piece(0.0, 0.0, 10.0, 4.0, 9);
        let (vis, cross) = env.visible_parts(&s);
        assert_eq!(cross.len(), 1);
        assert!((cross[0].x - 5.0).abs() < 1e-12);
        assert_eq!(vis.len(), 1);
        assert!((vis[0].x0 - 5.0).abs() < 1e-12);
        assert_eq!(vis[0].x1, 10.0);
    }

    #[test]
    fn visible_parts_fully_hidden() {
        let env = Envelope::from_piece(piece(0.0, 5.0, 10.0, 5.0, 0));
        let s = piece(2.0, 1.0, 8.0, 1.0, 9);
        let (vis, cross) = env.visible_parts(&s);
        assert!(vis.is_empty());
        assert!(cross.is_empty());
    }
}
